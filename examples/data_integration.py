"""Demonstration part 1: CQA extracts more information than data cleaning.

    "we will demonstrate that using consistent query answers we can
    extract more information from an inconsistent database than in the
    approach where the input query is evaluated over the database from
    which the conflicting tuples have been removed"  (Hippo, EDBT 2004)

Two customer databases are integrated; they dispute some customers'
status (and occasionally city).  The remove-conflicts approach loses
every disputed customer.  Consistent query answering keeps everything
that is certain -- including city facts recovered *through* the dispute
by a union query.

Run:  python examples/data_integration.py
"""

from repro import HippoEngine
from repro.workloads import (
    CITY_CERTAIN_QUERY,
    GOLD_QUERY,
    build_integration_scenario,
)


def main() -> None:
    scenario = build_integration_scenario(n_customers=300, disputed_fraction=0.2)
    print(
        f"integrated customer table: {scenario.n_agreeing} agreeing,"
        f" {scenario.n_disputed} disputed, {scenario.n_unique} single-source"
    )

    hippo = HippoEngine(scenario.db, [scenario.fd])
    print("conflict hypergraph:", hippo.hypergraph.summary())

    print("\n-- Query A: certain (id, city) facts (union over statuses) --")
    print(CITY_CERTAIN_QUERY)
    consistent = hippo.consistent_answers(CITY_CERTAIN_QUERY)
    cleaned = hippo.cleaned_answers(CITY_CERTAIN_QUERY)
    raw = hippo.raw_answers(CITY_CERTAIN_QUERY)
    print(f"  raw SQL answers:               {len(raw.rows):5d}  (may be wrong)")
    print(f"  after removing conflicts:      {len(cleaned.rows):5d}")
    print(f"  consistent answers (Hippo):    {len(consistent.rows):5d}")
    recovered = consistent.as_set() - cleaned.as_set()
    print(
        f"  -> CQA recovered {len(recovered)} certain city facts about"
        " disputed customers that cleaning threw away, e.g.:"
    )
    for row in sorted(recovered)[:5]:
        print("     ", row)

    print("\n-- Query B: certainly-gold customers (selection) --")
    print(GOLD_QUERY)
    consistent_b = hippo.consistent_answers(GOLD_QUERY)
    cleaned_b = hippo.cleaned_answers(GOLD_QUERY)
    print(f"  after removing conflicts:      {len(cleaned_b.rows):5d}")
    print(f"  consistent answers (Hippo):    {len(consistent_b.rows):5d}")
    print(
        "  (equal here: a disputed customer is never *certainly* gold,"
        " so for this monotone query cleaning happens to coincide)"
    )

    assert cleaned.as_set() <= consistent.as_set() <= raw.as_set()
    print("\ninvariant checked: cleaned <= consistent <= raw answers")


if __name__ == "__main__":
    main()
