"""Restricted foreign keys, possible answers and repair counting.

Walks the extension features in one scenario: an orders database whose
integration broke both its key FD and its referential integrity.  Shows

* restricted foreign keys (the paper's named future work) -- dangling
  orders become deterministic deletions in every repair;
* the certain/possible bracket around the inconsistent data;
* exact repair counting without enumeration (conflict components).

Run:  python examples/referential_integrity.py
"""

from repro import Database, HippoEngine
from repro.constraints import ForeignKeyConstraint, FunctionalDependency
from repro.repairs import count_repairs_exact


def main() -> None:
    db = Database()
    db.execute("CREATE TABLE customer (id INTEGER, city TEXT, PRIMARY KEY (id))")
    db.execute(
        "CREATE TABLE orders (oid INTEGER, customer_id INTEGER, total INTEGER,"
        " PRIMARY KEY (oid))"
    )
    db.execute(
        "INSERT INTO customer VALUES (1, 'buffalo'), (2, 'cracow'), (3, 'delft')"
    )
    db.execute(
        "INSERT INTO orders VALUES"
        " (10, 1, 100),"
        " (11, 2, 50),  (11, 2, 65),"   # disputed total for order 11
        " (12, 9, 75),"                 # references a customer that is gone
        " (13, 3, 20),  (13, 3, 20)"    # harmless exact duplicate
    )

    constraints = [
        FunctionalDependency("orders", ["oid"], ["customer_id", "total"]),
        ForeignKeyConstraint("orders", ["customer_id"], "customer", ["id"]),
    ]
    hippo = HippoEngine(db, constraints)
    print("constraints:")
    for constraint in constraints:
        print("  ", constraint)
    print("hypergraph:", hippo.hypergraph.summary())

    count = count_repairs_exact(hippo.hypergraph)
    print(
        f"repairs: {count.total} "
        f"(factors {list(count.component_counts)} over"
        f" {count.components} conflict components)"
    )

    query = (
        "SELECT o.oid, o.customer_id, o.total, c.city FROM orders o, customer c"
        " WHERE o.customer_id = c.id"
    )
    print(f"\nquery: {query}")
    certain = hippo.consistent_answers(query)
    possible = hippo.possible_answers(query)
    print("certain in every repair:")
    for row in certain:
        print("   ", row)
    print("additionally possible in some repair:")
    for row in sorted(possible.as_set() - certain.as_set()):
        print("   ", row)
    print(
        "\nnote: the dangling order 12 appears in neither set -- its"
        "\ndeletion is forced in every repair (a singleton hyperedge),"
        "\nwhile order 11's two totals are each possible but not certain."
    )

    report = hippo.explain_candidate(query, (11, 2, 50, "cracow"))
    print("\nwhy is (11, 2, 50, cracow) not certain?")
    print("  a repair excluding", report["falsifying_repair_excludes"], "falsifies it")


if __name__ == "__main__":
    main()
