"""Quickstart: consistent query answering in five minutes.

Builds a small inconsistent employee database, walks through every stage
of Hippo's pipeline (the paper's Figure 1) and contrasts the answer set
with the naive alternatives.

Run:  python examples/quickstart.py
"""

from repro import Database, HippoEngine
from repro.constraints import FunctionalDependency
from repro.repairs import all_repairs
from repro.ra import tree_to_sql


def main() -> None:
    # -- DB: an inconsistent instance -----------------------------------
    # Two sources disagree about ann's salary and about carol's department.
    db = Database()
    db.execute(
        "CREATE TABLE emp (name TEXT, dept TEXT, salary INTEGER,"
        " PRIMARY KEY (name))"
    )
    db.execute(
        "INSERT INTO emp VALUES"
        " ('ann',   'cs', 10000),"
        " ('ann',   'cs', 12000),"   # conflicting salary
        " ('bob',   'ee', 20000),"
        " ('carol', 'cs', 15000),"
        " ('carol', 'me', 15000),"   # conflicting department
        " ('dave',  'ee', 18000)"
    )

    # -- IC: the key FD both sources individually satisfied -------------
    fd = FunctionalDependency("emp", ["name"], ["dept", "salary"])
    print("Integrity constraint:", fd)

    # -- Conflict Detection -> Conflict Hypergraph ----------------------
    hippo = HippoEngine(db, [fd])
    print("\n[Conflict Detection]")
    print("  hypergraph:", hippo.hypergraph.summary())
    print("  repairs of this instance:", len(all_repairs(db, hippo.hypergraph)))

    # -- Query -> Enveloping -> Evaluation -> Prover -> Answer Set ------
    query = "SELECT * FROM emp WHERE salary >= 12000"
    print(f"\n[Query] {query}")
    tree, _ = hippo.parse(query)
    print("  envelope handed to the RDBMS:", tree_to_sql(tree))

    answers = hippo.consistent_answers(query)
    print("\n[Answer Set] tuples true in EVERY repair:")
    for row in answers:
        print("   ", row)
    print(
        "  pipeline: {candidates} candidates, {skipped_by_core} certain via"
        " the core, prover checked {checked}".format(
            candidates=answers.stats["candidates"],
            skipped_by_core=answers.stats["skipped_by_core"],
            checked=answers.stats["prover"].candidates_checked,
        )
    )

    # -- contrast with the naive approaches -----------------------------
    print("\n[Contrast]")
    print("  raw SQL (ignores inconsistency): ", hippo.raw_answers(query).rows)
    print("  drop conflicting tuples first:   ", hippo.cleaned_answers(query).rows)
    print("  consistent answers (Hippo):      ", answers.rows)

    # Indefinite disjunctive information: ann earns 10000 or 12000 -- no
    # single value is certain, but the union query recovers the certainty
    # that ann works in cs with a salary in {10000, 12000}.
    union_query = (
        "SELECT name, dept FROM emp WHERE salary = 10000"
        " UNION SELECT name, dept FROM emp WHERE salary = 12000"
    )
    print(f"\n[Union extracts indefinite information] {union_query}")
    print("  consistent answers:", hippo.consistent_answers(union_query).rows)
    print("  after dropping conflicts:", hippo.cleaned_answers(union_query).rows)


if __name__ == "__main__":
    main()
