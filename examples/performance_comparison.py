"""Demonstration part 3 (interactive form): Hippo vs rewriting vs raw SQL.

    "we will compare the running times of our approach and the query
    rewriting approach, showing that our approach is more efficient.  For
    every query being tested, we will also measure the execution time of
    this query by the RDBMS backend ...  This will allow us to conclude
    that the time overhead of our approach is acceptable."

This script prints the comparison as tables (the full parameter sweeps
live in benchmarks/; this is the demo-sized version).

Run:  python examples/performance_comparison.py
"""

import time

from repro import Database, HippoEngine
from repro.rewriting import RewritingEngine
from repro.workloads import generate_key_conflict_table, selection_query


def timed(callable_, repeat: int = 3) -> float:
    best = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def main() -> None:
    print("workload: R(a, b0), key FD a -> b0, 5% of tuples in conflict")
    print("query:    SELECT * FROM r WHERE b0 < 500000   (~50% selectivity)")
    header = (
        f"{'N':>7s} {'raw SQL':>10s} {'Hippo':>10s} {'rewriting':>10s}"
        f" {'Hippo/raw':>10s} {'rewr/Hippo':>10s}"
    )
    print("\n" + header)
    for n_tuples in (500, 1000, 2000, 4000, 8000):
        db = Database()
        table = generate_key_conflict_table(db, "r", n_tuples, 0.05, seed=1)
        hippo = HippoEngine(db, [table.fd])
        rewriting = RewritingEngine(db, [table.fd])
        query = selection_query("r").sql

        raw_seconds = timed(lambda: hippo.raw_answers(query))
        hippo_seconds = timed(lambda: hippo.consistent_answers(query))
        rewriting_seconds = timed(lambda: rewriting.consistent_answers(query))

        hippo_answers = hippo.consistent_answers(query).as_set()
        rewriting_answers = rewriting.consistent_answers(query).as_set()
        assert hippo_answers == rewriting_answers, "approaches disagree!"

        print(
            f"{n_tuples:7d} {raw_seconds * 1e3:9.2f}ms"
            f" {hippo_seconds * 1e3:9.2f}ms {rewriting_seconds * 1e3:9.2f}ms"
            f" {hippo_seconds / raw_seconds:9.2f}x"
            f" {rewriting_seconds / hippo_seconds:9.2f}x"
        )

    print("\nvarying conflict rate at N = 4000:")
    print(f"{'conflict%':>9s} {'raw SQL':>10s} {'Hippo':>10s} {'rewriting':>10s}")
    for fraction in (0.0, 0.02, 0.05, 0.10, 0.20, 0.30):
        db = Database()
        table = generate_key_conflict_table(db, "r", 4000, fraction, seed=2)
        hippo = HippoEngine(db, [table.fd])
        rewriting = RewritingEngine(db, [table.fd])
        query = selection_query("r").sql
        raw_seconds = timed(lambda: hippo.raw_answers(query))
        hippo_seconds = timed(lambda: hippo.consistent_answers(query))
        rewriting_seconds = timed(lambda: rewriting.consistent_answers(query))
        print(
            f"{fraction * 100:8.0f}% {raw_seconds * 1e3:9.2f}ms"
            f" {hippo_seconds * 1e3:9.2f}ms {rewriting_seconds * 1e3:9.2f}ms"
        )

    print(
        "\nshape to observe (matching the paper's claims): Hippo stays a"
        "\nsmall constant factor above raw SQL and beats rewriting, whose"
        "\ncorrelated NOT EXISTS work grows with the table regardless of"
        "\nhow few conflicts exist."
    )


if __name__ == "__main__":
    main()
