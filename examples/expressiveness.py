"""Demonstration part 2: expressive power of queries and constraints.

    "we will show the advantages of our method over competing approaches
    by demonstrating the expressive power of supported queries and
    integrity constraints"  (Hippo, EDBT 2004)

Runs a suite of queries spanning Hippo's SJUD class, plus constraint
variations (FD, exclusion, a ternary denial constraint), against three
approaches -- Hippo, PODS'99 query rewriting, and remove-conflicts
cleaning -- and prints a support/correctness matrix.  Ground truth comes
from exhaustive repair enumeration (the instance is kept small on
purpose).

Run:  python examples/expressiveness.py
"""

from repro import Database, HippoEngine
from repro.constraints import (
    DenialConstraint,
    ConstraintAtom,
    ExclusionConstraint,
    FunctionalDependency,
)
from repro.errors import RewritingError, UnsupportedQueryError
from repro.repairs import ground_truth_consistent_answers
from repro.rewriting import RewritingEngine
from repro.sql.parser import parse_expression


def build_database() -> Database:
    db = Database()
    db.execute("CREATE TABLE emp (name TEXT, dept TEXT, salary INTEGER)")
    db.execute("CREATE TABLE mgr (name TEXT, dept TEXT)")
    db.execute("CREATE TABLE retired (name TEXT, dept TEXT)")
    db.execute(
        "INSERT INTO emp VALUES"
        " ('ann','cs',10), ('ann','cs',12), ('bob','ee',20),"
        " ('carol','cs',15), ('carol','me',15), ('dave','ee',18),"
        " ('erin','cs',11)"
    )
    db.execute("INSERT INTO mgr VALUES ('bob','ee'), ('carol','cs'), ('frank','cs')")
    db.execute("INSERT INTO retired VALUES ('dave','ee'), ('gina','me')")
    db.execute("CREATE TABLE former (name TEXT, dept TEXT, salary INTEGER)")
    db.execute(
        "INSERT INTO former VALUES ('bob','ee',20), ('erin','cs',11), ('zed','cs',9)"
    )
    return db


CONSTRAINT_SETS = {
    "key FD": [FunctionalDependency("emp", ["name"], ["dept", "salary"])],
    "FD + exclusion": [
        FunctionalDependency("emp", ["name"], ["dept", "salary"]),
        ExclusionConstraint("emp", "retired", [("name", "name")]),
    ],
    "ternary denial": [
        FunctionalDependency("emp", ["name"], ["dept", "salary"]),
        # No department may simultaneously hold an employee earning < 12,
        # one earning > 17 and a manager (a made-up 3-tuple policy).
        DenialConstraint(
            "no-spread-with-mgr",
            (
                ConstraintAtom("e1", "emp"),
                ConstraintAtom("e2", "emp"),
                ConstraintAtom("m", "mgr"),
            ),
            parse_expression(
                "e1.dept = e2.dept AND e1.dept = m.dept"
                " AND e1.salary < 12 AND e2.salary > 17"
            ),
        ),
    ],
}

QUERIES = {
    "S    selection": "SELECT * FROM emp WHERE salary >= 12",
    "SJ   join": (
        "SELECT e.name, e.dept, e.salary, m.name FROM emp e, mgr m"
        " WHERE e.dept = m.dept AND e.name <> m.name"
    ),
    "SJU  union": (
        "SELECT name, dept FROM emp WHERE salary = 10"
        " UNION SELECT name, dept FROM emp WHERE salary = 12"
    ),
    "SJUD difference": "SELECT * FROM emp EXCEPT SELECT * FROM former",
}


def evaluate_cell(approach: str, engine, query: str, truth) -> str:
    try:
        if approach == "hippo":
            answers = engine.consistent_answers(query).as_set()
        elif approach == "rewriting":
            answers = engine.consistent_answers(query).as_set()
        else:
            answers = engine.cleaned_answers(query).as_set()
    except (RewritingError, UnsupportedQueryError):
        return "unsupported"
    if answers == truth:
        return "exact"
    if answers < truth:
        return f"subset (-{len(truth - answers)})"
    return "WRONG"


def main() -> None:
    for constraint_label, constraints in CONSTRAINT_SETS.items():
        db = build_database()
        hippo = HippoEngine(db, constraints)
        rewriting = RewritingEngine(db, constraints)
        print(f"\n=== constraints: {constraint_label} ===")
        print(f"{'query':22s} {'Hippo':12s} {'rewriting':14s} {'cleaning':12s}")
        for label, sql in QUERIES.items():
            tree, _ = hippo.parse(sql)
            truth = ground_truth_consistent_answers(db, hippo.hypergraph, tree)
            hippo_cell = evaluate_cell("hippo", hippo, sql, truth)
            rewriting_cell = evaluate_cell("rewriting", rewriting, sql, truth)
            cleaning_cell = evaluate_cell("cleaning", hippo, sql, truth)
            print(
                f"{label:22s} {hippo_cell:12s} {rewriting_cell:14s}"
                f" {cleaning_cell:12s}"
            )
    print(
        "\nReading: Hippo answers every SJUD query exactly under every"
        "\ndenial-constraint set; rewriting cannot express unions and"
        "\nrejects non-binary constraints; cleaning silently loses answers"
        "\n(and is only accidentally exact when no conflict meets the query)."
    )


if __name__ == "__main__":
    main()
