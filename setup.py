"""Setup shim: enables legacy editable installs (no `wheel` available offline).

All project metadata lives in ``pyproject.toml``; this file only keeps
``pip install -e . --no-build-isolation`` working on offline setups
whose setuptools cannot build PEP 660 editable wheels.
"""

from setuptools import setup

setup()
