"""Tests for rendering SJUD trees back to SQL."""

import pytest

from repro.ra import (
    Atom,
    CatalogSchemaProvider,
    Difference,
    OutputColumn,
    SJUDCore,
    Union_,
    from_sql_query,
    tree_to_query,
    tree_to_sql,
)
from repro.sql import ast
from repro.sql.parser import parse_query


def tree_of(db, text):
    return from_sql_query(parse_query(text), CatalogSchemaProvider(db.catalog))


class TestRendering:
    def test_core_renders_distinct_select(self, two_table_db):
        tree = tree_of(two_table_db, "SELECT * FROM r WHERE a > 1")
        sql = tree_to_sql(tree)
        assert sql.startswith("SELECT DISTINCT")
        assert "FROM r" in sql and "WHERE" in sql

    def test_alias_rendered_only_when_needed(self, two_table_db):
        tree = tree_of(two_table_db, "SELECT x.a, x.b FROM r x WHERE x.b = 1")
        sql = tree_to_sql(tree)
        assert "r AS x" in sql
        plain = tree_of(two_table_db, "SELECT a, b FROM r")
        assert " AS r" not in tree_to_sql(plain).split("FROM")[1]

    def test_union_and_difference_structure(self, two_table_db):
        tree = Union_(
            tree_of(two_table_db, "SELECT * FROM r"),
            tree_of(two_table_db, "SELECT * FROM s"),
        )
        assert "UNION" in tree_to_sql(tree)
        diff = Difference(tree, tree_of(two_table_db, "SELECT * FROM s"))
        assert "EXCEPT" in tree_to_sql(diff)

    def test_constant_output_rendered(self, two_table_db):
        core = SJUDCore(
            (Atom("t", "r"),),
            None,
            (
                OutputColumn("a", ast.ColumnRef("t", "a")),
                OutputColumn("b", ast.ColumnRef("t", "b")),
                OutputColumn("tag", ast.Literal("x")),
            ),
        )
        sql = tree_to_sql(core)
        assert "'x' AS tag" in sql

    def test_query_ast_shape(self, two_table_db):
        tree = tree_of(two_table_db, "SELECT * FROM r UNION SELECT * FROM s")
        query = tree_to_query(tree)
        assert isinstance(query, ast.Query)
        assert isinstance(query.body, ast.SetOperation)

    def test_unknown_node_rejected(self):
        with pytest.raises(TypeError):
            tree_to_sql("not a tree")  # type: ignore[arg-type]


class TestRoundTrip:
    QUERIES = [
        "SELECT * FROM r WHERE a >= 2 AND b < 3",
        "SELECT x.a, x.b, y.b FROM r x, s y WHERE x.a = y.a",
        "SELECT * FROM r UNION SELECT * FROM s",
        "SELECT * FROM r EXCEPT SELECT * FROM s WHERE a = 1",
        "SELECT a, b FROM r WHERE b = 2 UNION SELECT a, b FROM s WHERE b = 3",
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_semantics_preserved(self, two_table_db, text):
        from repro.ra import evaluate_tree

        tree = tree_of(two_table_db, text)
        rendered = tree_to_sql(tree)
        reparsed = tree_of(two_table_db, rendered)
        assert evaluate_tree(tree, two_table_db) == evaluate_tree(
            reparsed, two_table_db
        )

    @pytest.mark.parametrize("text", QUERIES)
    def test_engine_accepts_rendered_sql(self, two_table_db, text):
        tree = tree_of(two_table_db, text)
        two_table_db.query(tree_to_sql(tree))  # must parse and run
