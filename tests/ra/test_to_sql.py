"""Tests for rendering SJUD trees back to SQL.

Covers the display form (``tree_to_sql``), the parameterized pushdown
form (``render_tree`` / ``render_query`` with every parameter style),
the residual-join form conflict detection pushes to SQL backends, and
the quoting/DDL helpers -- plus a round-trip suite asserting rendered
SQL for every SJUD node shape re-parses and re-compiles to an
equivalent tree.
"""

import pytest

from repro.errors import AlgebraError
from repro.ra import (
    Atom,
    CatalogSchemaProvider,
    Difference,
    OutputColumn,
    SJUDCore,
    Union_,
    evaluate_tree,
    from_sql_query,
    render_core_tids,
    render_query,
    render_tree,
    tree_to_query,
    tree_to_sql,
)
from repro.ra.to_sql import (
    PARAM_STYLES,
    create_index_sql,
    create_table_sql,
    drop_table_sql,
    insert_sql,
    quote_identifier,
)
from repro.sql import ast
from repro.sql.parser import parse_query


def tree_of(db, text):
    return from_sql_query(parse_query(text), CatalogSchemaProvider(db.catalog))


class TestRendering:
    def test_core_renders_distinct_select(self, two_table_db):
        tree = tree_of(two_table_db, "SELECT * FROM r WHERE a > 1")
        sql = tree_to_sql(tree)
        assert sql.startswith("SELECT DISTINCT")
        assert "FROM r" in sql and "WHERE" in sql

    def test_alias_rendered_only_when_needed(self, two_table_db):
        tree = tree_of(two_table_db, "SELECT x.a, x.b FROM r x WHERE x.b = 1")
        sql = tree_to_sql(tree)
        assert "r AS x" in sql
        plain = tree_of(two_table_db, "SELECT a, b FROM r")
        assert " AS r" not in tree_to_sql(plain).split("FROM")[1]

    def test_union_and_difference_structure(self, two_table_db):
        tree = Union_(
            tree_of(two_table_db, "SELECT * FROM r"),
            tree_of(two_table_db, "SELECT * FROM s"),
        )
        assert "UNION" in tree_to_sql(tree)
        diff = Difference(tree, tree_of(two_table_db, "SELECT * FROM s"))
        assert "EXCEPT" in tree_to_sql(diff)

    def test_constant_output_rendered(self, two_table_db):
        core = SJUDCore(
            (Atom("t", "r"),),
            None,
            (
                OutputColumn("a", ast.ColumnRef("t", "a")),
                OutputColumn("b", ast.ColumnRef("t", "b")),
                OutputColumn("tag", ast.Literal("x")),
            ),
        )
        sql = tree_to_sql(core)
        assert "'x' AS tag" in sql

    def test_query_ast_shape(self, two_table_db):
        tree = tree_of(two_table_db, "SELECT * FROM r UNION SELECT * FROM s")
        query = tree_to_query(tree)
        assert isinstance(query, ast.Query)
        assert isinstance(query.body, ast.SetOperation)

    def test_unknown_node_rejected(self):
        with pytest.raises(TypeError):
            tree_to_sql("not a tree")  # type: ignore[arg-type]


#: One query per SJUD node shape: every comparison operator, the boolean
#: connectives, IS [NOT] NULL, [NOT] IN, [NOT] BETWEEN, joins, unions and
#: differences (LIKE needs a text column and lives in TestLikeShape).
NODE_SHAPE_QUERIES = [
    "SELECT * FROM r WHERE a = 1",
    "SELECT * FROM r WHERE a <> 1",
    "SELECT * FROM r WHERE a < 3",
    "SELECT * FROM r WHERE a <= 2",
    "SELECT * FROM r WHERE b > 4",
    "SELECT * FROM r WHERE b >= 5",
    "SELECT * FROM r WHERE a >= 2 AND b < 6",
    "SELECT * FROM r WHERE a = 1 OR b = 4",
    "SELECT * FROM r WHERE NOT a = 1",
    "SELECT * FROM r WHERE a IS NULL",
    "SELECT * FROM r WHERE b IS NOT NULL",
    "SELECT * FROM r WHERE a IN (1, 2, 4)",
    "SELECT * FROM r WHERE a NOT IN (5, 6)",
    "SELECT * FROM r WHERE a BETWEEN 1 AND 3",
    "SELECT * FROM r WHERE b NOT BETWEEN 2 AND 9",
    "SELECT x.a, x.b, y.a, y.b FROM r x, s y WHERE x.a = y.a AND x.b <> y.b",
    "SELECT * FROM r UNION SELECT * FROM s",
    "SELECT * FROM r EXCEPT SELECT * FROM s WHERE a = 1",
    "SELECT a, b FROM r WHERE b = 2 UNION SELECT a, b FROM s WHERE b = 3",
    "SELECT * FROM r WHERE a IN (1, 9) UNION SELECT * FROM s"
    " EXCEPT SELECT * FROM s WHERE a BETWEEN 3 AND 5",
]


class TestRoundTrip:
    QUERIES = [
        "SELECT * FROM r WHERE a >= 2 AND b < 3",
        "SELECT x.a, x.b, y.b FROM r x, s y WHERE x.a = y.a",
        "SELECT * FROM r UNION SELECT * FROM s",
        "SELECT * FROM r EXCEPT SELECT * FROM s WHERE a = 1",
        "SELECT a, b FROM r WHERE b = 2 UNION SELECT a, b FROM s WHERE b = 3",
    ] + NODE_SHAPE_QUERIES

    @pytest.mark.parametrize("text", QUERIES)
    def test_semantics_preserved(self, two_table_db, text):
        tree = tree_of(two_table_db, text)
        rendered = tree_to_sql(tree)
        reparsed = tree_of(two_table_db, rendered)
        assert evaluate_tree(tree, two_table_db) == evaluate_tree(
            reparsed, two_table_db
        )

    @pytest.mark.parametrize("text", QUERIES)
    def test_recompiles_to_equivalent_tree(self, two_table_db, text):
        """Rendering is a fixed point: rendered SQL re-compiles to a tree
        whose own rendering is identical."""
        tree = tree_of(two_table_db, text)
        rendered = tree_to_sql(tree)
        assert tree_to_sql(tree_of(two_table_db, rendered)) == rendered

    @pytest.mark.parametrize("text", QUERIES)
    def test_engine_accepts_rendered_sql(self, two_table_db, text):
        tree = tree_of(two_table_db, text)
        two_table_db.query(tree_to_sql(tree))  # must parse and run


class TestLikeShape:
    @pytest.fixture
    def text_db(self, db):
        db.execute("CREATE TABLE t (name TEXT, tag TEXT)")
        db.execute(
            "INSERT INTO t VALUES ('alpha','x'), ('beta','y'), ('Alto','x')"
        )
        return db

    @pytest.mark.parametrize(
        "text",
        [
            "SELECT * FROM t WHERE name LIKE 'al%'",
            "SELECT * FROM t WHERE name NOT LIKE '%a'",
            "SELECT * FROM t WHERE name LIKE 'a_t%' AND tag = 'x'",
        ],
    )
    def test_like_round_trips(self, text_db, text):
        tree = tree_of(text_db, text)
        rendered = tree_to_sql(tree)
        reparsed = tree_of(text_db, rendered)
        assert evaluate_tree(tree, text_db) == evaluate_tree(reparsed, text_db)
        assert tree_to_sql(reparsed) == rendered

    def test_like_pattern_is_parameterized(self, text_db):
        tree = tree_of(text_db, "SELECT * FROM t WHERE name LIKE 'al%'")
        rendered = render_tree(tree)
        assert "al%" not in rendered.text
        assert rendered.params == ("al%",)


class TestParameterized:
    @pytest.mark.parametrize("text", TestRoundTrip.QUERIES)
    def test_inline_matches_display_form(self, two_table_db, text):
        tree = tree_of(two_table_db, text)
        for style in PARAM_STYLES:
            rendered = render_tree(tree, style)
            assert rendered.style == style
            assert rendered.inline() == tree_to_sql(tree)

    @pytest.mark.parametrize("text", TestRoundTrip.QUERIES)
    def test_inline_reparses_equivalently(self, two_table_db, text):
        tree = tree_of(two_table_db, text)
        reparsed = tree_of(two_table_db, render_tree(tree).inline())
        assert evaluate_tree(tree, two_table_db) == evaluate_tree(
            reparsed, two_table_db
        )

    def test_placeholders_match_param_count(self, two_table_db):
        tree = tree_of(
            two_table_db,
            "SELECT * FROM r WHERE a IN (1, 2) AND b BETWEEN 3 AND 4 OR a = 5",
        )
        rendered = render_tree(tree)
        assert rendered.text.count("?") == len(rendered.params) == 5

    def test_params_follow_text_order(self, two_table_db):
        tree = tree_of(
            two_table_db,
            "SELECT * FROM r WHERE b BETWEEN 30 AND 40 AND a IN (10, 20)",
        )
        rendered = render_tree(tree)
        assert rendered.params == (30, 40, 10, 20)

    def test_numeric_and_named_placeholders(self, two_table_db):
        tree = tree_of(two_table_db, "SELECT * FROM r WHERE a = 1 AND b = 2")
        numeric = render_tree(tree, "numeric")
        assert ":1" in numeric.text and ":2" in numeric.text
        named = render_tree(tree, "named")
        assert ":p0" in named.text and ":p1" in named.text
        assert named.named_params == {"p0": 1, "p1": 2}

    def test_no_literals_means_no_params(self, two_table_db):
        rendered = render_tree(tree_of(two_table_db, "SELECT * FROM r"))
        assert rendered.params == ()
        assert "?" not in rendered.text

    def test_unknown_style_rejected(self, two_table_db):
        tree = tree_of(two_table_db, "SELECT * FROM r")
        with pytest.raises(AlgebraError, match="parameter style"):
            render_tree(tree, "pyformat")
        with pytest.raises(AlgebraError, match="parameter style"):
            render_query(tree_to_query(tree), "pyformat")

    def test_render_query_accepts_plain_ast(self, two_table_db):
        query = parse_query("SELECT a FROM r WHERE a > 7")
        rendered = render_query(query)
        assert rendered.params == (7,)
        assert "?" in rendered.text


class TestResidualJoinForm:
    def core(self):
        condition = ast.BinaryOp(
            "AND",
            ast.BinaryOp(
                "=",
                ast.ColumnRef("t0", "a"),
                ast.ColumnRef("t1", "a"),
            ),
            ast.BinaryOp(
                "<>",
                ast.ColumnRef("t0", "b"),
                ast.ColumnRef("t1", "b"),
            ),
        )
        return SJUDCore((Atom("t0", "r"), Atom("t1", "r")), condition, ())

    def test_one_tid_per_atom_in_order(self):
        rendered = render_core_tids(self.core(), "rowid")
        assert "t0.rowid AS tid_0" in rendered.text
        assert "t1.rowid AS tid_1" in rendered.text
        assert rendered.text.index("tid_0") < rendered.text.index("tid_1")
        assert rendered.params == ()

    def test_custom_tid_column(self):
        rendered = render_core_tids(self.core(), "_tid")
        assert "t0._tid AS tid_0" in rendered.text
        assert "rowid" not in rendered.text

    def test_literals_still_parameterized(self):
        core = SJUDCore(
            (Atom("t0", "r"),),
            ast.BinaryOp(">", ast.ColumnRef("t0", "b"), ast.Literal(5)),
            (),
        )
        rendered = render_core_tids(core, "rowid")
        assert rendered.params == (5,)
        assert "5" not in rendered.text


class TestQuotingHelpers:
    def test_create_table_quotes_identifiers(self):
        sql = create_table_sql("order", [("from", "INTEGER"), ("b", "TEXT")])
        assert quote_identifier("order") in sql
        assert quote_identifier("from") in sql
        assert "INTEGER" in sql and "TEXT" in sql

    def test_drop_table_is_idempotent_form(self):
        assert drop_table_sql("r").startswith("DROP TABLE IF EXISTS")

    def test_create_index_names_all_columns(self):
        sql = create_index_sql("idx_r_0", "r", ["a", "b"])
        assert "CREATE INDEX" in sql
        assert quote_identifier("a") in sql and quote_identifier("b") in sql

    def test_insert_styles(self):
        assert insert_sql("r", 2).endswith("VALUES (?, ?)")
        assert insert_sql("r", 2, "numeric").endswith("VALUES (:1, :2)")
        assert insert_sql("r", 2, "named").endswith("VALUES (:p0, :p1)")

    def test_insert_named_columns(self):
        sql = insert_sql("r", 3, columns=["rowid", "a", "b"])
        assert "rowid" in sql and sql.count("?") == 3

    def test_insert_validates(self):
        with pytest.raises(AlgebraError, match="arity"):
            insert_sql("r", 2, columns=["a"])
        with pytest.raises(AlgebraError, match="parameter style"):
            insert_sql("r", 2, "pyformat")
