"""Tests for the SJUD query class: conversion, validation, reconstruction."""

import pytest

from repro.errors import AlgebraError, UnsupportedQueryError
from repro.ra import (
    CatalogSchemaProvider,
    Difference,
    SJUDCore,
    Union_,
    cores_of,
    from_sql_query,
    output_names_of,
    reconstruction_map,
)
from repro.sql.parser import parse_query


@pytest.fixture
def schema(two_table_db):
    return CatalogSchemaProvider(two_table_db.catalog)


def convert(text, schema):
    return from_sql_query(parse_query(text), schema)


class TestConversion:
    def test_simple_selection(self, schema):
        tree = convert("SELECT * FROM r WHERE a > 1", schema)
        assert isinstance(tree, SJUDCore)
        assert [a.relation for a in tree.atoms] == ["r"]
        assert tree.output_names == ("a", "b")

    def test_join_with_aliases(self, schema):
        tree = convert(
            "SELECT x.a, x.b, y.b FROM r x, s y WHERE x.a = y.a", schema
        )
        assert [a.alias for a in tree.atoms] == ["x", "y"]

    def test_explicit_join_folds_on_condition(self, schema):
        tree = convert("SELECT r.a, r.b, s.b FROM r JOIN s ON r.a = s.a", schema)
        assert isinstance(tree, SJUDCore)
        assert tree.condition is not None

    def test_union(self, schema):
        tree = convert("SELECT * FROM r UNION SELECT * FROM s", schema)
        assert isinstance(tree, Union_)
        assert len(cores_of(tree)) == 2

    def test_except(self, schema):
        tree = convert("SELECT * FROM r EXCEPT SELECT * FROM s", schema)
        assert isinstance(tree, Difference)

    def test_intersect_rewritten_as_double_difference(self, schema):
        tree = convert("SELECT * FROM r INTERSECT SELECT * FROM s", schema)
        assert isinstance(tree, Difference)
        assert isinstance(tree.right, Difference)

    def test_output_names_from_left_branch(self, schema):
        tree = convert(
            "SELECT a AS x, b AS y FROM r UNION SELECT * FROM s", schema
        )
        assert output_names_of(tree) == ("x", "y")

    def test_constant_output(self, schema):
        tree = convert("SELECT a, b, 1 AS tag FROM r", schema)
        assert tree.output_names == ("a", "b", "tag")

    def test_unqualified_refs_resolved(self, schema):
        tree = convert("SELECT a, b FROM r WHERE a > 0", schema)
        source = tree.outputs[0].source
        assert source.table == "r"


class TestRejections:
    def test_aggregation_rejected(self, schema):
        with pytest.raises(UnsupportedQueryError, match="SJUD"):
            convert("SELECT a, b FROM r GROUP BY a, b", schema)

    def test_limit_rejected(self, schema):
        with pytest.raises(UnsupportedQueryError, match="LIMIT"):
            convert("SELECT * FROM r LIMIT 3", schema)

    def test_left_join_rejected(self, schema):
        with pytest.raises(UnsupportedQueryError, match="LEFT OUTER"):
            convert("SELECT * FROM r LEFT JOIN s ON r.a = s.a", schema)

    def test_derived_table_rejected(self, schema):
        with pytest.raises(UnsupportedQueryError, match="derived"):
            convert("SELECT * FROM (SELECT * FROM r) AS d", schema)

    def test_subquery_in_where_rejected(self, schema):
        with pytest.raises(UnsupportedQueryError, match="subqueries"):
            convert(
                "SELECT * FROM r WHERE EXISTS (SELECT * FROM s)", schema
            )

    def test_computed_select_item_rejected(self, schema):
        with pytest.raises(UnsupportedQueryError, match="computed"):
            convert("SELECT a + 1, b FROM r", schema)

    def test_except_all_rejected(self, schema):
        with pytest.raises(UnsupportedQueryError, match="bag"):
            convert("SELECT * FROM r EXCEPT ALL SELECT * FROM s", schema)

    def test_union_arity_mismatch(self, schema):
        with pytest.raises(AlgebraError, match="arities"):
            convert("SELECT a, b FROM r UNION SELECT a, a, b FROM s", schema)

    def test_duplicate_alias(self, schema):
        with pytest.raises(AlgebraError, match="duplicate"):
            convert("SELECT * FROM r x, s x", schema)

    def test_unknown_column(self, schema):
        with pytest.raises(AlgebraError, match="unknown column"):
            convert("SELECT zz FROM r", schema)

    def test_ambiguous_column(self, schema):
        with pytest.raises(AlgebraError, match="ambiguous"):
            convert("SELECT a, r.b, s.b FROM r, s WHERE r.a = s.a", schema)

    def test_function_in_condition_rejected(self, schema):
        with pytest.raises(UnsupportedQueryError, match="quantifier-free"):
            convert("SELECT * FROM r WHERE ABS(a) > 1", schema)


class TestProjectionRestriction:
    """Footnote 4: projections must not introduce existential quantifiers."""

    def test_dropping_free_attribute_rejected(self, schema):
        with pytest.raises(UnsupportedQueryError, match="existential"):
            convert("SELECT a FROM r", schema)

    def test_retained_columns_accepted(self, schema):
        convert("SELECT a, b FROM r", schema)  # no error

    def test_constant_pins_dropped_column(self, schema):
        tree = convert("SELECT a FROM r WHERE b = 5", schema)
        recon = reconstruction_map(tree, schema)
        assert recon["r"] == [("slot", 0), ("const", 5)]

    def test_equality_to_retained_column_pins(self, schema):
        tree = convert(
            "SELECT r.a, r.b FROM r, s WHERE s.a = r.a AND s.b = r.b", schema
        )
        recon = reconstruction_map(tree, schema)
        assert recon["s"] == [("slot", 0), ("slot", 1)]

    def test_transitive_equality_chain(self, schema):
        # s.b = s.a = r.a (retained): both of s's columns are determined.
        tree = convert(
            "SELECT r.a, r.b FROM r, s WHERE s.a = r.a AND s.b = s.a", schema
        )
        recon = reconstruction_map(tree, schema)
        assert recon["s"] == [("slot", 0), ("slot", 0)]

    def test_join_without_pinning_rejected(self, schema):
        with pytest.raises(UnsupportedQueryError, match="existential"):
            convert("SELECT r.a, r.b FROM r, s WHERE s.a = r.a", schema)

    def test_disjunctive_equality_does_not_pin(self, schema):
        # b = 5 OR b = 6 does not determine b.
        with pytest.raises(UnsupportedQueryError, match="existential"):
            convert("SELECT a FROM r WHERE b = 5 OR b = 6", schema)

    def test_union_branches_validated_independently(self, schema):
        with pytest.raises(UnsupportedQueryError, match="existential"):
            convert("SELECT a, b FROM r UNION SELECT a, a FROM s", schema)

    def test_duplicated_output_column_allowed(self, schema):
        tree = convert("SELECT a, a, b FROM r", schema)
        recon = reconstruction_map(tree, schema)
        assert recon["r"][0][0] == "slot"
