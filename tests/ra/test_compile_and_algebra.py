"""Tests for SJUD compilation/evaluation and the classical algebra oracle."""

import pytest

from repro.engine.types import SQLType
from repro.errors import AlgebraError
from repro.ra import (
    CatalogSchemaProvider,
    evaluate_core,
    evaluate_tree,
    from_sql_query,
    tree_to_sql,
)
from repro.ra.algebra import (
    Difference,
    Product,
    Projection,
    Relation,
    Rename,
    Selection,
    Union,
    evaluate,
    schema_of,
    sjud_to_algebra,
)
from repro.sql import ast
from repro.sql.parser import parse_expression, parse_query


def tree_of(db, text):
    return from_sql_query(parse_query(text), CatalogSchemaProvider(db.catalog))


class TestEvaluateCore:
    def test_provenance_tids(self, two_table_db):
        tree = tree_of(two_table_db, "SELECT * FROM r WHERE a = 2")
        results = evaluate_core(tree, two_table_db)
        assert results == {(2, 5): (("r", 2),)}

    def test_join_provenance_has_both_tids(self, two_table_db):
        tree = tree_of(
            two_table_db, "SELECT r.a, r.b, s.b FROM r, s WHERE r.a = s.a"
        )
        results = evaluate_core(tree, two_table_db)
        for provenance in results.values():
            assert [relation for relation, _tid in provenance] == ["r", "s"]

    def test_restriction(self, two_table_db):
        tree = tree_of(two_table_db, "SELECT * FROM r")
        keep = frozenset({0, 1})
        rows = evaluate_core(tree, two_table_db, lambda rel: keep)
        assert set(rows) == {(1, 1), (1, 2)}

    def test_set_semantics_first_witness(self, two_table_db):
        two_table_db.execute("INSERT INTO r VALUES (1, 1)")  # duplicate value
        tree = tree_of(two_table_db, "SELECT * FROM r")
        results = evaluate_core(tree, two_table_db)
        assert results[(1, 1)] == (("r", 0),)  # first witness kept


class TestEvaluateTree:
    def test_union_difference(self, two_table_db):
        union = tree_of(two_table_db, "SELECT * FROM r UNION SELECT * FROM s")
        assert (9, 9) in evaluate_tree(union, two_table_db)
        difference = tree_of(two_table_db, "SELECT * FROM r EXCEPT SELECT * FROM s")
        assert evaluate_tree(difference, two_table_db) == {(1, 1), (1, 2), (3, 7)}

    def test_intersect_via_difference(self, two_table_db):
        tree = tree_of(two_table_db, "SELECT * FROM r INTERSECT SELECT * FROM s")
        assert evaluate_tree(tree, two_table_db) == {(2, 5), (4, 4)}

    def test_matches_engine_sql(self, two_table_db):
        text = "SELECT r.a, r.b, s.b FROM r, s WHERE r.a = s.a AND r.b < 9"
        tree = tree_of(two_table_db, text)
        engine_rows = frozenset(two_table_db.query(text).rows)
        assert evaluate_tree(tree, two_table_db) == engine_rows

    def test_roundtrip_through_sql(self, two_table_db):
        text = "SELECT * FROM r WHERE a >= 2 EXCEPT SELECT * FROM s"
        tree = tree_of(two_table_db, text)
        rendered = tree_to_sql(tree)
        tree_again = tree_of(two_table_db, rendered)
        assert evaluate_tree(tree, two_table_db) == evaluate_tree(
            tree_again, two_table_db
        )


class TestClassicalAlgebra:
    def test_schema_inference(self, two_table_db):
        expr = Product(
            Rename.prefix(Relation("r"), "x", ("a", "b")),
            Rename.prefix(Relation("s"), "y", ("a", "b")),
        )
        assert schema_of(expr, two_table_db) == ("x.a", "x.b", "y.a", "y.b")

    def test_product_requires_disjoint_attributes(self, two_table_db):
        with pytest.raises(AlgebraError, match="Rename"):
            schema_of(Product(Relation("r"), Relation("s")), two_table_db)

    def test_selection_evaluation(self, two_table_db):
        expr = Selection(Relation("r"), parse_expression("a = 1"))
        assert evaluate(expr, two_table_db) == {(1, 1), (1, 2)}

    def test_projection_with_constant(self, two_table_db):
        expr = Projection(Relation("s"), (("a", "a"), ("tag", ast.Literal("s"))))
        assert evaluate(expr, two_table_db) == {(2, "s"), (4, "s"), (9, "s")}

    def test_projection_unknown_attribute(self, two_table_db):
        with pytest.raises(AlgebraError):
            schema_of(Projection(Relation("r"), (("z", "z"),)), two_table_db)

    def test_union_difference(self, two_table_db):
        union = Union(Relation("r"), Relation("s"))
        assert (9, 9) in evaluate(union, two_table_db)
        diff = Difference(Relation("r"), Relation("s"))
        assert evaluate(diff, two_table_db) == {(1, 1), (1, 2), (3, 7)}

    def test_union_arity_check(self, db):
        db.create_table("one", [("a", SQLType.INTEGER)])
        db.create_table("two", [("a", SQLType.INTEGER), ("b", SQLType.INTEGER)])
        with pytest.raises(AlgebraError):
            schema_of(Union(Relation("one"), Relation("two")), db)

    def test_rename_unknown_attribute(self, two_table_db):
        with pytest.raises(AlgebraError):
            schema_of(Rename(Relation("r"), (("zz", "yy"),)), two_table_db)

    def test_rename_collision(self, two_table_db):
        with pytest.raises(AlgebraError, match="duplicate"):
            schema_of(Rename(Relation("r"), (("a", "b"),)), two_table_db)


SJUD_QUERIES = [
    "SELECT * FROM r WHERE a > 1",
    "SELECT x.a, x.b, y.b FROM r x, s y WHERE x.a = y.a",
    "SELECT * FROM r UNION SELECT * FROM s",
    "SELECT * FROM r EXCEPT SELECT * FROM s WHERE b > 4",
    "SELECT a, b FROM r WHERE b = 5 UNION SELECT a, b FROM s",
]


class TestCrossCheck:
    """The SJUD compiler and the naive classical algebra must agree."""

    @pytest.mark.parametrize("text", SJUD_QUERIES)
    def test_sjud_matches_algebra_oracle(self, two_table_db, text):
        tree = tree_of(two_table_db, text)
        fast = evaluate_tree(tree, two_table_db)
        oracle = evaluate(sjud_to_algebra(tree, two_table_db), two_table_db)
        assert fast == oracle
