"""Tests for restricted foreign-key constraints (the paper's future work)."""

import itertools

import pytest

from repro import Database, HippoEngine
from repro.conflicts import detect_conflicts
from repro.constraints import (
    ForeignKeyConstraint,
    FunctionalDependency,
    parse_constraint,
    topological_fk_order,
)
from repro.errors import ConstraintError
from repro.repairs import all_repairs, is_repair, satisfies_constraints


@pytest.fixture
def order_db():
    db = Database()
    db.execute("CREATE TABLE customer (id INTEGER, city TEXT)")
    db.execute("CREATE TABLE orders (oid INTEGER, customer_id INTEGER, total INTEGER)")
    db.execute("INSERT INTO customer VALUES (1, 'buffalo'), (2, 'cracow')")
    db.execute(
        "INSERT INTO orders VALUES (10, 1, 100), (11, 2, 50), (12, 9, 75)"
    )  # order 12 dangles
    return db


FK = ForeignKeyConstraint("orders", ["customer_id"], "customer", ["id"])


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConstraintError, match="length"):
            ForeignKeyConstraint("a", ["x", "y"], "b", ["z"])
        with pytest.raises(ConstraintError, match="at least one"):
            ForeignKeyConstraint("a", [], "b", [])
        with pytest.raises(ConstraintError, match="self-referencing"):
            ForeignKeyConstraint("a", ["x"], "A", ["y"])

    def test_parser(self):
        fk = parse_constraint("FK orders(customer_id) -> customer(id)")
        assert isinstance(fk, ForeignKeyConstraint)
        assert fk.columns == ("customer_id",)
        fk2 = parse_constraint("FK orders(customer_id) REFERENCES customer(id)")
        assert fk2.referenced == "customer"

    def test_topological_order(self):
        a_to_b = ForeignKeyConstraint("a", ["x"], "b", ["x"])
        b_to_c = ForeignKeyConstraint("b", ["x"], "c", ["x"])
        for permutation in itertools.permutations([a_to_b, b_to_c]):
            ordered = topological_fk_order(list(permutation))
            assert ordered == [b_to_c, a_to_b]  # parent chain first

    def test_cycle_rejected(self):
        a_to_b = ForeignKeyConstraint("a", ["x"], "b", ["x"])
        b_to_a = ForeignKeyConstraint("b", ["x"], "a", ["x"])
        with pytest.raises(ConstraintError, match="cyclic"):
            topological_fk_order([a_to_b, b_to_a])


class TestDetection:
    def test_dangling_tuple_becomes_singleton_edge(self, order_db):
        report = detect_conflicts(order_db, [FK])
        graph = report.hypergraph
        assert len(graph) == 1
        assert graph.summary()["singleton_edges"] == 1
        (edge,) = graph.edges
        (v,) = edge
        assert order_db.table("orders").get(v.tid) == (12, 9, 75)

    def test_null_key_not_a_violation(self, order_db):
        order_db.execute("INSERT INTO orders VALUES (13, NULL, 5)")
        report = detect_conflicts(order_db, [FK])
        assert len(report.hypergraph) == 1  # still only order 12

    def test_cascade_through_chain(self):
        db = Database()
        db.execute("CREATE TABLE a (k INTEGER)")
        db.execute("CREATE TABLE b (k INTEGER, ak INTEGER)")
        db.execute("CREATE TABLE c (k INTEGER, bk INTEGER)")
        db.execute("INSERT INTO a VALUES (1)")
        db.execute("INSERT INTO b VALUES (5, 1), (6, 9)")  # b(6,.) dangles
        db.execute("INSERT INTO c VALUES (100, 5), (200, 6)")  # c(200,.) cascades
        constraints = [
            ForeignKeyConstraint("c", ["bk"], "b", ["k"]),
            ForeignKeyConstraint("b", ["ak"], "a", ["k"]),
        ]
        report = detect_conflicts(db, constraints)
        assert report.hypergraph.summary()["singleton_edges"] == 2
        relations = sorted(v.relation for e in report.hypergraph.edges for v in e)
        assert relations == ["b", "c"]

    def test_referenced_relation_with_choice_conflicts_rejected(self, order_db):
        order_db.execute("INSERT INTO customer VALUES (1, 'athens')")  # key conflict
        fd = FunctionalDependency("customer", ["id"], ["city"])
        with pytest.raises(ConstraintError, match="restricted"):
            detect_conflicts(order_db, [FK, fd])

    def test_referenced_relation_with_deterministic_deletions_allowed(self, order_db):
        # A singleton (unary denial) deletion on the parent is fine and
        # cascades to its orders.
        from repro.constraints import ConstraintAtom, DenialConstraint
        from repro.sql.parser import parse_expression

        no_cracow = DenialConstraint(
            "no-cracow",
            (ConstraintAtom("t", "customer"),),
            parse_expression("t.city = 'cracow'"),
        )
        report = detect_conflicts(order_db, [FK, no_cracow])
        # customer 2 deleted; orders 11 (ref 2) and 12 (ref 9) dangle.
        assert report.hypergraph.summary()["singleton_edges"] == 3


class TestRepairSemantics:
    def test_repairs_exclude_dangling_tuples(self, order_db):
        report = detect_conflicts(order_db, [FK])
        repairs = all_repairs(order_db, report.hypergraph)
        assert len(repairs) == 1
        (repair,) = repairs
        assert satisfies_constraints(order_db, [FK], repair)
        assert is_repair(order_db, [FK], report.hypergraph, repair)
        kept_orders = {
            order_db.table("orders").get(tid) for tid in repair["orders"]
        }
        assert kept_orders == {(10, 1, 100), (11, 2, 50)}

    def test_fk_plus_fd_on_child(self, order_db):
        order_db.execute("INSERT INTO orders VALUES (10, 1, 999)")  # oid clash
        fd = FunctionalDependency("orders", ["oid"], ["customer_id", "total"])
        constraints = [FK, fd]
        hippo = HippoEngine(order_db, constraints)
        repairs = all_repairs(order_db, hippo.hypergraph)
        assert len(repairs) == 2  # choose one version of order 10
        for repair in repairs:
            assert satisfies_constraints(order_db, constraints, repair)

    def test_consistent_answers_with_fk(self, order_db):
        hippo = HippoEngine(order_db, [FK])
        answers = hippo.consistent_answers(
            "SELECT o.oid, o.customer_id, o.total, c.city FROM orders o,"
            " customer c WHERE o.customer_id = c.id"
        )
        assert answers.as_set() == {
            (10, 1, 100, "buffalo"),
            (11, 2, 50, "cracow"),
        }
        # The dangling order is not even a possible answer of the scan.
        possible = hippo.possible_answers("SELECT * FROM orders")
        assert (12, 9, 75) not in possible.as_set()

    def test_checker_rejects_kept_dangling_tuple(self, order_db):
        bad = {
            "customer": frozenset(order_db.table("customer").tids()),
            "orders": frozenset(order_db.table("orders").tids()),  # keeps 12
        }
        assert not satisfies_constraints(order_db, [FK], bad)
