"""Tests for denial constraints, FDs, exclusion constraints and the parser."""

import pytest

from repro.constraints import (
    ConstraintAtom,
    DenialConstraint,
    ExclusionConstraint,
    FunctionalDependency,
    key_constraint,
    parse_constraint,
    parse_constraints,
    primary_key_fd,
    to_denial_constraints,
)
from repro.errors import ConstraintError
from repro.ra import CatalogSchemaProvider
from repro.sql import ast
from repro.sql.parser import parse_expression


class TestDenialConstraint:
    def test_valid(self):
        constraint = DenialConstraint(
            "c",
            (ConstraintAtom("t1", "r"), ConstraintAtom("t2", "r")),
            parse_expression("t1.a = t2.a AND t1.b <> t2.b"),
        )
        assert constraint.arity == 2 and constraint.is_binary
        assert constraint.relations() == {"r"}

    def test_no_atoms_rejected(self):
        with pytest.raises(ConstraintError):
            DenialConstraint("c", ())

    def test_duplicate_alias_rejected(self):
        with pytest.raises(ConstraintError, match="repeats"):
            DenialConstraint(
                "c", (ConstraintAtom("t", "r"), ConstraintAtom("T", "s"))
            )

    def test_unqualified_ref_rejected(self):
        with pytest.raises(ConstraintError, match="qualified"):
            DenialConstraint(
                "c", (ConstraintAtom("t", "r"),), parse_expression("a > 0")
            )

    def test_unknown_alias_rejected(self):
        with pytest.raises(ConstraintError, match="unknown tuple variable"):
            DenialConstraint(
                "c", (ConstraintAtom("t", "r"),), parse_expression("zz.a > 0")
            )

    def test_str(self):
        constraint = DenialConstraint(
            "c", (ConstraintAtom("t", "r"),), parse_expression("t.a < 0")
        )
        assert "DENIAL" in str(constraint) and "t.a" in str(constraint)


class TestFunctionalDependency:
    def test_to_denials_one_per_dependent(self):
        fd = FunctionalDependency("r", ["a"], ["b", "c"])
        denials = fd.to_denials()
        assert len(denials) == 2
        assert all(d.is_binary for d in denials)
        assert all(d.relations() == {"r"} for d in denials)

    def test_denial_condition_shape(self):
        fd = FunctionalDependency("r", ["a", "b"], ["c"])
        (denial,) = fd.to_denials()
        conjuncts = ast.split_conjuncts(denial.condition)
        assert len(conjuncts) == 3  # two lhs equalities + one rhs inequality
        assert conjuncts[-1].op == "<>"

    def test_empty_sides_rejected(self):
        with pytest.raises(ConstraintError):
            FunctionalDependency("r", [], ["b"])
        with pytest.raises(ConstraintError):
            FunctionalDependency("r", ["a"], [])

    def test_overlap_rejected(self):
        with pytest.raises(ConstraintError, match="both sides"):
            FunctionalDependency("r", ["a"], ["A", "b"])

    def test_key_constraint(self):
        fd = key_constraint("r", ["a"], ["a", "b", "c"])
        assert fd.lhs == ("a",) and set(fd.rhs) == {"b", "c"}

    def test_trivial_key_rejected(self):
        with pytest.raises(ConstraintError, match="trivial"):
            key_constraint("r", ["a", "b"], ["a", "b"])

    def test_primary_key_fd(self, emp_db):
        fd = primary_key_fd(emp_db, "emp")
        assert fd.lhs == ("name",) and set(fd.rhs) == {"dept", "salary"}

    def test_primary_key_fd_missing_key(self, two_table_db):
        with pytest.raises(ConstraintError, match="PRIMARY KEY"):
            primary_key_fd(two_table_db, "r")


class TestExclusionConstraint:
    def test_to_denials(self):
        excl = ExclusionConstraint("r", "s", [("a", "a")])
        (denial,) = excl.to_denials()
        assert denial.is_binary
        assert denial.relations() == {"r", "s"}

    def test_extra_condition(self):
        excl = ExclusionConstraint(
            "r", "s", [("a", "a")], parse_expression("t1.b > 0")
        )
        (denial,) = excl.to_denials()
        assert len(ast.split_conjuncts(denial.condition)) == 2

    def test_empty_rejected(self):
        with pytest.raises(ConstraintError):
            ExclusionConstraint("r", "s", [])


class TestNormalization:
    def test_mixed_list(self):
        fd = FunctionalDependency("r", ["a"], ["b"])
        excl = ExclusionConstraint("r", "s", [("a", "a")])
        denial = DenialConstraint(
            "d", (ConstraintAtom("t", "r"),), parse_expression("t.a < 0")
        )
        denials = to_denial_constraints([fd, excl, denial])
        assert len(denials) == 3

    def test_unknown_object_rejected(self):
        with pytest.raises(ConstraintError):
            to_denial_constraints(["KEY r(a)"])


class TestConstraintParser:
    def test_parse_fd(self):
        fd = parse_constraint("FD emp: name -> dept, salary")
        assert isinstance(fd, FunctionalDependency)
        assert fd.lhs == ("name",) and fd.rhs == ("dept", "salary")

    def test_parse_fd_multi_lhs(self):
        fd = parse_constraint("FD r: a b -> c")
        assert fd.lhs == ("a", "b")

    def test_parse_key_needs_schema(self, emp_db):
        provider = CatalogSchemaProvider(emp_db.catalog)
        fd = parse_constraint("KEY emp(name)", provider)
        assert set(fd.rhs) == {"dept", "salary"}
        with pytest.raises(ConstraintError, match="schema provider"):
            parse_constraint("KEY emp(name)")

    def test_parse_exclusion(self):
        excl = parse_constraint("EXCLUSION emp(ssn) ~ contractor(ssn)")
        assert isinstance(excl, ExclusionConstraint)
        assert excl.pairs == (("ssn", "ssn"),)

    def test_parse_exclusion_with_where(self):
        excl = parse_constraint(
            "EXCLUSION emp(ssn) ~ contractor(ssn) WHERE t1.active = TRUE"
        )
        assert excl.extra is not None

    def test_parse_exclusion_arity_mismatch(self):
        with pytest.raises(ConstraintError, match="length"):
            parse_constraint("EXCLUSION r(a, b) ~ s(a)")

    def test_parse_denial(self):
        denial = parse_constraint(
            "DENIAL r1 IN emp, r2 IN emp WHERE r1.mgr = r2.name AND"
            " r1.salary > r2.salary"
        )
        assert isinstance(denial, DenialConstraint)
        assert denial.arity == 2

    def test_parse_denial_bad_atom(self):
        with pytest.raises(ConstraintError, match="alias IN relation"):
            parse_constraint("DENIAL emp WHERE emp.a = 1")

    def test_parse_multi_line_with_comments(self, emp_db):
        provider = CatalogSchemaProvider(emp_db.catalog)
        constraints = parse_constraints(
            """
            -- keys
            KEY emp(name)

            FD emp: dept -> salary  -- departments pay flat salaries
            """,
            provider,
        )
        assert len(constraints) == 2

    def test_parse_error_carries_line_number(self):
        with pytest.raises(ConstraintError, match="line 2"):
            parse_constraints("FD r: a -> b\nBOGUS x")

    def test_unknown_kind(self):
        with pytest.raises(ConstraintError, match="unknown constraint kind"):
            parse_constraint("CHECK r.a > 0")
