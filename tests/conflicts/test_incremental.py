"""Unit tests for incremental conflict-hypergraph maintenance.

The equivalence property suite (``tests/property``) checks the global
invariant -- incremental == full re-detection after arbitrary update
sequences; the tests here pin down the moving parts one by one: the
change log, hypergraph edge add/remove, edge retraction, FK cascade
re-derivation, subsumption bookkeeping and the engine-level fallbacks.
"""

from __future__ import annotations

import pytest

from repro import Database, HippoEngine
from repro.conflicts import ConflictHypergraph, Vertex, detect_conflicts, vertex
from repro.conflicts.incremental import IncrementalDetector
from repro.constraints import (
    ConstraintAtom,
    DenialConstraint,
    ExclusionConstraint,
    FunctionalDependency,
)
from repro.constraints.foreign_key import ForeignKeyConstraint
from repro.engine.changelog import Change, ChangeLog
from repro.errors import ConstraintError
from repro.sql.parser import parse_expression


def assert_equivalent(engine: HippoEngine, db: Database, constraints) -> None:
    """The maintained hypergraph equals full re-detection, field by field."""
    full = detect_conflicts(db, constraints)
    maintained = engine.hypergraph
    assert maintained.as_dict() == full.hypergraph.as_dict()
    assert engine.detection.per_constraint == full.per_constraint
    assert engine.detection.subsumed == full.subsumed
    # Adjacency agrees vertex by vertex.
    assert set(maintained.conflicting_vertices()) == set(
        full.hypergraph.conflicting_vertices()
    )
    for v in full.hypergraph.conflicting_vertices():
        assert set(maintained.edges_of(v)) == set(full.hypergraph.edges_of(v))
        assert maintained.degree(v) == full.hypergraph.degree(v)


class TestChangeLog:
    def test_nothing_buffered_without_cursor(self):
        log = ChangeLog()
        log.record(Change("r", 0, (1,), "insert"))
        assert log.end == 0

    def test_cursor_sees_changes_once(self):
        log = ChangeLog()
        cursor = log.open_cursor()
        log.record(Change("r", 0, (1,), "insert"))
        assert cursor.pending == 1
        changes, lost = cursor.read()
        assert not lost and [c.tid for c in changes] == [0]
        assert cursor.read() == ([], False)

    def test_two_cursors_compact_at_slowest(self):
        log = ChangeLog()
        fast, slow = log.open_cursor(), log.open_cursor()
        log.record(Change("r", 0, (1,), "insert"))
        fast.read()
        assert slow.pending == 1
        changes, lost = slow.read()
        assert [c.tid for c in changes] == [0] and not lost

    def test_overflow_marks_cursor_lost(self):
        log = ChangeLog(max_pending=2)
        cursor = log.open_cursor()
        for tid in range(4):
            log.record(Change("r", tid, (tid,), "insert"))
        assert cursor.lost
        changes, lost = cursor.read()
        assert lost and changes == []
        assert not cursor.lost  # repositioned at the end

    def test_update_emits_delete_then_insert(self):
        db = Database()
        db.execute("CREATE TABLE r (a INTEGER)")
        cursor = db.changes.open_cursor()
        tid = db.insert_rows("r", [(1,)])[0]
        db.execute("UPDATE r SET a = 2")
        ops = [(c.op, c.tid, c.row) for c in cursor.read()[0]]
        assert ops == [
            ("insert", tid, (1,)),
            ("delete", tid, (1,)),
            ("insert", tid, (2,)),
        ]

    def test_collected_engine_releases_its_cursor(self):
        import gc

        db = Database()
        db.execute("CREATE TABLE r (a INTEGER, b INTEGER)")
        fd = FunctionalDependency("r", ["a"], ["b"])
        engine = HippoEngine(db, [fd])
        del engine  # dropped without detach()
        gc.collect()
        db.execute("INSERT INTO r VALUES (1, 2)")
        assert db.changes.end == 0  # nobody listening, nothing buffered

    def test_ddl_bumps_schema_version(self):
        db = Database()
        before = db.changes.schema_version
        db.execute("CREATE TABLE r (a INTEGER)")
        db.execute("DROP TABLE r")
        assert db.changes.schema_version == before + 2


class TestMutableHypergraph:
    def edge(self, *tids: int) -> frozenset[Vertex]:
        return frozenset(vertex("r", tid) for tid in tids)

    def test_add_and_remove_keep_adjacency(self):
        graph = ConflictHypergraph()
        assert graph.add_edge(self.edge(1, 2), "c1")
        assert graph.add_edge(self.edge(2, 3), "c2")
        assert not graph.add_edge(self.edge(1, 2), "dup")
        assert graph.degree(vertex("r", 2)) == 2
        assert graph.label_of(self.edge(2, 3)) == "c2"
        assert graph.remove_edge(self.edge(1, 2))
        assert not graph.remove_edge(self.edge(1, 2))
        assert not graph.is_conflicting(vertex("r", 1))
        assert graph.edges_of(vertex("r", 2)) == [self.edge(2, 3)]
        assert graph.edge_labels == ["c2"]

    def test_swap_remove_remaps_positions(self):
        graph = ConflictHypergraph()
        for tids, label in [((1, 2), "a"), ((3, 4), "b"), ((4, 5), "c")]:
            graph.add_edge(self.edge(*tids), label)
        graph.remove_edge(self.edge(1, 2))  # last edge swaps into slot 0
        assert graph.as_dict() == {
            self.edge(3, 4): "b",
            self.edge(4, 5): "c",
        }
        assert graph.label_of(self.edge(4, 5)) == "c"
        assert graph.remove_edge(self.edge(4, 5))
        assert graph.as_dict() == {self.edge(3, 4): "b"}

    def test_subset_and_superset_queries(self):
        graph = ConflictHypergraph()
        graph.add_edge(self.edge(1), "s")
        graph.add_edge(self.edge(2, 3), "p")
        assert graph.subset_edges(self.edge(1, 2, 3)) == [
            self.edge(1)
        ] or set(graph.subset_edges(self.edge(1, 2, 3))) == {
            self.edge(1),
            self.edge(2, 3),
        }
        assert graph.superset_edges(self.edge(2)) == [self.edge(2, 3)]
        assert graph.superset_edges(self.edge(2, 3)) == []


class TestIncrementalDenials:
    def fd_engine(self):
        db = Database()
        db.execute("CREATE TABLE emp (name TEXT, salary INTEGER)")
        db.execute("INSERT INTO emp VALUES ('ann', 10), ('ann', 20), ('bob', 5)")
        fd = FunctionalDependency("emp", ["name"], ["salary"])
        return db, HippoEngine(db, [fd]), [fd]

    def test_insert_derives_new_edges(self):
        db, engine, constraints = self.fd_engine()
        db.execute("INSERT INTO emp VALUES ('bob', 6), ('bob', 7)")
        engine.refresh()
        assert engine.detection.mode == "incremental"
        assert engine.detection.edges_added == 3  # (5,6), (5,7), (6,7)
        assert_equivalent(engine, db, constraints)

    def test_delete_retracts_incident_edges(self):
        db, engine, constraints = self.fd_engine()
        db.execute("DELETE FROM emp WHERE salary = 20")
        engine.refresh()
        assert engine.detection.mode == "incremental"
        assert engine.detection.edges_retracted == 1
        assert len(engine.hypergraph) == 0
        assert_equivalent(engine, db, constraints)

    def test_update_retracts_and_rederives(self):
        db, engine, constraints = self.fd_engine()
        db.execute("UPDATE emp SET name = 'bob' WHERE salary = 20")
        engine.refresh()
        # ann's pair dissolves; ('bob', 20) now conflicts with ('bob', 5).
        assert engine.detection.mode == "incremental"
        assert_equivalent(engine, db, constraints)
        assert len(engine.hypergraph) == 1

    def test_noop_refresh_keeps_report(self):
        db, engine, constraints = self.fd_engine()
        engine.refresh()
        assert engine.detection.mode == "full"
        db.execute("DELETE FROM emp WHERE salary = 999")
        engine.refresh()
        assert engine.detection.mode == "full"  # nothing was pending
        assert_equivalent(engine, db, constraints)

    def test_queries_sync_automatically(self):
        db, engine, _ = self.fd_engine()
        db.execute("DELETE FROM emp WHERE salary = 20")
        answers = engine.consistent_answers("SELECT * FROM emp")
        assert ("ann", 10) in answers.rows  # recovered without refresh()
        assert engine.detection.mode == "incremental"

    def test_full_refresh_escape_hatch(self):
        db, engine, constraints = self.fd_engine()
        db.execute("INSERT INTO emp VALUES ('bob', 6)")
        engine.refresh(full=True)
        assert engine.detection.mode == "full"
        assert_equivalent(engine, db, constraints)

    def test_overflow_falls_back_to_full(self):
        db, engine, constraints = self.fd_engine()
        db.changes._max_pending = 3
        for salary in range(100, 110):
            db.execute(f"INSERT INTO emp VALUES ('x{salary}', {salary})")
        engine.refresh()
        assert engine.detection.mode == "full"
        assert_equivalent(engine, db, constraints)

    def test_constraint_change_falls_back_to_full(self):
        db, engine, _ = self.fd_engine()
        fd2 = FunctionalDependency("emp", ["salary"], ["name"])
        engine.constraints.append(fd2)
        db.execute("INSERT INTO emp VALUES ('carol', 5)")
        engine.refresh()
        assert engine.detection.mode == "full"
        assert_equivalent(engine, db, engine.constraints)

    def test_ddl_falls_back_to_full(self):
        db, engine, constraints = self.fd_engine()
        db.execute("CREATE TABLE other (a INTEGER)")
        db.execute("INSERT INTO emp VALUES ('bob', 6)")
        engine.refresh()
        assert engine.detection.mode == "full"
        assert_equivalent(engine, db, constraints)

    def test_exclusion_constraint_incremental(self):
        db = Database()
        db.execute("CREATE TABLE staff (ssn INTEGER)")
        db.execute("CREATE TABLE contractor (ssn INTEGER)")
        db.execute("INSERT INTO staff VALUES (1), (2)")
        db.execute("INSERT INTO contractor VALUES (3)")
        excl = ExclusionConstraint("staff", "contractor", [("ssn", "ssn")])
        engine = HippoEngine(db, [excl])
        assert len(engine.hypergraph) == 0
        db.execute("INSERT INTO contractor VALUES (2)")
        engine.refresh()
        assert engine.detection.mode == "incremental"
        assert engine.detection.edges_added == 1
        assert_equivalent(engine, db, [excl])

    def test_unlinked_condition_scan_fallback(self):
        # No equality conjunct links the atoms: the matcher must fall
        # back to scanning the second relation.
        db = Database()
        db.execute("CREATE TABLE r (a INTEGER)")
        db.execute("INSERT INTO r VALUES (1), (5)")
        denial = DenialConstraint(
            "lt",
            (ConstraintAtom("t1", "r"), ConstraintAtom("t2", "r")),
            parse_expression("t1.a + 10 < t2.a"),
        )
        engine = HippoEngine(db, [denial])
        db.execute("INSERT INTO r VALUES (20)")
        engine.refresh()
        assert engine.detection.mode == "incremental"
        assert_equivalent(engine, db, [denial])
        assert len(engine.hypergraph) == 2  # (1,20), (5,20)


class TestSubsumption:
    def test_singleton_absorbs_pair_and_reports_subsumed(self):
        db = Database()
        db.execute("CREATE TABLE r (a INTEGER, b INTEGER)")
        db.execute("INSERT INTO r VALUES (1, 7), (1, 8)")
        fd = FunctionalDependency("r", ["a"], ["b"])
        negative = DenialConstraint(
            "neg", (ConstraintAtom("t", "r"),), parse_expression("t.b < 0")
        )
        engine = HippoEngine(db, [fd, negative])
        assert engine.detection.subsumed == {"fd:r:a->b": 0, "neg": 0}
        # A negative row conflicts with (1, 7) via the FD *and* is a
        # singleton violation on its own: the pair is minimized away.
        db.execute("INSERT INTO r VALUES (1, -1)")
        engine.refresh()
        assert engine.detection.mode == "incremental"
        assert_equivalent(engine, db, [fd, negative])
        assert engine.detection.subsumed["fd:r:a->b"] == 2
        assert engine.detection.subsumed_total == 2

    def test_full_detection_reports_subsumed(self):
        db = Database()
        db.execute("CREATE TABLE r (a INTEGER, b INTEGER)")
        db.execute("INSERT INTO r VALUES (1, 7), (1, -1)")
        fd = FunctionalDependency("r", ["a"], ["b"])
        negative = DenialConstraint(
            "neg", (ConstraintAtom("t", "r"),), parse_expression("t.b < 0")
        )
        report = detect_conflicts(db, [fd, negative])
        # The FD pair {(1,7),(1,-1)} is absorbed by the singleton.
        assert report.per_constraint == {"fd:r:a->b": 0, "neg": 1}
        assert report.subsumed == {"fd:r:a->b": 1, "neg": 0}


class TestForeignKeyCascades:
    def chain(self):
        """parent <- child <- grandchild with a unary denial on parent."""
        db = Database()
        db.execute("CREATE TABLE parent (id INTEGER, ok INTEGER)")
        db.execute("CREATE TABLE child (id INTEGER, pid INTEGER)")
        db.execute("CREATE TABLE gc (id INTEGER, cid INTEGER)")
        db.execute("INSERT INTO parent VALUES (1, 1), (2, 1)")
        db.execute("INSERT INTO child VALUES (10, 1), (11, 2)")
        db.execute("INSERT INTO gc VALUES (100, 10), (101, 11)")
        constraints = [
            DenialConstraint(
                "bad-parent",
                (ConstraintAtom("t", "parent"),),
                parse_expression("t.ok = 0"),
            ),
            ForeignKeyConstraint("child", ["pid"], "parent", ["id"]),
            ForeignKeyConstraint("gc", ["cid"], "child", ["id"]),
        ]
        return db, HippoEngine(db, constraints), constraints

    def test_parent_delete_cascades(self):
        db, engine, constraints = self.chain()
        db.execute("DELETE FROM parent WHERE id = 1")
        engine.refresh()
        assert engine.detection.mode == "incremental"
        assert_equivalent(engine, db, constraints)
        dangling = {next(iter(e)) for e in engine.hypergraph.edges}
        assert dangling == {vertex("child", 0), vertex("gc", 0)}

    def test_parent_insert_cures_chain(self):
        db, engine, constraints = self.chain()
        db.execute("DELETE FROM parent WHERE id = 1")
        engine.refresh()
        db.execute("INSERT INTO parent VALUES (1, 1)")
        engine.refresh()
        assert engine.detection.mode == "incremental"
        assert len(engine.hypergraph) == 0
        assert_equivalent(engine, db, constraints)

    def test_denial_singleton_feeds_chain(self):
        db, engine, constraints = self.chain()
        # Marking a parent bad deletes it in every repair, so its child
        # (and the grandchild) dangle -- without any FK-relation delta.
        db.execute("UPDATE parent SET ok = 0 WHERE id = 2")
        engine.refresh()
        assert engine.detection.mode == "incremental"
        assert_equivalent(engine, db, constraints)
        assert len(engine.hypergraph) == 3  # bad parent + child + gc

    def test_resurrection_after_fk_cure(self):
        # An FD pair subsumed by an FK dangling singleton must resurface
        # when the dangling is cured by a parent insertion.
        db = Database()
        db.execute("CREATE TABLE p (id INTEGER)")
        db.execute("CREATE TABLE c (id INTEGER, pid INTEGER, v INTEGER)")
        db.execute("INSERT INTO p VALUES (1)")
        db.execute("INSERT INTO c VALUES (5, 2, 7), (5, 1, 8)")
        constraints = [
            FunctionalDependency("c", ["id"], ["v"]),
            ForeignKeyConstraint("c", ["pid"], "p", ["id"]),
        ]
        engine = HippoEngine(db, constraints)
        assert [len(e) for e in engine.hypergraph.edges] == [1]
        assert engine.detection.subsumed["fd:c:id->v"] == 1
        db.execute("INSERT INTO p VALUES (2)")
        engine.refresh()
        assert engine.detection.mode == "incremental"
        assert [len(e) for e in engine.hypergraph.edges] == [2]
        assert_equivalent(engine, db, constraints)

    def test_restricted_class_violation_raises(self):
        db, engine, constraints = self.chain()
        engine.constraints.append(
            FunctionalDependency("parent", ["id"], ["ok"])
        )
        db.execute("INSERT INTO parent VALUES (1, 0)")
        with pytest.raises(ConstraintError, match="restricted"):
            engine.refresh()

    def test_failed_apply_recovers_with_full_detection(self):
        db, _stale_engine, constraints = self.chain()
        constraints = constraints + [
            FunctionalDependency("parent", ["id"], ["ok"])
        ]
        engine = HippoEngine(db, constraints)
        # Push a referenced relation into a choice conflict: the apply
        # fails mid-batch...
        db.execute("INSERT INTO parent VALUES (1, 0)")
        with pytest.raises(ConstraintError):
            engine.refresh()
        # ...and after the offending row is removed, the engine falls
        # back to full detection and is exact again.
        db.execute("DELETE FROM parent WHERE ok = 0 AND id = 1")
        engine.refresh()
        assert engine.detection.mode == "full"
        assert_equivalent(engine, db, constraints)

    def test_failed_full_detection_keeps_failing_not_stale(self):
        from repro.errors import CatalogError

        db = Database()
        db.execute("CREATE TABLE r (a INTEGER, b INTEGER)")
        db.execute("INSERT INTO r VALUES (1, 7), (1, 8)")
        fd = FunctionalDependency("r", ["a"], ["b"])
        engine = HippoEngine(db, [fd])
        db.execute("DROP TABLE r")
        with pytest.raises(CatalogError):
            engine.refresh()
        # The failure must not be swallowed on retry (stale hypergraph
        # silently served) -- every refresh keeps raising until fixed.
        with pytest.raises(CatalogError):
            engine.refresh()
        db.execute("CREATE TABLE r (a INTEGER, b INTEGER)")
        db.execute("INSERT INTO r VALUES (2, 1)")
        engine.refresh()
        assert engine.detection.mode == "full"
        assert len(engine.hypergraph) == 0

    def test_detached_engine_is_static_but_refreshable(self):
        db = Database()
        db.execute("CREATE TABLE r (a INTEGER, b INTEGER)")
        db.execute("INSERT INTO r VALUES (1, 7), (1, 8)")
        fd = FunctionalDependency("r", ["a"], ["b"])
        engine = HippoEngine(db, [fd])
        engine.detach()
        db.execute("DELETE FROM r WHERE b = 8")
        answers = engine.consistent_answers("SELECT * FROM r")
        assert answers.rows == []  # stale on purpose: no auto-sync
        engine.refresh()
        assert engine.detection.mode == "full"
        assert len(engine.hypergraph) == 0

    def test_incremental_restricted_check_matches_full(self):
        db = Database()
        db.execute("CREATE TABLE p (id INTEGER, v INTEGER)")
        db.execute("CREATE TABLE c (id INTEGER, pid INTEGER)")
        db.execute("INSERT INTO p VALUES (1, 5)")
        db.execute("INSERT INTO c VALUES (10, 1)")
        constraints = [
            FunctionalDependency("p", ["id"], ["v"]),
            ForeignKeyConstraint("c", ["pid"], "p", ["id"]),
        ]
        engine = HippoEngine(db, constraints)
        # A second p row with the same key creates a *choice* conflict on
        # a referenced relation: outside the restricted class, and the
        # incremental path must say so exactly like full detection.
        db.execute("INSERT INTO p VALUES (1, 6)")
        with pytest.raises(ConstraintError, match="referenced by a foreign key"):
            engine.refresh()
        with pytest.raises(ConstraintError, match="referenced by a foreign key"):
            detect_conflicts(db, constraints)


class TestDetectorInternals:
    def test_bootstrap_requires_raw(self):
        db = Database()
        db.execute("CREATE TABLE r (a INTEGER)")
        detector = IncrementalDetector(db, [])
        report = detect_conflicts(db, [])
        with pytest.raises(ValueError, match="keep_raw"):
            detector.bootstrap(report)

    def test_matcher_indexes_are_planned_eagerly_at_attach(self):
        # The first post-bulk-load delta must not absorb an O(N) index
        # build: attaching the engine (whose detector plans matcher
        # indexes from the constraint set) creates them up front.
        db = Database()
        db.execute("CREATE TABLE r (a INTEGER, b INTEGER)")
        db.execute("INSERT INTO r VALUES (1, 7), (1, 8)")
        fd = FunctionalDependency("r", ["a"], ["b"])
        table = db.table("r")
        assert not table.has_index((0,))
        engine = HippoEngine(db, [fd])
        assert table.has_index((0,))  # planned at attach, before any delta
        created = table.indexed_column_sets()
        db.execute("INSERT INTO r VALUES (2, 1)")
        engine.refresh()
        # The delta reused the planned index; nothing new was built.
        assert table.indexed_column_sets() == created

    def test_first_delta_builds_no_index(self, monkeypatch):
        from repro.engine.storage import Table

        db = Database()
        db.execute("CREATE TABLE r (a INTEGER, b INTEGER)")
        db.execute("INSERT INTO r VALUES (1, 7), (1, 8)")
        engine = HippoEngine(db, [FunctionalDependency("r", ["a"], ["b"])])

        def forbid(self, positions):
            raise AssertionError(
                f"index {tuple(positions)} built lazily on a delta"
            )

        monkeypatch.setattr(Table, "create_index", forbid)
        db.execute("INSERT INTO r VALUES (2, 1)")
        engine.refresh()  # must not need any new index

    def test_planned_matcher_indexes_are_shared_with_the_planner(self):
        # Matcher indexes are ordinary storage hash indexes, so the
        # query planner's index-scan selection picks them up for free.
        db = Database()
        db.execute("CREATE TABLE r (a INTEGER, b INTEGER)")
        db.execute("INSERT INTO r VALUES (1, 7), (1, 8), (2, 9)")
        HippoEngine(db, [FunctionalDependency("r", ["a"], ["b"])])
        assert "IndexScan" in db.explain("SELECT * FROM r WHERE a = 1")


class TestMaintainedCounters:
    """Per-constraint counters are maintained, not recounted (and the
    shadow's label index stays consistent with them)."""

    def build(self):
        db = Database()
        db.execute("CREATE TABLE r (a INTEGER, b INTEGER)")
        db.execute("INSERT INTO r VALUES (1, 7), (1, 8)")
        constraints = [
            FunctionalDependency("r", ["a"], ["b"]),
            DenialConstraint(
                "neg", (ConstraintAtom("t", "r"),), parse_expression("t.b < 0")
            ),
        ]
        return db, HippoEngine(db, constraints), constraints

    def assert_counters_exact(self, engine, db, constraints):
        """Maintained counters == a brute-force recount == full detection."""
        detector = engine._incremental
        recount_stored: dict[str, int] = {}
        for label in detector.graph.edge_labels:
            recount_stored[label] = recount_stored.get(label, 0) + 1
        for name in detector.constraint_names:
            assert detector._stored.get(name, 0) == recount_stored.get(name, 0)
            by_label = len(detector._shadow_by_label.get(name, {}))
            recount_found = sum(
                1
                for _edge, (_primary, supports) in detector._shadow.items()
                if name in supports
            )
            assert by_label == recount_found
        full = detect_conflicts(db, constraints)
        assert engine.detection.per_constraint == full.per_constraint
        assert engine.detection.subsumed == full.subsumed

    def test_counts_pinned_through_add_subsume_resurrect(self):
        db, engine, constraints = self.build()
        assert engine.detection.per_constraint == {"fd:r:a->b": 1, "neg": 0}

        # A negative row: singleton absorbs both FD pairs it joins.
        db.execute("INSERT INTO r VALUES (1, -1)")
        engine.refresh()
        assert engine.detection.mode == "incremental"
        assert engine.detection.per_constraint == {"fd:r:a->b": 1, "neg": 1}
        assert engine.detection.subsumed == {"fd:r:a->b": 2, "neg": 0}
        self.assert_counters_exact(engine, db, constraints)

        # Curing the singleton resurrects the subsumed pairs.
        db.execute("UPDATE r SET b = 9 WHERE b = -1")
        engine.refresh()
        assert engine.detection.mode == "incremental"
        assert engine.detection.per_constraint == {"fd:r:a->b": 3, "neg": 0}
        assert engine.detection.subsumed == {"fd:r:a->b": 0, "neg": 0}
        self.assert_counters_exact(engine, db, constraints)

        # Deletions retract stored edges and their counter entries.
        db.execute("DELETE FROM r WHERE b = 8")
        db.execute("DELETE FROM r WHERE b = 9")
        engine.refresh()
        assert engine.detection.mode == "incremental"
        assert engine.detection.per_constraint == {"fd:r:a->b": 0, "neg": 0}
        self.assert_counters_exact(engine, db, constraints)

    def test_counters_exact_under_fk_rederivation(self):
        db = Database()
        db.execute("CREATE TABLE p (id INTEGER)")
        db.execute("CREATE TABLE c (id INTEGER, pid INTEGER, v INTEGER)")
        db.execute("INSERT INTO p VALUES (1)")
        db.execute("INSERT INTO c VALUES (5, 2, 7), (5, 1, 8)")
        constraints = [
            FunctionalDependency("c", ["id"], ["v"]),
            ForeignKeyConstraint("c", ["pid"], "p", ["id"]),
        ]
        engine = HippoEngine(db, constraints)
        db.execute("INSERT INTO p VALUES (2)")  # cure -> resurrection
        engine.refresh()
        assert engine.detection.mode == "incremental"
        self.assert_counters_exact(engine, db, constraints)
        db.execute("DELETE FROM p WHERE id = 1")  # new dangling chain
        engine.refresh()
        assert engine.detection.mode == "incremental"
        self.assert_counters_exact(engine, db, constraints)
