"""Unit tests for replica hypergraph maintenance over the change feed.

A replica attaches to a (usually durable) feed, rebuilds the primary's
database from it -- tids included -- and keeps a conflict hypergraph
equal to full re-detection at every committed cut, across restarts and
torn segment tails.  The property suite
(``tests/property/test_replica_equivalence.py``) drives randomized
sequences; here we pin the mechanics one scenario at a time.
"""

from __future__ import annotations

import pytest

from repro.conflicts import ReplicaHypergraph, detect_conflicts
from repro.constraints import FunctionalDependency
from repro.constraints.foreign_key import ForeignKeyConstraint
from repro.engine.database import Database
from repro.engine.feed import ChangeFeed
from repro.errors import FeedError


def fd_primary(feed: ChangeFeed) -> tuple[Database, FunctionalDependency]:
    db = Database(feed=feed)
    db.execute("CREATE TABLE emp (name TEXT, salary INTEGER)")
    db.execute("INSERT INTO emp VALUES ('ann', 10), ('ann', 20), ('bob', 5)")
    return db, FunctionalDependency("emp", ["name"], ["salary"])


def assert_converged(replica: ReplicaHypergraph, primary: Database, constraints):
    """Replica db == primary db, and the graph == full re-detection."""
    for name in primary.catalog.table_names():
        assert dict(replica.db.table(name).items()) == dict(
            primary.table(name).items()
        )
    full = detect_conflicts(primary, constraints)
    assert replica.graph.as_dict() == full.hypergraph.as_dict()


class TestReplicaFollowsPrimary:
    def test_bootstrap_then_incremental(self):
        feed = ChangeFeed()
        replica = ReplicaHypergraph(
            feed, [FunctionalDependency("emp", ["name"], ["salary"])],
            group="replica",
        )
        db, fd = fd_primary(feed)
        sync = replica.sync()
        assert sync.mode == "full"  # the bootstrap batch carries DDL
        assert_converged(replica, db, [fd])

        db.execute("INSERT INTO emp VALUES ('bob', 6)")
        sync = replica.sync()
        assert sync.mode == "incremental"
        assert sync.delta is not None and sync.delta.added == 1
        assert_converged(replica, db, [fd])

    def test_intermediate_cuts_are_exact(self):
        feed = ChangeFeed()
        replica = ReplicaHypergraph(
            feed, [FunctionalDependency("emp", ["name"], ["salary"])],
            group="replica",
        )
        db, fd = fd_primary(feed)
        replica.sync()  # DDL -> full detection with the fd in place
        for salary in (6, 7, 8):
            db.execute(f"INSERT INTO emp VALUES ('bob', {salary})")
        db.execute("DELETE FROM emp WHERE name = 'ann'")
        # Consume one record at a time: every commit point must equal
        # full re-detection over the replica's own database.
        while replica.lag:
            replica.sync(limit=1)
            full = detect_conflicts(replica.db, [fd])
            assert replica.graph.as_dict() == full.hypergraph.as_dict()
        assert_converged(replica, db, [fd])

    def test_fk_cascades_replicate(self):
        feed = ChangeFeed()
        constraints = [ForeignKeyConstraint("c", ["pid"], "p", ["id"])]
        replica = ReplicaHypergraph(feed, constraints, group="replica")
        db = Database(feed=feed)
        db.execute("CREATE TABLE p (id INTEGER)")
        db.execute("CREATE TABLE c (id INTEGER, pid INTEGER)")
        db.execute("INSERT INTO p VALUES (1)")
        db.execute("INSERT INTO c VALUES (10, 1), (11, 2)")
        replica.sync()
        assert_converged(replica, db, constraints)
        db.execute("INSERT INTO p VALUES (2)")  # cures the dangling
        sync = replica.sync()
        assert sync.mode == "incremental"
        assert len(replica.graph) == 0
        assert_converged(replica, db, constraints)

    def test_overflow_is_unrecoverable(self):
        feed = ChangeFeed(max_retained=2)
        replica = ReplicaHypergraph(
            feed, [FunctionalDependency("emp", ["name"], ["salary"])],
            group="replica",
        )
        db, fd = fd_primary(feed)
        with pytest.raises(FeedError, match="cannot converge"):
            replica.sync()


class TestReplicaRestart:
    def test_reattach_resumes_from_committed_cut(self, tmp_path):
        directory = tmp_path / "feed"
        feed = ChangeFeed(directory)
        db, fd = fd_primary(feed)
        replica = ReplicaHypergraph(feed, [fd], group="replica")
        replica.sync()
        db.execute("INSERT INTO emp VALUES ('bob', 6)")
        db.execute("INSERT INTO emp VALUES ('carol', 1)")
        replica.sync(limit=1)  # commit a cut strictly inside the stream
        committed = dict(replica._consumer.committed)
        feed.close()

        # "Restart": a fresh feed instance on the same directory and a
        # fresh replica under the same group.
        reopened = ChangeFeed(directory)
        resumed = ReplicaHypergraph(reopened, [fd], group="replica")
        assert resumed._consumer.committed == committed
        # Before syncing, the graph equals full detection at the cut...
        cut = detect_conflicts(resumed.db, [fd])
        assert resumed.graph.as_dict() == cut.hypergraph.as_dict()
        assert resumed.lag == 1
        # ...and after syncing it converges to the primary's state.
        resumed.sync()
        assert_converged(resumed, db, [fd])

    def test_replay_converges_after_torn_tail(self, tmp_path):
        directory = tmp_path / "feed"
        feed = ChangeFeed(directory)
        db, fd = fd_primary(feed)
        db.execute("INSERT INTO emp VALUES ('bob', 6)")
        feed.flush()
        segment = directory / "topics" / "emp" / "000000000000.jsonl"
        data = segment.read_bytes()
        torn = data[: -(len(data.splitlines(True)[-1]) // 2)]
        segment.write_bytes(torn)  # crash mid-append: half a record

        reopened = ChangeFeed(directory)
        replica = ReplicaHypergraph(reopened, [fd], group="replica")
        replica.sync()
        # The torn insert never became durable: the replica converges on
        # the longest durable prefix (one fewer row than the primary).
        assert len(list(replica.db.table("emp").rows())) == 3
        full = detect_conflicts(replica.db, [fd])
        assert replica.graph.as_dict() == full.hypergraph.as_dict()

    def test_ddl_after_attach_forces_full_detection(self):
        feed = ChangeFeed()
        replica = ReplicaHypergraph(
            feed, [FunctionalDependency("emp", ["name"], ["salary"])],
            group="replica",
        )
        db, fd = fd_primary(feed)
        sync = replica.sync()
        assert sync.mode == "full"
        db.execute("CREATE TABLE other (a INTEGER)")
        db.execute("INSERT INTO emp VALUES ('bob', 6)")
        sync = replica.sync()
        assert sync.mode == "full"  # DDL in the batch
        assert_converged(replica, db, [fd])


class TestLiveTailing:
    def test_reader_instance_follows_the_writer_live(self, tmp_path):
        # The replica attaches through a *second* feed instance -- the
        # cross-process shape -- and before the writer appends anything.
        directory = tmp_path / "feed"
        writer = ChangeFeed(directory)
        reader = ChangeFeed(directory)
        fd = FunctionalDependency("emp", ["name"], ["salary"])
        replica = ReplicaHypergraph(reader, [fd], group="replica")
        assert not replica.ready  # nothing has been written yet

        db = Database(feed=writer)
        db.execute("CREATE TABLE emp (name TEXT, salary INTEGER)")
        db.execute("INSERT INTO emp VALUES ('ann', 10), ('ann', 20)")
        writer.flush()
        assert replica.sync().mode == "full"
        assert_converged(replica, db, [fd])

        db.execute("INSERT INTO emp VALUES ('bob', 5)")
        db.execute("UPDATE emp SET salary = 30 WHERE salary = 20")
        writer.flush()
        sync = replica.sync()
        assert sync.mode == "incremental"
        assert_converged(replica, db, [fd])
        writer.close()
        reader.close()

    def test_follow_drains_then_stops_when_idle(self, tmp_path):
        directory = tmp_path / "feed"
        writer = ChangeFeed(directory)
        db, fd = fd_primary(writer)
        writer.flush()
        reader = ChangeFeed(directory)
        replica = ReplicaHypergraph(reader, [fd], group="replica")
        seen = []
        summary = replica.follow(
            poll_interval=0.01, idle_limit=2, on_sync=seen.append
        )
        assert summary.records == 4  # schema + 3 rows
        assert summary.syncs == len(seen) == 1
        assert replica.lag == 0
        assert_converged(replica, db, [fd])
        writer.close()
        reader.close()


class TestRetentionRecovery:
    def primary(self, feed):
        db = Database(feed=feed)
        db.execute("CREATE TABLE emp (name TEXT, salary INTEGER)")
        db.execute("INSERT INTO emp VALUES ('ann', 10), ('ann', 20), ('bob', 5)")
        db.execute("INSERT INTO emp VALUES ('carol', 7), ('dan', 8)")
        db.execute("UPDATE emp SET salary = 9 WHERE name = 'dan'")
        return db, FunctionalDependency("emp", ["name"], ["salary"])

    def test_reattach_from_snapshot_after_truncation(self, tmp_path):
        directory = tmp_path / "feed"
        feed = ChangeFeed(directory, segment_records=2, retention="truncate")
        db, fd = self.primary(feed)
        replica = ReplicaHypergraph(feed, [fd], group="replica")
        replica.sync()
        replica.close()  # checkpoint at the committed cut
        # The close-time checkpoint is the group's recovery point; with
        # the *writer* checkpointed too (its registration would
        # otherwise pin the whole history), retention can reclaim every
        # sealed segment below both recovery points.
        db.checkpoint()
        feed.truncate()
        (emp,) = [t for t in feed.topics() if t.name == "emp"]
        assert emp.start > 0  # sealed prefix actually reclaimed
        with pytest.raises(FeedError, match="no longer retained"):
            feed.records_upto(feed.end_offsets())
        feed.close()

        # Re-attach: replay is impossible, the snapshot takes over.
        reopened = ChangeFeed(directory, segment_records=2)
        resumed = ReplicaHypergraph(reopened, [fd], group="replica")
        assert_converged(resumed, db, [fd])
        reopened.close()

    def test_snapshot_plus_gap_replay(self, tmp_path):
        # Snapshot taken strictly *before* the committed cut: bootstrap
        # restores it and replays the still-retained gap on top.
        directory = tmp_path / "feed"
        feed = ChangeFeed(directory, segment_records=2, retention="truncate")
        db, fd = self.primary(feed)
        replica = ReplicaHypergraph(feed, [fd], group="replica")
        replica.sync(limit=4)
        replica.checkpoint()  # recovery point at an intermediate cut
        replica.sync()  # commit the rest (no further checkpoint)
        snapshot_cut = dict(replica._consumer.load_snapshot()[0])
        committed = dict(replica._consumer.committed)
        assert snapshot_cut != committed
        replica._consumer.close()  # detach *without* a fresh checkpoint
        db.checkpoint()  # release the writer's pin (and reclaim)
        feed.truncate()
        (emp,) = [t for t in feed.topics() if t.name == "emp"]
        assert 0 < emp.start  # the replica's snapshot cut, not its
        assert emp.start <= snapshot_cut["emp"]  # committed cut, bounds
        feed.close()  # what was reclaimed

        reopened = ChangeFeed(directory, segment_records=2)
        resumed = ReplicaHypergraph(reopened, [fd], group="replica")
        assert resumed._consumer.committed == committed
        assert_converged(resumed, db, [fd])
        reopened.close()

    def test_truncation_racing_bootstrap_falls_back_to_the_snapshot(
        self, tmp_path
    ):
        # iter_records validates against the manifest eagerly, but reads
        # segment files lazily: a segment deleted *after* validation
        # surfaces as a FeedError mid-replay, which must still land in
        # the snapshot fallback (with the half-applied replay discarded).
        directory = tmp_path / "feed"
        feed = ChangeFeed(directory, segment_records=2)
        db, fd = self.primary(feed)
        replica = ReplicaHypergraph(feed, [fd], group="replica")
        replica.sync()
        replica.close()  # snapshot at the committed cut
        feed.close()

        # Simulate the race: a sealed segment vanishes without the
        # manifest (validation's source of truth) knowing yet.
        victims = sorted((directory / "topics" / "emp").glob("*.jsonl"))
        victims[1].unlink()

        reopened = ChangeFeed(directory, segment_records=2)
        resumed = ReplicaHypergraph(reopened, [fd], group="replica")
        assert_converged(resumed, db, [fd])
        reopened.close()

    def test_reattach_without_snapshot_fails_loudly(self, tmp_path):
        directory = tmp_path / "feed"
        feed = ChangeFeed(directory, segment_records=2, retention="truncate")
        db, fd = self.primary(feed)
        replica = ReplicaHypergraph(feed, [fd], group="replica", snapshots=False)
        replica.sync()
        replica.close()  # no snapshot written
        db.checkpoint()  # the writer can recover -- the replica cannot
        feed.truncate()
        feed.close()

        reopened = ChangeFeed(directory, segment_records=2)
        with pytest.raises(FeedError, match="no longer retained"):
            ReplicaHypergraph(reopened, [fd], group="replica", snapshots=False)
        reopened.close()

    def test_periodic_checkpoints_bound_recovery(self, tmp_path):
        directory = tmp_path / "feed"
        feed = ChangeFeed(directory, segment_records=2, retention="truncate")
        db, fd = self.primary(feed)
        replica = ReplicaHypergraph(
            feed, [fd], group="replica", checkpoint_records=3
        )
        db.checkpoint()  # release the writer's pin so retention can act
        while replica.lag:
            replica.sync(limit=3)
        assert replica._consumer.load_snapshot() is not None
        replica._consumer.close()  # crash-style detach: rely on the
        feed.close()  # auto-checkpoints alone

        reopened = ChangeFeed(directory, segment_records=2)
        resumed = ReplicaHypergraph(reopened, [fd], group="replica")
        assert_converged(resumed, db, [fd])
        reopened.close()


class TestFreshGroupSeeding:
    def test_fresh_group_seeds_from_the_writer_checkpoint(self, tmp_path):
        # A group born *after* retention reclaimed the prefix can never
        # replay offset 0 -- but the writer's checkpoint carries the
        # state at its cut, so a fresh replica seeds from it and
        # consumes only the retained records.
        directory = tmp_path / "feed"
        feed = ChangeFeed(directory, segment_records=2, retention="truncate")
        db = Database(feed=feed)
        db.execute("CREATE TABLE emp (name TEXT, salary INTEGER)")
        db.execute("INSERT INTO emp VALUES ('ann', 10), ('bob', 5)")
        db.checkpoint()
        db.execute("INSERT INTO emp VALUES ('ann', 20)")  # retained suffix
        drain = feed.consumer("drain", start="beginning")
        drain.poll()
        drain.commit()  # reclaims the sealed prefix behind the checkpoint
        (emp,) = [t for t in feed.topics() if t.name == "emp"]
        assert emp.start > 0
        feed.flush()

        fd = FunctionalDependency("emp", ["name"], ["salary"])
        reader = ChangeFeed(directory, segment_records=2)
        fresh = ReplicaHypergraph(reader, [fd], group="fresh")
        while fresh.lag:
            fresh.sync()
        assert_converged(fresh, db, [fd])
        fresh._consumer.close()
        reader.close()
        feed.close()

    def test_stale_reader_instance_still_seeds(self, tmp_path):
        # The reader feed opened *before* the reclaim: its in-memory
        # bases are stale zeros, so seeding must judge replayability
        # from the live directory, not from memory.
        directory = tmp_path / "feed"
        feed = ChangeFeed(directory, segment_records=2, retention="truncate")
        db = Database(feed=feed)
        db.execute("CREATE TABLE emp (name TEXT, salary INTEGER)")
        db.execute("INSERT INTO emp VALUES ('ann', 10), ('bob', 5)")
        db.checkpoint()
        db.execute("INSERT INTO emp VALUES ('ann', 20)")
        feed.flush()
        reader = ChangeFeed(directory, segment_records=2)  # pre-reclaim view
        drain = feed.consumer("drain", start="beginning")
        drain.poll()
        drain.commit()  # the foreign (writer-side) reclaim happens now
        feed.flush()

        fd = FunctionalDependency("emp", ["name"], ["salary"])
        fresh = ReplicaHypergraph(reader, [fd], group="fresh")
        while fresh.lag:
            fresh.sync()
        assert_converged(fresh, db, [fd])
        fresh._consumer.close()
        reader.close()
        feed.close()

    def test_fresh_group_without_checkpoint_still_reports_loss(self, tmp_path):
        # No writer checkpoint to seed from: the fresh group must keep
        # failing loudly rather than silently starting empty.
        directory = tmp_path / "feed"
        feed = ChangeFeed(directory, segment_records=2, retention="truncate")
        db = Database(feed=feed)
        db.execute("CREATE TABLE emp (name TEXT, salary INTEGER)")
        db.execute("INSERT INTO emp VALUES ('ann', 10), ('bob', 5)")
        db.execute("INSERT INTO emp VALUES ('carol', 7), ('dan', 8)")
        drain = feed.consumer("drain", start="beginning")
        drain.poll()
        drain.commit()
        from repro.engine.database import WRITER_GROUP

        feed.drop_group(WRITER_GROUP)  # abandons the writer *and* reclaims
        (emp,) = [t for t in feed.topics() if t.name == "emp"]
        assert emp.start > 0
        feed.flush()

        fd = FunctionalDependency("emp", ["name"], ["salary"])
        reader = ChangeFeed(directory, segment_records=2)
        fresh = ReplicaHypergraph(reader, [fd], group="fresh")
        with pytest.raises(FeedError, match="dropped"):
            fresh.sync()
        reader.close()
        feed.close()


class TestMixedCaseNames:
    def test_snapshot_restore_bridges_topic_and_catalog_case(self, tmp_path):
        # Feed topics are lower-cased relation names; the snapshot keeps
        # the declared mixed case.  A snapshot restore followed by a
        # gap replay must resolve one onto the other.
        directory = tmp_path / "feed"
        feed = ChangeFeed(directory, segment_records=2, retention="truncate")
        db = Database(feed=feed)
        db.execute("CREATE TABLE Emp (Name TEXT, Salary INTEGER)")
        db.execute("INSERT INTO Emp VALUES ('ann', 10), ('ann', 20)")
        fd = FunctionalDependency("Emp", ["Name"], ["Salary"])
        replica = ReplicaHypergraph(feed, [fd], group="replica")
        replica.sync()
        replica.checkpoint()  # snapshot carries the mixed-case schema
        db.execute("INSERT INTO Emp VALUES ('bob', 5), ('ann', 30)")
        replica.sync()
        replica._consumer.close()  # keep the *older* snapshot cut
        db.checkpoint()
        feed.truncate()
        feed.close()

        reopened = ChangeFeed(directory, segment_records=2)
        resumed = ReplicaHypergraph(reopened, [fd], group="replica")
        assert resumed.db.catalog.table_names() == ["Emp"]
        assert_converged(resumed, db, [fd])
        reopened.close()


class TestReplicaFailureModes:
    def test_late_attach_to_lossy_inmemory_feed_is_rejected(self):
        # Records published before any consumer group exist are dropped
        # (zero-cost idle feed): a replica attaching afterwards could
        # never rebuild them, so the constructor must refuse.
        feed = ChangeFeed()
        db, fd = fd_primary(feed)  # no groups yet: history is dropped
        with pytest.raises(FeedError, match="dropped"):
            ReplicaHypergraph(feed, [fd], group="late")

    def test_deferred_replica_tolerates_empty_polls(self):
        feed = ChangeFeed()
        replica = ReplicaHypergraph(
            feed, [FunctionalDependency("emp", ["name"], ["salary"])],
            group="replica",
        )
        assert not replica.ready  # table not replicated yet
        sync = replica.sync()  # nothing pending: must not raise
        assert sync.mode == "deferred"
        db, fd = fd_primary(feed)
        assert replica.sync().mode == "full"
        assert_converged(replica, db, [fd])

    def test_failed_full_detection_does_not_strand_a_stale_graph(self):
        from repro.errors import ConstraintError

        feed = ChangeFeed()
        constraints = [
            FunctionalDependency("p", ["id"], ["v"]),
            ForeignKeyConstraint("c", ["pid"], "p", ["id"]),
        ]
        replica = ReplicaHypergraph(feed, constraints, group="replica")
        db = Database(feed=feed)
        db.execute("CREATE TABLE p (id INTEGER, v INTEGER)")
        db.execute("CREATE TABLE c (id INTEGER, pid INTEGER)")
        db.execute("INSERT INTO p VALUES (1, 5)")
        db.execute("INSERT INTO c VALUES (10, 1)")
        replica.sync()
        assert replica.ready
        # A key conflict on a referenced relation, arriving in the same
        # batch as DDL: full detection raises (outside the restricted
        # class) and the pre-DDL detector must NOT stay attached.
        db.execute("CREATE TABLE other (a INTEGER)")
        db.execute("INSERT INTO p VALUES (1, 6)")
        with pytest.raises(ConstraintError):
            replica.sync()
        assert not replica.ready  # no stale graph taking deltas
        # Curing the conflict lets the next sync recover via full
        # detection (the offsets were committed before the failure).
        db.execute("DELETE FROM p WHERE v = 6")
        sync = replica.sync()
        assert sync.mode == "full"
        assert_converged(replica, db, constraints)
