"""Tests for sharded per-topic hypergraph maintenance."""

from __future__ import annotations

import pytest

from repro.conflicts import (
    ShardCoordinator,
    detect_conflicts,
    merge_graphs,
    plan_assignment,
    vertex,
)
from repro.conflicts.hypergraph import ConflictHypergraph
from repro.conflicts.shard import constraint_relations, global_constraint_names
from repro.constraints import (
    ConstraintAtom,
    DenialConstraint,
    FunctionalDependency,
)
from repro.constraints.foreign_key import ForeignKeyConstraint
from repro.engine.database import Database
from repro.engine.feed import SCHEMA_TOPIC, ChangeFeed
from repro.errors import ConstraintError
from repro.sql.parser import parse_expression


def fd(relation, lhs, rhs):
    return FunctionalDependency(relation, lhs, rhs)


def cross_denial(name, left, right, condition):
    return DenialConstraint(
        name,
        (ConstraintAtom("t1", left), ConstraintAtom("t2", right)),
        parse_expression(condition),
    )


class TestPlanAssignment:
    def test_co_referenced_relations_share_a_worker(self):
        constraints = [
            ForeignKeyConstraint("c", ["pid"], "p", ["id"]),
            fd("u", ["id"], ["v"]),
        ]
        plan = plan_assignment(constraints, workers=2)
        assert plan.topic_owner["c"] == plan.topic_owner["p"]
        assert plan.topic_owner["u"] != plan.topic_owner["c"]
        assert plan.cross_shard == ()

    def test_components_balance_across_workers(self):
        constraints = [fd(name, ["id"], ["v"]) for name in "abcd"]
        plan = plan_assignment(constraints, workers=2)
        assert sorted(len(spec.owned) for spec in plan.shards) == [2, 2]
        # Deterministic: planning twice gives the same assignment.
        again = plan_assignment(constraints, workers=2)
        assert again.topic_owner == plan.topic_owner

    def test_unconstrained_relations_still_get_owners(self):
        plan = plan_assignment([], workers=2, relations=["r", "s"])
        assert set(plan.topic_owner) == {"r", "s"}

    def test_explicit_assignment_flags_cross_shard(self):
        constraint = ForeignKeyConstraint("c", ["pid"], "p", ["id"])
        plan = plan_assignment(
            [constraint], workers=2, assignment={"c": 0, "p": 1}
        )
        owner = plan.shards[0]  # the referencing side anchors ownership
        assert owner.constraints == (constraint,)
        assert owner.cross_shard == (str(constraint),)
        assert owner.foreign == ("p",)
        assert "p" in owner.subscribed
        assert plan.shards[1].constraints == ()

    def test_pinned_relation_drags_its_component(self):
        constraints = [ForeignKeyConstraint("c", ["pid"], "p", ["id"])]
        plan = plan_assignment(
            constraints, workers=2, assignment={"c": 1}
        )
        assert plan.topic_owner == {"c": 1, "p": 1}
        assert plan.cross_shard == ()

    def test_schema_topic_always_subscribed(self):
        plan = plan_assignment([fd("r", ["a"], ["b"])], workers=2)
        for spec in plan.shards:
            assert SCHEMA_TOPIC in spec.subscribed

    def test_rejects_bad_worker_counts_and_pins(self):
        with pytest.raises(ConstraintError):
            plan_assignment([], workers=0)
        with pytest.raises(ConstraintError):
            plan_assignment([], workers=2, assignment={"r": 5})

    def test_global_fk_cycle_rejected_at_plan_time(self):
        cyclic = [
            ForeignKeyConstraint("a", ["x"], "b", ["x"]),
            ForeignKeyConstraint("b", ["x"], "a", ["x"]),
        ]
        with pytest.raises(ConstraintError, match="cyclic"):
            plan_assignment(cyclic, workers=2, assignment={"a": 0, "b": 1})

    def test_constraint_relations_lowercase_and_anchor_first(self):
        constraint = ForeignKeyConstraint("Child", ["pid"], "Parent", ["id"])
        assert constraint_relations(constraint) == ("child", "parent")
        denial = cross_denial("x", "R", "S", "t1.a = t2.a")
        assert constraint_relations(denial) == ("r", "s")

    def test_global_constraint_names_denials_before_fks(self):
        constraints = [
            ForeignKeyConstraint("c", ["pid"], "p", ["id"]),
            fd("c", ["id"], ["v"]),
        ]
        names = global_constraint_names(constraints)
        assert names[0].startswith("fd:")
        assert names[-1].startswith("FK ")


class TestMergeGraphs:
    def test_duplicate_edges_dedup_to_the_earlier_label(self):
        edge = frozenset({vertex("r", 1), vertex("r", 2)})
        first = ConflictHypergraph([edge], ["early"])
        second = ConflictHypergraph([edge], ["late"])
        merged = merge_graphs([second, first], ["early", "late"])
        assert merged.as_dict() == {edge: "early"}

    def test_cross_shard_subsumption_drops_the_superset(self):
        small = frozenset({vertex("r", 1)})
        big = frozenset({vertex("r", 1), vertex("s", 2)})
        merged = merge_graphs(
            [ConflictHypergraph([big], ["b"]), ConflictHypergraph([small], ["a"])],
            ["a", "b"],
        )
        assert merged.as_dict() == {small: "a"}


def build_primary(directory, statements):
    feed = ChangeFeed(directory)
    db = Database(feed=feed)
    for statement in statements:
        db.execute(statement)
    feed.flush()
    return feed, db


TWO_TABLE_SETUP = [
    "CREATE TABLE p (id INTEGER)",
    "CREATE TABLE c (id INTEGER, pid INTEGER, v INTEGER)",
    "INSERT INTO p VALUES (0), (1)",
    "INSERT INTO c VALUES (0, 0, 2), (0, 0, 3), (1, 5, 2)",
]


class TestShardWorkers:
    def test_workers_hold_partial_databases(self, tmp_path):
        feed, db = build_primary(tmp_path / "feed", TWO_TABLE_SETUP)
        constraints = [fd("c", ["id"], ["v"])]
        coordinator = ShardCoordinator(
            feed, constraints, workers=2, assignment={"c": 0, "p": 1}
        )
        coordinator.drain()
        w0, w1 = coordinator.workers
        assert dict(w0.db.table("c").items()) == dict(db.table("c").items())
        assert dict(w0.db.table("p").items()) == {}  # not subscribed
        assert dict(w1.db.table("p").items()) == dict(db.table("p").items())
        coordinator.close()
        feed.close()

    def test_merged_equals_full_detection(self, tmp_path):
        feed, db = build_primary(tmp_path / "feed", TWO_TABLE_SETUP)
        constraints = [
            fd("c", ["id"], ["v"]),
            ForeignKeyConstraint("c", ["pid"], "p", ["id"]),
        ]
        coordinator = ShardCoordinator(feed, constraints, workers=2)
        coordinator.drain()
        assert coordinator.lag == 0
        assert (
            coordinator.graph.as_dict()
            == detect_conflicts(db, constraints).hypergraph.as_dict()
        )
        coordinator.close()
        feed.close()

    def test_worker_retention_floor_pins_only_its_topics(self, tmp_path):
        feed, db = build_primary(tmp_path / "feed", TWO_TABLE_SETUP)
        constraints = [fd("c", ["id"], ["v"])]
        coordinator = ShardCoordinator(
            feed, constraints, workers=2, assignment={"c": 0, "p": 1}
        )
        coordinator.drain()
        points = feed.recovery_points()
        shard0 = points["shard-0"]
        assert shard0.topics is not None
        assert "p" not in shard0.topics  # worker 0 never pins topic p
        assert "c" in shard0.topics and SCHEMA_TOPIC in shard0.topics
        coordinator.close()
        feed.close()

    def test_in_memory_feed_coordinator(self):
        db = Database()
        constraints = [fd("c", ["id"], ["v"])]
        coordinator = ShardCoordinator(
            db.changes.feed, constraints, workers=2, relations=["p"]
        )
        for statement in TWO_TABLE_SETUP:
            db.execute(statement)
        coordinator.drain()
        assert (
            coordinator.graph.as_dict()
            == detect_conflicts(db, constraints).hypergraph.as_dict()
        )
        coordinator.close()


class TestCrossShardConstraints:
    def constraints(self):
        return [
            fd("c", ["id"], ["v"]),
            ForeignKeyConstraint("c", ["pid"], "p", ["id"]),
        ]

    def split(self, feed):
        return ShardCoordinator(
            feed, self.constraints(), workers=2, assignment={"c": 0, "p": 1}
        )

    def test_cross_shard_fk_edge_exactly_once(self, tmp_path):
        feed, db = build_primary(tmp_path / "feed", TWO_TABLE_SETUP)
        coordinator = self.split(feed)
        coordinator.drain()
        dangling = frozenset({vertex("c", 2)})  # pid 5 references nothing
        merged = coordinator.graph
        assert merged.as_dict()[dangling].startswith("FK ")
        # Exactly once: only the owner worker derived it.
        holders = [
            worker
            for worker in coordinator.workers
            if worker.ready and worker.graph.contains_edge(dangling)
        ]
        assert len(holders) == 1
        assert holders[0].spec.index == 0  # the referencing side's owner
        coordinator.close()
        feed.close()

    def test_curing_the_referenced_side_retracts_across_boundary(
        self, tmp_path
    ):
        feed, db = build_primary(tmp_path / "feed", TWO_TABLE_SETUP)
        coordinator = self.split(feed)
        coordinator.drain()
        dangling = frozenset({vertex("c", 2)})
        assert dangling in coordinator.graph.as_dict()
        db.execute("INSERT INTO p VALUES (5)")  # cure
        feed.flush()
        coordinator.drain()
        assert dangling not in coordinator.graph.as_dict()
        db.execute("DELETE FROM p WHERE id = 5")  # re-dangle
        feed.flush()
        coordinator.drain()
        assert dangling in coordinator.graph.as_dict()
        assert (
            coordinator.graph.as_dict()
            == detect_conflicts(db, self.constraints()).hypergraph.as_dict()
        )
        coordinator.close()
        feed.close()

    def test_cross_shard_two_relation_denial_exactly_once(self, tmp_path):
        statements = [
            "CREATE TABLE r (a INTEGER)",
            "CREATE TABLE s (a INTEGER)",
            "INSERT INTO r VALUES (1), (2)",
            "INSERT INTO s VALUES (2), (3)",
        ]
        feed, db = build_primary(tmp_path / "feed", statements)
        exclusion = cross_denial("no-overlap", "r", "s", "t1.a = t2.a")
        coordinator = ShardCoordinator(
            feed, [exclusion], workers=2, assignment={"r": 0, "s": 1}
        )
        coordinator.drain()
        spec = coordinator.workers[0].spec
        assert spec.cross_shard == (str(exclusion),)
        merged = coordinator.graph.as_dict()
        full = detect_conflicts(db, [exclusion]).hypergraph.as_dict()
        assert merged == full  # no duplicates, no silent drops
        assert len(merged) == 1
        # Curing the foreign (s) side retracts across the boundary.
        db.execute("DELETE FROM s WHERE a = 2")
        feed.flush()
        coordinator.drain()
        assert coordinator.graph.as_dict() == {}
        coordinator.close()
        feed.close()

    def test_cross_shard_duplicate_violation_dedups_by_global_order(
        self, tmp_path
    ):
        # The same pair violates two constraints owned by different
        # workers; the merged label must match the monolith's.
        statements = [
            "CREATE TABLE r (a INTEGER, b INTEGER)",
            "CREATE TABLE s (a INTEGER)",
            "INSERT INTO r VALUES (1, 1), (1, 2)",
        ]
        feed, db = build_primary(tmp_path / "feed", statements)
        first = fd("r", ["a"], ["b"])
        second = DenialConstraint(
            "pairs",
            (ConstraintAtom("t1", "r"), ConstraintAtom("t2", "r")),
            parse_expression("t1.a = t2.a AND t1.b < t2.b"),
        )
        # Two workers, both subscribing r: force by giving the second
        # constraint to a worker via a dummy cross-shard split.
        anchor = cross_denial("residue", "s", "r", "t1.a = t2.a AND t2.b < 0")
        coordinator = ShardCoordinator(
            feed,
            [first, second, anchor],
            workers=2,
            assignment={"r": 0, "s": 1},
        )
        coordinator.drain()
        merged = coordinator.graph.as_dict()
        full = detect_conflicts(
            db, [first, second, anchor]
        ).hypergraph.as_dict()
        assert merged == full
        coordinator.close()
        feed.close()

    def test_cross_boundary_subsumption_and_resurrection(self, tmp_path):
        # Worker 0 derives a singleton on r (its denial); worker 1
        # derives a pair {s, r} containing the same r tuple (its
        # cross-shard denial).  The merged view must subsume the pair
        # while the singleton lives and resurrect it when the
        # singleton is cured -- exactly like the monolith.
        statements = [
            "CREATE TABLE r (a INTEGER)",
            "CREATE TABLE s (a INTEGER)",
            "INSERT INTO r VALUES (1)",
            "INSERT INTO s VALUES (1)",
        ]
        feed, db = build_primary(tmp_path / "feed", statements)
        constraints = [
            DenialConstraint(
                "no-ones",
                (ConstraintAtom("t", "r"),),
                parse_expression("t.a = 1"),
            ),
            cross_denial("overlap", "s", "r", "t1.a = t2.a"),
        ]
        coordinator = ShardCoordinator(
            feed, constraints, workers=2, assignment={"r": 0, "s": 1}
        )
        coordinator.drain()
        singleton = frozenset({vertex("r", 0)})
        pair = frozenset({vertex("r", 0), vertex("s", 0)})
        # Worker 1 holds the pair, but the merged view subsumes it.
        assert coordinator.workers[1].graph.contains_edge(pair)
        assert coordinator.graph.as_dict() == {singleton: "no-ones"}
        assert (
            coordinator.graph.as_dict()
            == detect_conflicts(db, constraints).hypergraph.as_dict()
        )
        # Cure the singleton: the pair resurfaces across the boundary.
        db.execute("UPDATE r SET a = 2 WHERE a = 1")
        db.execute("INSERT INTO s VALUES (2)")
        feed.flush()
        coordinator.drain()
        assert (
            coordinator.graph.as_dict()
            == detect_conflicts(db, constraints).hypergraph.as_dict()
        )
        assert all(len(e) == 2 for e in coordinator.graph.as_dict())
        coordinator.close()
        feed.close()

    def test_restricted_class_check_stays_global(self, tmp_path):
        # A choice conflict on the FK-referenced relation must raise on
        # the shard that owns the denial, exactly like the monolith.
        statements = [
            "CREATE TABLE p (id INTEGER, v INTEGER)",
            "CREATE TABLE c (id INTEGER, pid INTEGER)",
            "INSERT INTO p VALUES (1, 1), (1, 2)",
        ]
        feed, db = build_primary(tmp_path / "feed", statements)
        constraints = [
            fd("p", ["id"], ["v"]),  # multi-tuple conflicts on p
            ForeignKeyConstraint("c", ["pid"], "p", ["id"]),
        ]
        with pytest.raises(ConstraintError, match="referenced"):
            detect_conflicts(db, constraints)
        with pytest.raises(ConstraintError, match="referenced"):
            coordinator = ShardCoordinator(
                feed, constraints, workers=2, assignment={"p": 0, "c": 1}
            )
            coordinator.drain()
        feed.close()


class TestCheckpointRestart:
    def test_worker_restarts_from_committed_cut(self, tmp_path):
        feed, db = build_primary(tmp_path / "feed", TWO_TABLE_SETUP)
        constraints = [
            fd("c", ["id"], ["v"]),
            ForeignKeyConstraint("c", ["pid"], "p", ["id"]),
        ]
        coordinator = ShardCoordinator(
            feed, constraints, workers=2, assignment={"c": 0, "p": 1}
        )
        coordinator.drain()
        before = coordinator.graph.as_dict()
        restarted = coordinator.restart(0)
        assert restarted.lag == 0  # resumed at the committed cut
        assert coordinator.graph.as_dict() == before
        coordinator.close()
        feed.close()

    def test_worker_restarts_from_shard_checkpoint_after_truncation(
        self, tmp_path
    ):
        directory = tmp_path / "feed"
        feed = ChangeFeed(directory, segment_records=2, retention="truncate")
        db = Database(feed=feed)
        for statement in TWO_TABLE_SETUP:
            db.execute(statement)
        feed.flush()
        constraints = [
            fd("c", ["id"], ["v"]),
            ForeignKeyConstraint("c", ["pid"], "p", ["id"]),
        ]
        coordinator = ShardCoordinator(
            feed, constraints, workers=2, assignment={"c": 0, "p": 1}
        )
        coordinator.drain()
        # Checkpoint every recovery participant, then let retention
        # reclaim the prefix behind the floors.
        coordinator.checkpoint()
        db.checkpoint()
        for key in range(10, 16):
            db.execute(f"INSERT INTO c VALUES ({key}, 0, {key})")
        feed.flush()
        coordinator.drain()
        coordinator.checkpoint()
        db.checkpoint()
        assert any(t.start > 0 for t in feed.topics())  # truncation ran
        before = coordinator.graph.as_dict()
        for index in range(2):
            coordinator.restart(index)
        assert coordinator.graph.as_dict() == before
        assert (
            coordinator.graph.as_dict()
            == detect_conflicts(db, constraints).hypergraph.as_dict()
        )
        coordinator.close()
        feed.close()


class TestMixedCaseRelations:
    def test_mixed_case_tables_and_constraints_shard_cleanly(self, tmp_path):
        statements = [
            "CREATE TABLE Dept (dname TEXT)",
            "CREATE TABLE Emp (name TEXT, dept TEXT, salary INTEGER)",
            "INSERT INTO Dept VALUES ('cs'), ('ee')",
            "INSERT INTO Emp VALUES"
            " ('ann', 'cs', 10), ('ann', 'cs', 12), ('bob', 'me', 5)",
        ]
        feed, db = build_primary(tmp_path / "feed", statements)
        constraints = [
            FunctionalDependency("Emp", ["name"], ["salary"]),
            ForeignKeyConstraint("Emp", ["dept"], "Dept", ["dname"]),
        ]
        coordinator = ShardCoordinator(
            feed, constraints, workers=2, assignment={"EMP": 0, "dept": 1}
        )
        assert coordinator.plan.topic_owner == {"emp": 0, "dept": 1}
        coordinator.drain()
        assert (
            coordinator.graph.as_dict()
            == detect_conflicts(db, constraints).hypergraph.as_dict()
        )
        # The assembled database answers under the declared case.
        assembled = coordinator.database()
        assert dict(assembled.table("Emp").items()) == dict(
            db.table("Emp").items()
        )
        coordinator.close()
        feed.close()


class TestShardedEngine:
    def test_engine_answers_from_the_merged_view(self, tmp_path):
        feed, db = build_primary(tmp_path / "feed", TWO_TABLE_SETUP)
        constraints = [fd("c", ["id"], ["v"])]
        coordinator = ShardCoordinator(
            feed, constraints, workers=2, assignment={"c": 0, "p": 1}
        )
        coordinator.drain()
        engine = coordinator.engine()
        assert engine.detection.mode == "external"
        answers = engine.consistent_answers("SELECT * FROM c")
        # Tuple id 0 is disputed (two v values); id 1 survives every
        # repair.
        assert answers.as_set() == {(1, 5, 2)}
        coordinator.close()
        feed.close()
