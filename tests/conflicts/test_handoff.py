"""Tests for in-process topic handoff: export/reshape, the coordinator
protocol, the rebalance chooser, and dead-worker status accounting."""

from __future__ import annotations

import pytest

from repro.conflicts import (
    ShardCoordinator,
    choose_move,
    detect_conflicts,
    plan_assignment,
)
from repro.constraints import FunctionalDependency
from repro.engine.database import Database
from repro.engine.feed import ChangeFeed
from repro.errors import ConstraintError, FeedError


def fd(relation):
    return FunctionalDependency(relation, ["id"], ["v"])


FOUR_TOPICS = ("r", "s", "u", "w")


def build_primary(directory, hot=12, quiet_w=False):
    feed = ChangeFeed(directory)
    db = Database(feed=feed)
    for name in FOUR_TOPICS:
        db.execute(f"CREATE TABLE {name} (id INTEGER, v INTEGER)")
        if name != "w" or not quiet_w:
            db.execute(f"INSERT INTO {name} VALUES (1, 1), (1, 2)")
    for i in range(hot):  # skew topic u
        db.execute(f"INSERT INTO u VALUES ({i % 3}, {i})")
    feed.flush()
    return feed, db


def constraints():
    return [fd(name) for name in FOUR_TOPICS]


def skewed_coordinator(feed):
    return ShardCoordinator(
        feed,
        constraints(),
        workers=2,
        assignment={"r": 0, "s": 0, "u": 0, "w": 1},
    )


class TestChooseMove:
    def plan(self):
        return plan_assignment(
            constraints(), 2, assignment={"r": 0, "s": 0, "u": 0, "w": 1}
        )

    def test_moves_a_topic_from_heavy_to_light(self):
        move = choose_move(
            self.plan(),
            [{}, {}],
            {"r": 2, "s": 2, "u": 20, "w": 0},
        )
        assert move is not None
        assert move.topic == "u" and (move.source, move.target) == (0, 1)
        assert move.skew_after < move.skew_before

    def test_balanced_load_proposes_nothing(self):
        ends = {"r": 4, "s": 4, "u": 4, "w": 12}
        assert choose_move(self.plan(), [{}, {}], ends) is None

    def test_threshold_suppresses_small_skew(self):
        ends = {"r": 2, "s": 2, "u": 6, "w": 2}
        assert choose_move(self.plan(), [{}, {}], ends, threshold=50) is None

    def test_committed_offsets_reduce_pending_lag(self):
        # Worker 0 already consumed u: no pending lag, no move.
        committed = [{"r": 2, "s": 2, "u": 20}, {"w": 2}]
        ends = {"r": 2, "s": 2, "u": 20, "w": 2}
        assert choose_move(self.plan(), committed, ends) is None

    def test_edge_counts_contribute_to_load(self):
        ends = {"r": 0, "s": 0, "u": 4, "w": 0}
        move = choose_move(
            self.plan(), [{}, {}], ends, edges=[30, 0]
        )
        assert move is not None and move.source == 0

    def test_picks_the_skew_minimizing_topic(self):
        # s (4 pending) equalizes exactly; r (0 pending) changes
        # nothing and u (6 pending) overshoots -- s wins.
        move = choose_move(
            self.plan(), [{}, {}], {"r": 0, "s": 4, "u": 6, "w": 2}
        )
        assert move is not None and move.topic == "s"
        assert move.skew_after == 0

    def test_deterministic_tie_breaks(self):
        plan = self.plan()
        ends = {"r": 6, "s": 6, "u": 6, "w": 2}
        first = choose_move(plan, [{}, {}], ends)
        again = choose_move(plan, [{}, {}], ends)
        assert first == again


class TestWorkerExportReshape:
    def test_export_stores_a_packet_at_the_committed_cut(self, tmp_path):
        feed, db = build_primary(tmp_path / "f")
        coordinator = skewed_coordinator(feed)
        coordinator.drain()
        owner = coordinator.workers[0]
        cut = owner.export_topic("u")
        assert cut == owner.committed["u"]
        assert feed.transfers() == {"u": cut}
        stored_cut, payload = feed.load_transfer("u")
        assert stored_cut == cut
        # The partial snapshot carries rows for the released topic.
        assert any("rows" in entry for entry in payload["tables"])
        coordinator.close()
        feed.close()

    def test_export_requires_subscription(self, tmp_path):
        feed, db = build_primary(tmp_path / "f")
        coordinator = skewed_coordinator(feed)
        coordinator.drain()
        with pytest.raises(FeedError):
            coordinator.workers[0].export_topic("w")
        coordinator.close()
        feed.close()

    def test_reshape_resumes_from_packet_without_full_replay(self, tmp_path):
        feed, db = build_primary(tmp_path / "f")
        coordinator = skewed_coordinator(feed)
        coordinator.drain()
        coordinator.workers[0].export_topic("u")
        # Write a suffix past the cut before the adopter reshapes.
        for i in range(4):
            db.execute(f"INSERT INTO u VALUES ({i}, {50 + i})")
        feed.flush()
        new_plan = plan_assignment(
            constraints(), 2, assignment={"r": 0, "s": 0, "u": 1, "w": 1}
        )
        adopter = coordinator.workers[1]
        reshape = adopter.reshape(new_plan.shards[1], new_plan)
        (resume,) = [r for r in reshape.added if r.topic == "u"]
        assert resume.mode == "packet"
        assert resume.end - resume.cut == 4  # only the suffix remains
        while adopter.lag:
            adopter.sync()
        replayed = adopter.applied_records["u"] - resume.baseline
        assert replayed == 4  # == retained suffix, not full history
        coordinator.close()
        feed.close()


class TestCoordinatorHandoff:
    def test_five_step_protocol_preserves_equivalence(self, tmp_path):
        feed, db = build_primary(tmp_path / "f")
        coordinator = skewed_coordinator(feed)
        coordinator.drain()
        expected = detect_conflicts(db, constraints()).hypergraph.as_dict()
        assert coordinator.graph.as_dict() == expected
        steps = []
        coordinator.handoff("u", 1, on_step=steps.append)
        assert steps == [
            "released", "granted", "adopted", "pruned", "cleared",
        ]
        assert coordinator.plan.topic_owner["u"] == 1
        coordinator.drain()
        assert coordinator.graph.as_dict() == expected
        assert feed.transfers() == {}  # packets are spent
        # The old owner's rows and floor are gone.
        assert not dict(coordinator.workers[0].db.table("u").items())
        points = feed.recovery_points()
        assert "u" not in points["shard-0"].floor
        assert "u" in points["shard-1"].floor
        coordinator.close()
        feed.close()

    def test_handoff_to_current_owner_is_a_no_op(self, tmp_path):
        feed, db = build_primary(tmp_path / "f")
        coordinator = skewed_coordinator(feed)
        coordinator.drain()
        steps = []
        coordinator.handoff("u", 0, on_step=steps.append)
        assert steps == []
        coordinator.close()
        feed.close()

    def test_handoff_validates_inputs(self, tmp_path):
        feed, db = build_primary(tmp_path / "f")
        coordinator = skewed_coordinator(feed)
        coordinator.drain()
        with pytest.raises(ConstraintError):
            coordinator.handoff("nope", 1)
        with pytest.raises(ConstraintError):
            coordinator.handoff("u", 9)
        coordinator.close()
        feed.close()

    def test_rebalance_moves_the_hot_topic(self, tmp_path):
        feed, db = build_primary(tmp_path / "f", hot=30, quiet_w=True)
        coordinator = skewed_coordinator(feed)
        # Workers attached but NOT drained: topic u's lag dominates.
        move = coordinator.rebalance()
        assert move is not None and move.topic == "u"
        assert coordinator.plan.topic_owner["u"] == move.target
        coordinator.drain()
        expected = detect_conflicts(db, constraints()).hypergraph.as_dict()
        assert coordinator.graph.as_dict() == expected
        coordinator.close()
        feed.close()


class TestDeadWorkerStatus:
    def test_status_surfaces_a_dead_worker_as_lagging(self, tmp_path):
        # The regression pin: a worker that died between checkpoint and
        # commit shows up *lagging* from its registered offsets -- not
        # silently absent.
        feed, db = build_primary(tmp_path / "f")
        coordinator = skewed_coordinator(feed)
        coordinator.drain()
        coordinator.checkpoint()
        coordinator.workers[0]._consumer.abandon()  # crash, not close
        for i in range(5):
            db.execute(f"INSERT INTO u VALUES ({i}, {70 + i})")
        feed.flush()
        rows = coordinator.status()
        dead = [row for row in rows if not row.alive]
        assert len(dead) == 1
        assert dead[0].index == 0
        assert dead[0].lag == 5  # pending records, from registration
        assert dead[0].committed  # the registered offsets survive
        coordinator.close()
        feed.close()

    def test_restart_preserves_registration_of_the_dead_worker(
        self, tmp_path
    ):
        feed, db = build_primary(tmp_path / "f")
        coordinator = skewed_coordinator(feed)
        coordinator.drain()
        coordinator.checkpoint()
        committed_before = dict(coordinator.workers[0].committed)
        restarted = coordinator.restart(0)
        # The restart abandons (not closes) the old consumer: had the
        # re-attach died too, the group would still be registered and
        # visible as lagging.  The restarted worker resumes exactly.
        assert restarted.committed == committed_before
        assert restarted.lag == 0
        coordinator.close()
        feed.close()
