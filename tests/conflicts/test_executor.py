"""Tests for the multi-process shard executor: ownership manifest,
live handoff over real OS processes, dead-worker accounting, and
supervisor respawn.  Uses the ``fork`` start method to keep worker
startup cheap enough for tier 1; the chaos tier exercises ``spawn``
paths and kill schedules."""

from __future__ import annotations

import pytest

from repro.conflicts import (
    Ownership,
    ProcessShardExecutor,
    detect_conflicts,
    load_ownership,
    store_ownership,
)
from repro.constraints import FunctionalDependency
from repro.engine.database import Database
from repro.engine.feed import ChangeFeed
from repro.errors import ExecutorError

TOPICS = ("r", "s", "u", "w")
SKEWED = {"r": 0, "s": 0, "u": 0, "w": 1}


def constraints():
    return [FunctionalDependency(name, ["id"], ["v"]) for name in TOPICS]


def build_writer(directory):
    feed = ChangeFeed(directory)
    db = Database(feed=feed)
    for name in TOPICS:
        db.execute(f"CREATE TABLE {name} (id INTEGER, v INTEGER)")
        db.execute(f"INSERT INTO {name} VALUES (1, 1), (1, 2)")
    feed.flush()
    return feed, db


@pytest.fixture
def writer(tmp_path):
    feed, db = build_writer(tmp_path / "feed")
    yield feed, db
    feed.close()


@pytest.fixture
def make_executor(tmp_path):
    executors = []

    def factory(**overrides):
        options = dict(
            workers=2,
            assignment=SKEWED,
            mp_context="fork",
            heartbeat_timeout=10.0,
            request_timeout=30.0,
        )
        options.update(overrides)
        ex = ProcessShardExecutor(
            tmp_path / "feed", constraints(), **options
        )
        executors.append(ex)
        return ex

    yield factory
    for ex in executors:
        ex.close()


class TestOwnershipManifest:
    def test_roundtrip(self, tmp_path):
        ownership = Ownership(workers=3, owner={"a": 0, "b": 2}, epoch=7)
        store_ownership(tmp_path, ownership)
        assert load_ownership(tmp_path) == ownership

    def test_missing_manifest_is_none(self, tmp_path):
        assert load_ownership(tmp_path) is None

    def test_corrupt_manifest_raises(self, tmp_path):
        (tmp_path / "shards.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(ExecutorError):
            load_ownership(tmp_path)

    def test_executor_seeds_and_persists_the_manifest(
        self, writer, make_executor
    ):
        ex = make_executor()
        ownership = load_ownership(ex.directory)
        assert ownership is not None
        assert ownership.workers == 2 and ownership.epoch == 0
        assert ownership.owner["u"] == 0 and ownership.owner["w"] == 1

    def test_reattach_prefers_the_manifest_over_ctor_args(
        self, writer, make_executor
    ):
        ex = make_executor()
        ex.handoff("u", 1)
        ex.close()
        # A fresh executor with *different* ctor hints must follow the
        # persisted manifest: workers stays 2, u stays with worker 1.
        again = make_executor(workers=7, assignment=None)
        assert again.workers == 2
        assert again.plan.topic_owner["u"] == 1
        assert load_ownership(again.directory).epoch == 1


class TestLiveExecution:
    def test_drain_matches_the_monolith(self, writer, make_executor):
        feed, db = writer
        ex = make_executor()
        ex.drain()
        expected = detect_conflicts(db, constraints()).hypergraph.as_dict()
        assert ex.merged_graph().as_dict() == expected
        rows = ex.status()
        assert all(row.alive and row.lag == 0 for row in rows)
        assert {t for row in rows for t in row.owned} == set(TOPICS)

    def test_handoff_moves_ownership_between_live_processes(
        self, writer, make_executor
    ):
        feed, db = writer
        ex = make_executor()
        ex.drain()
        for i in range(4):  # a suffix the adopter must NOT re-bootstrap
            db.execute(f"INSERT INTO u VALUES ({i}, {40 + i})")
        feed.flush()
        steps = []
        report = ex.handoff("u", 1, on_step=steps.append)
        assert steps == [
            "released", "granted", "adopted", "pruned", "cleared",
        ]
        (resume,) = [
            r for r in report.reshapes[1].added if r.topic == "u"
        ]
        assert resume.mode == "packet"
        assert resume.end - resume.cut == 4  # only the retained suffix
        ex.drain()
        expected = detect_conflicts(db, constraints()).hypergraph.as_dict()
        assert ex.merged_graph().as_dict() == expected
        assert ex.feed.transfers() == {}  # packet swept after adoption
        assert load_ownership(ex.directory).owner["u"] == 1

    def test_handoff_validates_inputs(self, writer, make_executor):
        ex = make_executor()
        with pytest.raises(ExecutorError):
            ex.handoff("nope", 1)
        with pytest.raises(ExecutorError):
            ex.handoff("u", 9)

    def test_handoff_to_current_owner_is_a_no_op(
        self, writer, make_executor
    ):
        ex = make_executor()
        steps = []
        report = ex.handoff("u", 0, on_step=steps.append)
        assert steps == [] and report.reshapes == {}


@pytest.mark.slow
class TestFailureAccounting:
    def test_dead_worker_reports_lagging_not_absent(
        self, writer, make_executor
    ):
        feed, db = writer
        ex = make_executor()
        ex.drain()
        ex.checkpoint()
        ex.kill(1)
        for i in range(5):
            db.execute(f"INSERT INTO w VALUES ({i}, {70 + i})")
        feed.flush()
        rows = ex.status()
        dead = [row for row in rows if not row.alive]
        assert [row.index for row in dead] == [1]
        assert dead[0].lag == 5  # from the registered offsets
        assert dead[0].committed  # registration survives the kill

    def test_supervise_respawns_from_the_checkpoint(
        self, writer, make_executor
    ):
        feed, db = writer
        ex = make_executor()
        ex.drain()
        ex.checkpoint()
        for i in range(3):
            db.execute(f"INSERT INTO w VALUES ({i}, {80 + i})")
        feed.flush()
        ex.kill(1)
        events = ex.supervise()
        assert [e.index for e in events] == [1]
        rows = ex.drain()
        respawned = [row for row in rows if row.index == 1][0]
        assert respawned.alive and respawned.respawns == 1
        assert respawned.restore_mode == "snapshot"
        assert respawned.applied_records.get("w", 0) == 3
        expected = detect_conflicts(db, constraints()).hypergraph.as_dict()
        assert ex.merged_graph().as_dict() == expected
