"""Tests for conflict detection and the conflict hypergraph."""

import pytest

from repro.conflicts import (
    ConflictHypergraph,
    detect_conflicts,
    minimal_edges,
    vertex,
    violations_of,
)
from repro.constraints import (
    ConstraintAtom,
    DenialConstraint,
    ExclusionConstraint,
    FunctionalDependency,
)
from repro.sql.parser import parse_expression


@pytest.fixture
def emp_fd():
    return FunctionalDependency("emp", ["name"], ["dept", "salary"])


class TestDetection:
    def test_fd_violations(self, emp_db, emp_fd):
        report = detect_conflicts(emp_db, [emp_fd])
        hypergraph = report.hypergraph
        # ann's pair (salary differs) + carol's pair (dept differs).
        assert len(hypergraph) == 2
        assert hypergraph.vertex_count == 4
        assert all(len(edge) == 2 for edge in hypergraph.edges)

    def test_no_violations_on_consistent_db(self, two_table_db):
        fd = FunctionalDependency("s", ["a"], ["b"])
        report = detect_conflicts(two_table_db, [fd])
        assert len(report.hypergraph) == 0

    def test_exclusion_violations(self, two_table_db):
        excl = ExclusionConstraint("r", "s", [("a", "a"), ("b", "b")])
        report = detect_conflicts(two_table_db, [excl])
        # r(2,5)~s(2,5) and r(4,4)~s(4,4).
        assert len(report.hypergraph) == 2
        relations = {v.relation for v in report.hypergraph.conflicting_vertices()}
        assert relations == {"r", "s"}

    def test_unary_denial_gives_singleton_edges(self, two_table_db):
        denial = DenialConstraint(
            "no-nines", (ConstraintAtom("t", "s"),), parse_expression("t.a = 9")
        )
        report = detect_conflicts(two_table_db, [denial])
        assert len(report.hypergraph) == 1
        assert report.hypergraph.summary()["singleton_edges"] == 1
        assert len(report.hypergraph.always_deleted()) == 1

    def test_ternary_denial(self, two_table_db):
        denial = DenialConstraint(
            "triangle",
            (
                ConstraintAtom("x", "r"),
                ConstraintAtom("y", "r"),
                ConstraintAtom("z", "s"),
            ),
            parse_expression("x.a = y.a AND x.b < y.b AND z.a = x.a"),
        )
        violations = violations_of(two_table_db, denial)
        assert violations == []  # r(1,*) pairs have no s(1,*) partner
        two_table_db.execute("INSERT INTO s VALUES (1, 0)")
        violations = violations_of(two_table_db, denial)
        assert len(violations) == 1
        assert len(violations[0]) == 3

    def test_per_constraint_counts(self, emp_db, emp_fd):
        report = detect_conflicts(emp_db, [emp_fd])
        assert sum(report.per_constraint.values()) == 2
        assert report.seconds >= 0

    def test_violation_sets_deduplicated(self, emp_db, emp_fd):
        # The FD produces symmetric pairs (t1,t2)/(t2,t1): stored once.
        denials = emp_fd.to_denials()
        for denial in denials:
            violations = violations_of(emp_db, denial)
            assert len(violations) == len(set(violations))


class TestMinimality:
    def test_supersets_dropped(self):
        a, b, c = vertex("r", 1), vertex("r", 2), vertex("r", 3)
        edges, labels = minimal_edges(
            [frozenset({a, b, c}), frozenset({a, b}), frozenset({a, b})],
            ["big", "small", "small-dup"],
        )
        assert edges == [frozenset({a, b})]
        assert labels == ["small"]

    def test_incomparable_edges_kept(self):
        a, b, c = vertex("r", 1), vertex("r", 2), vertex("r", 3)
        edges, _labels = minimal_edges([frozenset({a, b}), frozenset({b, c})])
        assert len(edges) == 2


class TestHypergraph:
    def test_incidence_and_degree(self):
        a, b, c = vertex("r", 1), vertex("r", 2), vertex("r", 3)
        graph = ConflictHypergraph([frozenset({a, b}), frozenset({b, c})])
        assert graph.degree(b) == 2
        assert graph.degree(a) == 1
        assert graph.degree(vertex("r", 99)) == 0
        assert graph.is_conflicting(a)
        assert not graph.is_conflicting(vertex("r", 99))
        assert len(graph.edges_of(b)) == 2

    def test_independence(self):
        a, b, c = vertex("r", 1), vertex("r", 2), vertex("r", 3)
        graph = ConflictHypergraph([frozenset({a, b, c})])
        assert graph.is_independent({a, b})  # proper subset of an edge
        assert not graph.is_independent({a, b, c})
        assert graph.is_independent(set())

    def test_duplicate_edges_collapsed(self):
        a, b = vertex("r", 1), vertex("r", 2)
        graph = ConflictHypergraph([frozenset({a, b}), frozenset({b, a})])
        assert len(graph) == 1

    def test_empty_edge_rejected(self):
        with pytest.raises(ValueError):
            ConflictHypergraph([frozenset()])

    def test_conflicting_tids_per_relation(self):
        graph = ConflictHypergraph(
            [frozenset({vertex("r", 1), vertex("s", 2)})]
        )
        assert graph.conflicting_tids("R") == frozenset({1})
        assert graph.conflicting_tids("s") == frozenset({2})
        assert graph.conflicting_tids("t") == frozenset()

    def test_summary(self):
        graph = ConflictHypergraph(
            [frozenset({vertex("r", 1)}), frozenset({vertex("r", 2), vertex("s", 1)})]
        )
        summary = graph.summary()
        assert summary["edges"] == 2
        assert summary["singleton_edges"] == 1
        assert summary["max_edge_size"] == 2
        assert summary["conflicting_per_relation"] == {"r": 2, "s": 1}


class TestDetectionUsesHashJoin:
    def test_detection_scales_linearly_in_scans(self, db):
        """FD self-join detection must not scan O(n^2) rows."""
        from repro.workloads import generate_key_conflict_table

        table = generate_key_conflict_table(db, "r", 500, 0.1, seed=0)
        db.stats.reset()
        detect_conflicts(db, [table.fd])
        # Two scans of the table (hash join sides), far below 500^2.
        assert db.stats.rows_scanned <= 4 * 500
