"""Tests for range-consistent scalar aggregation (the TCS-2003 extension)."""

import pytest

from repro.aggregates import AggregateRange, aggregate_range, brute_force_range
from repro.constraints import FunctionalDependency
from repro.engine import Database
from repro.engine.types import SQLType
from repro.errors import ConstraintError, UnsupportedQueryError


@pytest.fixture
def salary_db():
    db = Database()
    db.create_table("pay", [("name", SQLType.TEXT), ("salary", SQLType.INTEGER)])
    db.insert_rows(
        "pay",
        [
            ("ann", 10),
            ("ann", 20),   # disputed
            ("bob", 30),
            ("carol", 5),
            ("carol", 8),  # disputed
            ("carol", 6),  # three-way dispute
        ],
    )
    return db


@pytest.fixture
def pay_fd():
    return FunctionalDependency("pay", ["name"], ["salary"])


class TestRanges:
    def test_count_star_definite(self, salary_db, pay_fd):
        result = aggregate_range(salary_db, pay_fd, "COUNT")
        assert result == AggregateRange(3.0, 3.0)
        assert result.definite

    def test_sum(self, salary_db, pay_fd):
        result = aggregate_range(salary_db, pay_fd, "SUM", "salary")
        assert result == AggregateRange(10 + 30 + 5, 20 + 30 + 8)

    def test_min(self, salary_db, pay_fd):
        result = aggregate_range(salary_db, pay_fd, "MIN", "salary")
        # glb: global minimum 5; lub: per-group maxima are 20/30/8 -> min 8.
        assert result == AggregateRange(5.0, 8.0)

    def test_max(self, salary_db, pay_fd):
        result = aggregate_range(salary_db, pay_fd, "MAX", "salary")
        # lub: global maximum 30; glb: per-group minima 10/30/5 -> max 30.
        assert result == AggregateRange(30.0, 30.0)
        assert result.definite

    def test_avg(self, salary_db, pay_fd):
        result = aggregate_range(salary_db, pay_fd, "AVG", "salary")
        assert result == AggregateRange(45 / 3, 58 / 3)

    @pytest.mark.parametrize(
        "function,column",
        [
            ("COUNT", None),
            ("SUM", "salary"),
            ("MIN", "salary"),
            ("MAX", "salary"),
            ("AVG", "salary"),
        ],
    )
    def test_matches_brute_force(self, salary_db, pay_fd, function, column):
        fast = aggregate_range(salary_db, pay_fd, function, column)
        slow = brute_force_range(salary_db, pay_fd, function, column)
        assert fast == slow

    def test_consistent_relation_definite(self, pay_fd):
        db = Database()
        db.create_table("pay", [("name", SQLType.TEXT), ("salary", SQLType.INTEGER)])
        db.insert_rows("pay", [("ann", 1), ("bob", 2)])
        for function, column in [("SUM", "salary"), ("MIN", "salary")]:
            assert aggregate_range(db, pay_fd, function, column).definite


class TestValidation:
    def test_unknown_aggregate(self, salary_db, pay_fd):
        with pytest.raises(UnsupportedQueryError, match="unsupported aggregate"):
            aggregate_range(salary_db, pay_fd, "MEDIAN", "salary")

    def test_non_key_fd_rejected(self, salary_db):
        db = Database()
        db.create_table(
            "t",
            [
                ("a", SQLType.INTEGER),
                ("b", SQLType.INTEGER),
                ("c", SQLType.INTEGER),
            ],
        )
        fd = FunctionalDependency("t", ["a"], ["b"])  # c not covered
        with pytest.raises(ConstraintError, match="key"):
            aggregate_range(db, fd, "SUM", "b")

    def test_sum_requires_column(self, salary_db, pay_fd):
        with pytest.raises(UnsupportedQueryError, match="column"):
            aggregate_range(salary_db, pay_fd, "SUM")

    def test_null_column_rejected(self, pay_fd):
        db = Database()
        db.create_table("pay", [("name", SQLType.TEXT), ("salary", SQLType.INTEGER)])
        db.insert_rows("pay", [("ann", None)])
        with pytest.raises(UnsupportedQueryError, match="NULL"):
            aggregate_range(db, pay_fd, "SUM", "salary")

    def test_text_column_rejected(self, pay_fd):
        db = Database()
        db.create_table("pay", [("name", SQLType.TEXT), ("salary", SQLType.TEXT)])
        db.insert_rows("pay", [("ann", "lots")])
        with pytest.raises(UnsupportedQueryError, match="numeric"):
            aggregate_range(db, pay_fd, "MAX", "salary")

    def test_empty_relation(self, pay_fd):
        db = Database()
        db.create_table("pay", [("name", SQLType.TEXT), ("salary", SQLType.INTEGER)])
        assert aggregate_range(db, pay_fd, "COUNT").glb == 0.0
        with pytest.raises(UnsupportedQueryError, match="empty"):
            aggregate_range(db, pay_fd, "MIN", "salary")


class TestCompositeKey:
    def test_two_column_key(self):
        db = Database()
        db.create_table(
            "t",
            [
                ("k1", SQLType.INTEGER),
                ("k2", SQLType.INTEGER),
                ("v", SQLType.INTEGER),
            ],
        )
        db.insert_rows("t", [(1, 1, 10), (1, 1, 20), (1, 2, 5)])
        fd = FunctionalDependency("t", ["k1", "k2"], ["v"])
        fast = aggregate_range(db, fd, "SUM", "v")
        slow = brute_force_range(db, fd, "SUM", "v")
        assert fast == slow == AggregateRange(15.0, 25.0)
