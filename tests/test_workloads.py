"""Tests for the synthetic workload generators."""

import pytest

from repro.conflicts import detect_conflicts
from repro.engine import Database
from repro.workloads import (
    build_integration_scenario,
    difference_query,
    generate_join_pair,
    generate_key_conflict_table,
    generate_union_pair,
    inject_exclusion_conflicts,
    join_query,
    selection_query,
    union_query,
)


class TestKeyConflictTable:
    def test_tuple_count_exact(self, db):
        report = generate_key_conflict_table(db, "r", 200, 0.1, seed=1)
        assert report.total_tuples == 200
        assert len(db.table("r")) == 200

    def test_conflict_fraction_realized(self, db):
        report = generate_key_conflict_table(db, "r", 400, 0.1, seed=2)
        detection = detect_conflicts(db, [report.fd])
        assert detection.hypergraph.vertex_count == report.conflicting_tuples
        assert abs(report.conflicting_tuples - 40) <= 1

    def test_zero_conflicts(self, db):
        report = generate_key_conflict_table(db, "r", 100, 0.0, seed=3)
        detection = detect_conflicts(db, [report.fd])
        assert len(detection.hypergraph) == 0
        assert report.conflicting_tuples == 0

    def test_deterministic_in_seed(self):
        rows = []
        for _ in range(2):
            db = Database()
            generate_key_conflict_table(db, "r", 50, 0.2, seed=7)
            rows.append(sorted(db.table("r").rows()))
        assert rows[0] == rows[1]

    def test_cluster_size(self, db):
        report = generate_key_conflict_table(
            db, "r", 300, 0.1, seed=4, cluster_size=3
        )
        detection = detect_conflicts(db, [report.fd])
        # A 3-cluster yields C(3,2)=3 pairwise edges per cluster.
        clusters = report.conflicting_tuples // 3
        assert len(detection.hypergraph) == 3 * clusters

    def test_multi_dependent_columns(self, db):
        report = generate_key_conflict_table(
            db, "r", 100, 0.1, seed=5, n_dependent_columns=2
        )
        assert db.table("r").schema.column_names == ("a", "b0", "b1")
        detection = detect_conflicts(db, [report.fd])
        assert detection.hypergraph.vertex_count == report.conflicting_tuples

    def test_parameter_validation(self, db):
        with pytest.raises(ValueError):
            generate_key_conflict_table(db, "r", 10, 1.5)
        with pytest.raises(ValueError):
            generate_key_conflict_table(db, "x", -1, 0.1)
        with pytest.raises(ValueError):
            generate_key_conflict_table(db, "y", 10, 0.1, cluster_size=1)


class TestPairGenerators:
    def test_join_pair_joins(self, db):
        generate_join_pair(db, "l", "r", 300, 0.05, seed=1)
        rows = db.query(
            "SELECT COUNT(*) FROM l, r WHERE l.b0 = r.a"
        ).scalar()
        assert rows > 0

    def test_union_pair_overlaps(self, db):
        generate_union_pair(db, "l", "r", 200, 0.05, seed=1, overlap_fraction=0.3)
        overlap = db.query(
            "SELECT COUNT(*) FROM l WHERE EXISTS"
            " (SELECT * FROM r WHERE r.a = l.a AND r.b0 = l.b0)"
        ).scalar()
        assert overlap >= 50

    def test_exclusion_injection(self, db):
        generate_key_conflict_table(db, "l", 100, 0.0, seed=1)
        generate_key_conflict_table(db, "r", 100, 0.0, seed=2)
        injected = inject_exclusion_conflicts(db, "l", "r", 10, seed=3)
        assert injected == 10
        shared = db.query(
            "SELECT COUNT(*) FROM l WHERE EXISTS"
            " (SELECT * FROM r WHERE r.a = l.a)"
        ).scalar()
        assert shared >= 10


class TestQuerySuite:
    def test_queries_run_on_generated_tables(self, db):
        generate_join_pair(db, "l", "r", 100, 0.05, seed=1)
        for workload in [
            selection_query("l"),
            join_query("l", "r"),
            union_query("l", "r"),
            difference_query("l", "r"),
        ]:
            db.query(workload.sql)  # must parse and execute

    def test_rewriting_support_flags(self):
        assert selection_query("l").rewriting_supported
        assert not union_query("l", "r").rewriting_supported


class TestIntegrationScenario:
    def test_population_counts(self):
        scenario = build_integration_scenario(n_customers=100, disputed_fraction=0.2)
        total = scenario.n_agreeing + scenario.n_unique
        assert len(scenario.db.table("customer")) == total + 2 * scenario.n_disputed

    def test_disputes_are_conflicts(self):
        scenario = build_integration_scenario(n_customers=100, disputed_fraction=0.2)
        detection = detect_conflicts(scenario.db, [scenario.fd])
        assert detection.hypergraph.vertex_count == 2 * scenario.n_disputed

    def test_deterministic(self):
        first = build_integration_scenario(n_customers=50, seed=9)
        second = build_integration_scenario(n_customers=50, seed=9)
        assert sorted(first.db.table("customer").rows()) == sorted(
            second.db.table("customer").rows()
        )
