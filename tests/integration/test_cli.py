"""Tests for the interactive CLI frontend."""

from __future__ import annotations

import io


from repro.cli import HippoShell, _parse_cli_value, main


def run_shell(script: str) -> str:
    out = io.StringIO()
    shell = HippoShell(out=out)
    shell.run(script.splitlines())
    return out.getvalue()


SETUP = """
CREATE TABLE emp (name TEXT, salary INTEGER);
INSERT INTO emp VALUES ('ann', 10), ('ann', 20), ('bob', 5);
.constraint FD emp: name -> salary
"""


class TestShellCommands:
    def test_sql_and_consistent(self):
        output = run_shell(SETUP + ".consistent SELECT * FROM emp;")
        assert "(bob, 5)" in output
        assert "1 consistent answer" in output

    def test_possible(self):
        output = run_shell(SETUP + ".possible SELECT * FROM emp;")
        assert "3 possible answers" in output

    def test_cleaned_and_raw(self):
        output = run_shell(
            SETUP + ".cleaned SELECT * FROM emp;\n.raw SELECT * FROM emp;"
        )
        assert "1 row" in output and "3 rows" in output

    def test_detect_summary(self):
        output = run_shell(SETUP + ".detect")
        assert "1 edges" in output and "2 conflicting tuples" in output

    def test_constraints_listing(self):
        output = run_shell(SETUP + ".constraints")
        assert "FD emp: name -> salary" in output

    def test_rewrite_shows_sql(self):
        output = run_shell(SETUP + ".rewrite SELECT * FROM emp;")
        assert "NOT EXISTS" in output

    def test_classify_rewritable(self):
        output = run_shell(SETUP + ".classify SELECT * FROM emp;")
        assert "path: first-order-rewriting" in output
        assert "first-order rewriting applies" in output

    def test_classify_unsupported(self):
        output = run_shell(SETUP + ".classify SELECT name FROM emp;")
        assert "path: unsupported" in output

    def test_explain_shows_envelope(self):
        output = run_shell(SETUP + ".explain SELECT * FROM emp WHERE salary > 1;")
        assert "envelope: SELECT DISTINCT" in output

    def test_why_consistent(self):
        output = run_shell(SETUP + ".why SELECT * FROM emp ; 'bob', 5")
        assert "consistent" in output

    def test_why_inconsistent_names_counterexample(self):
        output = run_shell(SETUP + ".why SELECT * FROM emp ; 'ann', 10")
        assert "possible but not consistent" in output
        assert "excluding" in output

    def test_repair_count(self):
        output = run_shell(SETUP + ".repairs")
        assert "2 repairs" in output

    def test_select_through_sql_path(self):
        output = run_shell(
            "CREATE TABLE t (a INTEGER);\nINSERT INTO t VALUES (1), (2);\n"
            "SELECT a FROM t ORDER BY a;"
        )
        assert "(2 rows)" in output

    def test_error_reported_not_raised(self):
        output = run_shell("SELECT * FROM missing;")
        assert "error:" in output

    def test_blank_lines_and_comments_skipped(self):
        output = run_shell("\n-- nothing\n  \n")
        assert output == ""

    def test_unknown_meta_command(self):
        output = run_shell(".frobnicate")
        assert "unknown command" in output

    def test_quit_stops_processing(self):
        output = run_shell(".quit\nSELECT * FROM missing;")
        assert "error" not in output

    def test_help(self):
        output = run_shell(".help")
        assert ".consistent" in output

    def test_repairs_fresh_after_dml(self):
        script = SETUP + (
            ".repairs\nINSERT INTO emp VALUES ('bob', 6);\n.repairs"
        )
        output = run_shell(script)
        assert "2 repairs" in output  # ann's pair only
        assert "4 repairs" in output  # bob's new pair folded in

    def test_query_refresh_after_dml(self):
        # The engine must re-detect conflicts after data changes.
        script = SETUP + (
            ".consistent SELECT * FROM emp;\n"
            "DELETE FROM emp WHERE salary = 20;\n"
            ".consistent SELECT * FROM emp;"
        )
        output = run_shell(script)
        assert "2 consistent answers" in output  # ann(10) recovered


class TestDurableShell:
    def test_durable_shell_restores_and_feed_reports_directory(self, tmp_path):
        directory = str(tmp_path / "db")
        out = io.StringIO()
        shell = HippoShell(out=out, durable=directory)
        shell.run(
            [
                "CREATE TABLE t (a INTEGER);",
                "INSERT INTO t VALUES (1), (2);",
                ".feed",
            ]
        )
        shell.db.changes.feed.close()
        assert f"durable at {directory}" in out.getvalue()

        out2 = io.StringIO()
        restored = HippoShell(out=out2, durable=directory)
        restored.run(["SELECT a FROM t ORDER BY a;"])
        restored.db.changes.feed.close()
        assert "(2 rows)" in out2.getvalue()

    def test_durable_shell_flushes_acknowledged_statements_on_error(
        self, tmp_path
    ):
        # A failing statement mid-batch must not strand the earlier,
        # already-acknowledged ones in the userspace buffer.
        from repro.engine.feed import ChangeFeed

        directory = str(tmp_path / "db")
        out = io.StringIO()
        shell = HippoShell(out=out, durable=directory)
        shell.run(
            [
                "CREATE TABLE t (a INTEGER);",
                "INSERT INTO t VALUES (1); INSERT INTO t VALUES ('x');",
            ]
        )
        assert "ok (1 rows affected)" in out.getvalue()
        assert "error:" in out.getvalue()
        # A concurrent reader (not a reopen) sees the acknowledged row.
        reader = ChangeFeed(directory)
        records, _ = reader.consumer("probe", start="beginning").poll()
        assert [(r.topic, r.kind) for r in records] == [
            ("_schema", "create_table"),
            ("t", "change"),
        ]
        reader.close()
        shell.db.changes.feed.close()

    def test_checkpoint_and_feed_compact(self, tmp_path):
        from repro.engine.database import WRITER_GROUP, Database
        from repro.engine.feed import ChangeFeed

        directory = str(tmp_path / "db")
        out = io.StringIO()
        shell = HippoShell(out=out, durable=directory)
        shell.run(
            [
                "CREATE TABLE t (a INTEGER);",
                "INSERT INTO t VALUES (1), (2), (3);",
                ".checkpoint",
                ".feed compact",
            ]
        )
        shell.db.changes.feed.close()
        output = out.getvalue()
        assert "checkpoint stored (committed _schema=1, t=3)" in output
        # Everything fits one active segment: nothing is reclaimable.
        assert "(nothing to reclaim)" in output

        feed = ChangeFeed(directory)
        assert feed.load_snapshot(WRITER_GROUP) is not None
        restored = Database(feed=feed)
        assert restored.restore_mode == "snapshot"
        feed.close()

    def test_feed_compact_reports_reclaimed_topics(self, tmp_path):
        from repro.engine.database import Database
        from repro.engine.feed import ChangeFeed

        directory = tmp_path / "db"
        out = io.StringIO()
        shell = HippoShell(out=out)
        # Tiny segments so a handful of inserts spans several of them
        # (the default-sized shell would keep everything in one).
        shell.db = Database(feed=ChangeFeed(directory, segment_records=2))
        shell.run(
            [
                "CREATE TABLE t (a INTEGER);",
                "INSERT INTO t VALUES (1);",
                "INSERT INTO t VALUES (2);",
                "INSERT INTO t VALUES (3);",
                "INSERT INTO t VALUES (4);",
                "INSERT INTO t VALUES (5);",
                ".checkpoint",
                ".feed compact",
            ]
        )
        output = out.getvalue()
        assert "topic t: reclaimed below offset" in output
        shell.db.changes.feed.close()

    def test_checkpoint_and_compact_need_a_durable_shell(self):
        output = run_shell(".checkpoint")
        assert "error:" in output and "durable" in output
        output = run_shell(".feed compact")
        assert "compaction needs a durable feed" in output

    def test_main_parses_durable_flag(self, tmp_path):
        directory = str(tmp_path / "db")
        script = tmp_path / "setup.sql"
        script.write_text("CREATE TABLE t (a INTEGER);\nINSERT INTO t VALUES (7);\n")
        assert main([str(script), "--durable", directory]) == 0
        # The mutations landed in the feed directory.
        assert (tmp_path / "db" / "manifest.json").exists()

    def test_feed_tail_follows_another_processs_feed(self, tmp_path):
        directory = str(tmp_path / "db")
        writer_out = io.StringIO()
        writer = HippoShell(out=writer_out, durable=directory)
        # No explicit flush: a durable shell makes every statement batch
        # durable on its own, or a concurrent tail would see nothing.
        writer.run(
            [
                "CREATE TABLE emp (name TEXT, salary INTEGER);",
                "INSERT INTO emp VALUES ('ann', 10), ('ann', 20), ('bob', 5);",
            ]
        )

        out = io.StringIO()
        tailer = HippoShell(out=out)
        tailer.run(
            [
                ".constraint FD emp: name -> salary",
                f".feed tail {directory} 0.2",
            ]
        )
        text = out.getvalue()
        assert "4 records" in text  # schema + 3 rows streamed in live
        assert "1 edges" in text and "2 conflicting tuples" in text
        # The inspection tail left no consumer-group state behind.
        consumers = tmp_path / "db" / "consumers"
        leftovers = (
            [p.name for p in consumers.glob("cli-tail*")]
            if consumers.exists()
            else []
        )
        assert leftovers == []
        writer.db.changes.feed.close()

    def test_feed_tail_seeds_from_a_reclaimed_feeds_checkpoint(
        self, tmp_path
    ):
        # Tailing a feed whose prefix retention already reclaimed used
        # to die with "history was dropped"; the tail's fresh group now
        # seeds from the writer's checkpoint and follows the suffix.
        from repro.engine.database import Database
        from repro.engine.feed import ChangeFeed

        directory = str(tmp_path / "db")
        feed = ChangeFeed(directory, segment_records=2, retention="truncate")
        db = Database(feed=feed)
        db.execute("CREATE TABLE emp (name TEXT, salary INTEGER)")
        db.execute("INSERT INTO emp VALUES ('ann', 10), ('bob', 5)")
        db.checkpoint()
        db.execute("INSERT INTO emp VALUES ('ann', 20)")
        drain = feed.consumer("drain", start="beginning")
        drain.poll()
        drain.commit()
        assert any(t.start > 0 for t in feed.topics())  # prefix is gone
        feed.flush()

        output = run_shell(
            ".constraint FD emp: name -> salary\n"
            f".feed tail {directory} 0.2"
        )
        assert "history was dropped" not in output
        assert "1 edges, 2 conflicting tuples" in output
        feed.close()

    def test_feed_tail_usage_message(self):
        output = run_shell(".feed tail")
        assert "usage: .feed tail" in output

    def test_feed_tail_rejects_bad_seconds(self, tmp_path):
        output = run_shell(f".feed tail {tmp_path} 2s")
        assert "usage: .feed tail" in output

    def test_feed_tail_refuses_a_missing_feed(self, tmp_path):
        missing = tmp_path / "typo"
        output = run_shell(f".feed tail {missing} 0.1")
        assert "no change feed at" in output
        assert not missing.exists()  # the tail must not fabricate one

    def test_feed_shows_each_groups_recovery_point(self, tmp_path):
        # Operators need to see why retention is pinned: the snapshot
        # floor when a group checkpointed, else its committed offsets.
        from repro.conflicts import ReplicaHypergraph
        from repro.engine.feed import ChangeFeed

        directory = str(tmp_path / "db")
        out = io.StringIO()
        shell = HippoShell(out=out, durable=directory)
        shell.run(
            [
                "CREATE TABLE t (a INTEGER);",
                "INSERT INTO t VALUES (1), (2), (3);",
            ]
        )
        # A replica group whose checkpoint trails its committed cut.
        reader = ChangeFeed(directory)
        replica = ReplicaHypergraph(reader, [], group="replica")
        replica.sync(limit=2)
        replica.checkpoint()  # snapshot floor at _schema=1, t=1
        replica.sync()
        replica._consumer.close()  # keep commits, skip the auto-snapshot
        reader.close()

        shell.run([".checkpoint", ".feed"])
        shell.db.changes.feed.close()
        output = out.getvalue()
        # The writer checkpointed: its recovery point is its snapshot.
        assert "consumer __writer__: lag 0" in output
        assert "recovery point: snapshot (_schema=1, t=3)" in output
        # The replica's snapshot floor trails its committed offsets --
        # exactly the state that pins retention.
        assert "consumer replica: lag 0 (committed _schema=1, t=3)" in output
        assert "recovery point: snapshot (_schema=1, t=1)" in output

    def test_feed_shows_committed_recovery_point_without_snapshot(
        self, tmp_path
    ):
        from repro.engine.feed import ChangeFeed

        directory = str(tmp_path / "db")
        out = io.StringIO()
        shell = HippoShell(out=out, durable=directory)
        shell.run(["CREATE TABLE t (a INTEGER);", "INSERT INTO t VALUES (1);"])
        reader = ChangeFeed(directory)
        probe = reader.consumer("probe", start="beginning", topics=["t"])
        probe.poll()
        probe.commit()
        reader.close()
        shell.run([".feed"])
        shell.db.changes.feed.close()
        output = out.getvalue()
        # A group that never checkpointed recovers from its commits --
        # and its topic subscription is visible.
        assert "consumer probe: lag 0 (committed t=1) [topics t]" in output
        assert "recovery point: committed (t=1)" in output

    def test_shards_reports_the_constraint_aware_plan(self):
        output = run_shell(
            "CREATE TABLE p (id INTEGER);\n"
            "CREATE TABLE c (id INTEGER, pid INTEGER, v INTEGER);\n"
            "CREATE TABLE u (id INTEGER, v INTEGER);\n"
            ".constraint FD c: id -> v\n"
            ".constraint FK c (pid) REFERENCES p (id)\n"
            ".shards 2"
        )
        assert "shard plan: 2 workers over 3 topics" in output
        assert "(0 cross-shard)" in output
        # Co-referenced relations land together; u gets the other worker.
        assert "owns [c, p]" in output
        assert "owns [u]" in output
        assert "FK c(pid) -> p(id)" in output

    def test_shards_rejects_a_bad_worker_count(self):
        output = run_shell(".shards two")
        assert "usage: .shards" in output

    def test_shards_live_reports_manifest_lag_and_packets(self, tmp_path):
        from repro.conflicts import (
            Ownership,
            ShardCoordinator,
            store_ownership,
        )
        from repro.constraints import FunctionalDependency
        from repro.engine.database import Database
        from repro.engine.feed import ChangeFeed

        directory = str(tmp_path / "db")
        feed = ChangeFeed(directory)
        db = Database(feed=feed)
        db.execute("CREATE TABLE a (id INTEGER, v INTEGER)")
        db.execute("CREATE TABLE b (id INTEGER, v INTEGER)")
        db.execute("INSERT INTO a VALUES (1, 1), (1, 2)")
        db.execute("INSERT INTO b VALUES (1, 1)")
        feed.flush()
        coordinator = ShardCoordinator(
            feed,
            [FunctionalDependency("a", ["id"], ["v"])],
            workers=2,
            assignment={"a": 0, "b": 1},
        )
        coordinator.drain()
        coordinator.checkpoint()
        coordinator.close()
        store_ownership(
            directory, Ownership(workers=2, owner={"a": 0, "b": 1}, epoch=3)
        )
        feed.store_transfer("a", 2, {})
        db.execute("INSERT INTO b VALUES (2, 2)")  # post-checkpoint lag
        feed.flush()
        feed.close()
        output = run_shell(f".shards --live {directory}")
        assert "process executor: 2 workers, epoch 3" in output
        assert "topic a -> worker 0" in output
        assert "topic b -> worker 1" in output
        assert "worker 0 (shard-0): lag 0" in output
        # The crashed-or-lagging worker is *visible*, never absent.
        assert "worker 1 (shard-1): lag 1" in output
        assert "transfer packet a @ 2" in output

    def test_shards_live_without_manifest(self, tmp_path):
        output = run_shell(f".shards --live {tmp_path}")
        assert "no ownership manifest" in output

    def test_shards_live_needs_a_directory_in_memory(self):
        output = run_shell(".shards --live")
        assert "usage: .shards --live" in output

    def test_rebalance_advises_the_skew_minimizing_move(self, tmp_path):
        from repro.conflicts import Ownership, store_ownership
        from repro.engine.database import Database
        from repro.engine.feed import ChangeFeed

        directory = str(tmp_path / "db")
        feed = ChangeFeed(directory)
        db = Database(feed=feed)
        for name, rows in (("a", 6), ("b", 3), ("c", 1)):
            db.execute(f"CREATE TABLE {name} (id INTEGER)")
            for i in range(rows):
                db.execute(f"INSERT INTO {name} VALUES ({i})")
        feed.flush()
        feed.close()
        store_ownership(
            directory,
            Ownership(workers=2, owner={"a": 0, "b": 0, "c": 0}, epoch=0),
        )
        output = run_shell(f".rebalance {directory}")
        assert "advice: move topic a from worker 0 to worker 1" in output
        assert "dry run" in output

    def test_rebalance_reports_balance(self, tmp_path):
        from repro.conflicts import Ownership, store_ownership
        from repro.engine.database import Database
        from repro.engine.feed import ChangeFeed

        directory = str(tmp_path / "db")
        feed = ChangeFeed(directory)
        db = Database(feed=feed)
        for name in ("a", "b"):
            db.execute(f"CREATE TABLE {name} (id INTEGER)")
            db.execute(f"INSERT INTO {name} VALUES (1)")
        feed.flush()
        feed.close()
        store_ownership(
            directory, Ownership(workers=2, owner={"a": 0, "b": 1}, epoch=0)
        )
        output = run_shell(f".rebalance {directory}")
        assert "balanced: no single move improves the skew" in output

    def test_rebalance_needs_a_directory_in_memory(self):
        output = run_shell(".rebalance")
        assert "usage: .rebalance" in output

    def test_feed_listing_shows_a_crashed_worker_as_lagging(self, tmp_path):
        # The `.feed` half of the regression: a shard group whose
        # process died between checkpoint and commit keeps its
        # registration, so the listing shows it lagging -- not gone.
        from repro.conflicts import ShardCoordinator
        from repro.constraints import FunctionalDependency
        from repro.engine.database import Database
        from repro.engine.feed import ChangeFeed

        directory = str(tmp_path / "db")
        feed = ChangeFeed(directory)
        db = Database(feed=feed)
        db.execute("CREATE TABLE a (id INTEGER, v INTEGER)")
        db.execute("INSERT INTO a VALUES (1, 1), (1, 2)")
        feed.flush()
        coordinator = ShardCoordinator(
            feed,
            [FunctionalDependency("a", ["id"], ["v"])],
            workers=1,
        )
        coordinator.drain()
        coordinator.checkpoint()
        coordinator.workers[0]._consumer.abandon()  # crash, not close
        coordinator.close()
        db.execute("INSERT INTO a VALUES (2, 2)")
        feed.flush()
        feed.close()
        out = io.StringIO()
        shell = HippoShell(out=out, durable=directory)
        shell.run([".feed"])
        shell.db.changes.feed.close()
        output = out.getvalue()
        assert "consumer shard-0: lag 1" in output
        assert "recovery point: snapshot" in output

    def test_feed_tail_follows_one_shard_of_the_plan(self, tmp_path):
        directory = str(tmp_path / "db")
        writer_out = io.StringIO()
        writer = HippoShell(out=writer_out, durable=directory)
        writer.run(
            [
                "CREATE TABLE emp (name TEXT, salary INTEGER);",
                "CREATE TABLE log (msg TEXT);",
                "INSERT INTO emp VALUES ('ann', 10), ('ann', 20);",
                "INSERT INTO log VALUES ('a'), ('b'), ('c');",
            ]
        )
        out = io.StringIO()
        tailer = HippoShell(out=out)
        tailer.run(
            [
                ".constraint FD emp: name -> salary",
                f".feed tail {directory} 0.2 0/2",
            ]
        )
        text = out.getvalue()
        assert "shard 0/2: topics [emp]" in text
        # Only emp's records (+ DDL) stream in: 2 schema + 2 rows, not
        # the 3 log rows the other shard owns.
        assert "4 records" in text
        assert "1 edges" in text and "2 conflicting tuples" in text
        writer.db.changes.feed.close()

    def test_feed_tail_rejects_a_bad_shard_spec(self, tmp_path):
        output = run_shell(f".feed tail {tmp_path} 0.1 5/2")
        assert "usage: .feed tail" in output


class TestMultiLineStatements:
    def test_insert_spanning_lines(self):
        output = run_shell(
            "CREATE TABLE t (a INTEGER);\n"
            "INSERT INTO t VALUES\n  (1),\n  (2);\n"
            "SELECT a FROM t;"
        )
        assert "(2 rows)" in output

    def test_trailing_statement_without_semicolon_flushed(self):
        output = run_shell("CREATE TABLE t (a INTEGER);\nSELECT 1 + 1")
        assert "(1 rows)" in output

    def test_meta_not_interpreted_mid_statement(self):
        # A line starting with '.' inside a pending statement is SQL text
        # (and will fail to parse) rather than a silent meta-command.
        output = run_shell("SELECT\n.help\n;")
        assert "error:" in output


class TestBackendCommand:
    def test_show_current_and_available(self):
        output = run_shell(SETUP + ".backend")
        assert "backend: native" in output
        assert "available: native, sqlite" in output

    def test_switch_to_sqlite_and_back(self):
        output = run_shell(
            SETUP
            + ".backend sqlite\nSELECT * FROM emp WHERE salary > 1;\n"
            + ".backend\n.backend native\n.backend"
        )
        assert "backend: sqlite" in output
        assert "(3 rows)" in output
        assert output.count("backend: native") >= 1

    def test_sqlite_backend_answers_match_native(self):
        script = SETUP + ".consistent SELECT * FROM emp;"
        native = run_shell(script)
        pushed = run_shell(SETUP + ".backend sqlite\n.consistent SELECT * FROM emp;")
        assert "(bob, 5)" in native and "(bob, 5)" in pushed

    def test_stats_show_pushdown_counters(self):
        output = run_shell(
            SETUP + ".backend sqlite\nSELECT * FROM emp;\n.stats"
        )
        assert "backend_pushdowns" in output
        assert "backend_fallbacks" in output

    def test_unknown_backend_is_an_error(self):
        output = run_shell(SETUP + ".backend postgres")
        assert "error:" in output and "unknown backend" in output

    def test_missing_duckdb_driver_reported(self):
        from repro.backends import duckdb_available

        if duckdb_available():  # pragma: no cover - driver-dependent
            output = run_shell(SETUP + ".backend duckdb")
            assert "backend: duckdb" in output
        else:
            output = run_shell(SETUP + ".backend duckdb")
            assert "error:" in output and "not installed" in output


class TestExplainParameterized:
    def test_explain_prints_parameterized_envelope(self):
        output = run_shell(SETUP + ".explain SELECT * FROM emp WHERE salary > 1;")
        assert "envelope: SELECT DISTINCT" in output
        assert "WHERE (emp.salary > ?)" in output or "salary > ?" in output
        assert "bound arguments: 1" in output

    def test_explain_without_literals_has_no_arguments(self):
        output = run_shell(SETUP + ".explain SELECT * FROM emp;")
        assert "bound arguments: (none)" in output

    def test_explain_quotes_text_arguments(self):
        output = run_shell(
            SETUP + ".explain SELECT * FROM emp WHERE name = 'ann';"
        )
        assert "bound arguments: 'ann'" in output


class TestScriptedDemo:
    def test_edbt_demo_session(self):
        from pathlib import Path

        demo = (
            Path(__file__).resolve().parents[2] / "demos" / "edbt_demo.hippo"
        )
        output = run_shell(demo.read_text())
        assert "4 repairs" in output
        assert "(ann, cs)" in output  # part 1: recovered certain fact
        assert "NOT EXISTS" in output  # part 2: rewriting shown
        assert "envelope: SELECT DISTINCT" in output  # part 3
        assert "error" not in output


class TestValueParsing:
    def test_parse_values(self):
        assert _parse_cli_value(" 3 ") == 3
        assert _parse_cli_value("3.5") == 3.5
        assert _parse_cli_value("NULL") is None
        assert _parse_cli_value("'ann'") == "ann"
        assert _parse_cli_value("bare") == "bare"


class TestMainEntry:
    def test_main_reads_files(self, tmp_path, capsys, monkeypatch):
        script = tmp_path / "session.hippo"
        script.write_text(SETUP + ".consistent SELECT * FROM emp;")
        monkeypatch.setattr("sys.stdout", io.StringIO())
        import sys

        assert main([str(script)]) == 0
        assert "(bob, 5)" in sys.stdout.getvalue()
