"""Tests for the interactive CLI frontend."""

from __future__ import annotations

import io


from repro.cli import HippoShell, _parse_cli_value, main


def run_shell(script: str) -> str:
    out = io.StringIO()
    shell = HippoShell(out=out)
    shell.run(script.splitlines())
    return out.getvalue()


SETUP = """
CREATE TABLE emp (name TEXT, salary INTEGER);
INSERT INTO emp VALUES ('ann', 10), ('ann', 20), ('bob', 5);
.constraint FD emp: name -> salary
"""


class TestShellCommands:
    def test_sql_and_consistent(self):
        output = run_shell(SETUP + ".consistent SELECT * FROM emp;")
        assert "(bob, 5)" in output
        assert "1 consistent answer" in output

    def test_possible(self):
        output = run_shell(SETUP + ".possible SELECT * FROM emp;")
        assert "3 possible answers" in output

    def test_cleaned_and_raw(self):
        output = run_shell(
            SETUP + ".cleaned SELECT * FROM emp;\n.raw SELECT * FROM emp;"
        )
        assert "1 row" in output and "3 rows" in output

    def test_detect_summary(self):
        output = run_shell(SETUP + ".detect")
        assert "1 edges" in output and "2 conflicting tuples" in output

    def test_constraints_listing(self):
        output = run_shell(SETUP + ".constraints")
        assert "FD emp: name -> salary" in output

    def test_rewrite_shows_sql(self):
        output = run_shell(SETUP + ".rewrite SELECT * FROM emp;")
        assert "NOT EXISTS" in output

    def test_explain_shows_envelope(self):
        output = run_shell(SETUP + ".explain SELECT * FROM emp WHERE salary > 1;")
        assert "envelope: SELECT DISTINCT" in output

    def test_why_consistent(self):
        output = run_shell(SETUP + ".why SELECT * FROM emp ; 'bob', 5")
        assert "consistent" in output

    def test_why_inconsistent_names_counterexample(self):
        output = run_shell(SETUP + ".why SELECT * FROM emp ; 'ann', 10")
        assert "possible but not consistent" in output
        assert "excluding" in output

    def test_repair_count(self):
        output = run_shell(SETUP + ".repairs")
        assert "2 repairs" in output

    def test_select_through_sql_path(self):
        output = run_shell(
            "CREATE TABLE t (a INTEGER);\nINSERT INTO t VALUES (1), (2);\n"
            "SELECT a FROM t ORDER BY a;"
        )
        assert "(2 rows)" in output

    def test_error_reported_not_raised(self):
        output = run_shell("SELECT * FROM missing;")
        assert "error:" in output

    def test_blank_lines_and_comments_skipped(self):
        output = run_shell("\n-- nothing\n  \n")
        assert output == ""

    def test_unknown_meta_command(self):
        output = run_shell(".frobnicate")
        assert "unknown command" in output

    def test_quit_stops_processing(self):
        output = run_shell(".quit\nSELECT * FROM missing;")
        assert "error" not in output

    def test_help(self):
        output = run_shell(".help")
        assert ".consistent" in output

    def test_repairs_fresh_after_dml(self):
        script = SETUP + (
            ".repairs\nINSERT INTO emp VALUES ('bob', 6);\n.repairs"
        )
        output = run_shell(script)
        assert "2 repairs" in output  # ann's pair only
        assert "4 repairs" in output  # bob's new pair folded in

    def test_query_refresh_after_dml(self):
        # The engine must re-detect conflicts after data changes.
        script = SETUP + (
            ".consistent SELECT * FROM emp;\n"
            "DELETE FROM emp WHERE salary = 20;\n"
            ".consistent SELECT * FROM emp;"
        )
        output = run_shell(script)
        assert "2 consistent answers" in output  # ann(10) recovered


class TestMultiLineStatements:
    def test_insert_spanning_lines(self):
        output = run_shell(
            "CREATE TABLE t (a INTEGER);\n"
            "INSERT INTO t VALUES\n  (1),\n  (2);\n"
            "SELECT a FROM t;"
        )
        assert "(2 rows)" in output

    def test_trailing_statement_without_semicolon_flushed(self):
        output = run_shell("CREATE TABLE t (a INTEGER);\nSELECT 1 + 1")
        assert "(1 rows)" in output

    def test_meta_not_interpreted_mid_statement(self):
        # A line starting with '.' inside a pending statement is SQL text
        # (and will fail to parse) rather than a silent meta-command.
        output = run_shell("SELECT\n.help\n;")
        assert "error:" in output


class TestScriptedDemo:
    def test_edbt_demo_session(self):
        from pathlib import Path

        demo = (
            Path(__file__).resolve().parents[2] / "demos" / "edbt_demo.hippo"
        )
        output = run_shell(demo.read_text())
        assert "4 repairs" in output
        assert "(ann, cs)" in output  # part 1: recovered certain fact
        assert "NOT EXISTS" in output  # part 2: rewriting shown
        assert "envelope: SELECT DISTINCT" in output  # part 3
        assert "error" not in output


class TestValueParsing:
    def test_parse_values(self):
        assert _parse_cli_value(" 3 ") == 3
        assert _parse_cli_value("3.5") == 3.5
        assert _parse_cli_value("NULL") is None
        assert _parse_cli_value("'ann'") == "ann"
        assert _parse_cli_value("bare") == "bare"


class TestMainEntry:
    def test_main_reads_files(self, tmp_path, capsys, monkeypatch):
        script = tmp_path / "session.hippo"
        script.write_text(SETUP + ".consistent SELECT * FROM emp;")
        monkeypatch.setattr("sys.stdout", io.StringIO())
        import sys

        assert main([str(script)]) == 0
        assert "(bob, 5)" in sys.stdout.getvalue()
