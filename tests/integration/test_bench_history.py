"""Tests for the capped benchmark result history in benchmarks/common.py."""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from common import (  # noqa: E402
    HISTORY_KEEP,
    compact_run,
    load_history,
    record_run,
)


def fake_run(tag):
    return {
        "datetime": f"2026-08-0{tag}T00:00:00",
        "benchmarks": [
            {
                "name": f"test_bench_{tag}",
                "stats": {
                    "mean": 0.5,
                    "min": 0.4,
                    "max": 0.6,
                    "data": [0.4, 0.5, 0.6] * 100,
                },
            }
        ],
    }


class TestCompaction:
    def test_raw_samples_stripped(self):
        compacted = compact_run(fake_run(1))
        stats = compacted["benchmarks"][0]["stats"]
        assert "data" not in stats
        assert stats["mean"] == 0.5 and stats["min"] == 0.4

    def test_original_untouched(self):
        run = fake_run(1)
        compact_run(run)
        assert "data" in run["benchmarks"][0]["stats"]

    def test_tolerates_missing_fields(self):
        assert compact_run({})["benchmarks"] == []
        assert compact_run({"benchmarks": [{"name": "x"}]})["benchmarks"] == [
            {"name": "x"}
        ]


class TestHistory:
    def test_first_record_creates_capped_file(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        history = record_run(path, fake_run(1))
        assert len(history) == 1
        payload = json.loads(path.read_text())
        assert payload["keep"] == HISTORY_KEEP
        assert len(payload["history"]) == 1
        assert "data" not in payload["history"][0]["benchmarks"][0]["stats"]

    def test_history_caps_at_keep_dropping_oldest(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        for tag in range(1, 6):
            record_run(path, fake_run(tag), keep=3)
        history = load_history(path)
        assert len(history) == 3
        assert [run["datetime"][9] for run in history] == ["3", "4", "5"]

    def test_legacy_single_run_file_converts(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps(fake_run(1)))
        assert len(load_history(path)) == 1  # read as one-entry history
        history = record_run(path, fake_run(2))
        assert len(history) == 2
        assert "data" not in history[0]["benchmarks"][0]["stats"]

    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_history(tmp_path / "nope.json") == []


class TestRepoResultFiles:
    """The checked-in result files are already in capped-history form."""

    def test_converted_and_compact(self):
        for name in ("BENCH_pipeline.json", "BENCH_feed_replay.json"):
            payload = json.loads((REPO_ROOT / name).read_text())
            assert payload["keep"] == HISTORY_KEEP
            assert 1 <= len(payload["history"]) <= payload["keep"]
            for run in payload["history"]:
                for bench in run["benchmarks"]:
                    assert "data" not in bench["stats"]
