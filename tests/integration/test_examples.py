"""Smoke tests: every example script must run end to end.

The heavyweight sweep in performance_comparison.py is monkey-patched down
to demo sizes so the suite stays fast; the script's own assertions
(approach agreement) still run.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path


EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_quickstart_runs(capsys):
    module = load_example("quickstart")
    module.main()
    output = capsys.readouterr().out
    assert "Answer Set" in output
    assert "('ann', 'cs')" in output  # the disjunctive-information payoff


def test_data_integration_runs(capsys):
    module = load_example("data_integration")
    module.main()
    output = capsys.readouterr().out
    assert "invariant checked" in output


def test_expressiveness_runs(capsys):
    module = load_example("expressiveness")
    module.main()
    output = capsys.readouterr().out
    assert "unsupported" in output  # rewriting's gaps surface
    assert "exact" in output


def test_referential_integrity_runs(capsys):
    module = load_example("referential_integrity")
    module.main()
    output = capsys.readouterr().out
    assert "repairs: 2" in output
    assert "possible in some repair" in output


def test_performance_comparison_runs(capsys, monkeypatch):
    module = load_example("performance_comparison")

    # Shrink the sweep: patch the generator call sites via the module's
    # imported names (the script builds fresh databases per size).
    original_main = module.main

    def small_main():
        import repro.workloads as workloads

        real_generate = workloads.generate_key_conflict_table

        def tiny(db, name, n_tuples, fraction, **kwargs):
            return real_generate(db, name, min(n_tuples, 300), fraction, **kwargs)

        monkeypatch.setattr(module, "generate_key_conflict_table", tiny)
        monkeypatch.setattr(module, "timed", lambda fn, repeat=1: (fn(), 1e-6)[1])
        original_main()

    small_main()
    output = capsys.readouterr().out
    assert "rewr/Hippo" in output
