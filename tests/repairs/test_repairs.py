"""Tests for repair enumeration and checking (the ground-truth oracle)."""

import pytest

from repro.conflicts import ConflictHypergraph, detect_conflicts, vertex
from repro.constraints import ConstraintAtom, DenialConstraint, FunctionalDependency
from repro.ra import CatalogSchemaProvider, from_sql_query
from repro.repairs import (
    TooManyRepairsError,
    all_repairs,
    ground_truth_consistent_answers,
    is_repair,
    maximal_independent_sets,
    satisfies_constraints,
)
from repro.sql.parser import parse_expression, parse_query


@pytest.fixture
def emp_setup(emp_db):
    fd = FunctionalDependency("emp", ["name"], ["dept", "salary"])
    report = detect_conflicts(emp_db, [fd])
    return emp_db, fd, report.hypergraph


class TestMaximalIndependentSets:
    def test_single_edge_graph(self):
        a, b = vertex("r", 1), vertex("r", 2)
        graph = ConflictHypergraph([frozenset({a, b})])
        sets = maximal_independent_sets(graph)
        assert sorted(sets, key=sorted) == [frozenset({a}), frozenset({b})]

    def test_triangle_hyperedge(self):
        a, b, c = vertex("r", 1), vertex("r", 2), vertex("r", 3)
        graph = ConflictHypergraph([frozenset({a, b, c})])
        sets = maximal_independent_sets(graph)
        # Any 2 of 3 vertices: three maximal independent sets.
        assert len(sets) == 3
        assert all(len(s) == 2 for s in sets)

    def test_chain_graph(self):
        a, b, c = vertex("r", 1), vertex("r", 2), vertex("r", 3)
        graph = ConflictHypergraph([frozenset({a, b}), frozenset({b, c})])
        sets = set(maximal_independent_sets(graph))
        assert sets == {frozenset({a, c}), frozenset({b})}

    def test_limit_enforced(self):
        edges = [
            frozenset({vertex("r", 2 * i), vertex("r", 2 * i + 1)})
            for i in range(12)
        ]
        graph = ConflictHypergraph(edges)
        with pytest.raises(TooManyRepairsError):
            maximal_independent_sets(graph, limit=100)


class TestAllRepairs:
    def test_count_matches_conflict_structure(self, emp_setup):
        db, _fd, graph = emp_setup
        repairs = all_repairs(db, graph)
        # Two independent binary conflicts: 2 * 2 = 4 repairs.
        assert len(repairs) == 4

    def test_repairs_keep_conflict_free_tuples(self, emp_setup):
        db, _fd, graph = emp_setup
        bob_tid = next(iter(db.table("emp").lookup(("bob", "ee", 20))))
        for repair in all_repairs(db, graph):
            assert bob_tid in repair["emp"]

    def test_each_repair_is_a_repair(self, emp_setup):
        db, fd, graph = emp_setup
        for repair in all_repairs(db, graph):
            assert satisfies_constraints(db, [fd], repair)
            assert is_repair(db, [fd], graph, repair)

    def test_dropping_a_tuple_breaks_maximality(self, emp_setup):
        db, fd, graph = emp_setup
        repair = all_repairs(db, graph)[0]
        tid = next(iter(repair["emp"]))
        smaller = {"emp": repair["emp"] - {tid}}
        assert not is_repair(db, [fd], graph, smaller)

    def test_full_db_not_a_repair_when_inconsistent(self, emp_setup):
        db, fd, graph = emp_setup
        everything = {"emp": frozenset(db.table("emp").tids())}
        assert not satisfies_constraints(db, [fd], everything)

    def test_consistent_db_has_one_repair(self, two_table_db):
        fd = FunctionalDependency("s", ["a"], ["b"])
        graph = detect_conflicts(two_table_db, [fd]).hypergraph
        repairs = all_repairs(two_table_db, graph)
        assert len(repairs) == 1
        assert repairs[0]["s"] == frozenset(two_table_db.table("s").tids())

    def test_singleton_edge_tuple_in_no_repair(self, two_table_db):
        denial = DenialConstraint(
            "no-nines",
            (ConstraintAtom("t", "s"),),
            parse_expression("t.a = 9"),
        )
        graph = detect_conflicts(two_table_db, [denial]).hypergraph
        bad_tid = next(iter(two_table_db.table("s").lookup((9, 9))))
        for repair in all_repairs(two_table_db, graph):
            assert bad_tid not in repair["s"]


class TestGroundTruth:
    def test_selection_drops_disputed(self, emp_setup):
        db, _fd, graph = emp_setup
        tree = from_sql_query(
            parse_query("SELECT * FROM emp WHERE salary >= 10"),
            CatalogSchemaProvider(db.catalog),
        )
        truth = ground_truth_consistent_answers(db, graph, tree)
        assert truth == {("bob", "ee", 20), ("dave", "ee", 18)}

    def test_union_recovers_disjunctive_info(self, emp_setup):
        db, _fd, graph = emp_setup
        tree = from_sql_query(
            parse_query(
                "SELECT name, dept FROM emp WHERE salary = 10"
                " UNION SELECT name, dept FROM emp WHERE salary = 12"
            ),
            CatalogSchemaProvider(db.catalog),
        )
        truth = ground_truth_consistent_answers(db, graph, tree)
        assert truth == {("ann", "cs")}

    def test_empty_when_no_common_answers(self, emp_setup):
        db, _fd, graph = emp_setup
        tree = from_sql_query(
            parse_query("SELECT * FROM emp WHERE salary = 12"),
            CatalogSchemaProvider(db.catalog),
        )
        assert ground_truth_consistent_answers(db, graph, tree) == frozenset()


class TestMixedCaseNames:
    """Repairs key relations by ``name.lower()`` while the catalog keeps
    declared case; the whole oracle must bridge the two."""

    def build(self):
        from repro.engine.database import Database

        db = Database()
        db.execute("CREATE TABLE Emp (Name TEXT, Salary INTEGER)")
        db.execute(
            "INSERT INTO Emp VALUES ('ann', 10), ('ann', 20), ('bob', 5)"
        )
        fd = FunctionalDependency("Emp", ["Name"], ["Salary"])
        report = detect_conflicts(db, [fd])
        return db, fd, report.hypergraph

    def test_repairs_are_keyed_lowercase_and_complete(self):
        db, fd, graph = self.build()
        # Vertices are normalized to lower-case relation names...
        assert {v.relation for e in graph.edges for v in e} == {"emp"}
        repairs = all_repairs(db, graph)
        # ...and so are the repair keys, even though the catalog answers
        # to the declared mixed-case name.
        assert all(set(r) == {"emp"} for r in repairs)
        assert len(repairs) == 2
        bob = next(iter(db.table("Emp").lookup(("bob", 5))))
        assert all(bob in r["emp"] for r in repairs)
        for repair in repairs:
            assert satisfies_constraints(db, [fd], repair)
            assert is_repair(db, [fd], graph, repair)

    def test_ground_truth_resolves_mixed_case_queries(self):
        db, _fd, graph = self.build()
        tree = from_sql_query(
            parse_query("SELECT * FROM Emp WHERE Salary > 0"),
            CatalogSchemaProvider(db.catalog),
        )
        truth = ground_truth_consistent_answers(db, graph, tree)
        assert truth == {("bob", 5)}


class TestShardedGroundTruth:
    """Consistent answers computed over the *merged shard view* must
    equal the repair-enumeration ground truth (and the primary engine)
    for the demo workloads -- including mixed-case relation names and a
    cross-shard foreign key."""

    QUERIES = [
        "SELECT * FROM Emp WHERE salary >= 10",
        "SELECT * FROM Emp WHERE dept = 'cs'",
        "SELECT name, dept FROM Emp WHERE salary = 10"
        " UNION SELECT name, dept FROM Emp WHERE salary = 12",
        "SELECT * FROM Dept",
    ]

    def build(self, tmp_path, workers, assignment):
        from repro.conflicts import ShardCoordinator
        from repro.engine.database import Database
        from repro.engine.feed import ChangeFeed
        from repro.constraints.foreign_key import ForeignKeyConstraint

        feed = ChangeFeed(tmp_path / "feed")
        db = Database(feed=feed)
        db.execute("CREATE TABLE Dept (dname TEXT)")
        db.execute(
            "CREATE TABLE Emp (name TEXT, dept TEXT, salary INTEGER)"
        )
        db.execute("INSERT INTO Dept VALUES ('cs'), ('ee')")
        db.execute(
            "INSERT INTO Emp VALUES"
            " ('ann', 'cs', 10),"
            " ('ann', 'cs', 12),"
            " ('bob', 'ee', 20),"
            " ('carol', 'me', 15),"  # dangling: 'me' is not a Dept
            " ('dave', 'ee', 18)"
        )
        feed.flush()
        constraints = [
            FunctionalDependency("Emp", ["name"], ["dept", "salary"]),
            ForeignKeyConstraint("Emp", ["dept"], "Dept", ["dname"]),
        ]
        coordinator = ShardCoordinator(
            feed, constraints, workers=workers, assignment=assignment
        )
        coordinator.drain()
        return feed, db, constraints, coordinator

    @pytest.mark.parametrize(
        "workers,assignment",
        [(2, None), (2, {"emp": 0, "Dept": 1})],  # co-located / cross-shard
    )
    def test_sharded_answers_equal_ground_truth(
        self, tmp_path, workers, assignment
    ):
        from repro.core.hippo import HippoEngine

        feed, db, constraints, coordinator = self.build(
            tmp_path, workers, assignment
        )
        full = detect_conflicts(db, constraints)
        assert coordinator.graph.as_dict() == full.hypergraph.as_dict()
        sharded = coordinator.engine()
        primary = HippoEngine(db, constraints)
        provider = CatalogSchemaProvider(db.catalog)
        for query in self.QUERIES:
            tree = from_sql_query(parse_query(query), provider)
            truth = ground_truth_consistent_answers(
                db, full.hypergraph, tree
            )
            assert sharded.consistent_answers(query).as_set() == truth
            assert primary.consistent_answers(query).as_set() == truth
        coordinator.close()
        feed.close()
