"""Shared fixtures and test-harness plumbing for the test suite.

Two harness services live here besides the database fixtures:

* **Deterministic repro.**  A single session seed (``--seed N``, random
  otherwise) drives every randomized suite: the :func:`rng_seed`
  fixture derives a stable per-test seed from it, and hypothesis is
  pointed at the same session seed.  When a seeded test fails, the
  report carries the seed and a one-line reproduction command, so a CI
  failure replays locally with ``--seed``.
* **Per-test deadlines.**  Tests marked ``@pytest.mark.slow`` (the
  multi-process / chaos tier, excluded from tier-1 by the default
  ``-m "not slow"``) get a SIGALRM-enforced wall-clock deadline so a
  deadlocked worker process fails the test instead of hanging CI.
  ``@pytest.mark.deadline(seconds)`` overrides the limit per test.
"""

from __future__ import annotations

import random
import signal
import threading
import zlib
from typing import Iterator, Optional

import pytest

from repro.engine import Database

_SLOW_DEADLINE = 120.0  # seconds; default for @pytest.mark.slow


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--seed",
        type=int,
        default=None,
        help="session seed for randomized suites (chaos schedules,"
        " seeded workloads, hypothesis); random when omitted",
    )


def pytest_configure(config: pytest.Config) -> None:
    seed = config.getoption("--seed")
    if seed is None:
        seed = random.SystemRandom().randrange(2**32)
    config._session_seed = seed  # type: ignore[attr-defined]
    # Derive hypothesis's randomization from the same session seed, so
    # the printed repro command replays hypothesis failures too.
    if getattr(config.option, "hypothesis_seed", None) is None:
        config.option.hypothesis_seed = str(seed)


def pytest_report_header(config: pytest.Config) -> str:
    return f"session seed: {config._session_seed}"  # type: ignore[attr-defined]


def _test_seed(config: pytest.Config, nodeid: str) -> int:
    """A stable per-test seed: session seed mixed with the node id."""
    session_seed: int = config._session_seed  # type: ignore[attr-defined]
    return (session_seed ^ zlib.crc32(nodeid.encode())) % 2**32


@pytest.fixture
def rng_seed(request: pytest.FixtureRequest) -> int:
    """This test's seed, derived from the session seed.

    Tests build their randomness from it (``random.Random(rng_seed)``);
    on failure the report prints the seed and the ``--seed`` command
    that reproduces it.
    """
    seed = _test_seed(request.config, request.node.nodeid)
    request.node._repro_seed = seed
    return seed


@pytest.fixture
def rng(rng_seed: int) -> random.Random:
    """A :class:`random.Random` seeded from :func:`rng_seed`."""
    return random.Random(rng_seed)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(
    item: pytest.Item, call: pytest.CallInfo
) -> Iterator[None]:
    outcome = yield
    report = outcome.get_result()  # type: ignore[attr-defined]
    if report.when != "call" or not report.failed:
        return
    session_seed = item.config._session_seed  # type: ignore[attr-defined]
    lines = []
    seed = getattr(item, "_repro_seed", None)
    if seed is not None:
        lines.append(f"test seed: {seed} (session seed {session_seed})")
    if seed is not None or item.get_closest_marker("hypothesis") is not None:
        lines.append(
            "repro: PYTHONPATH=src python -m pytest"
            f' "{item.nodeid}" --seed={session_seed} -m ""'
        )
    if lines:
        report.sections.append(("deterministic repro", "\n".join(lines)))


def _deadline_of(item: pytest.Item) -> Optional[float]:
    marker = item.get_closest_marker("deadline")
    if marker is not None:
        return float(marker.args[0]) if marker.args else _SLOW_DEADLINE
    if item.get_closest_marker("slow") is not None:
        return _SLOW_DEADLINE
    return None


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item: pytest.Item) -> Iterator[None]:
    limit = _deadline_of(item)
    if (
        limit is None
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _expired(signum: int, frame: object) -> None:
        raise TimeoutError(
            f"test exceeded its {limit:.0f}s deadline"
            " (a worker process is likely hung)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, limit)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def db() -> Database:
    """An empty database."""
    return Database()


@pytest.fixture
def emp_db() -> Database:
    """The canonical small inconsistent employee instance.

    ``emp(name, dept, salary)`` with key ``name``; ann's salary and
    carol's department are disputed.
    """
    database = Database()
    database.execute(
        "CREATE TABLE emp (name TEXT, dept TEXT, salary INTEGER,"
        " PRIMARY KEY (name))"
    )
    database.execute(
        "INSERT INTO emp VALUES"
        " ('ann', 'cs', 10),"
        " ('ann', 'cs', 12),"
        " ('bob', 'ee', 20),"
        " ('carol', 'cs', 15),"
        " ('carol', 'me', 15),"
        " ('dave', 'ee', 18)"
    )
    return database


@pytest.fixture
def two_table_db() -> Database:
    """Two integer tables ``r(a, b)`` / ``s(a, b)`` with overlapping rows."""
    database = Database()
    database.execute("CREATE TABLE r (a INTEGER, b INTEGER)")
    database.execute("CREATE TABLE s (a INTEGER, b INTEGER)")
    database.execute("INSERT INTO r VALUES (1,1), (1,2), (2,5), (3,7), (4,4)")
    database.execute("INSERT INTO s VALUES (2,5), (4,4), (9,9)")
    return database
