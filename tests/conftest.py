"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.engine import Database


@pytest.fixture
def db() -> Database:
    """An empty database."""
    return Database()


@pytest.fixture
def emp_db() -> Database:
    """The canonical small inconsistent employee instance.

    ``emp(name, dept, salary)`` with key ``name``; ann's salary and
    carol's department are disputed.
    """
    database = Database()
    database.execute(
        "CREATE TABLE emp (name TEXT, dept TEXT, salary INTEGER,"
        " PRIMARY KEY (name))"
    )
    database.execute(
        "INSERT INTO emp VALUES"
        " ('ann', 'cs', 10),"
        " ('ann', 'cs', 12),"
        " ('bob', 'ee', 20),"
        " ('carol', 'cs', 15),"
        " ('carol', 'me', 15),"
        " ('dave', 'ee', 18)"
    )
    return database


@pytest.fixture
def two_table_db() -> Database:
    """Two integer tables ``r(a, b)`` / ``s(a, b)`` with overlapping rows."""
    database = Database()
    database.execute("CREATE TABLE r (a INTEGER, b INTEGER)")
    database.execute("CREATE TABLE s (a INTEGER, b INTEGER)")
    database.execute("INSERT INTO r VALUES (1,1), (1,2), (2,5), (3,7), (4,4)")
    database.execute("INSERT INTO s VALUES (2,5), (4,4), (9,9)")
    return database
