"""Property suite: feed records round-trip the JSONL wire format.

Every SQL value -- including the REAL edge cases ``nan``, ``inf``,
``-inf``, negative zero and integral floats -- must survive
``FeedRecord.to_json`` / ``from_json`` unchanged, and every emitted line
must be *strict* JSON (no ``NaN`` / ``Infinity`` tokens), so a foreign
JSONL reader or a strict parser never sees an invalid line.
"""

from __future__ import annotations

import json
import math

from hypothesis import given, strategies as st

from repro.engine.feed import (
    RECORD_CHANGE,
    FeedRecord,
    decode_value,
    encode_value,
)

#: Every SQLType's Python carrier, weighted toward the edge cases the
#: encoder exists for.
sql_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=True, allow_infinity=True),
    st.sampled_from(
        [float("nan"), float("inf"), float("-inf"), -0.0, 2.0, -17.0, 1e308]
    ),
    st.text(max_size=20),
)

rows = st.lists(sql_values, min_size=0, max_size=6).map(tuple)


def values_equivalent(left: object, right: object) -> bool:
    """Equality that distinguishes types and identifies NaNs."""
    if type(left) is not type(right):
        return False
    if isinstance(left, float) and math.isnan(left):
        return isinstance(right, float) and math.isnan(right)
    if isinstance(left, float):
        # -0.0 == 0.0 under ==; require the same sign bit.
        return left == right and math.copysign(1, left) == math.copysign(
            1, right
        )
    return left == right


def _reject_constant(token: str):
    raise AssertionError(f"non-standard JSON token {token!r} on the wire")


@given(
    row=rows,
    seq=st.integers(min_value=0, max_value=2**40),
    tid=st.integers(min_value=0, max_value=2**31),
    op=st.sampled_from(["insert", "delete"]),
)
def test_change_records_round_trip_as_strict_json(row, seq, tid, op):
    record = FeedRecord(
        seq=seq,
        topic="r",
        offset=seq,
        kind=RECORD_CHANGE,
        tid=tid,
        row=row,
        op=op,
    )
    line = record.to_json()
    assert "\n" not in line  # one record, one JSONL line
    # A strict parser accepts the line (parse_constant fires only for
    # the non-standard NaN/Infinity tokens -- never, or this raises).
    json.loads(line, parse_constant=_reject_constant)
    back = FeedRecord.from_json(line)
    assert (back.seq, back.topic, back.offset, back.kind) == (
        record.seq,
        record.topic,
        record.offset,
        record.kind,
    )
    assert (back.tid, back.op) == (record.tid, record.op)
    assert len(back.row) == len(row)
    for before, after in zip(row, back.row):
        assert values_equivalent(before, after)


@given(value=sql_values)
def test_value_codec_is_inverse(value):
    encoded = encode_value(value)
    # The wire form itself must be strict-JSON-serializable.
    json.dumps(encoded, allow_nan=False)
    assert values_equivalent(decode_value(encoded), value)
