"""Property tests over randomly *generated* SJUD trees.

The template-based properties exercise common SQL shapes; this module
builds arbitrary nested union/difference trees over random selection
cores directly in the SJUD representation, then checks

* Hippo == repair enumeration (the definition),
* SJUD compilation == the independently-written classical-algebra
  evaluator (two implementations of plain evaluation must agree),
* the SQL round-trip (tree -> SQL -> tree) preserves semantics.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import Database, HippoEngine
from repro.constraints import FunctionalDependency
from repro.ra import (
    Atom,
    CatalogSchemaProvider,
    Difference,
    OutputColumn,
    SJUDCore,
    Union_,
    evaluate_tree,
    from_sql_query,
    tree_to_sql,
)
from repro.ra.algebra import evaluate as algebra_evaluate, sjud_to_algebra
from repro.repairs import ground_truth_consistent_answers
from repro.sql import ast
from repro.sql.parser import parse_query

value = st.integers(min_value=0, max_value=3)
rows = st.lists(st.tuples(value, value), min_size=0, max_size=6)

_COMPARISONS = ["<", "<=", "=", "<>", ">", ">="]


@st.composite
def selection_cores(draw):
    """A random single-atom core: sigma over r or s, both columns kept."""
    relation = draw(st.sampled_from(["r", "s"]))
    atom = Atom("t", relation)
    conjuncts = []
    for column in ("a", "b"):
        if draw(st.booleans()):
            op = draw(st.sampled_from(_COMPARISONS))
            constant = draw(value)
            conjuncts.append(
                ast.BinaryOp(
                    op, ast.ColumnRef("t", column), ast.Literal(constant)
                )
            )
    condition = ast.conjunction(conjuncts)
    outputs = (
        OutputColumn("a", ast.ColumnRef("t", "a")),
        OutputColumn("b", ast.ColumnRef("t", "b")),
    )
    return SJUDCore((atom,), condition, outputs)


@st.composite
def sjud_trees(draw, depth: int = 3):
    if depth == 0 or draw(st.integers(0, 2)) == 0:
        return draw(selection_cores())
    combinator = draw(st.sampled_from([Union_, Difference]))
    left = draw(sjud_trees(depth=depth - 1))
    right = draw(sjud_trees(depth=depth - 1))
    return combinator(left, right)


def build_db(r_rows, s_rows) -> Database:
    db = Database()
    db.execute("CREATE TABLE r (a INTEGER, b INTEGER)")
    db.execute("CREATE TABLE s (a INTEGER, b INTEGER)")
    db.insert_rows("r", r_rows)
    db.insert_rows("s", s_rows)
    return db


CONSTRAINTS = [
    FunctionalDependency("r", ["a"], ["b"]),
    FunctionalDependency("s", ["a"], ["b"]),
]


@settings(max_examples=120, deadline=None)
@given(rows, rows, sjud_trees())
def test_random_tree_hippo_matches_enumeration(r_rows, s_rows, tree):
    db = build_db(r_rows, s_rows)
    hippo = HippoEngine(db, CONSTRAINTS)
    truth = ground_truth_consistent_answers(db, hippo.hypergraph, tree)
    assert hippo.consistent_answers(tree).as_set() == truth


@settings(max_examples=150, deadline=None)
@given(rows, rows, sjud_trees())
def test_random_tree_two_evaluators_agree(r_rows, s_rows, tree):
    db = build_db(r_rows, s_rows)
    fast = evaluate_tree(tree, db)
    oracle = algebra_evaluate(sjud_to_algebra(tree, db), db)
    assert fast == oracle


@settings(max_examples=150, deadline=None)
@given(rows, rows, sjud_trees())
def test_random_tree_sql_roundtrip_preserves_semantics(r_rows, s_rows, tree):
    db = build_db(r_rows, s_rows)
    sql = tree_to_sql(tree)
    reparsed = from_sql_query(parse_query(sql), CatalogSchemaProvider(db.catalog))
    assert evaluate_tree(reparsed, db) == evaluate_tree(tree, db)


@settings(max_examples=80, deadline=None)
@given(rows, rows, sjud_trees())
def test_random_tree_possible_answers_match_definition(r_rows, s_rows, tree):
    from repro.repairs import all_repairs, repair_restriction

    db = build_db(r_rows, s_rows)
    hippo = HippoEngine(db, CONSTRAINTS)
    union_truth = frozenset()
    for repair in all_repairs(db, hippo.hypergraph):
        union_truth |= evaluate_tree(tree, db, repair_restriction(repair))
    assert hippo.possible_answers(tree).as_set() == union_truth
