"""Property-based validation of restricted foreign-key repairs.

The oracle here is even more basic than repair enumeration: for tiny
instances, enumerate *every subset* of the child relation, keep the
maximal ones satisfying FD + FK, and compare with the hypergraph-derived
repairs (parents are conflict-free under the restriction, so only child
subsets vary).
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings, strategies as st

from repro import Database, HippoEngine
from repro.constraints import ForeignKeyConstraint, FunctionalDependency
from repro.repairs import all_repairs

parent_keys = st.sets(st.integers(0, 3), max_size=3)
child_rows = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 4), st.integers(0, 1)),
    max_size=6,
)

FK = ForeignKeyConstraint("orders", ["cid"], "customer", ["id"])
FD = FunctionalDependency("orders", ["oid"], ["cid", "b"])


def build(parents, children):
    db = Database()
    db.execute("CREATE TABLE customer (id INTEGER)")
    db.execute("CREATE TABLE orders (oid INTEGER, cid INTEGER, b INTEGER)")
    db.insert_rows("customer", [(key,) for key in sorted(parents)])
    db.insert_rows("orders", children)
    return db


def brute_force_child_repairs(parents, children):
    """Maximal subsets of the child tids satisfying FD + FK (oracle)."""
    tids = list(range(len(children)))

    def consistent(subset):
        rows = [children[tid] for tid in subset]
        for left, right in itertools.combinations(rows, 2):
            if left[0] == right[0] and (left[1], left[2]) != (right[1], right[2]):
                return False  # FD oid -> cid, b violated
        return all(row[1] in parents for row in rows)  # FK

    consistent_sets = [
        frozenset(subset)
        for size in range(len(tids) + 1)
        for subset in itertools.combinations(tids, size)
        if consistent(subset)
    ]
    return {
        candidate
        for candidate in consistent_sets
        if not any(candidate < other for other in consistent_sets)
    }


@settings(max_examples=100, deadline=None)
@given(parent_keys, child_rows)
def test_fk_repairs_match_subset_enumeration(parents, children):
    db = build(parents, children)
    hippo = HippoEngine(db, [FD, FK])
    repairs = all_repairs(db, hippo.hypergraph)
    got = {repair["orders"] for repair in repairs}
    expected = brute_force_child_repairs(parents, children)
    assert got == expected
    # Parents are never deleted under the restriction.
    full_parent = frozenset(db.table("customer").tids())
    assert all(repair["customer"] == full_parent for repair in repairs)


@settings(max_examples=60, deadline=None)
@given(parent_keys, child_rows)
def test_fk_consistent_answers_match_definition(parents, children):
    db = build(parents, children)
    hippo = HippoEngine(db, [FD, FK])
    repairs = all_repairs(db, hippo.hypergraph)
    definition = None
    for repair in repairs:
        rows = frozenset(
            db.table("orders").get(tid) for tid in repair["orders"]
        )
        definition = rows if definition is None else definition & rows
    answers = hippo.consistent_answers("SELECT * FROM orders").as_set()
    assert answers == (definition or frozenset())
