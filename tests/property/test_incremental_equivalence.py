"""Property suite: incremental maintenance == full re-detection.

For randomized sequences of INSERT/DELETE/UPDATE over FD, exclusion and
restricted-FK scenarios (including the generated workloads), the
incrementally maintained conflict hypergraph must equal what a fresh
Conflict Detection run produces on the final state -- same edge set,
same labels, same adjacency, same per-constraint counters.  Batch
boundaries are randomized too, so deltas interact (insert-then-delete
of the same tuple inside one batch, updates folded into batches, ...).
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro import Database, HippoEngine
from repro.conflicts import detect_conflicts
from repro.constraints import (
    ConstraintAtom,
    DenialConstraint,
    ExclusionConstraint,
    FunctionalDependency,
)
from repro.constraints.foreign_key import ForeignKeyConstraint
from repro.sql.parser import parse_expression
from repro.workloads import generate_key_conflict_table


def assert_equivalent(engine: HippoEngine, db: Database, constraints) -> None:
    full = detect_conflicts(db, constraints)
    maintained = engine.hypergraph
    assert maintained.as_dict() == full.hypergraph.as_dict()
    assert engine.detection.per_constraint == full.per_constraint
    assert engine.detection.subsumed == full.subsumed
    assert set(maintained.conflicting_vertices()) == set(
        full.hypergraph.conflicting_vertices()
    )
    for v in full.hypergraph.conflicting_vertices():
        assert set(maintained.edges_of(v)) == set(full.hypergraph.edges_of(v))


# One randomized mutation step: (kind, key, value).
ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "update"]),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=5),
    ),
    min_size=1,
    max_size=25,
)
# After how many ops to refresh + compare (randomized batch boundaries).
batches = st.integers(min_value=1, max_value=5)


def run_sequence(db, engine, constraints, table, sequence, batch):
    applied = 0
    for kind, key, value in sequence:
        if kind == "insert":
            db.execute(f"INSERT INTO {table} VALUES ({key}, {value})")
        elif kind == "delete":
            db.execute(f"DELETE FROM {table} WHERE a = {key}")
        else:
            db.execute(f"UPDATE {table} SET b = {value} WHERE a = {key}")
        applied += 1
        if applied % batch == 0:
            engine.refresh()
            assert_equivalent(engine, db, constraints)
    engine.refresh()
    assert_equivalent(engine, db, constraints)


class TestFunctionalDependencies:
    @settings(max_examples=30, deadline=None)
    @given(sequence=ops, batch=batches)
    def test_fd_sequences(self, sequence, batch):
        db = Database()
        db.execute("CREATE TABLE r (a INTEGER, b INTEGER)")
        db.execute("INSERT INTO r VALUES (0, 0), (0, 1), (1, 2), (2, 3)")
        fd = FunctionalDependency("r", ["a"], ["b"])
        engine = HippoEngine(db, [fd])
        run_sequence(db, engine, [fd], "r", sequence, batch)

    @settings(max_examples=15, deadline=None)
    @given(sequence=ops, batch=batches)
    def test_fd_plus_unary_denial(self, sequence, batch):
        # Singletons absorb pairs: exercises subsumption bookkeeping.
        db = Database()
        db.execute("CREATE TABLE r (a INTEGER, b INTEGER)")
        db.execute("INSERT INTO r VALUES (0, 0), (0, 1)")
        constraints = [
            FunctionalDependency("r", ["a"], ["b"]),
            DenialConstraint(
                "neg", (ConstraintAtom("t", "r"),), parse_expression("t.b < 2")
            ),
        ]
        engine = HippoEngine(db, constraints)
        run_sequence(db, engine, constraints, "r", sequence, batch)


class TestExclusion:
    @settings(max_examples=20, deadline=None)
    @given(
        sequence=st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete", "update"]),
                st.sampled_from(["r", "s"]),
                st.integers(min_value=0, max_value=6),
                st.integers(min_value=0, max_value=4),
            ),
            min_size=1,
            max_size=20,
        ),
        batch=batches,
    )
    def test_exclusion_sequences(self, sequence, batch):
        db = Database()
        db.execute("CREATE TABLE r (a INTEGER, b INTEGER)")
        db.execute("CREATE TABLE s (a INTEGER, b INTEGER)")
        db.execute("INSERT INTO r VALUES (0, 0), (1, 1)")
        db.execute("INSERT INTO s VALUES (1, 0), (2, 1)")
        constraints = [
            ExclusionConstraint("r", "s", [("a", "a")]),
            FunctionalDependency("r", ["a"], ["b"]),
        ]
        engine = HippoEngine(db, constraints)
        applied = 0
        for kind, table, key, value in sequence:
            if kind == "insert":
                db.execute(f"INSERT INTO {table} VALUES ({key}, {value})")
            elif kind == "delete":
                db.execute(f"DELETE FROM {table} WHERE a = {key}")
            else:
                db.execute(f"UPDATE {table} SET b = {value} WHERE a = {key}")
            applied += 1
            if applied % batch == 0:
                engine.refresh()
                assert_equivalent(engine, db, constraints)
        engine.refresh()
        assert_equivalent(engine, db, constraints)


class TestForeignKeyChains:
    @settings(max_examples=20, deadline=None)
    @given(
        sequence=st.lists(
            st.tuples(
                st.sampled_from(
                    [
                        ("insert", "parent"),
                        ("delete", "parent"),
                        ("flag", "parent"),
                        ("insert", "child"),
                        ("delete", "child"),
                        ("insert", "gc"),
                        ("delete", "gc"),
                    ]
                ),
                st.integers(min_value=0, max_value=5),
            ),
            min_size=1,
            max_size=20,
        ),
        batch=batches,
    )
    def test_fk_cascade_sequences(self, sequence, batch):
        db = Database()
        db.execute("CREATE TABLE parent (id INTEGER, ok INTEGER)")
        db.execute("CREATE TABLE child (id INTEGER, pid INTEGER)")
        db.execute("CREATE TABLE gc (id INTEGER, cid INTEGER)")
        db.execute("INSERT INTO parent VALUES (0, 1), (1, 1), (2, 0)")
        db.execute("INSERT INTO child VALUES (0, 0), (1, 2), (2, 5)")
        db.execute("INSERT INTO gc VALUES (0, 0), (1, 2), (2, 4)")
        constraints = [
            DenialConstraint(
                "bad-parent",
                (ConstraintAtom("t", "parent"),),
                parse_expression("t.ok = 0"),
            ),
            ForeignKeyConstraint("child", ["pid"], "parent", ["id"]),
            ForeignKeyConstraint("gc", ["cid"], "child", ["id"]),
        ]
        engine = HippoEngine(db, constraints)
        applied = 0
        for (kind, table), key in sequence:
            if kind == "insert" and table == "parent":
                db.execute(f"INSERT INTO parent VALUES ({key}, 1)")
            elif kind == "flag":
                db.execute(f"UPDATE parent SET ok = 0 WHERE id = {key}")
            elif kind == "insert" and table == "child":
                db.execute(f"INSERT INTO child VALUES ({key}, {key})")
            elif kind == "insert" and table == "gc":
                db.execute(f"INSERT INTO gc VALUES ({key}, {key})")
            else:
                column = "id"
                db.execute(f"DELETE FROM {table} WHERE {column} = {key}")
            applied += 1
            if applied % batch == 0:
                engine.refresh()
                assert_equivalent(engine, db, constraints)
        engine.refresh()
        assert_equivalent(engine, db, constraints)


class TestGeneratedWorkload:
    def test_workload_update_stream(self):
        """The benchmark scenario shape, deterministic seeds, all ops."""
        rng = random.Random(97)
        db = Database()
        table = generate_key_conflict_table(db, "r", 300, 0.1, seed=5)
        engine = HippoEngine(db, [table.fd])
        for step in range(120):
            kind = rng.randrange(3)
            key = rng.randrange(3000)
            if kind == 0:
                db.execute(
                    f"INSERT INTO r VALUES ({key}, {rng.randrange(50)})"
                )
            elif kind == 1:
                db.execute(f"DELETE FROM r WHERE a = {key}")
            else:
                db.execute(
                    f"UPDATE r SET b0 = {rng.randrange(50)} WHERE a = {key}"
                )
            if step % 7 == 0:
                engine.refresh()
                assert_equivalent(engine, db, [table.fd])
        engine.refresh()
        assert_equivalent(engine, db, [table.fd])
        assert engine.detection.mode in ("incremental", "full")
