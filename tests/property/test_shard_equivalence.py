"""Property suite: the shards add up.

For randomized workloads over three FK/FD-linked relations and
*randomized topic assignments* (including assignments that split a
constraint's relations across workers -- the cross-shard path), the
union of the shard workers' hypergraphs must equal the monolithic
replica's graph at every aligned committed cut, and each worker's
partial graph must equal full re-detection over its partial database at
every *worker-local* cut.  The invariant survives killing a worker and
restarting it from its shard checkpoint, and -- in the second test --
retention truncation with checkpoint-based recovery (mirroring the
twin-feed pattern from ``test_replica_equivalence.py``).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.conflicts import (
    ProcessShardExecutor,
    ReplicaHypergraph,
    ShardCoordinator,
    detect_conflicts,
)
from repro.constraints import (
    ConstraintAtom,
    DenialConstraint,
    FunctionalDependency,
)
from repro.constraints.foreign_key import ForeignKeyConstraint
from repro.engine.database import Database
from repro.engine.feed import ChangeFeed
from repro.sql.parser import parse_expression

# One randomized mutation step over the three tables.
ops = st.lists(
    st.tuples(
        st.sampled_from(
            [
                ("insert", "p"),
                ("delete", "p"),
                ("insert", "c"),
                ("delete", "c"),
                ("update", "c"),
                ("insert", "u"),
                ("delete", "u"),
                ("update", "u"),
            ]
        ),
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=4),
    ),
    min_size=1,
    max_size=20,
)
# A random topic assignment over two workers: cross-shard whenever the
# FK's two relations (p, c) land on different workers.
assignments = st.tuples(
    st.integers(min_value=0, max_value=1),
    st.integers(min_value=0, max_value=1),
    st.integers(min_value=0, max_value=1),
)
strides = st.integers(min_value=1, max_value=4)
restarts = st.integers(min_value=0, max_value=12)


def constraint_set():
    return [
        FunctionalDependency("c", ["id"], ["v"]),
        DenialConstraint(
            "neg", (ConstraintAtom("t", "c"),), parse_expression("t.v < 1")
        ),
        ForeignKeyConstraint("c", ["pid"], "p", ["id"]),
        FunctionalDependency("u", ["id"], ["v"]),
    ]


def seed(db: Database) -> None:
    db.execute("CREATE TABLE p (id INTEGER)")
    db.execute("CREATE TABLE c (id INTEGER, pid INTEGER, v INTEGER)")
    db.execute("CREATE TABLE u (id INTEGER, v INTEGER)")
    db.execute("INSERT INTO p VALUES (0), (1)")
    db.execute("INSERT INTO c VALUES (0, 0, 2), (1, 5, 2), (2, 1, 0)")
    db.execute("INSERT INTO u VALUES (0, 1), (0, 2)")


def run_step(db: Database, step) -> None:
    (kind, table), key, value = step
    if kind == "insert" and table == "p":
        db.execute(f"INSERT INTO p VALUES ({key})")
    elif kind == "insert" and table == "c":
        db.execute(f"INSERT INTO c VALUES ({key}, {value}, {value})")
    elif kind == "insert":
        db.execute(f"INSERT INTO u VALUES ({key}, {value})")
    elif kind == "update":
        db.execute(f"UPDATE {table} SET v = {value} WHERE id = {key}")
    else:
        db.execute(f"DELETE FROM {table} WHERE id = {key}")


def assert_worker_exact(worker, plan) -> None:
    """Each worker-local cut: its partial graph equals full re-detection
    of its constraint slice over its partial database."""
    if not worker.ready:
        return
    full = detect_conflicts(
        worker.db,
        worker.spec.constraints,
        extra_referenced=plan.referenced,
    )
    assert worker.graph.as_dict() == full.hypergraph.as_dict()


def assert_aligned(coordinator, monolith) -> None:
    """Aligned cut (everything drained): merged view == monolith."""
    assert coordinator.lag == 0 and monolith.lag == 0
    if monolith.ready:
        assert coordinator.graph.as_dict() == monolith.graph.as_dict()


@settings(max_examples=15, deadline=None)
@given(
    sequence=ops,
    assignment=assignments,
    stride=strides,
    restart_after=restarts,
)
def test_shard_union_equals_monolith_at_every_aligned_cut(
    tmp_path_factory, sequence, assignment, stride, restart_after
):
    directory = tmp_path_factory.mktemp("feed") / "segments"
    constraints = constraint_set()
    feed = ChangeFeed(directory, segment_records=8)
    db = Database(feed=feed)
    seed(db)
    for step in sequence:
        run_step(db, step)
    feed.flush()

    reader = ChangeFeed(directory, segment_records=8)
    monolith = ReplicaHypergraph(reader, constraints, group="monolith")
    coordinator = ShardCoordinator(
        reader,
        constraints,
        workers=2,
        assignment={"p": assignment[0], "c": assignment[1], "u": assignment[2]},
    )
    synced = 0
    restarted = False
    while coordinator.lag or monolith.lag:
        while monolith.lag:
            monolith.sync(limit=stride)
        for index, worker in enumerate(coordinator.workers):
            while worker.lag:
                worker.sync(limit=stride)
                assert_worker_exact(worker, coordinator.plan)
                synced += 1
                if synced == restart_after and not restarted:
                    # Kill + restart this worker from its shard
                    # checkpoint: uncommitted progress is discarded,
                    # the fresh worker resumes at the committed cut.
                    restarted = True
                    worker.checkpoint()
                    before = (
                        worker.graph.as_dict() if worker.ready else None
                    )
                    worker = coordinator.restart(index)
                    if before is not None:
                        assert worker.graph.as_dict() == before
                    assert_worker_exact(worker, coordinator.plan)
    assert_aligned(coordinator, monolith)

    # Fully caught up: merged view == full re-detection on the primary,
    # and the assembled database mirrors the primary exactly.
    primary_full = detect_conflicts(db, constraints)
    assert coordinator.graph.as_dict() == primary_full.hypergraph.as_dict()
    assembled = coordinator.database()
    for name in db.catalog.table_names():
        assert dict(assembled.table(name).items()) == dict(
            db.table(name).items()
        )
    coordinator.close()
    monolith.close()
    reader.close()
    feed.close()


@settings(max_examples=8, deadline=None)
@given(
    sequence=ops,
    assignment=assignments,
    checkpoint_every=st.integers(min_value=2, max_value=6),
)
def test_shards_survive_truncation_and_restart_from_checkpoints(
    tmp_path_factory, sequence, assignment, checkpoint_every
):
    """The retention shape: workers checkpoint their shards, the feed
    truncates behind every participant's floor, and a full restart of
    every worker (plus the monolith) comes back exactly -- the shard
    checkpoints are the recovery points once the raw prefix is gone."""
    directory = tmp_path_factory.mktemp("feed") / "segments"
    constraints = constraint_set()
    feed = ChangeFeed(directory, segment_records=4)
    db = Database(feed=feed)
    seed(db)
    feed.flush()

    reader = ChangeFeed(directory, segment_records=4, retention="truncate")
    monolith = ReplicaHypergraph(reader, constraints, group="monolith")
    coordinator = ShardCoordinator(
        reader,
        constraints,
        workers=2,
        assignment={"p": assignment[0], "c": assignment[1], "u": assignment[2]},
    )
    steps = 0
    for step in sequence:
        run_step(db, step)
        feed.flush()
        while monolith.lag:
            monolith.sync()
        coordinator.drain()
        assert_aligned(coordinator, monolith)
        steps += 1
        if steps % checkpoint_every == 0:
            # Move every recovery participant's floor so later commits
            # can truncate the prefix behind them.
            coordinator.checkpoint()
            monolith.checkpoint()
            db.checkpoint()

    before = coordinator.graph.as_dict()
    for index in range(len(coordinator.workers)):
        coordinator.restart(index)
    assert coordinator.lag == 0
    assert coordinator.graph.as_dict() == before
    assert (
        coordinator.graph.as_dict()
        == detect_conflicts(db, constraints).hypergraph.as_dict()
    )
    coordinator.close()
    monolith.close()
    reader.close()
    feed.close()


@pytest.mark.slow
@pytest.mark.deadline(120)
@settings(max_examples=5, deadline=None)
@given(
    sequence=ops,
    assignment=assignments,
    moves=st.lists(
        st.tuples(
            st.sampled_from(("p", "c", "u")),
            st.integers(min_value=0, max_value=1),
        ),
        max_size=3,
    ),
)
def test_process_executor_matches_monolith_across_handoffs(
    tmp_path_factory, sequence, assignment, moves
):
    """The in-process invariant, over real OS processes: for random
    workloads, assignments and live handoffs, the executor's merged
    graph equals full re-detection on the writer at every aligned cut."""
    directory = tmp_path_factory.mktemp("feed") / "segments"
    constraints = constraint_set()
    feed = ChangeFeed(directory, segment_records=8)
    db = Database(feed=feed)
    seed(db)
    feed.flush()
    executor = ProcessShardExecutor(
        directory,
        constraints,
        workers=2,
        assignment={"p": assignment[0], "c": assignment[1], "u": assignment[2]},
        mp_context="fork",
        request_timeout=30.0,
    )
    try:
        for step in sequence:
            run_step(db, step)
        feed.flush()
        executor.drain()
        expected = detect_conflicts(db, constraints).hypergraph.as_dict()
        assert executor.merged_graph().as_dict() == expected
        for topic, target in moves:
            executor.handoff(topic, target)
            for step in sequence[:3]:
                run_step(db, step)
            feed.flush()
            executor.drain()
            expected = detect_conflicts(db, constraints).hypergraph.as_dict()
            assert executor.merged_graph().as_dict() == expected
        assert executor.feed.transfers() == {}
    finally:
        executor.close()
        feed.close()
