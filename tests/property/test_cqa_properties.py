"""Property-based validation of the whole CQA stack (hypothesis).

The oracle is the *definition*: enumerate every repair (maximal
independent set of the conflict hypergraph), evaluate the query on each,
intersect.  On random small instances, random constraint sets and random
SJUD queries, Hippo's polynomial-time pipeline must agree exactly -- for
every membership strategy and with the core optimization on or off.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro import Database, HippoEngine
from repro.constraints import (
    ConstraintAtom,
    DenialConstraint,
    ExclusionConstraint,
    FunctionalDependency,
)
from repro.core.envelope import Enveloper
from repro.ra import CatalogSchemaProvider, from_sql_query
from repro.repairs import (
    TooManyRepairsError,
    all_repairs,
    ground_truth_consistent_answers,
    is_repair,
)
from repro.rewriting import RewritingEngine
from repro.sql.parser import parse_expression, parse_query

# ---------------------------------------------------------------------------
# Instance / constraint / query strategies
# ---------------------------------------------------------------------------

value = st.integers(min_value=0, max_value=3)
rows = st.lists(st.tuples(value, value), min_size=0, max_size=7)


@st.composite
def instances(draw):
    r_rows = draw(rows)
    s_rows = draw(rows)
    return r_rows, s_rows


def build_db(r_rows, s_rows) -> Database:
    db = Database()
    db.execute("CREATE TABLE r (a INTEGER, b INTEGER)")
    db.execute("CREATE TABLE s (a INTEGER, b INTEGER)")
    db.insert_rows("r", r_rows)
    db.insert_rows("s", s_rows)
    return db


CONSTRAINT_SETS = [
    [FunctionalDependency("r", ["a"], ["b"])],
    [FunctionalDependency("r", ["b"], ["a"])],
    [
        FunctionalDependency("r", ["a"], ["b"]),
        FunctionalDependency("s", ["a"], ["b"]),
    ],
    [ExclusionConstraint("r", "s", [("a", "a")])],
    [
        FunctionalDependency("r", ["a"], ["b"]),
        ExclusionConstraint("r", "s", [("a", "a"), ("b", "b")]),
    ],
    [
        FunctionalDependency("r", ["a"], ["b"]),
        DenialConstraint(
            "no-three",
            (ConstraintAtom("t", "s"),),
            parse_expression("t.a = 3 AND t.b = 3"),
        ),
    ],
    [
        DenialConstraint(
            "ternary",
            (
                ConstraintAtom("x", "r"),
                ConstraintAtom("y", "r"),
                ConstraintAtom("z", "s"),
            ),
            parse_expression("x.a = y.a AND x.b < y.b AND z.a = x.a"),
        )
    ],
]

QUERY_TEMPLATES = [
    "SELECT * FROM r",
    "SELECT * FROM r WHERE a <= {c}",
    "SELECT * FROM r WHERE a = {c} OR b > {d}",
    "SELECT a FROM r WHERE b = {c}",
    "SELECT r.a, r.b, s.b FROM r, s WHERE r.a = s.a",
    "SELECT * FROM r UNION SELECT * FROM s",
    "SELECT a FROM r WHERE b = {c} UNION SELECT a FROM s WHERE b = {d}",
    "SELECT * FROM r WHERE a <= {c} EXCEPT SELECT * FROM s",
    "SELECT * FROM r EXCEPT (SELECT * FROM s EXCEPT SELECT * FROM r WHERE b = {d})",
    "SELECT * FROM r INTERSECT SELECT * FROM s",
]

constraint_sets = st.sampled_from(CONSTRAINT_SETS)
query_cases = st.tuples(st.sampled_from(QUERY_TEMPLATES), value, value)


def oracle(db, hippo, text):
    tree, _ = hippo.parse(text)
    try:
        return ground_truth_consistent_answers(db, hippo.hypergraph, tree, 50_000)
    except TooManyRepairsError:  # pragma: no cover - sizes prevent this
        assume(False)


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(instances(), constraint_sets, query_cases)
def test_hippo_matches_repair_enumeration(instance, constraints, query_case):
    """The headline theorem: Hippo == intersection over all repairs."""
    template, c, d = query_case
    text = template.format(c=c, d=d)
    db = build_db(*instance)
    hippo = HippoEngine(db, constraints)
    truth = oracle(db, hippo, text)
    assert hippo.consistent_answers(text).as_set() == truth


@settings(max_examples=60, deadline=None)
@given(
    instances(),
    constraint_sets,
    query_cases,
    st.sampled_from(["query", "cached", "provenance"]),
    st.booleans(),
)
def test_strategies_and_core_agree(
    instance, constraints, query_case, strategy, use_core
):
    """Optimizations must never change the answer set."""
    template, c, d = query_case
    text = template.format(c=c, d=d)
    db = build_db(*instance)
    hippo = HippoEngine(db, constraints, membership=strategy, use_core=use_core)
    truth = oracle(db, hippo, text)
    assert hippo.consistent_answers(text).as_set() == truth


@settings(max_examples=80, deadline=None)
@given(instances(), constraint_sets, query_cases)
def test_envelope_sandwich(instance, constraints, query_case):
    """down(Q) <= consistent(Q) <= up(Q) on every instance and query."""
    template, c, d = query_case
    text = template.format(c=c, d=d)
    db = build_db(*instance)
    hippo = HippoEngine(db, constraints)
    tree = from_sql_query(
        parse_query(text), CatalogSchemaProvider(db.catalog)
    )
    evaluation = Enveloper(db, hippo.hypergraph).evaluate(tree)
    truth = oracle(db, hippo, text)
    assert evaluation.certain <= truth
    assert truth <= frozenset(evaluation.candidates.keys())


@settings(max_examples=80, deadline=None)
@given(instances(), constraint_sets)
def test_enumerated_repairs_are_repairs(instance, constraints):
    """Every enumerated repair is consistent and maximal; none repeat."""
    db = build_db(*instance)
    hippo = HippoEngine(db, constraints)
    try:
        repairs = all_repairs(db, hippo.hypergraph, 50_000)
    except TooManyRepairsError:  # pragma: no cover
        assume(False)
    assert repairs, "at least one repair always exists"
    seen = set()
    for repair in repairs:
        key = tuple(sorted((rel, tuple(sorted(tids))) for rel, tids in repair.items()))
        assert key not in seen, "duplicate repair"
        seen.add(key)
        assert is_repair(db, constraints, hippo.hypergraph, repair)


@settings(max_examples=80, deadline=None)
@given(instances(), st.sampled_from(QUERY_TEMPLATES[:5]), value, value)
def test_rewriting_agrees_on_supported_class(instance, template, c, d):
    """PODS'99 rewriting == ground truth on SJ queries under one key FD."""
    text = template.format(c=c, d=d)
    db = build_db(*instance)
    constraints = [FunctionalDependency("r", ["a"], ["b"])]
    hippo = HippoEngine(db, constraints)
    rewriting = RewritingEngine(db, constraints)
    truth = oracle(db, hippo, text)
    assert rewriting.consistent_answers(text).as_set() == truth


@settings(max_examples=60, deadline=None)
@given(instances(), constraint_sets, query_cases)
def test_cleaning_is_sound_for_monotone_queries(instance, constraints, query_case):
    """Evaluating over the conflict-free instance under-approximates the
    consistent answers for union-of-cores (monotone) queries."""
    template, c, d = query_case
    text = template.format(c=c, d=d)
    assume("EXCEPT" not in text and "INTERSECT" not in text)
    db = build_db(*instance)
    hippo = HippoEngine(db, constraints)
    truth = oracle(db, hippo, text)
    assert hippo.cleaned_answers(text).as_set() <= truth


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.tuples(value, st.integers(0, 9)), min_size=1, max_size=8),
    st.sampled_from(["COUNT", "SUM", "MIN", "MAX", "AVG"]),
)
def test_aggregate_ranges_match_brute_force(pay_rows, function):
    """Range-consistent aggregation == min/max over enumerated repairs."""
    from repro.aggregates import aggregate_range, brute_force_range
    from repro.engine.types import SQLType

    db = Database()
    db.create_table("pay", [("k", SQLType.INTEGER), ("v", SQLType.INTEGER)])
    db.insert_rows("pay", pay_rows)
    fd = FunctionalDependency("pay", ["k"], ["v"])
    column = None if function == "COUNT" else "v"
    fast = aggregate_range(db, fd, function, column)
    slow = brute_force_range(db, fd, function, column)
    assert fast.glb == pytest.approx(slow.glb)
    assert fast.lub == pytest.approx(slow.lub)
