"""Property suite: replica hypergraph == full re-detection at every cut.

A :class:`~repro.conflicts.replica.ReplicaHypergraph` replaying a
randomized DML sequence from the durable feed must equal full
re-detection at **every commit point** -- after each bounded ``sync``,
after fully catching up with the primary, after a simulated process
restart (a fresh feed instance on the same directory, re-attached from
the group's committed offsets), for a *reader* feed instance that
attached before the writer appended anything (live tailing), and across
retention truncation + snapshot recovery.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.conflicts import ReplicaHypergraph, detect_conflicts
from repro.constraints import (
    ConstraintAtom,
    DenialConstraint,
    FunctionalDependency,
)
from repro.constraints.foreign_key import ForeignKeyConstraint
from repro.engine.database import Database
from repro.engine.feed import ChangeFeed
from repro.sql.parser import parse_expression

# One randomized mutation step over two FK-linked tables.
ops = st.lists(
    st.tuples(
        st.sampled_from(
            [
                ("insert", "p"),
                ("delete", "p"),
                ("insert", "c"),
                ("delete", "c"),
                ("update", "c"),
            ]
        ),
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=4),
    ),
    min_size=1,
    max_size=25,
)
# Records consumed per sync (randomized commit points).
strides = st.integers(min_value=1, max_value=4)
# Where in the sequence to simulate the replica process restart.
restarts = st.integers(min_value=0, max_value=20)


def constraint_set():
    return [
        FunctionalDependency("c", ["id"], ["v"]),
        DenialConstraint(
            "neg", (ConstraintAtom("t", "c"),), parse_expression("t.v < 1")
        ),
        ForeignKeyConstraint("c", ["pid"], "p", ["id"]),
    ]


def run_step(db: Database, step) -> None:
    (kind, table), key, value = step
    if kind == "insert" and table == "p":
        db.execute(f"INSERT INTO p VALUES ({key})")
    elif kind == "insert":
        db.execute(f"INSERT INTO c VALUES ({key}, {value}, {value})")
    elif kind == "update":
        db.execute(f"UPDATE c SET v = {value} WHERE id = {key}")
    else:
        db.execute(f"DELETE FROM {table} WHERE id = {key}")


def assert_exact_at_cut(replica: ReplicaHypergraph) -> None:
    """The invariant: graph == full re-detection over the replica db."""
    if not replica.ready:  # cut fell before the schema fully replicated
        return
    full = detect_conflicts(replica.db, replica.constraints)
    assert replica.graph.as_dict() == full.hypergraph.as_dict()


@settings(max_examples=20, deadline=None)
@given(sequence=ops, stride=strides, restart_after=restarts)
def test_replica_equals_full_detection_at_every_cut(
    tmp_path_factory, sequence, stride, restart_after
):
    directory = tmp_path_factory.mktemp("feed") / "segments"
    constraints = constraint_set()
    feed = ChangeFeed(directory, segment_records=8)
    db = Database(feed=feed)
    db.execute("CREATE TABLE p (id INTEGER)")
    db.execute("CREATE TABLE c (id INTEGER, pid INTEGER, v INTEGER)")
    db.execute("INSERT INTO p VALUES (0), (1)")
    db.execute("INSERT INTO c VALUES (0, 0, 2), (1, 5, 2), (2, 1, 0)")
    for step in sequence:
        run_step(db, step)
    feed.flush()

    replica = ReplicaHypergraph(feed, constraints, group="replica")
    synced = 0
    while replica.lag:
        replica.sync(limit=stride)
        synced += 1
        assert_exact_at_cut(replica)
        if synced == restart_after:
            # Simulated process restart: fresh feed handle on the same
            # directory, fresh replica re-attached from the committed
            # cut.  It must come back *exactly* where it left off.
            before = replica.graph.as_dict() if replica.ready else None
            replica.close()
            feed.close()
            feed = ChangeFeed(directory, segment_records=8)
            replica = ReplicaHypergraph(feed, constraints, group="replica")
            if before is not None:
                assert replica.graph.as_dict() == before
            assert_exact_at_cut(replica)

    # Fully caught up: the replica must mirror the primary exactly.
    for name in db.catalog.table_names():
        assert dict(replica.db.table(name).items()) == dict(
            db.table(name).items()
        )
    primary_full = detect_conflicts(db, constraints)
    assert replica.graph.as_dict() == primary_full.hypergraph.as_dict()
    feed.close()


@settings(max_examples=12, deadline=None)
@given(sequence=ops, stride=strides, checkpoint_after=restarts)
def test_live_reader_with_truncation_equals_full_detection(
    tmp_path_factory, sequence, stride, checkpoint_after
):
    """The cross-process shape: a reader feed instance attached *before*
    the writer appends tails it live, stays exact at every cut, survives
    retention truncation (its checkpoints are the recovery points), and
    re-attaches exactly after a restart."""
    directory = tmp_path_factory.mktemp("feed") / "segments"
    constraints = constraint_set()
    writer = ChangeFeed(directory, segment_records=4)
    # The *reader* instance runs the truncating compaction: its commits
    # are the only ones that move the retention floor here.
    reader = ChangeFeed(directory, segment_records=4, retention="truncate")
    replica = ReplicaHypergraph(reader, constraints, group="replica")
    assert not replica.ready  # attached before any append

    db = Database(feed=writer)
    db.execute("CREATE TABLE p (id INTEGER)")
    db.execute("CREATE TABLE c (id INTEGER, pid INTEGER, v INTEGER)")
    db.execute("INSERT INTO p VALUES (0), (1)")
    db.execute("INSERT INTO c VALUES (0, 0, 2), (1, 5, 2), (2, 1, 0)")
    synced = 0
    for step in sequence:
        run_step(db, step)
        writer.flush()
        while replica.lag:  # live tailing: the reader re-scans on poll
            replica.sync(limit=stride)
            synced += 1
            assert_exact_at_cut(replica)
            if synced == checkpoint_after:
                # Checkpoint both recovery participants: the replica's
                # snapshot *and* the writer's (whose registration would
                # otherwise pin the whole history) let later commits
                # truncate the prefix.
                replica.checkpoint()
                db.checkpoint()

    # Fully caught up: the replica mirrors the primary exactly.
    for name in db.catalog.table_names():
        assert dict(replica.db.table(name).items()) == dict(
            db.table(name).items()
        )
    primary_full = detect_conflicts(db, constraints)
    assert replica.graph.as_dict() == primary_full.hypergraph.as_dict()

    # Restart after (possible) truncation: the snapshot written on
    # close is the recovery point; the re-attached replica must come
    # back exactly where it left off.
    before = replica.graph.as_dict()
    replica.close()
    reader.close()
    writer.close()
    reopened = ChangeFeed(directory, segment_records=4, retention="truncate")
    resumed = ReplicaHypergraph(reopened, constraints, group="replica")
    assert resumed.graph.as_dict() == before
    reopened.close()


@settings(max_examples=10, deadline=None)
@given(
    sequence=ops,
    checkpoint_every=st.integers(min_value=1, max_value=8),
    retention=st.sampled_from(["truncate", "compact"]),
)
def test_writer_reopen_after_retention_equals_untruncated_replay(
    tmp_path_factory, sequence, checkpoint_every, retention
):
    """The writer-side recovery shape: a durable database whose own
    retention policy reclaims sealed segments behind its checkpoints
    must, at every reopen, equal a full replay of a never-truncated
    twin feed -- tables, tids, and conflict hypergraph alike."""
    base = tmp_path_factory.mktemp("writer")
    constraints = constraint_set()

    def seed(database: Database) -> None:
        database.execute("CREATE TABLE p (id INTEGER)")
        database.execute("CREATE TABLE c (id INTEGER, pid INTEGER, v INTEGER)")
        database.execute("INSERT INTO p VALUES (0), (1)")
        database.execute("INSERT INTO c VALUES (0, 0, 2), (1, 5, 2), (2, 1, 0)")

    feed = ChangeFeed(base / "reclaimed", segment_records=2, retention=retention)
    db = Database(feed=feed)
    shadow_feed = ChangeFeed(base / "keep", segment_records=2)  # never reclaims
    shadow = Database(feed=shadow_feed)
    seed(db)
    seed(shadow)

    steps = 0
    for step in sequence:
        run_step(db, step)
        run_step(shadow, step)
        steps += 1
        if steps % checkpoint_every:
            continue
        db.checkpoint()  # lets retention reclaim below this cut...
        feed.close()  # ...then simulate a crash + reopen
        feed = ChangeFeed(
            base / "reclaimed", segment_records=2, retention=retention
        )
        db = Database(feed=feed)
        assert db.restore_mode == "snapshot"
        # The never-truncated twin replays its full history.
        shadow_feed.flush()
        replay_feed = ChangeFeed(base / "keep", segment_records=2)
        replayed = Database(feed=replay_feed)
        assert replayed.restore_mode == "replay"
        assert db.catalog.table_names() == replayed.catalog.table_names()
        for name in replayed.catalog.table_names():
            assert dict(db.table(name).items()) == dict(
                replayed.table(name).items()
            )
        assert (
            detect_conflicts(db, constraints).hypergraph.as_dict()
            == detect_conflicts(replayed, constraints).hypergraph.as_dict()
        )
        replay_feed.close()

    # Fully played out: the reclaimed-feed database equals the shadow.
    for name in shadow.catalog.table_names():
        assert dict(db.table(name).items()) == dict(shadow.table(name).items())
    feed.close()
    shadow_feed.close()
