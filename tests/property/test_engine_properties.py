"""Property-based tests for the engine's algebraic invariants."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.engine import Database

value = st.integers(min_value=0, max_value=4)
rows = st.lists(st.tuples(value, value), max_size=10)


def build_db(r_rows, s_rows) -> Database:
    db = Database()
    db.execute("CREATE TABLE r (a INTEGER, b INTEGER)")
    db.execute("CREATE TABLE s (a INTEGER, b INTEGER)")
    db.insert_rows("r", r_rows)
    db.insert_rows("s", s_rows)
    return db


@settings(max_examples=100, deadline=None)
@given(rows, rows)
def test_hash_join_equals_nested_loop(r_rows, s_rows):
    """The planner's equi-join fast path must not change results."""
    db = build_db(r_rows, s_rows)
    # Equality written as r=s triggers the hash join...
    fast = db.query(
        "SELECT r.a, r.b, s.a, s.b FROM r, s WHERE r.a = s.a"
    ).rows
    # ...an opaque equivalent (arithmetic) forces a nested loop.
    slow = db.query(
        "SELECT r.a, r.b, s.a, s.b FROM r, s WHERE r.a - s.a = 0"
    ).rows
    assert sorted(fast) == sorted(slow)


@settings(max_examples=100, deadline=None)
@given(rows, rows)
def test_set_operation_laws(r_rows, s_rows):
    db = build_db(r_rows, s_rows)
    r_set = set(db.query("SELECT DISTINCT * FROM r").rows)
    s_set = set(db.query("SELECT DISTINCT * FROM s").rows)
    union = set(db.query("SELECT * FROM r UNION SELECT * FROM s").rows)
    except_ = set(db.query("SELECT * FROM r EXCEPT SELECT * FROM s").rows)
    intersect = set(db.query("SELECT * FROM r INTERSECT SELECT * FROM s").rows)
    assert union == r_set | s_set
    assert except_ == r_set - s_set
    assert intersect == r_set & s_set


@settings(max_examples=100, deadline=None)
@given(rows)
def test_exists_equals_in_for_key_membership(r_rows):
    db = build_db(r_rows, r_rows[:3])
    via_exists = db.query(
        "SELECT DISTINCT r.a, r.b FROM r WHERE EXISTS"
        " (SELECT * FROM s WHERE s.a = r.a)"
    ).rows
    via_in = db.query(
        "SELECT DISTINCT r.a, r.b FROM r WHERE r.a IN (SELECT a FROM s)"
    ).rows
    assert sorted(via_exists) == sorted(via_in)


@settings(max_examples=100, deadline=None)
@given(rows)
def test_not_exists_is_complement(r_rows):
    db = build_db(r_rows, r_rows[1:4])
    positive = db.query(
        "SELECT r.a, r.b FROM r WHERE EXISTS (SELECT * FROM s WHERE s.b = r.b)"
    ).rows
    negative = db.query(
        "SELECT r.a, r.b FROM r WHERE NOT EXISTS (SELECT * FROM s WHERE s.b = r.b)"
    ).rows
    everything = db.query("SELECT a, b FROM r").rows
    assert sorted(positive + negative) == sorted(everything)


@settings(max_examples=100, deadline=None)
@given(rows)
def test_group_by_count_partitions_table(r_rows):
    db = build_db(r_rows, [])
    counts = db.query("SELECT a, COUNT(*) FROM r GROUP BY a").rows
    assert sum(count for _a, count in counts) == len(r_rows)
    assert len(counts) == len({a for a, _b in r_rows})


@settings(max_examples=100, deadline=None)
@given(rows)
def test_order_by_sorts(r_rows):
    db = build_db(r_rows, [])
    ordered = db.query("SELECT a, b FROM r ORDER BY a, b DESC").rows
    assert len(ordered) == len(r_rows)
    for previous, current in zip(ordered, ordered[1:]):
        assert previous[0] <= current[0]
        if previous[0] == current[0]:
            assert previous[1] >= current[1]


@settings(max_examples=100, deadline=None)
@given(rows, st.integers(0, 5), st.integers(0, 5))
def test_limit_offset_window(r_rows, limit, offset):
    db = build_db(r_rows, [])
    full = db.query("SELECT a, b FROM r ORDER BY a, b").rows
    window = db.query(
        f"SELECT a, b FROM r ORDER BY a, b LIMIT {limit} OFFSET {offset}"
    ).rows
    assert window == full[offset : offset + limit]


@settings(max_examples=60, deadline=None)
@given(rows)
def test_delete_then_count(r_rows):
    db = build_db(r_rows, [])
    removed = db.execute("DELETE FROM r WHERE a = 0").rowcount
    remaining = db.query("SELECT COUNT(*) FROM r").scalar()
    assert removed + remaining == len(r_rows)
    assert db.query("SELECT COUNT(*) FROM r WHERE a = 0").scalar() == 0
