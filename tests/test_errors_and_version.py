"""Sanity tests for the error hierarchy and package metadata."""

import pytest

import repro
from repro import errors


class TestHierarchy:
    ALL_ERRORS = [
        errors.SQLError,
        errors.ParseError,
        errors.CatalogError,
        errors.SchemaError,
        errors.TypeError_,
        errors.ExecutionError,
        errors.PlanError,
        errors.AlgebraError,
        errors.UnsupportedQueryError,
        errors.ConstraintError,
        errors.RewritingError,
    ]

    @pytest.mark.parametrize("error_type", ALL_ERRORS)
    def test_all_derive_from_repro_error(self, error_type):
        assert issubclass(error_type, errors.ReproError)

    def test_one_except_clause_catches_everything(self):
        from repro import Database

        db = Database()
        with pytest.raises(errors.ReproError):
            db.query("SELECT * FROM nope")
        with pytest.raises(errors.ReproError):
            db.execute("THIS IS NOT SQL")

    def test_lexer_error_carries_position(self):
        from repro.sql.lexer import tokenize

        with pytest.raises(errors.LexerError) as excinfo:
            tokenize("a ¤ b")
        assert excinfo.value.position == 2

    def test_parse_errors_name_offset(self):
        from repro.sql.parser import parse_statement

        with pytest.raises(errors.ParseError, match="offset"):
            parse_statement("SELECT FROM")


class TestPackage:
    def test_version_matches_pyproject(self):
        import pathlib

        pyproject = (
            pathlib.Path(repro.__file__).resolve().parents[2] / "pyproject.toml"
        )
        assert f'version = "{repro.__version__}"' in pyproject.read_text()

    def test_lazy_hippo_export(self):
        assert repro.HippoEngine.__name__ == "HippoEngine"
        with pytest.raises(AttributeError):
            repro.NoSuchThing

    def test_module_docstring_example_is_accurate(self):
        """The README/docstring quickstart must actually work."""
        from repro import Database, HippoEngine
        from repro.constraints import FunctionalDependency

        db = Database()
        db.execute("CREATE TABLE emp (name TEXT, salary INTEGER)")
        db.execute(
            "INSERT INTO emp VALUES ('ann', 10), ('ann', 20), ('bob', 30)"
        )
        hippo = HippoEngine(
            db, [FunctionalDependency("emp", ["name"], ["salary"])]
        )
        assert sorted(hippo.consistent_answers("SELECT * FROM emp").rows) == [
            ("bob", 30)
        ]
