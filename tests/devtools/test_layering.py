"""Tests for the import-graph layering analyzer."""

import ast
from pathlib import Path

from repro.devtools.hippoflow.layering import (
    LAYERS,
    check_module,
    check_tree,
    find_cycles,
    main,
    module_name_for,
    resolve_targets,
    scan_tree,
)

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def write_tree(tmp_path, files: dict) -> Path:
    """Materialize a ``repro/`` package tree from {relpath: source}."""
    root = tmp_path / "repro"
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    for directory in root.rglob("*"):
        if directory.is_dir() and not (directory / "__init__.py").exists():
            (directory / "__init__.py").write_text("", encoding="utf-8")
    if not (root / "__init__.py").exists():
        (root / "__init__.py").write_text("", encoding="utf-8")
    return root


# --------------------------------------------------------- the real tree


def test_real_tree_satisfies_the_contract():
    assert REPO_SRC.is_dir()
    violations = check_tree(REPO_SRC)
    assert violations == [], "\n".join(v.render() for v in violations)


def test_every_real_layer_is_in_the_contract():
    layers = {
        child.name
        for child in REPO_SRC.iterdir()
        if child.is_dir() and (child / "__init__.py").exists()
    }
    assert layers <= set(LAYERS), layers - set(LAYERS)


# ------------------------------------------------------- contract checks


def test_injected_engine_to_conflicts_import_is_flagged(tmp_path):
    root = write_tree(
        tmp_path,
        {
            "engine/feed.py": "from repro.conflicts import hypergraph\n",
            "conflicts/hypergraph.py": "",
        },
    )
    violations = check_tree(root)
    messages = [v.message for v in violations]
    assert any(
        "'engine' must not import from 'conflicts'" in m for m in messages
    ), messages


def test_allowed_import_passes(tmp_path):
    root = write_tree(
        tmp_path,
        {
            "engine/feed.py": "from repro.errors import FeedError\n",
            "errors/__init__.py": "FeedError = object\n",
        },
    )
    assert check_tree(root) == []


def test_unknown_layer_is_itself_a_violation():
    tree = ast.parse("x = 1\n")
    findings = check_module("repro.mystery.thing", tree)
    assert findings and "not in the LAYERS contract" in findings[0][2]


def test_root_facade_is_exempt():
    tree = ast.parse("from repro.core import HippoEngine\n")
    assert check_module("repro", tree, is_package=True) == []


def test_type_checking_imports_are_exempt():
    tree = ast.parse(
        "from typing import TYPE_CHECKING\n"
        "if TYPE_CHECKING:\n"
        "    from repro.conflicts import hypergraph\n"
    )
    assert check_module("repro.engine.feed", tree) == []


def test_function_level_imports_are_exempt():
    tree = ast.parse(
        "def late():\n"
        "    from repro.conflicts import hypergraph\n"
        "    return hypergraph\n"
    )
    assert check_module("repro.engine.feed", tree) == []


def test_try_guarded_import_still_counts():
    tree = ast.parse(
        "try:\n"
        "    from repro.conflicts import hypergraph\n"
        "except ImportError:\n"
        "    hypergraph = None\n"
    )
    findings = check_module("repro.engine.feed", tree)
    assert findings and "'conflicts'" in findings[0][2]


# ------------------------------------------------------- name resolution


def test_module_name_for_maps_init_to_package(tmp_path):
    root = write_tree(tmp_path, {"engine/feed.py": ""})
    assert module_name_for(root / "engine" / "feed.py", root) == (
        "repro.engine.feed"
    )
    assert module_name_for(root / "engine" / "__init__.py", root) == (
        "repro.engine"
    )
    assert module_name_for(root / "__init__.py", root) == "repro"


def test_relative_import_resolves_within_package():
    statement = ast.parse("from . import feed").body[0]
    targets = resolve_targets(statement, "repro.engine.topics", False)
    assert targets == ["repro.engine"]


def test_facade_import_resolves_to_real_module(tmp_path):
    root = write_tree(
        tmp_path,
        {
            "engine/feed.py": "",
            "core/hippo.py": "from repro.engine import feed\n",
        },
    )
    project = scan_tree(root)
    edges = {
        (e.module, e.target)
        for e in project.import_edges
        if e.module == "repro.core.hippo"
    }
    assert ("repro.core.hippo", "repro.engine.feed") in edges


# ------------------------------------------------------------- cycles


def test_mutual_imports_are_a_cycle(tmp_path):
    root = write_tree(
        tmp_path,
        {
            "engine/alpha.py": "from repro.engine import beta\n",
            "engine/beta.py": "from repro.engine import alpha\n",
        },
    )
    cycles = find_cycles(scan_tree(root))
    assert ["repro.engine.alpha", "repro.engine.beta"] in cycles


def test_cycle_is_reported_as_violation(tmp_path):
    root = write_tree(
        tmp_path,
        {
            "engine/alpha.py": "from repro.engine import beta\n",
            "engine/beta.py": "from repro.engine import alpha\n",
        },
    )
    violations = check_tree(root)
    assert any("import cycle" in v.message for v in violations)


def test_facade_reexport_is_not_a_cycle(tmp_path):
    root = write_tree(
        tmp_path,
        {
            "engine/__init__.py": "from repro.engine.feed import ChangeFeed\n",
            "engine/feed.py": "from repro.errors import FeedError\n",
            "errors/__init__.py": "FeedError = object\n",
        },
    )
    assert find_cycles(scan_tree(root)) == []


# ------------------------------------------------------------- CLI


def test_main_exit_zero_on_real_tree(capsys):
    assert main([str(REPO_SRC)]) == 0
    assert "contract holds" in capsys.readouterr().err


def test_main_exit_one_on_violating_tree(tmp_path, capsys):
    root = write_tree(
        tmp_path,
        {
            "engine/feed.py": "from repro.conflicts import hypergraph\n",
            "conflicts/hypergraph.py": "",
        },
    )
    assert main([str(root)]) == 1
    captured = capsys.readouterr()
    assert "must not import" in captured.out
    assert "violation(s)" in captured.err


def test_main_exit_two_on_missing_tree(tmp_path, capsys):
    assert main([str(tmp_path / "nowhere")]) == 2
    assert "no such tree" in capsys.readouterr().err
