"""Per-rule fixture tests for hippolint.

Every registered rule has a paired bad/good fixture under ``_fixtures/``.
Each fixture's first line is a ``# hippolint-fixture: <virtual path>``
header naming the path the text should be analyzed under, so path-scoped
rules see the module they were written for.  The bad fixture must trigger
the rule; the good fixture must not.
"""

from pathlib import Path

import pytest

from repro.devtools import all_rules, analyze_source, get_rule

FIXTURES = Path(__file__).parent / "_fixtures"
HEADER = "# hippolint-fixture:"

RULE_IDS = [rule.id for rule in all_rules()]


def load_fixture(name: str) -> tuple[str, str]:
    """Return (source, virtual_path) for a fixture file."""
    source = (FIXTURES / f"{name}.py").read_text(encoding="utf-8")
    first_line = source.splitlines()[0]
    assert first_line.startswith(HEADER), f"{name}.py lacks a fixture header"
    return source, first_line[len(HEADER) :].strip()


def findings_for(rule_id: str, source: str, path: str) -> list:
    return [
        diagnostic
        for diagnostic in analyze_source(source, path)
        if diagnostic.rule_id == rule_id
    ]


# ------------------------------------------------------------ fixture pairs


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_bad_fixture_fires(rule_id):
    source, path = load_fixture(f"{rule_id}_bad")
    found = findings_for(rule_id, source, path)
    assert found, f"{rule_id}_bad.py produced no {rule_id} diagnostics"
    for diagnostic in found:
        assert diagnostic.rule_name == get_rule(rule_id).name
        assert diagnostic.path == path
        assert diagnostic.line >= 1


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_good_fixture_is_silent(rule_id):
    source, path = load_fixture(f"{rule_id}_good")
    found = findings_for(rule_id, source, path)
    assert not found, f"{rule_id}_good.py triggered: {found}"


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_every_rule_has_fixture_pair(rule_id):
    for suffix in ("bad", "good"):
        fixture = FIXTURES / f"{rule_id}_{suffix}.py"
        assert fixture.is_file(), f"missing fixture {fixture.name}"


def test_no_orphan_fixtures():
    known = set(RULE_IDS)
    for fixture in FIXTURES.glob("*.py"):
        rule_id, _, suffix = fixture.stem.partition("_")
        assert rule_id in known, f"{fixture.name} names unknown rule {rule_id}"
        assert suffix in ("bad", "good"), f"bad fixture suffix: {fixture.name}"


def test_registry_is_complete():
    assert len(RULE_IDS) == 16
    assert RULE_IDS == sorted(RULE_IDS)
    for rule in all_rules():
        assert rule.summary, f"{rule.id} lacks a summary"
        assert rule.rationale, f"{rule.id} lacks a rationale"


# ------------------------------------------------------------- suppressions


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_file_level_suppression_silences_bad_fixture(rule_id):
    source, path = load_fixture(f"{rule_id}_bad")
    suppressed = f"# hippolint: disable-file={rule_id}\n" + source
    assert not findings_for(rule_id, suppressed, path)


def test_line_level_suppression():
    path = "src/repro/engine/util.py"
    noisy = "print('x')\n"
    quiet = "print('x')  # hippolint: disable=HL010\n"
    assert findings_for("HL010", noisy, path)
    assert not findings_for("HL010", quiet, path)


def test_next_line_suppression():
    path = "src/repro/engine/util.py"
    source = "# hippolint: disable-next-line=HL010 -- demo output\nprint('x')\n"
    assert not findings_for("HL010", source, path)


def test_next_line_suppression_only_covers_next_line():
    path = "src/repro/engine/util.py"
    source = "# hippolint: disable-next-line=HL010\nprint('x')\nprint('y')\n"
    found = findings_for("HL010", source, path)
    assert [diagnostic.line for diagnostic in found] == [3]


def test_suppression_is_rule_specific():
    path = "src/repro/engine/util.py"
    source = "print('x')  # hippolint: disable=HL001\n"
    assert findings_for("HL010", source, path)


def test_disable_all():
    path = "src/repro/engine/util.py"
    source = "print('x')  # hippolint: disable=all\n"
    assert not analyze_source(source, path)


# -------------------------------------------------------------- parse errors


def test_syntax_error_yields_hl000():
    diagnostics = analyze_source("def broken(:\n", "src/repro/engine/bad.py")
    assert len(diagnostics) == 1
    assert diagnostics[0].rule_id == "HL000"
    assert "does not parse" in diagnostics[0].message


def test_render_format():
    diagnostics = analyze_source(
        "print('x')\n", "src/repro/engine/util.py"
    )
    found = [d for d in diagnostics if d.rule_id == "HL010"]
    rendered = found[0].render()
    assert rendered.startswith("src/repro/engine/util.py:1:")
    assert "HL010" in rendered and "[no-print]" in rendered
