"""Unit tests for the dataflow engine and its abstract domains."""

import ast

from repro.devtools.hippoflow.cfg import build_cfg
from repro.devtools.hippoflow.dataflow import analyze, replay
from repro.devtools.hippoflow.domains import (
    AcquisitionSpec,
    LockDomain,
    ReachingDefinitions,
    ResourceDomain,
    TaintDomain,
)

SPEC = AcquisitionSpec(
    calls={"open": "file handle", "connect": "connection"},
    methods={("_writers", "pop"): "popped writer"},
)


def first_function(source: str):
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node
    raise AssertionError("no function in source")


def leaks_of(source: str):
    func = first_function(source)
    cfg = build_cfg(func)
    domain = ResourceDomain(SPEC, func)
    return domain.leaks(cfg, analyze(cfg, domain))


# ------------------------------------------------- reaching definitions


def test_reaching_definitions_joins_branches():
    func = first_function(
        """
def f(x):
    if x:
        a = 1
    else:
        a = 2
    return a
"""
    )
    cfg = build_cfg(func)
    domain = ReachingDefinitions()
    in_states = analyze(cfg, domain)
    at_exit = in_states[cfg.exit.id]
    assert ReachingDefinitions.definitions_of(at_exit, "a") == {4, 6}


def test_reaching_definitions_kill_on_reassignment():
    func = first_function(
        """
def f():
    a = 1
    a = 2
    return a
"""
    )
    cfg = build_cfg(func)
    domain = ReachingDefinitions()
    at_exit = analyze(cfg, domain)[cfg.exit.id]
    assert ReachingDefinitions.definitions_of(at_exit, "a") == {4}


def test_loop_reaches_fixpoint():
    func = first_function(
        """
def f(n):
    total = 0
    while n:
        total = total + n
        n = n - 1
    return total
"""
    )
    cfg = build_cfg(func)
    at_exit = analyze(cfg, ReachingDefinitions())[cfg.exit.id]
    # Both the initial def and the in-loop redefinition may reach exit.
    assert ReachingDefinitions.definitions_of(at_exit, "total") == {3, 5}


def test_replay_yields_state_before_each_element():
    func = first_function(
        """
def f():
    a = 1
    b = 2
"""
    )
    cfg = build_cfg(func)
    domain = ReachingDefinitions()
    states = analyze(cfg, domain)
    seen = {}
    for element, state in replay(cfg, domain, states):
        if isinstance(element, ast.Assign):
            seen[element.lineno] = ReachingDefinitions.definitions_of(
                state, "a"
            )
    assert seen[3] == set()  # before `a = 1`
    assert seen[4] == {3}  # after it, before `b = 2`


# ------------------------------------------------------- resource domain


def test_straight_line_close_is_clean():
    assert not leaks_of(
        """
def f(path):
    handle = open(path)
    handle.close()
"""
    )


def test_exception_between_acquire_and_close_leaks():
    leaks = leaks_of(
        """
def f(path):
    handle = open(path)
    handle.write("x")
    handle.close()
"""
    )
    assert [kind for _, kind in leaks] == ["exception"]


def test_try_finally_close_is_clean():
    assert not leaks_of(
        """
def f(path):
    handle = open(path)
    try:
        handle.write("x")
    finally:
        handle.close()
"""
    )


def test_with_managed_resource_is_clean():
    assert not leaks_of(
        """
def f(path):
    with open(path) as handle:
        return handle.read()
"""
    )


def test_returned_resource_escapes():
    assert not leaks_of(
        """
def f(path):
    handle = open(path)
    return handle
"""
    )


def test_stored_resource_escapes():
    assert not leaks_of(
        """
def f(self, path):
    self._registry[path] = open(path)
"""
    )


def test_passed_resource_escapes():
    assert not leaks_of(
        """
def f(path, sink):
    handle = open(path)
    sink.adopt(handle)
"""
    )


def test_fall_through_without_close_leaks():
    leaks = leaks_of(
        """
def f(path):
    handle = open(path)
    handle = None
    return 0
"""
    )
    # Rebinding drops tracking (escaped), not a report -- the idiom is
    # too common to flag -- but a *discarded* acquisition does report.
    assert not leaks


def test_discarded_acquisition_leaks():
    leaks = leaks_of(
        """
def f(path):
    open(path)
"""
    )
    assert leaks


def test_constructor_attribute_leaks_only_on_exception_path():
    source = """
def __init__(self, feed):
    self._consumer = feed.consumer()
    self.setup()
"""
    func = first_function(source)
    cfg = build_cfg(func)
    spec = AcquisitionSpec(calls={"consumer": "feed consumer"})
    domain = ResourceDomain(spec, func)
    leaks = domain.leaks(cfg, analyze(cfg, domain))
    assert [kind for _, kind in leaks] == ["exception"]


def test_constructor_guard_clears_exception_leak():
    source = """
def __init__(self, feed):
    self._consumer = feed.consumer()
    try:
        self.setup()
    except BaseException:
        self._consumer.close()
        raise
"""
    func = first_function(source)
    cfg = build_cfg(func)
    spec = AcquisitionSpec(calls={"consumer": "feed consumer"})
    domain = ResourceDomain(spec, func)
    assert not domain.leaks(cfg, analyze(cfg, domain))


def test_close_passed_as_callback_escapes():
    # weakref.finalize(self, self._consumer.close) hands lifetime off.
    source = """
def __init__(self, feed):
    self._consumer = feed.consumer()
    finalize(self, self._consumer.close)
    self.setup()
"""
    func = first_function(source)
    cfg = build_cfg(func)
    spec = AcquisitionSpec(calls={"consumer": "feed consumer"})
    domain = ResourceDomain(spec, func)
    assert not domain.leaks(cfg, analyze(cfg, domain))


def test_popped_writer_close_in_loop_is_clean():
    assert not leaks_of(
        """
def close(self):
    for name in list(self._writers):
        writer = self._writers.pop(name)
        try:
            writer.flush()
        finally:
            writer.close()
"""
    )


# ------------------------------------------------------------ lock domain


def lock_states(source: str):
    func = first_function(source)
    cfg = build_cfg(func)
    domain = LockDomain()
    return cfg, domain, analyze(cfg, domain)


def guarded_call_held(source: str, name: str) -> bool:
    cfg, domain, states = lock_states(source)
    for element, state in replay(cfg, domain, states):
        if isinstance(element, ast.AST):
            for node in ast.walk(element):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == name
                ):
                    return LockDomain.held(state)
    raise AssertionError(f"no call to {name}")


def test_direct_with_lock_is_held():
    assert guarded_call_held(
        """
def f(self):
    with self._manifest_lock():
        self._sweep_orphans()
""",
        "_sweep_orphans",
    )


def test_laundered_lock_variable_is_held():
    assert guarded_call_held(
        """
def f(self):
    guard = self._manifest_lock()
    with guard:
        self._sweep_orphans()
""",
        "_sweep_orphans",
    )


def test_call_after_with_is_not_held():
    assert not guarded_call_held(
        """
def f(self):
    with self._manifest_lock():
        pass
    self._sweep_orphans()
""",
        "_sweep_orphans",
    )


def test_conditionally_held_joins_to_not_held():
    assert not guarded_call_held(
        """
def f(self, fast):
    if fast:
        self._lock_token = self._manifest_lock().__enter__()
    self._sweep_orphans()
""",
        "_sweep_orphans",
    )


# ----------------------------------------------------------- taint domain


def taints_sink(source: str) -> bool:
    func = first_function(source)
    cfg = build_cfg(func)
    domain = TaintDomain()
    states = analyze(cfg, domain)
    for element, state in replay(cfg, domain, states):
        if isinstance(element, ast.AST):
            for node in ast.walk(element):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "execute"
                    and node.args
                    and isinstance(node.args[0], ast.Name)
                ):
                    return node.args[0].id in state
    raise AssertionError("no execute sink in source")


def test_fstring_through_variable_taints():
    assert taints_sink(
        """
def f(conn, t):
    q = f"SELECT * FROM {t}"
    conn.execute(q)
"""
    )


def test_concat_and_augmented_concat_taint():
    assert taints_sink(
        """
def f(conn, t):
    q = "SELECT * FROM " + t
    q += " WHERE x"
    conn.execute(q)
"""
    )


def test_copy_propagates_taint():
    assert taints_sink(
        """
def f(conn, t):
    a = "DELETE FROM %s" % t
    b = a
    conn.execute(b)
"""
    )


def test_constant_query_is_clean():
    assert not taints_sink(
        """
def f(conn):
    q = "SELECT 1"
    conn.execute(q)
"""
    )


def test_reassignment_kills_taint():
    assert not taints_sink(
        """
def f(conn, t):
    q = f"SELECT * FROM {t}"
    q = "SELECT 1"
    conn.execute(q)
"""
    )


def test_tainted_on_one_branch_taints_join():
    assert taints_sink(
        """
def f(conn, t, fast):
    if fast:
        q = "SELECT 1"
    else:
        q = "SELECT * FROM " + t
    conn.execute(q)
"""
    )
