"""hippolint's dogfood gate: the real tree must be clean.

These tests are what CI runs indirectly through the normal pytest job --
if any rule fires on ``src`` or ``tests`` the suite fails, so the
invariants hold on every change even without a separate lint job.
"""

from pathlib import Path

from repro.devtools import analyze_paths
from repro.devtools.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_hippolint_src_tests_clean(capsys):
    status = main([str(REPO_ROOT / "src"), str(REPO_ROOT / "tests"), "--quiet"])
    captured = capsys.readouterr()
    assert status == 0, f"hippolint found violations:\n{captured.out}"
    assert captured.out == ""


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("HL001", "HL005", "HL010"):
        assert rule_id in out


def test_select_single_rule(capsys):
    status = main(
        [str(REPO_ROOT / "src"), "--select", "HL010", "--quiet"]
    )
    assert status == 0, capsys.readouterr().out


def test_fixture_directory_is_skipped():
    """The deliberately violating fixtures never reach the real run."""
    diagnostics, checked = analyze_paths([str(REPO_ROOT / "tests")])
    assert checked > 0
    assert not any("_fixtures" in d.path for d in diagnostics)
    assert not diagnostics


def test_lowercase_relation_rule_pinned_on_hot_modules():
    """Satellite: HL005 stays green on the modules PR 4/5 fixed casing in."""
    targets = [
        str(REPO_ROOT / "src" / "repro" / "conflicts" / "shard.py"),
        str(REPO_ROOT / "src" / "repro" / "repairs"),
        str(REPO_ROOT / "src" / "repro" / "cli.py"),
    ]
    diagnostics, checked = analyze_paths(targets, select=["HL005"])
    assert checked >= 3
    assert not diagnostics, [d.render() for d in diagnostics]
