"""Tests for the docs checker behind the CI ``docs`` job."""

from __future__ import annotations

from pathlib import Path

from repro.devtools import all_rules
from repro.devtools.docscheck import (
    check_file_links,
    check_rule_table,
    heading_anchors,
    main,
    run,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def rule_table(root: Path) -> None:
    """Write a CONTRIBUTING.md whose table lists every live rule."""
    rows = "\n".join(f"| `{rule.id}` | x | y |" for rule in all_rules())
    (root / "CONTRIBUTING.md").write_text(
        "# Contributing\n\n| Rule | Invariant | Twin |\n| --- | --- | --- |\n"
        + rows
        + "\n"
    )


def seed_tree(root: Path) -> None:
    """A minimal passing docs tree."""
    (root / "docs").mkdir()
    (root / "README.md").write_text(
        "# Demo\n\nSee [the docs](docs/GUIDE.md) and"
        " [contributing](CONTRIBUTING.md).\n"
    )
    (root / "docs" / "GUIDE.md").write_text(
        "# Guide\n\n## Deep Dive\n\nBack to [README](../README.md#demo)"
        " and [below](#deep-dive).\n"
    )
    rule_table(root)


class TestHeadingAnchors:
    def test_github_slugging(self):
        anchors = heading_anchors(
            "# Top Level\n## The `plan` cache, explained!\n### a--b\n"
        )
        assert "top-level" in anchors
        assert "the-plan-cache-explained" in anchors
        assert "a--b" in anchors


class TestLinks:
    def test_passing_tree(self, tmp_path):
        seed_tree(tmp_path)
        assert run(tmp_path) == []

    def test_broken_file_link(self, tmp_path):
        seed_tree(tmp_path)
        (tmp_path / "README.md").write_text("# Demo\n\n[gone](docs/MISSING.md)\n")
        findings = run(tmp_path)
        assert any("broken link -> docs/MISSING.md" in f for f in findings)

    def test_broken_fragment(self, tmp_path):
        seed_tree(tmp_path)
        (tmp_path / "README.md").write_text("# Demo\n\n[bad](docs/GUIDE.md#nope)\n")
        findings = run(tmp_path)
        assert any("names no heading #nope" in f for f in findings)

    def test_same_file_fragment(self, tmp_path):
        seed_tree(tmp_path)
        path = tmp_path / "docs" / "GUIDE.md"
        assert check_file_links(path, tmp_path) == []
        path.write_text("# Guide\n\n[dangling](#missing-section)\n")
        assert check_file_links(path, tmp_path)

    def test_external_links_ignored(self, tmp_path):
        seed_tree(tmp_path)
        (tmp_path / "README.md").write_text(
            "# Demo\n\n[a](https://example.com/x) [b](http://example.com)"
            " [c](mailto:x@example.com)\n"
        )
        assert run(tmp_path) == []

    def test_fragment_on_non_markdown_target_only_needs_the_file(
        self, tmp_path
    ):
        seed_tree(tmp_path)
        (tmp_path / "code.py").write_text("x = 1\n")
        (tmp_path / "README.md").write_text("# Demo\n\n[src](code.py#L1)\n")
        assert run(tmp_path) == []


class TestRuleTable:
    def test_complete_table_passes(self, tmp_path):
        rule_table(tmp_path)
        assert check_rule_table(tmp_path) == []

    def test_missing_rule_row_is_a_finding(self, tmp_path):
        rule_table(tmp_path)
        text = (tmp_path / "CONTRIBUTING.md").read_text()
        victim = all_rules()[-1]
        (tmp_path / "CONTRIBUTING.md").write_text(
            text.replace(f"| `{victim.id}` | x | y |\n", "")
        )
        findings = check_rule_table(tmp_path)
        assert findings == [
            f"CONTRIBUTING.md: rule table lacks a row for"
            f" {victim.id} [{victim.name}]"
        ]

    def test_missing_contributing_is_a_finding(self, tmp_path):
        assert check_rule_table(tmp_path) == [
            "CONTRIBUTING.md: missing (the rule table lives here)"
        ]


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        seed_tree(tmp_path)
        assert main([str(tmp_path)]) == 0
        assert "docscheck: OK" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        seed_tree(tmp_path)
        (tmp_path / "README.md").write_text("# Demo\n\n[gone](nope.md)\n")
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "broken link -> nope.md" in out
        assert "1 finding(s)" in out

    def test_bad_usage_exits_two(self, tmp_path):
        assert main(["a", "b"]) == 2
        assert main([str(tmp_path / "not-a-dir")]) == 2


def test_the_repo_itself_is_clean():
    """The dogfood gate: this repository's docs pass its own checker."""
    assert run(REPO_ROOT) == []
