"""Unit tests for the hippoflow CFG builder."""

import ast

import pytest

from repro.devtools.hippoflow.cfg import (
    WithEnter,
    WithExit,
    build_cfg,
    may_raise,
)


def cfg_of(source: str):
    """Build the CFG of the first function defined in ``source``."""
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return build_cfg(node)
    raise AssertionError("no function in source")


def element_lines(cfg) -> set:
    """Line numbers of every AST element across all blocks."""
    return {
        element.lineno
        for block in cfg.blocks
        for element in block.elements
        if isinstance(element, ast.AST) and hasattr(element, "lineno")
    }


def blocks_reaching(cfg, target) -> list:
    return [
        block
        for block in cfg.blocks
        if target in block.succ or target in block.exc
    ]


# ------------------------------------------------------------ basic shapes


def test_linear_function_runs_entry_to_exit():
    cfg = cfg_of(
        """
def f(x):
    a = x + 1
    b = a * 2
    return b
"""
    )
    assert cfg.entry.succ or cfg.entry.elements
    reachable = cfg.reachable()
    assert cfg.exit.id in reachable
    assert element_lines(cfg) == {3, 4, 5}


def test_if_else_branches_rejoin():
    cfg = cfg_of(
        """
def f(x):
    if x:
        a = 1
    else:
        a = 2
    return a
"""
    )
    reachable = cfg.reachable()
    labels = [block.label for block in cfg.blocks if block.id in reachable]
    assert "if-then" in labels and "if-else" in labels
    # Both branch bodies flow into the join block before the return.
    joins = [block for block in cfg.blocks if block.label == "after-if"]
    assert len(joins) == 1
    assert len(blocks_reaching(cfg, joins[0])) == 2


def test_while_loop_has_back_edge():
    cfg = cfg_of(
        """
def f(n):
    while n:
        n = n - 1
    return n
"""
    )
    heads = [block for block in cfg.blocks if block.label == "loop-head"]
    assert len(heads) == 1
    # The loop body ends with an edge back to the head.
    assert any(
        heads[0] in block.succ and block is not heads[0]
        for block in cfg.blocks
        if block.label != "entry"
    )


def test_early_return_skips_rest():
    cfg = cfg_of(
        """
def f(x):
    if x:
        return 1
    return 2
"""
    )
    into_exit = blocks_reaching(cfg, cfg.exit)
    assert len(into_exit) == 2  # both returns reach exit directly


def test_break_and_continue_edges():
    cfg = cfg_of(
        """
def f(items):
    for item in items:
        if item:
            break
        continue
    return 0
"""
    )
    after = [b for b in cfg.blocks if b.label == "after-loop"][0]
    head = [b for b in cfg.blocks if b.label == "loop-head"][0]
    assert blocks_reaching(cfg, after)  # break path exists
    assert len(blocks_reaching(cfg, head)) >= 2  # entry + continue


def test_dead_code_after_return_is_unreachable():
    cfg = cfg_of(
        """
def f():
    return 1
    x = 2
"""
    )
    reachable = cfg.reachable()
    dead = [b for b in cfg.blocks if b.label == "unreachable"]
    assert dead and all(block.id not in reachable for block in dead)


# ------------------------------------------------------- exception edges


def test_call_gets_exception_edge_to_raise_exit():
    cfg = cfg_of(
        """
def f(x):
    y = g(x)
    return y
"""
    )
    reachable = cfg.reachable()
    assert any(
        cfg.raise_exit in block.exc
        for block in cfg.blocks
        if block.id in reachable
    )


def test_raise_flows_to_raise_exit_not_exit():
    cfg = cfg_of(
        """
def f():
    raise ValueError("boom")
"""
    )
    assert cfg.exit.id not in cfg.reachable()
    assert blocks_reaching(cfg, cfg.raise_exit)


def test_try_except_routes_body_exceptions_to_handler():
    cfg = cfg_of(
        """
def f():
    try:
        risky()
    except ValueError:
        return -1
    return 0
"""
    )
    dispatch = [b for b in cfg.blocks if b.label == "except-dispatch"][0]
    body = [b for b in cfg.blocks if b.label == "try-body"][0]
    assert dispatch in body.exc
    # A ValueError handler is not total: unmatched exceptions escape.
    assert cfg.raise_exit in dispatch.succ


def test_catch_all_handler_stops_propagation():
    cfg = cfg_of(
        """
def f():
    try:
        risky()
    except BaseException:
        cleanup()
        raise
    return 0
"""
    )
    dispatch = [b for b in cfg.blocks if b.label == "except-dispatch"][0]
    assert cfg.raise_exit not in dispatch.succ


def test_finally_sits_on_both_paths():
    cfg = cfg_of(
        """
def f():
    try:
        risky()
    finally:
        cleanup()
    return 0
"""
    )
    fin = [b for b in cfg.blocks if b.label == "finally"][0]
    feeders = blocks_reaching(cfg, fin)
    # Reached both on fall-through and on the exception edge.
    assert any(fin in block.succ for block in feeders)
    assert any(fin in block.exc for block in feeders)
    # And it continues to the normal after-block AND the raise exit.
    fin_region = {fin}
    frontier = [fin]
    while frontier:
        block = frontier.pop()
        for nxt in block.succ:
            if nxt not in fin_region:
                fin_region.add(nxt)
                frontier.append(nxt)
    assert cfg.raise_exit in fin_region
    assert cfg.exit in fin_region


def test_with_emits_enter_and_exit_markers():
    cfg = cfg_of(
        """
def f(path):
    with open(path) as handle:
        return handle.read()
"""
    )
    kinds = [
        type(element).__name__
        for block in cfg.blocks
        for element in block.elements
    ]
    assert "WithEnter" in kinds and "WithExit" in kinds


def test_with_cleanup_serves_the_exception_path():
    cfg = cfg_of(
        """
def f(lock):
    with lock:
        risky()
    return 0
"""
    )
    cleanups = [
        block
        for block in cfg.blocks
        if any(isinstance(e, WithExit) for e in block.elements)
    ]
    # One inline exit on the normal path, one cleanup block for the
    # exceptional path that continues to the raise exit.
    assert any(cfg.raise_exit in block.succ for block in cleanups)


# ------------------------------------------------------------- may_raise


@pytest.mark.parametrize(
    "snippet,expected",
    [
        ("x = 1", False),
        ("x = f()", True),
        ("raise ValueError()", True),
        ("assert x", True),
        ("x = y + 1", False),
        ("x = [i for i in items]", False),
    ],
)
def test_may_raise_heuristic(snippet, expected):
    statement = ast.parse(snippet).body[0]
    assert may_raise(statement) is expected


def test_may_raise_ignores_nested_function_bodies():
    statement = ast.parse(
        "def inner():\n    risky()\n"
    ).body[0]
    assert may_raise(statement) is False


def test_except_handler_element_does_not_re_raise_for_its_body():
    cfg = cfg_of(
        """
def f():
    try:
        risky()
    except BaseException:
        cleanup()
        raise
"""
    )
    handler_blocks = [
        block
        for block in cfg.blocks
        if any(isinstance(e, ast.ExceptHandler) for e in block.elements)
    ]
    handler = handler_blocks[0]
    binding = [
        e for e in handler.elements if isinstance(e, ast.ExceptHandler)
    ][0]
    # The binding marker itself cannot raise; only its body elements do.
    assert may_raise(binding) is False
