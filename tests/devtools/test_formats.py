"""Tests for hippolint output formats and the incremental result cache."""

import json

import pytest

from repro.devtools.cache import CACHE_DIR, ResultCache, select_key
from repro.devtools.cli import main

CLEAN = "x = 1\n"
NOISY = "print('x')\n"  # HL010 in any src/repro module


@pytest.fixture()
def project(tmp_path, monkeypatch):
    """An isolated tree with one noisy and one clean module."""
    package = tmp_path / "src" / "repro" / "engine"
    package.mkdir(parents=True)
    (package / "noisy.py").write_text(NOISY, encoding="utf-8")
    (package / "quiet.py").write_text(CLEAN, encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    return tmp_path


# ------------------------------------------------------------- formats


def test_text_format_is_the_default(project, capsys):
    assert main(["src", "--no-cache"]) == 1
    captured = capsys.readouterr()
    line = captured.out.splitlines()[0]
    assert line.startswith("src/repro/engine/noisy.py:1:")
    assert "HL010" in line and "[no-print]" in line
    assert "finding(s)" in captured.err


def test_json_format_emits_one_document(project, capsys):
    assert main(["src", "--format=json", "--no-cache"]) == 1
    captured = capsys.readouterr()
    document = json.loads(captured.out)
    assert document["checked_files"] == 2
    assert document["finding_count"] == len(document["findings"]) == 1
    finding = document["findings"][0]
    assert finding["rule_id"] == "HL010"
    assert finding["rule_name"] == "no-print"
    assert finding["path"] == "src/repro/engine/noisy.py"
    assert finding["line"] == 1
    assert document["elapsed_seconds"] >= 0


def test_json_format_clean_run(project, capsys):
    assert main(["src/repro/engine/quiet.py", "--format=json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["finding_count"] == 0
    assert document["findings"] == []


def test_github_format_emits_workflow_annotations(project, capsys):
    assert main(["src", "--format=github", "--no-cache"]) == 1
    out = capsys.readouterr().out.splitlines()
    assert len(out) == 1
    assert out[0].startswith(
        "::error file=src/repro/engine/noisy.py,line=1,col="
    )
    assert "title=HL010 [no-print]::" in out[0]


def test_github_format_encodes_percent_and_newline(capsys, monkeypatch, tmp_path):
    from repro.devtools.cli import _emit_github
    from repro.devtools.diagnostics import Diagnostic

    _emit_github(
        [Diagnostic("p.py", 1, 0, "HL999", "demo", "50% done\nnext")]
    )
    out = capsys.readouterr().out
    assert "50%25 done%0Anext" in out
    assert "\n" not in out.rstrip("\n")


def test_bad_format_is_usage_error(project, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["src", "--format=yaml"])
    assert excinfo.value.code == 2


# --------------------------------------------------------------- cache


def cache_file(root):
    return root / CACHE_DIR / "results.json"


def test_cold_run_creates_the_cache(project, capsys):
    assert not cache_file(project).exists()
    main(["src"])
    capsys.readouterr()
    assert cache_file(project).is_file()
    entries = json.loads(cache_file(project).read_text())["files"]
    assert len(entries) == 2


def test_warm_run_hits_and_agrees(project, capsys):
    main(["src"])
    cold = capsys.readouterr()
    exit_status = main(["src"])
    warm = capsys.readouterr()
    assert exit_status == 1
    assert warm.out == cold.out

    cache = ResultCache()
    digest = __import__("hashlib").sha256(NOISY.encode()).hexdigest()
    assert cache.get("src/repro/engine/noisy.py", digest, "*") is not None


def test_edit_invalidates_only_that_file(project, capsys):
    main(["src"])
    capsys.readouterr()
    noisy = project / "src" / "repro" / "engine" / "noisy.py"
    noisy.write_text(CLEAN, encoding="utf-8")
    assert main(["src"]) == 0
    assert "clean" in capsys.readouterr().err


def test_select_change_misses_the_cache(project, capsys):
    main(["src"])
    capsys.readouterr()
    # A different selection must not reuse all-rules results: each
    # file's single cache slot is re-keyed to the new selection.
    assert main(["src", "--select", "HL001"]) == 0
    capsys.readouterr()
    entries = json.loads(cache_file(project).read_text())["files"]
    selections = {entry["select"] for entry in entries.values()}
    assert selections == {"HL001"}


def test_no_cache_leaves_no_directory(project, capsys):
    assert main(["src", "--no-cache"]) == 1
    capsys.readouterr()
    assert not (project / CACHE_DIR).exists()


def test_corrupt_cache_is_ignored(project, capsys):
    (project / CACHE_DIR).mkdir()
    cache_file(project).write_text("{not json", encoding="utf-8")
    assert main(["src"]) == 1
    capsys.readouterr()
    # And the run rewrote it into a loadable state.
    assert json.loads(cache_file(project).read_text())["files"]


def test_select_key_normalizes():
    assert select_key(None) == "*"
    assert select_key(["HL002", "HL001", "HL002"]) == "HL001,HL002"
