# hippolint-fixture: src/repro/engine/feed.py
"""Bad: a path reaches the manifest mutation with the lock released."""


class Feed:
    def compact(self, fast: bool) -> None:
        if fast:
            with self._manifest_lock():
                self._merge_disk_retention()
        # Outside the with: on every path the lock is already released
        # by the time the sweep mutates segment state.
        self._sweep_orphans()
