# hippolint-fixture: src/repro/core/util.py
"""Bad: unannotated signatures defeat the strict-typing gate."""


def widen(span, margin):
    return span[0] - margin, span[1] + margin


class Cursor:
    def seek(self, offset) -> None:
        self.offset = offset

    def tell(self):
        return self.offset
