# hippolint-fixture: src/repro/conflicts/replica.py
"""Bad: offsets committed before the polled records are applied."""


class ReplicaHypergraph:
    def sync(self) -> None:
        records, lost = self._consumer.poll()
        self._consumer.commit()  # a crash here silently loses `records`
        for record in records:
            self._apply(record)
