# hippolint-fixture: src/repro/conflicts/shard.py
"""Good: shard choice derives only from stable input content."""
import hashlib


def pick_shard(topics, relation) -> str:
    digest = hashlib.sha256(relation.encode("utf-8")).digest()
    return topics[digest[0] % len(topics)]
