# hippolint-fixture: src/repro/repairs/checker.py
"""Bad: raw constructors skip the lowercase relation-name normalizer."""
from repro.conflicts.hypergraph import Vertex
from repro.core.facts import Fact


def probe(relation, tid, values) -> tuple:
    return Vertex(relation, tid), Fact(relation, values)
