# hippolint-fixture: src/repro/engine/example.py
"""Good: SQL text comes from the to_sql renderers; values are bound."""

from repro.ra.to_sql import insert_sql, render_tree


def store(db, conn, name, tid, row, tree) -> None:
    conn.execute(insert_sql(name, len(row) + 1), (tid,) + row)
    rendered = render_tree(tree)
    conn.execute(rendered.text, rendered.params)
    db.query("SELECT a FROM r WHERE a = 1")
