# hippolint-fixture: src/repro/engine/feed.py
"""Good: manifest-state helpers run inside `with self._manifest_lock():`."""


class ChangeFeed:
    def _reclaim(self) -> None:
        with self._manifest_lock():
            self._merge_disk_retention()
            self._sweep_orphans()
            self._atomic_json(self.directory / MANIFEST, {"segments": []})

    def _offsets(self) -> None:
        # Non-manifest writes need no lock.
        self._atomic_json(self.directory / COMMITS, {"offsets": {}})
