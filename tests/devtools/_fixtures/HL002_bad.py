# hippolint-fixture: src/repro/engine/feed.py
"""Bad: rename without fsync, and manifest commit before the segment seal."""
import json
import os


def atomic_json(path, payload) -> None:
    temp = path.with_suffix(".tmp")
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, allow_nan=False)
    os.replace(temp, path)  # published bytes were never fsync'ed


class ChangeFeed:
    def _rotate(self) -> None:
        self._store_manifest()  # names a segment that is not on disk yet
        self._write_sealed()
