# hippolint-fixture: src/repro/conflicts/incremental.py
"""Good: read the public surface, never mutate it from outside."""


def summarize(graph) -> tuple:
    width = len(graph.edges)
    labels = dict(graph.edge_labels)
    return width, labels
