# hippolint-fixture: src/repro/engine/feed.py
"""Good: library code reports through logging, not stdout."""
import logging

LOG = logging.getLogger(__name__)


def rotate(segment) -> None:
    LOG.info("rotating %s", segment)
