# hippolint-fixture: src/repro/engine/example.py
"""Good: constant SQL may travel through variables; interpolated text
never reaches an executor, and reassignment kills stale taint."""


def fetch(conn: object) -> list:
    query = "SELECT a, b FROM r WHERE a = ?"
    rows = conn.execute(query, (1,))
    return list(rows)


def relabel(conn: object, table: str, audit: object) -> None:
    label = f"checking {table}"
    audit.record(label)
    query = label
    query = "SELECT 1"
    conn.execute(query)
