# hippolint-fixture: src/repro/engine/feed.py
"""Bad: manifest-state helpers called outside the manifest flock."""


class ChangeFeed:
    def _reclaim(self) -> None:
        self._merge_disk_retention()
        self._sweep_orphans()
        self._atomic_json(self.directory / MANIFEST, {"segments": []})
