# hippolint-fixture: src/repro/engine/feed.py
"""Good: every wire emit pins allow_nan=False so floats round-trip."""
import json


def store_offsets(handle, offsets) -> None:
    json.dump({"offsets": offsets}, handle, allow_nan=False)


def envelope(record) -> str:
    return json.dumps(record, separators=(",", ":"), allow_nan=False)
