# hippolint-fixture: src/repro/engine/example.py
"""Good: every acquisition is closed on all paths or escapes ownership."""

import os


class Feed:
    def rotate(self, name: str) -> None:
        writer = self._writers.pop(name)
        try:
            writer.flush()
            os.fsync(writer.fileno())
        finally:
            writer.close()

    def read_all(self, path: str) -> str:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()

    def adopt(self, path: str) -> None:
        # Ownership escapes into the registry; close() happens elsewhere.
        self._writers[path] = open(path, "a", encoding="utf-8")

    def guarded_connect(self, factory: object) -> object:
        conn = factory.connect()
        try:
            conn.ping()
        except BaseException:
            conn.close()
            raise
        return conn
