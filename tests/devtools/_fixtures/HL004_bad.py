# hippolint-fixture: src/repro/conflicts/incremental.py
"""Bad: reaching into ConflictHypergraph internals from outside hypergraph.py."""


def patch(graph, vtx, edge) -> None:
    graph._position[vtx] = 3
    graph._incidence[vtx].add(edge)
    graph.edges.append(edge)
    del graph.edge_labels[edge]
