# hippolint-fixture: src/repro/engine/example.py
"""Bad: the engine layer reaches up into conflicts and backends at
import time, inverting the layer contract."""

from repro.conflicts import hypergraph
from repro.backends.sqlite import SQLiteBackend


def use() -> tuple:
    return hypergraph, SQLiteBackend
