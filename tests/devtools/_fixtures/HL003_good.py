# hippolint-fixture: src/repro/conflicts/replica.py
"""Good: records applied first, then the cut committed."""


class ReplicaHypergraph:
    def sync(self) -> None:
        records, lost = self._consumer.poll()
        for record in records:
            self._apply(record)
        self._consumer.commit()
