# hippolint-fixture: src/repro/engine/example.py
"""Bad: acquired handles leak when a later call raises."""

import os


class Feed:
    def rotate(self, name: str) -> None:
        # flush()/fsync() can raise after the writer left _writers:
        # nothing references the handle anymore, so it is stranded.
        writer = self._writers.pop(name)
        writer.flush()
        os.fsync(writer.fileno())
        writer.close()

    def read_all(self, path: str) -> str:
        handle = open(path, "r", encoding="utf-8")
        data = handle.read()
        handle.close()
        return data
