# hippolint-fixture: src/repro/engine/planner.py
"""Good: every public def states its contract; private helpers are exempt."""


class PlanCacheLike:
    """A keyed plan cache (single-threaded; epoch-stamped entries)."""

    def get(self, sql: str, epoch: int) -> None:
        """The cached plan at ``epoch``; stale entries are evicted."""
        return None

    def put(self, sql: str, epoch: int, planned: object) -> None:
        """Store a plan under the current epoch (LRU-bounded)."""
        self._entry = (epoch, planned)

    def _evict(self) -> None:
        return None


def normalize(sql: str) -> str:
    """The cache-key form of a statement text (outside-only trimming)."""
    return sql.strip()


def _helper(sql: str) -> str:
    return sql
