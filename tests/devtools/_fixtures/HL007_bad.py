# hippolint-fixture: src/repro/engine/feed.py
"""Bad: default json emit silently writes NaN/Infinity the decoder rejects."""
import json


def store_offsets(handle, offsets) -> None:
    json.dump({"offsets": offsets}, handle)


def envelope(record) -> str:
    return json.dumps(record, separators=(",", ":"))
