# hippolint-fixture: src/repro/engine/feed.py
"""Good: fsync before the publishing rename; seal before the manifest."""
import json
import os


def atomic_json(path, payload) -> None:
    temp = path.with_suffix(".tmp")
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, allow_nan=False)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)


class ChangeFeed:
    def _rotate(self) -> None:
        self._write_sealed()
        self._store_manifest()
