# hippolint-fixture: src/repro/engine/example.py
"""Bad: SQL assembled by interpolation at execute call sites."""


def store(db, conn, name, tid, row) -> None:
    db.execute(f"INSERT INTO {name} VALUES ({tid})")
    db.query("SELECT * FROM " + name)
    conn.execute("DELETE FROM %s" % name)
    conn.executemany("INSERT INTO {} VALUES (?)".format(name), [row])
