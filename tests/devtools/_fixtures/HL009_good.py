# hippolint-fixture: src/repro/core/util.py
"""Good: every parameter and return carries an annotation."""


def widen(span: tuple, margin: int) -> tuple:
    return span[0] - margin, span[1] + margin


class Cursor:
    def seek(self, offset: int) -> None:
        self.offset = offset

    def tell(self) -> int:
        return self.offset

    @classmethod
    def fresh(cls, *seeds: int, **flags: bool) -> "Cursor":
        return cls()
