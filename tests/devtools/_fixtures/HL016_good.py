# hippolint-fixture: src/repro/engine/example.py
"""Good: engine leans only on errors/sql at import time; anything
heavier is type-only or deferred into a function body."""

from typing import TYPE_CHECKING

from repro.errors import FeedError
from repro.sql import parser

if TYPE_CHECKING:
    from repro.conflicts import hypergraph


def late() -> object:
    from repro.rewriting import rewrite

    return rewrite


def touch() -> tuple:
    return FeedError, parser
