# hippolint-fixture: src/repro/engine/example.py
"""Bad: interpolated SQL flows through variables into execute sinks."""


def fetch(conn: object, table: str) -> list:
    query = f"SELECT * FROM {table}"
    rows = conn.execute(query)
    return list(rows)


def purge(conn: object, table: str, keep: int) -> None:
    statement = "DELETE FROM " + table
    statement += " WHERE id > %d" % keep
    conn.execute(statement)
