# hippolint-fixture: src/repro/engine/feed.py
"""Bad: library code printing to stdout corrupts shell/pipe consumers."""


def rotate(segment) -> None:
    print("rotating", segment)
