# hippolint-fixture: src/repro/engine/feed.py
"""Bad: swallowed durability errors hide torn segments from operators."""
import contextlib


def read_segment(path) -> list:
    try:
        return decode(path)
    except:  # bare except also traps KeyboardInterrupt
        return []


def sweep(paths) -> None:
    for path in paths:
        try:
            unlink(path)
        except FeedError:
            pass


def reopen(path) -> None:
    with contextlib.suppress(Exception):
        bootstrap(path)
