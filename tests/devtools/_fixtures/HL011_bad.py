# hippolint-fixture: src/repro/engine/planner.py
"""Bad: public defs in a contract-bearing module without docstrings."""


class PlanCacheLike:
    def get(self, sql: str, epoch: int) -> None:
        return None

    def put(self, sql: str, epoch: int, planned: object) -> None:
        self._entry = (epoch, planned)


def normalize(sql: str) -> str:
    return sql.strip()
