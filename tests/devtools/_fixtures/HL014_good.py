# hippolint-fixture: src/repro/engine/feed.py
"""Good: the lock context flows through a variable; the must-analysis
still proves it held at every mutation (a purely lexical check cannot).
"""


class Feed:
    def compact(self) -> None:
        guard = self._manifest_lock()
        # hippolint: disable-next-line=HL001 -- held via `guard`; HL014 proves it
        with guard:
            self._merge_disk_retention()
            self._sweep_orphans()

    def store(self) -> None:
        with self._manifest_lock():
            self._merge_disk_retention()
