# hippolint-fixture: src/repro/engine/feed.py
"""Good: specific exceptions, and failures are surfaced or re-raised."""
import contextlib


def read_segment(path) -> list:
    try:
        return decode(path)
    except ValueError as exc:
        raise FeedError(f"torn segment {path}") from exc


def sweep(paths) -> None:
    for path in paths:
        with contextlib.suppress(FileNotFoundError):
            unlink(path)
