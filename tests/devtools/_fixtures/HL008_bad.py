# hippolint-fixture: src/repro/conflicts/shard.py
"""Bad: wall-clock and process-seeded entropy inside deterministic planning."""
import random
import time
from datetime import datetime


def pick_shard(topics) -> str:
    if time.time() % 2:
        return random.choice(topics)
    stamp = datetime.now()
    return topics[hash(stamp) % len(topics)]
