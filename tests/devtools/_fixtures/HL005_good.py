# hippolint-fixture: src/repro/repairs/checker.py
"""Good: the normalizing factories keep relation keys case-insensitive."""
from repro.conflicts.hypergraph import vertex
from repro.core.facts import fact


def probe(relation, tid, values) -> tuple:
    return vertex(relation, tid), fact(relation, values)
