"""Crash-schedule property suite: random kill/handoff/rebalance runs.

Each test derives a schedule from the session seed (replayable with the
``--seed`` command the failure report prints): rounds of random writes
interleaved with random faults -- parent-side SIGKILLs, chaos-armed
phase kills, handoffs, rebalances, checkpoints.  After every round the
executor is settled (supervised until respawns stick, drained to an
aligned cut) and the merged shard view must equal full re-detection on
the writer's database.  This is the process-level extension of
``tests/property/test_shard_equivalence.py``'s in-process invariant.
"""

from __future__ import annotations

import random

import pytest

from repro.conflicts import load_ownership
from repro.errors import ExecutorError

pytestmark = pytest.mark.slow

TOPICS = ("p", "c", "u", "w")


def random_write(db, rng: random.Random) -> None:
    choice = rng.randrange(6)
    if choice == 0:
        db.execute(f"INSERT INTO p VALUES ({rng.randrange(8)})")
    elif choice == 1:
        db.execute(
            f"INSERT INTO c VALUES ({rng.randrange(6)},"
            f" {rng.randrange(8)}, {rng.randrange(4)})"
        )
    elif choice == 2:
        db.execute(
            f"INSERT INTO {rng.choice(('u', 'w'))} VALUES"
            f" ({rng.randrange(5)}, {rng.randrange(6)})"
        )
    elif choice == 3:
        db.execute(
            f"UPDATE {rng.choice(('u', 'w'))} SET v = {rng.randrange(6)}"
            f" WHERE id = {rng.randrange(5)}"
        )
    elif choice == 4:
        db.execute(f"DELETE FROM c WHERE id = {rng.randrange(6)}")
    else:
        db.execute(
            f"DELETE FROM {rng.choice(('u', 'w'))}"
            f" WHERE id = {rng.randrange(5)}"
        )


def random_fault(ex, rng: random.Random) -> None:
    """One random fault/operation; failures mid-protocol are expected
    (a later settle converges them)."""
    roll = rng.randrange(5)
    try:
        if roll == 0:
            ex.kill(rng.randrange(ex.workers))
        elif roll == 1:
            ex.handoff(rng.choice(TOPICS), rng.randrange(ex.workers))
        elif roll == 2:
            ex.rebalance(threshold=rng.choice((0, 4)))
        elif roll == 3:
            ex.checkpoint()
        # roll == 4: no fault this round
    except ExecutorError:
        pass


@pytest.mark.deadline(90)
def test_crash_schedule_reaches_every_aligned_cut(
    rng, writer, make_executor, monolith, settle
):
    feed, db = writer
    ex = make_executor()
    for _ in range(12):
        for _ in range(rng.randrange(1, 7)):
            random_write(db, rng)
        feed.flush()
        random_fault(ex, rng)
        settle(ex)
        assert ex.merged_graph().as_dict() == monolith()
    # Converged: no packets pending, ownership manifest consistent.
    assert ex.feed.transfers() == {}
    ownership = load_ownership(ex.directory)
    assert ownership is not None
    assert set(ownership.owner) == set(TOPICS)


@pytest.mark.deadline(90)
def test_chaos_armed_schedule_survives_phase_kills(
    rng, writer, make_executor, kill_at, monolith, settle
):
    # Arm a random phase kill at construction, then run a short
    # schedule: the armed worker dies at its phase, the supervisor
    # respawns it clean, and every aligned cut still matches.
    feed, db = writer
    phase = rng.choice(("apply", "checkpoint", "release", "adopt"))
    victim = rng.randrange(2)
    topic = "u" if phase in ("release", "adopt") else None
    ex = make_executor(chaos=kill_at(victim, phase, topic=topic))
    for _ in range(6):
        for _ in range(rng.randrange(1, 5)):
            random_write(db, rng)
        feed.flush()
        try:
            ex.handoff("u", rng.randrange(2))
        except ExecutorError:
            pass
        try:
            ex.checkpoint()
        except ExecutorError:
            pass
        settle(ex)
        assert ex.merged_graph().as_dict() == monolith()


@pytest.mark.deadline(90)
def test_respawn_resumes_from_checkpoint_not_scratch(
    rng, writer, make_executor, settle
):
    # Respawn economics: after a checkpoint at offset N and a kill, the
    # respawned worker restores in snapshot mode and replays only the
    # suffix written after N.
    feed, db = writer
    ex = make_executor()
    ex.drain()
    ex.checkpoint()
    suffix = rng.randrange(3, 9)
    for _ in range(suffix):
        db.execute(f"INSERT INTO w VALUES ({rng.randrange(5)}, 9)")
    feed.flush()
    ex.kill(1)  # worker 1 owns w
    events = ex.supervise()
    assert [e.index for e in events] == [1]
    rows = settle(ex)
    respawned = [r for r in rows if r.index == 1][0]
    assert respawned.restore_mode == "snapshot"
    # Only the post-checkpoint suffix was replayed through the feed.
    assert respawned.applied_records.get("w", 0) == suffix
