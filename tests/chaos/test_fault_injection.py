"""Targeted fault injection: one SIGKILL at each pipeline phase.

Each test arms exactly one kill -- mid-apply, mid-checkpoint, and at
the four interesting points of the handoff protocol (before/after the
ownership commit, releaser-side and adopter-side) -- and then proves
the system converges: one supervision pass respawns the victim from
its last shard checkpoint, survivors reconcile, and the merged shard
view equals the monolithic oracle at the next aligned cut.
"""

from __future__ import annotations

import pytest

from repro.conflicts import load_ownership
from repro.errors import ExecutorError

pytestmark = pytest.mark.slow


def write_more(db, feed, count: int = 8) -> None:
    for i in range(count):
        db.execute(f"INSERT INTO u VALUES ({i % 3}, {100 + i})")
    feed.flush()


class TestPipelineKills:
    def test_kill_mid_apply_recovers_exactly_once(
        self, writer, make_executor, kill_at, monolith
    ):
        feed, db = writer
        # Records are applied to the victim's database, then it dies
        # *before* committing the offsets.  The respawned worker must
        # not double-count them: it rebuilds from its checkpoint cut.
        ex = make_executor(chaos=kill_at(0, "apply"))
        with pytest.raises(ExecutorError):
            ex.drain()
        events = ex.supervise()
        assert [e.index for e in events] == [0]
        rows = ex.drain()
        assert all(r.lag == 0 for r in rows)
        assert ex.merged_graph().as_dict() == monolith()

    def test_kill_mid_checkpoint_keeps_previous_checkpoint(
        self, writer, make_executor, kill_at, monolith, settle
    ):
        feed, db = writer
        ex = make_executor(chaos=kill_at(0, "checkpoint", after=1))
        ex.drain()
        ex.checkpoint()  # first checkpoint survives (after=1)
        write_more(db, feed)
        ex.drain()
        with pytest.raises(ExecutorError):
            ex.checkpoint()  # second one dies mid-store
        events = ex.supervise()
        assert [e.index for e in events] == [0]
        rows = settle(ex)
        victim = [r for r in rows if r.index == 0][0]
        # Respawned from the surviving (first) checkpoint, not replayed
        # from scratch.
        assert victim.restore_mode == "snapshot"
        assert ex.merged_graph().as_dict() == monolith()


class TestHandoffKills:
    def test_kill_releaser_before_ownership_commit(
        self, writer, make_executor, kill_at, monolith, settle
    ):
        feed, db = writer
        # The exporter dies right after storing the transfer packet --
        # before the grant.  Ownership must NOT move.
        ex = make_executor(chaos=kill_at(0, "release", topic="u"))
        ex.drain()
        with pytest.raises(ExecutorError):
            ex.handoff("u", 1)
        ownership = load_ownership(ex.directory)
        assert ownership is not None and ownership.owner["u"] == 0
        assert ownership.epoch == 0
        settle(ex)
        assert ex.merged_graph().as_dict() == monolith()
        # The respawned releaser retries the handoff successfully.
        report = ex.handoff("u", 1)
        assert load_ownership(ex.directory).owner["u"] == 1
        assert any(
            resume.topic == "u"
            for reshape in report.reshapes.values()
            for resume in reshape.added
        )
        ex.drain()
        assert ex.merged_graph().as_dict() == monolith()
        assert ex.feed.transfers() == {}

    def test_kill_adopter_after_ownership_commit(
        self, writer, make_executor, monolith, settle
    ):
        feed, db = writer
        # Parent-side kill between the grant (shards.json persisted)
        # and the adopter's reshape: ownership HAS moved; supervision
        # must finish the adoption from the pinned transfer packet.
        ex = make_executor()
        ex.drain()

        def on_step(step: str) -> None:
            if step == "granted":
                ex.kill(1)

        with pytest.raises(ExecutorError):
            ex.handoff("u", 1, on_step=on_step)
        assert load_ownership(ex.directory).owner["u"] == 1
        assert "u" in ex.feed.transfers()  # the packet pins the suffix
        events = ex.supervise()
        assert [e.index for e in events] == [1]
        rows = settle(ex)
        adopter = [r for r in rows if r.index == 1][0]
        assert "u" in adopter.committed
        assert ex.merged_graph().as_dict() == monolith()
        assert ex.feed.transfers() == {}  # swept once adoption stuck

    def test_kill_adopter_mid_adopt_after_resubscribe(
        self, writer, make_executor, kill_at, monolith, settle
    ):
        feed, db = writer
        # The adopter dies inside reshape, *after* its durable
        # resubscription but before its first checkpoint of the topic:
        # the nastiest interleaving -- its registration already claims
        # the topic, its snapshot does not cover it.
        ex = make_executor(chaos=kill_at(1, "adopt", topic="u"))
        ex.drain()
        with pytest.raises(ExecutorError):
            ex.handoff("u", 1)
        assert load_ownership(ex.directory).owner["u"] == 1
        settle(ex)
        assert ex.merged_graph().as_dict() == monolith()
        write_more(db, feed)
        settle(ex)
        assert ex.merged_graph().as_dict() == monolith()
        assert ex.feed.transfers() == {}

    def test_survivor_prune_completes_after_adopter_crash(
        self, writer, make_executor, kill_at, settle
    ):
        feed, db = writer
        # After the crashed handoff converges, the old owner must have
        # pruned the moved topic: rows dropped, floor released.
        ex = make_executor(chaos=kill_at(1, "adopt", topic="u"))
        ex.drain()
        with pytest.raises(ExecutorError):
            ex.handoff("u", 1)
        settle(ex)
        rows = ex.status()
        old_owner = [r for r in rows if r.index == 0][0]
        assert "u" not in old_owner.committed
        assert "u" not in ex.feed.recovery_points()["shard-0"].floor
