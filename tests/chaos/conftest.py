"""Chaos-tier fixtures: fault injection for the process shard executor.

The suite runs a real writer feeding a durable feed, a monolithic
full-detection oracle, and a :class:`ProcessShardExecutor` whose worker
processes can be SIGKILLed at named pipeline phases (:func:`kill_at`) or
from the parent (:meth:`ProcessShardExecutor.kill`).  Every test drives
the system to an *aligned cut* -- writer flushed, every worker drained
-- and asserts the merged shard view equals full re-detection on the
writer's database.

Everything here is ``slow``-tier (excluded from tier-1); schedules are
derived from the session seed, so a CI failure replays locally with the
printed ``--seed`` command.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional

import pytest

from repro.conflicts import (
    ChaosPlan,
    ProcessShardExecutor,
    detect_conflicts,
)
from repro.constraints import FunctionalDependency
from repro.constraints.foreign_key import ForeignKeyConstraint
from repro.engine.database import Database
from repro.engine.feed import ChangeFeed
from repro.errors import ExecutorError

pytestmark = pytest.mark.slow

#: Phases a worker process can be killed at (see ChaosPlan).
PHASES = ("apply", "checkpoint", "release", "adopt")


def kill_at(
    worker: int, phase: str, topic: Optional[str] = None, after: int = 0
) -> Dict[int, ChaosPlan]:
    """Arm ``worker`` to SIGKILL itself at ``phase``.

    Returns the ``chaos=`` mapping for
    :class:`ProcessShardExecutor` -- merge several with ``|`` to arm
    multiple workers.
    """
    return {worker: ChaosPlan(phase=phase, topic=topic, after=after)}


def constraint_set() -> list[object]:
    return [
        FunctionalDependency("c", ["id"], ["v"]),
        ForeignKeyConstraint("c", ["pid"], "p", ["id"]),
        FunctionalDependency("u", ["id"], ["v"]),
        FunctionalDependency("w", ["id"], ["v"]),
    ]


#: The skewed initial assignment: worker 0 carries the FK component and
#: the hot topic u, worker 1 only w.
SKEWED = {"c": 0, "p": 0, "u": 0, "w": 1}


def seed_tables(db: Database) -> None:
    db.execute("CREATE TABLE p (id INTEGER)")
    db.execute("CREATE TABLE c (id INTEGER, pid INTEGER, v INTEGER)")
    db.execute("CREATE TABLE u (id INTEGER, v INTEGER)")
    db.execute("CREATE TABLE w (id INTEGER, v INTEGER)")
    db.execute("INSERT INTO p VALUES (0), (1)")
    db.execute("INSERT INTO c VALUES (0, 0, 2), (0, 0, 3), (1, 5, 2)")
    for i in range(20):  # the hot topic, with FD conflicts
        db.execute(f"INSERT INTO u VALUES ({i % 4}, {i})")
    db.execute("INSERT INTO w VALUES (1, 1), (1, 2)")


def monolith_edges(db: Database) -> dict:
    """Full re-detection on the writer: the oracle at an aligned cut."""
    return detect_conflicts(db, constraint_set()).hypergraph.as_dict()


def settle(ex: ProcessShardExecutor, rounds: int = 10) -> list:
    """Supervise-and-drain until the executor reaches an aligned cut
    (bounded; chaos-killed workers need a respawn before draining)."""
    for _ in range(rounds):
        ex.supervise()
        try:
            return ex.drain()
        except ExecutorError:
            continue
    raise AssertionError("executor failed to settle after chaos")


@pytest.fixture(name="kill_at")
def kill_at_fixture() -> Callable[..., Dict[int, ChaosPlan]]:
    """The :func:`kill_at` helper, as a fixture."""
    return kill_at


@pytest.fixture(name="settle")
def settle_fixture() -> Callable[..., list]:
    """The :func:`settle` helper, as a fixture."""
    return settle


@pytest.fixture
def monolith(writer) -> Callable[[], dict]:
    """Zero-argument oracle: full re-detection on the writer, now."""
    _, db = writer
    return lambda: monolith_edges(db)


@pytest.fixture
def writer(tmp_path) -> Iterator[tuple[ChangeFeed, Database]]:
    """A durable feed plus its writer database, pre-seeded and flushed."""
    feed = ChangeFeed(tmp_path / "feed")
    db = Database(feed=feed)
    seed_tables(db)
    feed.flush()
    yield feed, db
    feed.close()


@pytest.fixture
def make_executor(
    writer, tmp_path
) -> Iterator[Callable[..., ProcessShardExecutor]]:
    """Factory for executors over the writer's feed directory.

    Defaults to the fork context (chaos schedules respawn constantly;
    spawn's interpreter start would dominate) and the skewed
    assignment; keyword arguments override.  Every executor built is
    closed at teardown even when the test failed mid-protocol.
    """
    made: list[ProcessShardExecutor] = []

    def factory(**kwargs) -> ProcessShardExecutor:
        kwargs.setdefault("workers", 2)
        kwargs.setdefault("assignment", dict(SKEWED))
        kwargs.setdefault("mp_context", "fork")
        kwargs.setdefault("heartbeat_timeout", 10.0)
        kwargs.setdefault("request_timeout", 30.0)
        ex = ProcessShardExecutor(
            tmp_path / "feed", constraint_set(), **kwargs
        )
        made.append(ex)
        return ex

    yield factory
    for ex in made:
        ex.close()
