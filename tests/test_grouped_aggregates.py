"""Tests for per-group aggregate ranges, with a brute-force oracle."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.aggregates import AggregateRange, grouped_count_range, grouped_sum_range
from repro.conflicts import detect_conflicts
from repro.constraints import FunctionalDependency
from repro.engine import Database
from repro.engine.types import SQLType
from repro.errors import UnsupportedQueryError
from repro.repairs import all_repairs


def build(rows):
    """r(k, g, v) with key FD k -> g, v."""
    db = Database()
    db.create_table(
        "r",
        [("k", SQLType.INTEGER), ("g", SQLType.INTEGER), ("v", SQLType.INTEGER)],
    )
    db.insert_rows("r", rows)
    return db, FunctionalDependency("r", ["k"], ["g", "v"])


def brute_force(db, fd, aggregate):
    """group -> (min, max) of the aggregate over every repair (set rows)."""
    graph = detect_conflicts(db, [fd]).hypergraph
    table = db.catalog.table("r")
    groups = {row[1] for row in table.rows()}
    observed: dict = {group: [] for group in groups}
    for repair in all_repairs(db, graph):
        rows = {row for tid, row in table.items() if tid in repair["r"]}
        for group in groups:
            members = [row for row in rows if row[1] == group]
            if aggregate == "count":
                observed[group].append(len(members))
            else:
                observed[group].append(sum(row[2] for row in members))
    return {
        group: AggregateRange(float(min(values)), float(max(values)))
        for group, values in observed.items()
    }


class TestGroupedCount:
    def test_simple_dispute_shifts_between_groups(self):
        db, fd = build([(1, 10, 5), (1, 20, 6), (2, 10, 7)])
        ranges = grouped_count_range(db, fd, "g")
        # Key 1 can land in group 10 or 20; key 2 is pinned to group 10.
        assert ranges[10] == AggregateRange(1.0, 2.0)
        assert ranges[20] == AggregateRange(0.0, 1.0)

    def test_consistent_table_definite(self):
        db, fd = build([(1, 10, 5), (2, 10, 7), (3, 20, 1)])
        ranges = grouped_count_range(db, fd, "g")
        assert all(r.definite for r in ranges.values())
        assert ranges[10] == AggregateRange(2.0, 2.0)

    def test_matches_brute_force(self):
        db, fd = build(
            [(1, 10, 5), (1, 20, 6), (2, 10, 7), (2, 10, 9), (3, 20, -2)]
        )
        assert grouped_count_range(db, fd, "g") == brute_force(db, fd, "count")


class TestGroupedSum:
    def test_negative_values_handled(self):
        db, fd = build([(1, 10, -5), (1, 20, 3)])
        ranges = grouped_sum_range(db, fd, "g", "v")
        # Key 1 contributes -5 to group 10 or escapes (0).
        assert ranges[10] == AggregateRange(-5.0, 0.0)
        assert ranges[20] == AggregateRange(0.0, 3.0)

    def test_same_column_rejected(self):
        db, fd = build([(1, 10, 5)])
        with pytest.raises(UnsupportedQueryError):
            grouped_sum_range(db, fd, "g", "g")

    def test_null_rejected(self):
        db, fd = build([])
        db.insert_rows("r", [(1, 2, None)])
        with pytest.raises(UnsupportedQueryError, match="NULL"):
            grouped_sum_range(db, fd, "g", "v")


rows_strategy = st.lists(
    st.tuples(
        st.integers(0, 2),            # key: few keys -> real conflicts
        st.integers(0, 2),            # group
        st.integers(-3, 3),           # value (negatives stress the 0-floor)
    ),
    min_size=1,
    max_size=7,
)


@settings(max_examples=120, deadline=None)
@given(rows_strategy)
def test_grouped_count_matches_brute_force(rows):
    db, fd = build(rows)
    assert grouped_count_range(db, fd, "g") == brute_force(db, fd, "count")


@settings(max_examples=120, deadline=None)
@given(rows_strategy)
def test_grouped_sum_matches_brute_force(rows):
    db, fd = build(rows)
    assert grouped_sum_range(db, fd, "g", "v") == brute_force(db, fd, "sum")
