"""Tests for the PODS'99 query-rewriting baseline."""

import pytest

from repro import HippoEngine
from repro.constraints import (
    ConstraintAtom,
    DenialConstraint,
    ExclusionConstraint,
    FunctionalDependency,
)
from repro.errors import RewritingError
from repro.constraints.foreign_key import ForeignKeyConstraint
from repro.repairs import ground_truth_consistent_answers
from repro.rewriting import RewritingEngine, classify
from repro.sql.parser import parse_expression


@pytest.fixture
def emp_fd():
    return FunctionalDependency("emp", ["name"], ["dept", "salary"])


class TestRewrittenSQL:
    def test_residue_shape(self, emp_db, emp_fd):
        engine = RewritingEngine(emp_db, [emp_fd])
        sql = engine.rewrite_sql("SELECT * FROM emp WHERE salary > 10")
        assert "NOT EXISTS" in sql
        assert sql.count("NOT EXISTS") >= 2  # one per dependent attribute

    def test_unary_constraint_residue_is_negated_condition(self, two_table_db):
        denial = DenialConstraint(
            "pos", (ConstraintAtom("t", "r"),), parse_expression("t.a < 0")
        )
        engine = RewritingEngine(two_table_db, [denial])
        sql = engine.rewrite_sql("SELECT * FROM r")
        assert "NOT" in sql and "EXISTS" not in sql

    def test_rewritten_query_is_valid_sql(self, emp_db, emp_fd):
        engine = RewritingEngine(emp_db, [emp_fd])
        sql = engine.rewrite_sql("SELECT * FROM emp")
        emp_db.query(sql)  # must parse and execute


class TestCorrectness:
    def test_selection_matches_ground_truth(self, emp_db, emp_fd):
        engine = RewritingEngine(emp_db, [emp_fd])
        hippo = HippoEngine(emp_db, [emp_fd])
        for text in [
            "SELECT * FROM emp",
            "SELECT * FROM emp WHERE salary > 10",
            "SELECT * FROM emp WHERE dept = 'cs'",
        ]:
            truth = ground_truth_consistent_answers(
                emp_db, hippo.hypergraph, hippo.parse(text)[0]
            )
            assert engine.consistent_answers(text).as_set() == truth, text

    def test_join_matches_ground_truth(self, emp_db, emp_fd):
        emp_db.execute("CREATE TABLE mgr (name TEXT, dept TEXT)")
        emp_db.execute("INSERT INTO mgr VALUES ('bob','ee'), ('frank','cs')")
        engine = RewritingEngine(emp_db, [emp_fd])
        hippo = HippoEngine(emp_db, [emp_fd])
        text = (
            "SELECT e.name, e.dept, e.salary, m.name FROM emp e, mgr m"
            " WHERE e.dept = m.dept"
        )
        truth = ground_truth_consistent_answers(
            emp_db, hippo.hypergraph, hippo.parse(text)[0]
        )
        assert engine.consistent_answers(text).as_set() == truth

    def test_difference_single_atom_right(self, emp_db, emp_fd):
        emp_db.execute("CREATE TABLE former (name TEXT, dept TEXT, salary INTEGER)")
        emp_db.execute("INSERT INTO former VALUES ('bob','ee',20), ('zed','cs',1)")
        engine = RewritingEngine(emp_db, [emp_fd])
        hippo = HippoEngine(emp_db, [emp_fd])
        text = "SELECT * FROM emp EXCEPT SELECT * FROM former"
        truth = ground_truth_consistent_answers(
            emp_db, hippo.hypergraph, hippo.parse(text)[0]
        )
        assert engine.consistent_answers(text).as_set() == truth

    def test_exclusion_constraint(self, two_table_db):
        excl = ExclusionConstraint("r", "s", [("a", "a"), ("b", "b")])
        engine = RewritingEngine(two_table_db, [excl])
        hippo = HippoEngine(two_table_db, [excl])
        text = "SELECT * FROM r"
        truth = ground_truth_consistent_answers(
            two_table_db, hippo.hypergraph, hippo.parse(text)[0]
        )
        assert engine.consistent_answers(text).as_set() == truth

    def test_consistent_database_identity(self, two_table_db):
        fd = FunctionalDependency("s", ["a"], ["b"])
        engine = RewritingEngine(two_table_db, [fd])
        rows = engine.consistent_answers("SELECT * FROM s").as_set()
        assert rows == frozenset(two_table_db.query("SELECT * FROM s").rows)


class TestScopeLimits:
    def test_union_rejected(self, emp_db, emp_fd):
        engine = RewritingEngine(emp_db, [emp_fd])
        with pytest.raises(RewritingError, match="union"):
            engine.rewrite(
                "SELECT name, dept FROM emp WHERE salary = 10"
                " UNION SELECT name, dept FROM emp WHERE salary = 12"
            )

    def test_ternary_constraint_rejected(self, two_table_db):
        denial = DenialConstraint(
            "t3",
            (
                ConstraintAtom("x", "r"),
                ConstraintAtom("y", "r"),
                ConstraintAtom("z", "s"),
            ),
            parse_expression("x.a = y.a AND y.a = z.a"),
        )
        engine = RewritingEngine(two_table_db, [denial])
        with pytest.raises(RewritingError, match="binary"):
            engine.rewrite("SELECT * FROM r")

    def test_ternary_constraint_on_other_relation_tolerated(self, two_table_db):
        two_table_db.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
        denial = DenialConstraint(
            "t3",
            (
                ConstraintAtom("x", "t"),
                ConstraintAtom("y", "t"),
                ConstraintAtom("z", "t"),
            ),
            parse_expression("x.a = y.a AND y.a = z.a"),
        )
        engine = RewritingEngine(two_table_db, [denial])
        engine.rewrite("SELECT * FROM r")  # r untouched by the constraint

    def test_multi_atom_difference_right_rejected(self, two_table_db):
        fd = FunctionalDependency("r", ["a"], ["b"])
        engine = RewritingEngine(two_table_db, [fd])
        with pytest.raises(RewritingError, match="single"):
            engine.rewrite(
                "SELECT * FROM r EXCEPT"
                " SELECT s.a, s.b FROM s, r t WHERE t.a = s.a AND t.b = s.b"
            )

    def test_stats_include_rewritten_sql(self, emp_db, emp_fd):
        engine = RewritingEngine(emp_db, [emp_fd])
        answers = engine.consistent_answers("SELECT * FROM emp")
        assert "NOT EXISTS" in answers.stats["rewritten_sql"]


class TestClassify:
    """The static, data-free routing decision behind `.classify`."""

    def test_rewritable_core(self, emp_db, emp_fd):
        result = classify("SELECT * FROM emp", [emp_fd], schema=emp_db)
        assert result.path == "first-order-rewriting"
        assert result.rewritable
        assert result.shape == "core"
        assert result.query_relations == ("emp",)
        assert result.reasons == ()
        # the FD expands into one denial per dependent attribute
        assert result.denial_constraints == 2
        assert result.foreign_keys == 0

    def test_union_needs_hypergraph(self, emp_db, emp_fd):
        result = classify(
            "SELECT name, dept FROM emp WHERE salary = 10"
            " UNION SELECT name, dept FROM emp WHERE salary = 12",
            [emp_fd],
            schema=emp_db,
        )
        assert result.path == "conflict-hypergraph"
        assert not result.rewritable
        assert result.shape == "union"
        assert any("union" in reason for reason in result.reasons)

    def test_foreign_key_forces_hypergraph(self, emp_db, emp_fd):
        emp_db.execute("CREATE TABLE dept (dept TEXT, head TEXT)")
        fk = ForeignKeyConstraint("emp", ["dept"], "dept", ["dept"])
        result = classify("SELECT * FROM emp", [emp_fd, fk], schema=emp_db)
        assert result.path == "conflict-hypergraph"
        assert result.foreign_keys == 1
        assert any("emp->dept" in reason for reason in result.reasons)

    def test_ternary_constraint_blocks_rewriting(self, two_table_db):
        denial = DenialConstraint(
            "t3",
            (
                ConstraintAtom("x", "r"),
                ConstraintAtom("y", "r"),
                ConstraintAtom("z", "s"),
            ),
            parse_expression("x.a = y.a AND y.a = z.a"),
        )
        result = classify("SELECT * FROM r", [denial], schema=two_table_db)
        assert result.path == "conflict-hypergraph"
        assert any("binary" in reason for reason in result.reasons)

    def test_existential_projection_unsupported(self, emp_db, emp_fd):
        result = classify("SELECT name FROM emp", [emp_fd], schema=emp_db)
        assert result.path == "unsupported"
        assert not result.rewritable
        assert result.shape == "unknown"

    def test_classification_is_data_free(self, emp_db, emp_fd):
        before = classify("SELECT * FROM emp", [emp_fd], schema=emp_db)
        emp_db.execute("DELETE FROM emp")
        after = classify("SELECT * FROM emp", [emp_fd], schema=emp_db)
        assert before == after

    def test_describe_mentions_path(self, emp_db, emp_fd):
        report = classify("SELECT * FROM emp", [emp_fd], schema=emp_db).describe()
        assert "path: first-order-rewriting" in report
        assert "relations: emp" in report
