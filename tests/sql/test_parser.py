"""Unit tests for the SQL parser."""

import pytest

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.parser import (
    parse_expression,
    parse_query,
    parse_script,
    parse_statement,
)


class TestExpressions:
    def test_precedence_or_and(self):
        expr = parse_expression("a OR b AND c")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "OR"
        assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "AND"

    def test_precedence_arithmetic(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr == ast.BinaryOp(
            "+", ast.Literal(1), ast.BinaryOp("*", ast.Literal(2), ast.Literal(3))
        )

    def test_comparison_binds_tighter_than_not(self):
        expr = parse_expression("NOT a = b")
        assert isinstance(expr, ast.UnaryOp) and expr.op == "NOT"
        assert isinstance(expr.operand, ast.BinaryOp)

    def test_qualified_column(self):
        assert parse_expression("r.a") == ast.ColumnRef("r", "a")

    def test_unary_minus(self):
        expr = parse_expression("-a + 3")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "+"
        assert isinstance(expr.left, ast.UnaryOp)

    def test_is_null_and_is_not_null(self):
        assert parse_expression("a IS NULL") == ast.IsNull(
            ast.ColumnRef(None, "a"), False
        )
        assert parse_expression("a IS NOT NULL") == ast.IsNull(
            ast.ColumnRef(None, "a"), True
        )

    def test_in_list(self):
        expr = parse_expression("a NOT IN (1, 2)")
        assert expr == ast.InList(
            ast.ColumnRef(None, "a"), (ast.Literal(1), ast.Literal(2)), True
        )

    def test_between(self):
        expr = parse_expression("a BETWEEN 1 AND 3")
        assert isinstance(expr, ast.Between) and not expr.negated

    def test_between_binds_and_correctly(self):
        # The AND inside BETWEEN must not terminate the conjunct.
        expr = parse_expression("a BETWEEN 1 AND 3 AND b = 2")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "AND"
        assert isinstance(expr.left, ast.Between)

    def test_like(self):
        expr = parse_expression("name LIKE 'a%'")
        assert isinstance(expr, ast.Like)

    def test_case_searched(self):
        expr = parse_expression("CASE WHEN a = 1 THEN 'x' ELSE 'y' END")
        assert isinstance(expr, ast.Case) and expr.operand is None

    def test_case_simple(self):
        expr = parse_expression("CASE a WHEN 1 THEN 'x' END")
        assert isinstance(expr, ast.Case) and expr.operand is not None

    def test_function_call(self):
        expr = parse_expression("coalesce(a, 0)")
        assert expr == ast.FunctionCall(
            "COALESCE", (ast.ColumnRef(None, "a"), ast.Literal(0))
        )

    def test_count_star(self):
        assert parse_expression("COUNT(*)") == ast.FunctionCall(
            "COUNT", (), False, star=True
        )

    def test_literals(self):
        assert parse_expression("NULL") == ast.Literal(None)
        assert parse_expression("TRUE") == ast.Literal(True)
        assert parse_expression("'s'") == ast.Literal("s")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("a = 1 garbage garbage")


class TestSelect:
    def test_simple_select(self):
        query = parse_query("SELECT a, b FROM r WHERE a > 1")
        core = query.body
        assert isinstance(core, ast.SelectCore)
        assert len(core.items) == 2
        assert core.from_items == (ast.TableRef("r", None),)
        assert core.where is not None

    def test_star_and_qualified_star(self):
        core = parse_query("SELECT *, r.* FROM r").body
        assert core.items == (ast.Star(None), ast.Star("r"))

    def test_aliases(self):
        core = parse_query("SELECT a AS x, b y FROM r AS t1, s t2").body
        assert core.items[0].alias == "x"
        assert core.items[1].alias == "y"
        assert core.from_items[0].alias == "t1"
        assert core.from_items[1].alias == "t2"

    def test_explicit_join(self):
        core = parse_query("SELECT * FROM r JOIN s ON r.a = s.a").body
        join = core.from_items[0]
        assert isinstance(join, ast.Join) and join.kind == "inner"

    def test_left_and_cross_join(self):
        core = parse_query(
            "SELECT * FROM r LEFT OUTER JOIN s ON r.a = s.a CROSS JOIN t"
        ).body
        outer = core.from_items[0]
        assert isinstance(outer, ast.Join) and outer.kind == "cross"
        assert isinstance(outer.left, ast.Join) and outer.left.kind == "left"

    def test_derived_table(self):
        core = parse_query("SELECT * FROM (SELECT a FROM r) AS d").body
        assert isinstance(core.from_items[0], ast.DerivedTable)

    def test_group_by_having(self):
        core = parse_query(
            "SELECT a, COUNT(*) FROM r GROUP BY a HAVING COUNT(*) > 1"
        ).body
        assert len(core.group_by) == 1
        assert core.having is not None

    def test_distinct(self):
        assert parse_query("SELECT DISTINCT a FROM r").body.distinct

    def test_order_limit_offset(self):
        query = parse_query("SELECT a FROM r ORDER BY a DESC, b LIMIT 5 OFFSET 2")
        assert query.order_by[0].ascending is False
        assert query.order_by[1].ascending is True
        assert (query.limit, query.offset) == (5, 2)

    def test_set_operations_precedence(self):
        query = parse_query(
            "SELECT a FROM r UNION SELECT a FROM s INTERSECT SELECT a FROM t"
        )
        body = query.body
        assert isinstance(body, ast.SetOperation) and body.op == "union"
        assert isinstance(body.right, ast.SetOperation)
        assert body.right.op == "intersect"

    def test_union_all(self):
        body = parse_query("SELECT a FROM r UNION ALL SELECT a FROM s").body
        assert body.all is True

    def test_parenthesized_set_operand(self):
        body = parse_query(
            "(SELECT a FROM r EXCEPT SELECT a FROM s) UNION SELECT a FROM t"
        ).body
        assert body.op == "union"
        assert isinstance(body.left, ast.SetOperation) and body.left.op == "except"

    def test_exists_subquery(self):
        core = parse_query(
            "SELECT * FROM r WHERE NOT EXISTS (SELECT * FROM s WHERE s.a = r.a)"
        ).body
        condition = core.where
        assert isinstance(condition, ast.UnaryOp) and condition.op == "NOT"
        assert isinstance(condition.operand, ast.Exists)

    def test_in_subquery(self):
        core = parse_query("SELECT * FROM r WHERE a IN (SELECT a FROM s)").body
        assert isinstance(core.where, ast.InSubquery)


class TestStatements:
    def test_create_table(self):
        statement = parse_statement(
            "CREATE TABLE r (a INTEGER PRIMARY KEY, b TEXT NOT NULL)"
        )
        assert isinstance(statement, ast.CreateTable)
        assert statement.primary_key == ("a",)
        assert statement.columns[1].not_null

    def test_create_table_composite_key(self):
        statement = parse_statement(
            "CREATE TABLE r (a INT, b INT, PRIMARY KEY (a, b))"
        )
        assert statement.primary_key == ("a", "b")

    def test_double_primary_key_rejected(self):
        with pytest.raises(ParseError):
            parse_statement(
                "CREATE TABLE r (a INT PRIMARY KEY, b INT, PRIMARY KEY (b))"
            )

    def test_insert_multi_row(self):
        statement = parse_statement("INSERT INTO r (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(statement, ast.Insert)
        assert statement.columns == ("a", "b")
        assert len(statement.rows) == 2

    def test_delete_update(self):
        delete = parse_statement("DELETE FROM r WHERE a = 1")
        assert isinstance(delete, ast.Delete) and delete.where is not None
        update = parse_statement("UPDATE r SET b = b + 1, a = 0 WHERE a > 2")
        assert isinstance(update, ast.Update) and len(update.assignments) == 2

    def test_drop(self):
        statement = parse_statement("DROP TABLE IF EXISTS r")
        assert isinstance(statement, ast.DropTable) and statement.if_exists

    def test_script(self):
        statements = parse_script(
            "CREATE TABLE r (a INT); INSERT INTO r VALUES (1); SELECT * FROM r;"
        )
        assert len(statements) == 3

    def test_script_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_script("SELECT 1 SELECT 2")

    def test_not_a_statement(self):
        with pytest.raises(ParseError):
            parse_statement("EXPLAIN SELECT 1")

    def test_parse_query_rejects_ddl(self):
        with pytest.raises(ParseError):
            parse_query("DROP TABLE r")
