"""Unit tests for the SQL lexer."""

import pytest

from repro.errors import LexerError
from repro.sql.lexer import Token, tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)[:-1]]  # drop eof


class TestBasics:
    def test_keywords_uppercase(self):
        assert kinds("select From") == [("keyword", "SELECT"), ("keyword", "FROM")]

    def test_identifiers_preserve_case(self):
        assert kinds("Emp") == [("ident", "Emp")]

    def test_numbers(self):
        assert kinds("42") == [("int", 42)]
        assert kinds("3.5") == [("float", 3.5)]
        assert kinds(".5") == [("float", 0.5)]
        assert kinds("1e3") == [("float", 1000.0)]
        assert kinds("2E-2") == [("float", 0.02)]

    def test_number_then_dot_access_not_confused(self):
        # '1e' without exponent digits stays int + ident.
        assert kinds("1e") == [("int", 1), ("ident", "e")]

    def test_strings_with_escaped_quote(self):
        assert kinds("'o''brien'") == [("string", "o'brien")]

    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize("'oops")

    def test_quoted_identifier(self):
        assert kinds('"select"') == [("ident", "select")]

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(LexerError):
            tokenize('"oops')


class TestOperators:
    def test_multi_char_operators(self):
        assert kinds("<= >= <> ||") == [
            ("op", "<="),
            ("op", ">="),
            ("op", "<>"),
            ("op", "||"),
        ]

    def test_bang_equals_normalized(self):
        assert kinds("a != b") == [("ident", "a"), ("op", "<>"), ("ident", "b")]

    def test_punctuation(self):
        assert kinds("(a, b);") == [
            ("punct", "("),
            ("ident", "a"),
            ("punct", ","),
            ("ident", "b"),
            ("punct", ")"),
            ("punct", ";"),
        ]

    def test_unknown_character(self):
        with pytest.raises(LexerError) as excinfo:
            tokenize("a @ b")
        assert excinfo.value.position == 2


class TestCommentsAndWhitespace:
    def test_line_comment_skipped(self):
        assert kinds("a -- comment\n b") == [("ident", "a"), ("ident", "b")]

    def test_comment_at_end(self):
        assert kinds("a -- trailing") == [("ident", "a")]

    def test_minus_not_comment(self):
        assert kinds("1-2") == [("int", 1), ("op", "-"), ("int", 2)]

    def test_positions_recorded(self):
        tokens = tokenize("ab cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3

    def test_eof_token(self):
        assert tokenize("")[-1] == Token("eof", None, 0)
