"""Unit tests for the SQL formatter (including parse round-trips)."""

import pytest

from repro.sql.formatter import (
    format_expression,
    format_identifier,
    format_query,
    format_statement,
)
from repro.sql.parser import parse_expression, parse_query, parse_statement


class TestIdentifiers:
    def test_safe_identifier_unquoted(self):
        assert format_identifier("emp_2") == "emp_2"

    def test_keyword_quoted(self):
        assert format_identifier("select") == '"select"'

    def test_space_quoted(self):
        assert format_identifier("two words") == '"two words"'

    def test_leading_digit_quoted(self):
        assert format_identifier("1a") == '"1a"'

    def test_inner_quote_escaped(self):
        assert format_identifier('a"b') == '"a""b"'


ROUND_TRIP_EXPRESSIONS = [
    "((a + 1) * 2)",
    "(r.a = s.b)",
    "(a AND (NOT b))",
    "(name LIKE 'a%')",
    "(a NOT IN (1, 2))",
    "(a BETWEEN 1 AND 2)",
    "(a IS NOT NULL)",
    "CASE WHEN (a = 1) THEN 'x' ELSE 'y' END",
    "COALESCE(a, 0)",
    "COUNT(*)",
    "(x || 'suffix')",
]


class TestExpressionRoundTrip:
    @pytest.mark.parametrize("text", ROUND_TRIP_EXPRESSIONS)
    def test_parse_format_parse_fixpoint(self, text):
        expr = parse_expression(text)
        rendered = format_expression(expr)
        assert parse_expression(rendered) == expr


ROUND_TRIP_QUERIES = [
    "SELECT a, b AS c FROM r WHERE (a > 1)",
    "SELECT DISTINCT * FROM r AS t1, s AS t2",
    "SELECT * FROM r JOIN s ON (r.a = s.a)",
    "SELECT * FROM r LEFT JOIN s ON (r.a = s.a)",
    "SELECT * FROM r CROSS JOIN s",
    "(SELECT a FROM r) UNION (SELECT a FROM s)",
    "(SELECT a FROM r) EXCEPT ((SELECT a FROM s) INTERSECT (SELECT a FROM t))",
    "SELECT a FROM r ORDER BY a, b DESC LIMIT 3 OFFSET 1",
    "SELECT a FROM r WHERE (EXISTS (SELECT * FROM s WHERE (s.a = r.a)))",
    "SELECT a, COUNT(*) FROM r GROUP BY a HAVING (COUNT(*) > 1)",
    "SELECT * FROM (SELECT a FROM r) AS d",
]


class TestQueryRoundTrip:
    @pytest.mark.parametrize("text", ROUND_TRIP_QUERIES)
    def test_parse_format_parse_fixpoint(self, text):
        query = parse_query(text)
        rendered = format_query(query)
        assert parse_query(rendered) == query


ROUND_TRIP_STATEMENTS = [
    "CREATE TABLE r (a INTEGER NOT NULL, b TEXT, PRIMARY KEY (a))",
    "CREATE TABLE IF NOT EXISTS r (a INTEGER)",
    "DROP TABLE IF EXISTS r",
    "INSERT INTO r (a, b) VALUES (1, 'x''y'), (2, NULL)",
    "DELETE FROM r WHERE (a = 1)",
    "UPDATE r SET a = (a + 1) WHERE (b = 'x')",
]


class TestStatementRoundTrip:
    @pytest.mark.parametrize("text", ROUND_TRIP_STATEMENTS)
    def test_parse_format_parse_fixpoint(self, text):
        statement = parse_statement(text)
        rendered = format_statement(statement)
        assert parse_statement(rendered) == statement
