"""Regression tests for backend connection lifecycle (HL013 fixes).

A driver connection must never outlive the backend that owns it:
neither a failed post-connect configuration step nor a failing driver
``close()`` may leave a live or half-alive connection behind.
"""

import pytest

from repro.backends import sqlite as sqlite_module
from repro.backends.sqlite import SQLiteBackend


class FakeConnection:
    def __init__(self, fail_execute=False, fail_close=False):
        self.fail_execute = fail_execute
        self.fail_close = fail_close
        self.closed = False

    def execute(self, *args, **kwargs):
        if self.fail_execute:
            raise RuntimeError("pragma rejected")

    def close(self):
        self.closed = True
        if self.fail_close:
            raise RuntimeError("driver close failed")


def test_failed_pragma_closes_the_fresh_connection(monkeypatch):
    conn = FakeConnection(fail_execute=True)
    monkeypatch.setattr(
        sqlite_module.sqlite3, "connect", lambda *a, **k: conn
    )
    backend = SQLiteBackend()
    with pytest.raises(RuntimeError):
        backend.connection
    assert conn.closed
    assert backend._conn is None  # next use would reconnect, not reuse


def test_failing_driver_close_still_resets_the_backend():
    backend = SQLiteBackend()
    conn = FakeConnection(fail_close=True)
    backend._conn = conn
    backend._mirrored["emp"] = object()
    with pytest.raises(RuntimeError):
        backend.close()
    assert conn.closed
    assert backend._conn is None
    assert backend._mirrored == {}


def test_close_is_idempotent():
    backend = SQLiteBackend()
    assert backend.connection is not None
    backend.close()
    backend.close()
    assert backend._conn is None
