"""The differential oracle suite: SQL backends vs the native engine.

Random mixed workloads -- DML interleaved with rewritten-CQA answering
and conflict detection -- run against each SQL backend with the native
engine as the oracle.  At every checked cut the backend's answers
(tree evaluation, rewritten consistent answers, conflict-hypergraph
edges) must equal the native ones exactly.

DuckDB cases *skip visibly* when the optional driver is absent; they
never silently pass.
"""

import random

import pytest

from repro.backends import create_backend, duckdb_available
from repro.conflicts.detection import detect_conflicts
from repro.constraints import FunctionalDependency
from repro.core.hippo import HippoEngine
from repro.engine.database import Database
from repro.ra import CatalogSchemaProvider, evaluate_tree, from_sql_query
from repro.rewriting.rewrite import RewritingEngine
from repro.sql.parser import parse_query

BACKEND_NAMES = [
    "sqlite",
    pytest.param(
        "duckdb",
        marks=pytest.mark.skipif(
            not duckdb_available(), reason="duckdb driver not installed"
        ),
    ),
]

NAMES = ["ann", "bob", "carol", "dave", "eve", "fay"]
DEPTS = ["eng", "ops", "hr"]

#: Queries evaluated at every cut (full-column: SJUD's projection
#: restriction forbids dropping undetermined attributes).
CHECK_QUERIES = [
    "SELECT name, dept, salary FROM emp",
    "SELECT name, dept, salary FROM emp WHERE salary >= 55",
    "SELECT x.name, x.dept, x.salary FROM emp x WHERE x.dept = 'eng'",
    "SELECT name, dept, salary FROM emp WHERE dept = 'ops'"
    " UNION SELECT name, dept, salary FROM emp WHERE salary < 45",
    "SELECT name, dept, salary FROM emp"
    " EXCEPT SELECT name, dept, salary FROM emp WHERE salary BETWEEN 40 AND 60",
    "SELECT name, dept, salary FROM emp WHERE name LIKE '%a%'",
]

FDS = [FunctionalDependency("emp", ["name"], ["salary"])]


def fresh_db(rng, rows=24):
    db = Database()
    db.execute("CREATE TABLE emp (name TEXT, dept TEXT, salary INTEGER)")
    db.insert_rows(
        "emp",
        [
            (rng.choice(NAMES), rng.choice(DEPTS), rng.randrange(30, 90))
            for _ in range(rows)
        ],
    )
    return db


def random_dml(db, rng):
    """One random mutation drawn from insert / delete / update."""
    kind = rng.choice(["insert", "insert", "delete", "update"])
    name = rng.choice(NAMES)
    if kind == "insert":
        db.insert_rows(
            "emp", [(name, rng.choice(DEPTS), rng.randrange(30, 90))]
        )
    elif kind == "delete":
        db.execute(
            f"DELETE FROM emp WHERE name = '{name}'"
            f" AND salary < {rng.randrange(30, 90)}"
        )
    else:
        db.execute(
            f"UPDATE emp SET salary = {rng.randrange(30, 90)}"
            f" WHERE name = '{name}' AND dept = '{rng.choice(DEPTS)}'"
        )


def tree_of(db, text):
    return from_sql_query(parse_query(text), CatalogSchemaProvider(db.catalog))


def assert_cut_equal(db, backend):
    """One cut: trees, rewritten answers and conflict edges all match."""
    for text in CHECK_QUERIES:
        tree = tree_of(db, text)
        assert backend.execute_tree(tree) == evaluate_tree(tree, db), text

    rewriting = RewritingEngine(db, FDS)
    for text in CHECK_QUERIES[:3]:
        pushed = rewriting.consistent_answers(text, backend=backend)
        native = rewriting.consistent_answers(text)
        assert pushed.columns == native.columns, text
        assert pushed.rows == native.rows, text

    pushed_report = detect_conflicts(db, FDS, backend=backend)
    native_report = detect_conflicts(db, FDS)
    assert set(pushed_report.hypergraph.edges) == set(
        native_report.hypergraph.edges
    )


@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
@pytest.mark.parametrize("seed", [7, 23, 91])
class TestRandomWorkloads:
    def test_mixed_dml_cqa_detection(self, backend_name, seed):
        rng = random.Random(seed)
        db = fresh_db(rng)
        backend = create_backend(backend_name, db)
        try:
            assert_cut_equal(db, backend)  # the initial cut
            for _ in range(6):
                random_dml(db, rng)
                assert_cut_equal(db, backend)
        finally:
            backend.close()

    def test_hippo_engine_end_to_end(self, backend_name, seed):
        """The full pipeline agrees regardless of the attached backend."""
        rng = random.Random(seed)
        db = fresh_db(rng)
        native = HippoEngine(db, FDS).consistent_answers(CHECK_QUERIES[1])
        pushed_engine = HippoEngine(db, FDS, backend=backend_name)
        pushed = pushed_engine.consistent_answers(CHECK_QUERIES[1])
        assert pushed.columns == native.columns
        assert pushed.rows == native.rows
        assert db.stats.backend_pushdowns > 0
        pushed_engine.backend.close()


@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
def test_rewriting_pushdown_counts(backend_name):
    """Direct rewriting pushes are visible in the execution stats."""
    rng = random.Random(3)
    db = fresh_db(rng)
    backend = create_backend(backend_name, db)
    try:
        before = db.stats.backend_pushdowns
        RewritingEngine(db, FDS).consistent_answers(
            CHECK_QUERIES[0], backend=backend
        )
        assert db.stats.backend_pushdowns == before + 1
    finally:
        backend.close()


def test_duckdb_is_exercised_or_skipped():
    """Meta-check: the duckdb parameter is a real case, not a no-op.

    When the driver is absent every duckdb case above reports as a
    *skip* in the test summary; when present, construction must work.
    """
    if duckdb_available():
        backend = create_backend("duckdb")
        assert backend.name == "duckdb"
        backend.close()
    else:
        from repro.errors import BackendError

        with pytest.raises(BackendError, match="not installed"):
            create_backend("duckdb")
