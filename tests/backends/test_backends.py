"""Unit tests for the execution-backend layer.

Covers the registry, capability flags, attach/close lifecycle, the
versioned mirror sync, read-side type coercion, tid pinning, and the
Database routing seam (pushdown, fallback accounting, backend-keyed
plan cache).  Cross-backend answer equality on randomized workloads
lives in :mod:`test_differential`.
"""

import pytest

from repro.backends import (
    BACKENDS,
    NativeBackend,
    SQLiteBackend,
    available_backends,
    create_backend,
    duckdb_available,
)
from repro.backends.duckdb import DuckDBBackend
from repro.errors import BackendError
from repro.ra import (
    Atom,
    CatalogSchemaProvider,
    SJUDCore,
    from_sql_query,
    tree_to_query,
)
from repro.sql import ast
from repro.sql.parser import parse_query


def tree_of(db, text):
    return from_sql_query(parse_query(text), CatalogSchemaProvider(db.catalog))


@pytest.fixture
def sqlite_backend(two_table_db):
    backend = SQLiteBackend()
    backend.attach(two_table_db)
    yield backend
    backend.close()


@pytest.fixture
def native_backend(two_table_db):
    backend = NativeBackend()
    backend.attach(two_table_db)
    return backend


class TestRegistry:
    def test_known_names(self):
        assert set(BACKENDS) == {"native", "sqlite", "duckdb"}

    def test_create_by_name(self, db):
        backend = create_backend("sqlite", db)
        assert isinstance(backend, SQLiteBackend)
        assert backend.db is db

    def test_create_is_case_insensitive(self):
        assert isinstance(create_backend("Native"), NativeBackend)

    def test_unknown_name_rejected(self):
        with pytest.raises(BackendError, match="unknown backend"):
            create_backend("postgres")

    def test_available_backends(self):
        names = available_backends()
        assert names[:2] == ["native", "sqlite"]
        assert ("duckdb" in names) == duckdb_available()

    def test_duckdb_gating(self):
        if duckdb_available():
            assert isinstance(create_backend("duckdb"), DuckDBBackend)
        else:
            with pytest.raises(BackendError, match="not installed"):
                create_backend("duckdb")


class TestProtocol:
    def test_capability_flags(self):
        native = NativeBackend().capabilities
        assert not native.pushes_sql and not native.requires_sync
        sqlite = SQLiteBackend().capabilities
        assert sqlite.pushes_sql and sqlite.requires_sync
        assert sqlite.param_style == "qmark"

    def test_unattached_db_raises(self):
        with pytest.raises(BackendError, match="not attached"):
            NativeBackend().db

    def test_close_releases_database(self, two_table_db):
        backend = SQLiteBackend()
        backend.attach(two_table_db)
        backend.close()
        with pytest.raises(BackendError, match="not attached"):
            backend.db

    def test_reattach_after_close(self, two_table_db):
        backend = SQLiteBackend()
        backend.attach(two_table_db)
        assert backend.execute_tree(tree_of(two_table_db, "SELECT * FROM r"))
        backend.close()
        backend.attach(two_table_db)
        assert backend.execute_tree(tree_of(two_table_db, "SELECT * FROM r"))


class TestAnswerEquality:
    QUERIES = [
        "SELECT * FROM r WHERE a >= 2 AND b < 6",
        "SELECT x.a, x.b, y.b FROM r x, s y WHERE x.a = y.a",
        "SELECT * FROM r WHERE a IN (1, 4) UNION SELECT * FROM s",
        "SELECT * FROM r EXCEPT SELECT * FROM s WHERE a BETWEEN 2 AND 4",
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_execute_tree_matches_native(
        self, two_table_db, sqlite_backend, native_backend, text
    ):
        tree = tree_of(two_table_db, text)
        assert sqlite_backend.execute_tree(tree) == native_backend.execute_tree(
            tree
        )

    @pytest.mark.parametrize("text", QUERIES)
    def test_execute_query_matches_native(
        self, two_table_db, sqlite_backend, native_backend, text
    ):
        query = tree_to_query(tree_of(two_table_db, text))
        columns, rows = sqlite_backend.execute_query(query)
        native_columns, native_rows = native_backend.execute_query(query)
        assert columns == native_columns
        assert set(rows) == set(native_rows)

    def test_residual_join_matches_native(
        self, two_table_db, sqlite_backend, native_backend
    ):
        condition = ast.BinaryOp(
            "AND",
            ast.BinaryOp("=", ast.ColumnRef("t0", "a"), ast.ColumnRef("t1", "a")),
            ast.BinaryOp("<>", ast.ColumnRef("t0", "b"), ast.ColumnRef("t1", "b")),
        )
        core = SJUDCore((Atom("t0", "r"), Atom("t1", "r")), condition, ())
        native_edges = native_backend.residual_join(core)
        assert native_edges  # r has the key-violating pairs (1,1)/(1,2)
        assert set(sqlite_backend.residual_join(core)) == set(native_edges)

    def test_boolean_round_trip(self, db):
        db.execute("CREATE TABLE t (a INTEGER, ok BOOLEAN)")
        db.execute("INSERT INTO t VALUES (1, TRUE), (2, FALSE), (3, TRUE)")
        backend = SQLiteBackend()
        backend.attach(db)
        tree = tree_of(db, "SELECT * FROM t WHERE ok = TRUE")
        native = NativeBackend()
        native.attach(db)
        answers = backend.execute_tree(tree)
        assert answers == native.execute_tree(tree)
        assert all(isinstance(row[1], bool) for row in answers)
        backend.close()


class TestMirrorSync:
    def rebuild_count(self, backend, monkeypatch):
        calls = []
        original = backend._rebuild_mirror

        def counting(conn, table):
            calls.append(table.schema.name)
            original(conn, table)

        monkeypatch.setattr(backend, "_rebuild_mirror", counting)
        return calls

    def test_sync_is_lazy(self, two_table_db, sqlite_backend, monkeypatch):
        calls = self.rebuild_count(sqlite_backend, monkeypatch)
        tree = tree_of(two_table_db, "SELECT * FROM r")
        sqlite_backend.execute_tree(tree)
        assert sorted(calls) == ["r", "s"]
        sqlite_backend.execute_tree(tree)
        assert sorted(calls) == ["r", "s"]  # unchanged tables: no rebuild

    def test_mutation_forces_resync(self, two_table_db, sqlite_backend):
        tree = tree_of(two_table_db, "SELECT * FROM r")
        before = sqlite_backend.execute_tree(tree)
        two_table_db.execute("INSERT INTO r VALUES (8, 8)")
        after = sqlite_backend.execute_tree(tree)
        assert after == before | {(8, 8)}

    def test_delete_and_update_resync(self, two_table_db, sqlite_backend):
        tree = tree_of(two_table_db, "SELECT * FROM r")
        two_table_db.execute("DELETE FROM r WHERE a = 1")
        two_table_db.execute("UPDATE r SET b = 0 WHERE a = 2")
        native = NativeBackend()
        native.attach(two_table_db)
        assert sqlite_backend.execute_tree(tree) == native.execute_tree(tree)

    def test_drop_create_resync(self, two_table_db, sqlite_backend):
        tree = tree_of(two_table_db, "SELECT * FROM r")
        sqlite_backend.execute_tree(tree)
        two_table_db.execute("DROP TABLE r")
        two_table_db.execute("CREATE TABLE r (a INTEGER, b INTEGER)")
        two_table_db.execute("INSERT INTO r VALUES (7, 7)")
        assert sqlite_backend.execute_tree(tree_of(two_table_db, "SELECT * FROM r")) == {
            (7, 7)
        }

    def test_dropped_table_mirror_removed(self, two_table_db, sqlite_backend):
        sqlite_backend.sync()
        assert "s" in sqlite_backend._mirrored
        two_table_db.execute("DROP TABLE s")
        sqlite_backend.sync()
        assert "s" not in sqlite_backend._mirrored

    def test_tids_survive_the_crossing(self, two_table_db, sqlite_backend):
        """Mirror rowids are exactly the native tids."""
        sqlite_backend.sync()
        rows = sqlite_backend.connection.execute(
            "SELECT rowid, a, b FROM r ORDER BY rowid"
        ).fetchall()
        native = [
            (tid,) + row
            for tid, row in two_table_db.catalog.table("r").items()
        ]
        assert [tuple(row) for row in rows] == native

    def test_reserved_tid_column_rejected(self, db):
        db.execute("CREATE TABLE w (rowid INTEGER, b INTEGER)")
        backend = SQLiteBackend()
        backend.attach(db)
        with pytest.raises(BackendError, match="reserves"):
            backend.sync()
        backend.close()


class TestDatabaseSeam:
    def test_attach_and_detach(self, two_table_db):
        assert two_table_db.backend is None
        assert two_table_db.backend_id == "native"
        backend = SQLiteBackend()
        two_table_db.attach_backend(backend)
        assert two_table_db.backend is backend
        assert two_table_db.backend_id == "sqlite"
        two_table_db.detach_backend()
        assert two_table_db.backend is None
        assert two_table_db.backend_id == "native"

    def test_selects_route_through_backend(self, two_table_db):
        native = two_table_db.query("SELECT a, b FROM r WHERE a > 1")
        two_table_db.attach_backend(SQLiteBackend())
        before = two_table_db.stats.backend_pushdowns
        pushed = two_table_db.query("SELECT a, b FROM r WHERE a > 1")
        assert two_table_db.stats.backend_pushdowns == before + 1
        assert pushed.columns == native.columns
        assert set(pushed.rows) == set(native.rows)

    def test_native_backend_does_not_push(self, two_table_db):
        two_table_db.attach_backend(NativeBackend())
        two_table_db.query("SELECT a, b FROM r")
        assert two_table_db.stats.backend_pushdowns == 0

    def test_fallback_on_backend_error(self, two_table_db):
        """A value outside SQLite's integer range falls back natively."""
        huge = 2**70
        two_table_db.attach_backend(SQLiteBackend())
        result = two_table_db.query(f"SELECT a, b FROM r WHERE a <> {huge}")
        assert two_table_db.stats.backend_fallbacks == 1
        assert len(result.rows) == 5

    def test_dml_stays_native(self, two_table_db):
        two_table_db.attach_backend(SQLiteBackend())
        two_table_db.execute("INSERT INTO r VALUES (6, 6)")
        assert (6, 6) in set(two_table_db.query("SELECT a, b FROM r").rows)

    def test_plan_cache_keys_are_backend_scoped(self, two_table_db):
        sql = "SELECT a, b FROM r WHERE b = 4"
        two_table_db.query(sql)  # cached under the native backend id
        two_table_db.attach_backend(SQLiteBackend())
        before = two_table_db.stats.backend_pushdowns
        two_table_db.query(sql)
        # a native-keyed cache hit would have skipped the pushdown
        assert two_table_db.stats.backend_pushdowns == before + 1
