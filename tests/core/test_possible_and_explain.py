"""Tests for possible answers, explanations and repair counting."""

import pytest

from repro import Database, HippoEngine
from repro.conflicts import ConflictHypergraph, detect_conflicts, vertex
from repro.constraints import FunctionalDependency
from repro.ra import evaluate_tree
from repro.repairs import (
    all_repairs,
    conflict_components,
    count_repairs_exact,
    repair_restriction,
)
from repro.workloads import generate_key_conflict_table


@pytest.fixture
def hippo(emp_db):
    fd = FunctionalDependency("emp", ["name"], ["dept", "salary"])
    return HippoEngine(emp_db, [fd])


class TestPossibleAnswers:
    def test_possible_superset_of_consistent(self, hippo):
        text = "SELECT * FROM emp"
        consistent = hippo.consistent_answers(text).as_set()
        possible = hippo.possible_answers(text).as_set()
        assert consistent <= possible
        # Every stored tuple of this instance survives in some repair.
        assert possible == hippo.raw_answers(text).as_set()

    def test_possible_matches_repair_enumeration(self, hippo):
        for text in [
            "SELECT * FROM emp WHERE dept = 'cs'",
            "SELECT * FROM emp EXCEPT SELECT * FROM emp WHERE salary >= 15",
            "SELECT name, dept FROM emp WHERE salary = 12",
        ]:
            tree, _ = hippo.parse(text)
            truth = frozenset()
            for repair in all_repairs(hippo.db, hippo.hypergraph):
                truth |= evaluate_tree(
                    tree, hippo.db, repair_restriction(repair)
                )
            assert hippo.possible_answers(text).as_set() == truth, text

    def test_difference_possible_vs_consistent_gap(self):
        db = Database()
        db.execute("CREATE TABLE p (a INTEGER, b INTEGER)")
        db.execute("CREATE TABLE q (a INTEGER, b INTEGER)")
        db.execute("INSERT INTO p VALUES (1, 5)")
        db.execute("INSERT INTO q VALUES (1, 5), (1, 6)")
        fd = FunctionalDependency("q", ["a"], ["b"])
        hippo = HippoEngine(db, [fd])
        text = "SELECT * FROM p EXCEPT SELECT * FROM q"
        # Not consistent (the repair keeping q(1,5) kills it) but possible
        # (the repair keeping q(1,6) admits it).
        assert hippo.consistent_answers(text).rows == []
        assert hippo.possible_answers(text).rows == [(1, 5)]


class TestExplainCandidate:
    def test_consistent_candidate(self, hippo):
        report = hippo.explain_candidate("SELECT * FROM emp", ("bob", "ee", 20))
        assert report["consistent"] and report["possible"]
        assert report["facts"] == ["emp(bob, ee, 20)"]

    def test_inconsistent_candidate_names_counterexample(self, hippo):
        report = hippo.explain_candidate("SELECT * FROM emp", ("ann", "cs", 10))
        assert not report["consistent"]
        assert report["possible"]
        assert report["falsifying_repair_excludes"] == ["emp(ann, cs, 10)"]

    def test_impossible_candidate(self, hippo):
        report = hippo.explain_candidate("SELECT * FROM emp", ("zoe", "cs", 1))
        assert not report["possible"]
        assert not report["consistent"]


class TestConflictComponents:
    def test_components_partition_conflicting_vertices(self, hippo):
        components = conflict_components(hippo.hypergraph)
        assert len(components) == 2  # ann's pair, carol's pair
        union = frozenset().union(*components)
        assert union == frozenset(hippo.hypergraph.conflicting_vertices())

    def test_chain_is_one_component(self):
        a, b, c = vertex("r", 1), vertex("r", 2), vertex("r", 3)
        graph = ConflictHypergraph([frozenset({a, b}), frozenset({b, c})])
        assert len(conflict_components(graph)) == 1


class TestRepairCounting:
    def test_matches_enumeration_on_small_instance(self, hippo):
        count = count_repairs_exact(hippo.hypergraph)
        assert count.total == len(all_repairs(hippo.db, hippo.hypergraph))
        assert count.component_counts == (2, 2)

    def test_consistent_db_has_one_repair(self, two_table_db):
        fd = FunctionalDependency("s", ["a"], ["b"])
        graph = detect_conflicts(two_table_db, [fd]).hypergraph
        count = count_repairs_exact(graph)
        assert count.total == 1 and count.components == 0

    def test_counts_astronomical_instances_without_enumerating(self):
        """2^200 repairs: enumeration is hopeless, factorization is not."""
        db = Database()
        table = generate_key_conflict_table(db, "r", 1000, 0.4, seed=41)
        graph = detect_conflicts(db, [table.fd]).hypergraph
        count = count_repairs_exact(graph)
        assert count.components == 200  # 400 conflicting tuples in pairs
        assert count.total == 2 ** 200
