"""Tests for boolean membership formulas and DNF conversion."""


from repro.core import formula as fm
from repro.core.facts import fact


A = fact("r", (1,))
B = fact("r", (2,))
C = fact("s", (3,))


class TestConstructors:
    def test_conj_simplifies(self):
        assert fm.conj([]) == fm.TRUE
        assert fm.conj([fm.AtomF(A)]) == fm.AtomF(A)
        assert fm.conj([fm.TRUE, fm.AtomF(A)]) == fm.AtomF(A)
        assert fm.conj([fm.FALSE, fm.AtomF(A)]) == fm.FALSE

    def test_conj_flattens(self):
        inner = fm.conj([fm.AtomF(A), fm.AtomF(B)])
        outer = fm.conj([inner, fm.AtomF(C)])
        assert isinstance(outer, fm.AndF) and len(outer.children) == 3

    def test_disj_simplifies(self):
        assert fm.disj([]) == fm.FALSE
        assert fm.disj([fm.TRUE, fm.AtomF(A)]) == fm.TRUE
        assert fm.disj([fm.FALSE, fm.AtomF(A)]) == fm.AtomF(A)

    def test_negate_double(self):
        phi = fm.AtomF(A)
        assert fm.negate(fm.negate(phi)) == phi
        assert fm.negate(fm.TRUE) == fm.FALSE


class TestNNF:
    def test_de_morgan(self):
        phi = fm.NotF(fm.conj([fm.AtomF(A), fm.AtomF(B)]))
        nnf = fm.to_nnf(phi)
        assert isinstance(nnf, fm.OrF)
        assert all(isinstance(child, fm.NotF) for child in nnf.children)

    def test_nested_negations_cancel(self):
        phi = fm.NotF(fm.NotF(fm.AtomF(A)))
        assert fm.to_nnf(phi) == fm.AtomF(A)

    def test_constants(self):
        assert fm.to_nnf(fm.NotF(fm.TRUE)) == fm.FALSE


class TestDNF:
    def test_atom(self):
        assert fm.to_dnf(fm.AtomF(A)) == [(frozenset([A]), frozenset())]

    def test_negated_atom(self):
        assert fm.to_dnf(fm.NotF(fm.AtomF(A))) == [(frozenset(), frozenset([A]))]

    def test_conjunction(self):
        (disjunct,) = fm.to_dnf(fm.conj([fm.AtomF(A), fm.NotF(fm.AtomF(B))]))
        assert disjunct == (frozenset([A]), frozenset([B]))

    def test_distribution(self):
        phi = fm.conj(
            [fm.disj([fm.AtomF(A), fm.AtomF(B)]), fm.AtomF(C)]
        )
        disjuncts = fm.to_dnf(phi)
        assert len(disjuncts) == 2
        assert (frozenset([A, C]), frozenset()) in disjuncts

    def test_contradictory_disjunct_dropped(self):
        phi = fm.conj([fm.AtomF(A), fm.NotF(fm.AtomF(A))])
        assert fm.to_dnf(phi) == []

    def test_unsatisfiable(self):
        assert fm.to_dnf(fm.FALSE) == []

    def test_valid(self):
        assert fm.to_dnf(fm.TRUE) == [(frozenset(), frozenset())]

    def test_deduplication(self):
        phi = fm.disj([fm.AtomF(A), fm.AtomF(A)])
        assert len(fm.to_dnf(phi)) == 1

    def test_dnf_equivalent_to_original(self):
        # Exhaustive model check over the three atoms.
        phi = fm.disj(
            [
                fm.conj([fm.AtomF(A), fm.NotF(fm.AtomF(B))]),
                fm.NotF(fm.conj([fm.AtomF(B), fm.AtomF(C)])),
            ]
        )
        disjuncts = fm.to_dnf(phi)
        atoms = [A, B, C]
        for mask in range(8):
            present = {atoms[i] for i in range(3) if mask >> i & 1}
            expected = fm.evaluate(phi, present)
            got = any(
                pos <= present and not (neg & present) for pos, neg in disjuncts
            )
            assert got == expected, f"model {present}"


class TestHelpers:
    def test_atoms_of(self):
        phi = fm.conj([fm.AtomF(A), fm.NotF(fm.disj([fm.AtomF(B), fm.AtomF(C)]))])
        assert fm.atoms_of(phi) == frozenset([A, B, C])
        assert fm.atoms_of(fm.TRUE) == frozenset()

    def test_evaluate(self):
        phi = fm.conj([fm.AtomF(A), fm.NotF(fm.AtomF(B))])
        assert fm.evaluate(phi, {A})
        assert not fm.evaluate(phi, {A, B})

    def test_fact_str(self):
        assert str(fact("Emp", ("ann", None))) == "emp(ann, NULL)"
