"""Tests for the membership-check strategies."""

import pytest

from repro.conflicts import vertex
from repro.core.facts import fact
from repro.core.membership import (
    CachedMembership,
    ProvenanceMembership,
    QueryMembership,
    make_membership,
)
from repro.engine import Database
from repro.engine.types import SQLType


@pytest.fixture
def small_db():
    db = Database()
    db.create_table("r", [("a", SQLType.INTEGER)])
    db.insert_rows("r", [(1,), (2,)])
    return db


class TestQueryMembership:
    def test_every_check_hits_the_database(self, small_db):
        resolver = QueryMembership(small_db)
        resolver.some_vertex(fact("r", (1,)))
        resolver.some_vertex(fact("r", (1,)))  # repeated: queried again
        assert resolver.stats.db_queries == 2
        assert small_db.stats.point_lookups == 2

    def test_absent_fact(self, small_db):
        resolver = QueryMembership(small_db)
        assert resolver.some_vertex(fact("r", (9,))) is None
        assert resolver.all_vertices(fact("r", (9,))) == frozenset()

    def test_present_fact(self, small_db):
        resolver = QueryMembership(small_db)
        assert resolver.some_vertex(fact("r", (1,))) == vertex("r", 0)
        assert resolver.all_vertices(fact("r", (2,))) == frozenset({vertex("r", 1)})


class TestCachedMembership:
    def test_second_check_is_free(self, small_db):
        resolver = CachedMembership(small_db)
        resolver.all_vertices(fact("r", (1,)))
        resolver.all_vertices(fact("r", (1,)))
        assert resolver.stats.db_queries == 1
        assert resolver.stats.free_answers == 1

    def test_negative_results_cached_too(self, small_db):
        resolver = CachedMembership(small_db)
        resolver.some_vertex(fact("r", (9,)))
        resolver.some_vertex(fact("r", (9,)))
        assert resolver.stats.db_queries == 1


class TestProvenanceMembership:
    def test_hint_answers_without_database(self, small_db):
        resolver = ProvenanceMembership(small_db, duplicate_free=True)
        resolver.prime({fact("r", (1,)): vertex("r", 0)})
        assert resolver.some_vertex(fact("r", (1,))) == vertex("r", 0)
        assert resolver.all_vertices(fact("r", (1,))) == frozenset({vertex("r", 0)})
        assert resolver.stats.db_queries == 0
        assert resolver.stats.free_answers == 2
        assert small_db.stats.point_lookups == 0

    def test_unhinted_fact_falls_back(self, small_db):
        resolver = ProvenanceMembership(small_db, duplicate_free=True)
        resolver.prime({})
        assert resolver.some_vertex(fact("r", (2,))) == vertex("r", 1)
        assert resolver.stats.db_queries == 1

    def test_duplicates_force_lookup_for_exclusion(self, small_db):
        small_db.insert_rows("r", [(1,)])  # duplicate of value 1
        resolver = ProvenanceMembership(small_db, duplicate_free=False)
        resolver.prime({fact("r", (1,)): vertex("r", 0)})
        # some_vertex may use the hint...
        assert resolver.some_vertex(fact("r", (1,))) == vertex("r", 0)
        # ...but all_vertices must see BOTH copies.
        vertices = resolver.all_vertices(fact("r", (1,)))
        assert vertices == frozenset({vertex("r", 0), vertex("r", 2)})
        assert resolver.stats.db_queries == 1


class TestFactory:
    def test_known_strategies(self, small_db):
        assert isinstance(make_membership("query", small_db), QueryMembership)
        assert isinstance(make_membership("cached", small_db), CachedMembership)
        assert isinstance(
            make_membership("provenance", small_db), ProvenanceMembership
        )

    def test_unknown_strategy(self, small_db):
        with pytest.raises(ValueError, match="unknown membership strategy"):
            make_membership("psychic", small_db)
