"""Tests for Enveloping: the Q-up / Q-down approximations."""

import pytest

from repro.conflicts import detect_conflicts
from repro.constraints import FunctionalDependency
from repro.core.envelope import Enveloper, provenance_hints
from repro.core.facts import fact
from repro.conflicts.hypergraph import vertex
from repro.ra import CatalogSchemaProvider, from_sql_query
from repro.repairs import ground_truth_consistent_answers
from repro.sql.parser import parse_query


@pytest.fixture
def setup(emp_db):
    fd = FunctionalDependency("emp", ["name"], ["dept", "salary"])
    graph = detect_conflicts(emp_db, [fd]).hypergraph
    return emp_db, graph, Enveloper(emp_db, graph)


def tree_of(db, text):
    return from_sql_query(parse_query(text), CatalogSchemaProvider(db.catalog))


class TestConflictFreeTids:
    def test_memoized_and_correct(self, setup):
        db, graph, enveloper = setup
        clean = enveloper.conflict_free_tids("emp")
        assert len(clean) == 2  # bob, dave
        conflicting = graph.conflicting_tids("emp")
        assert clean.isdisjoint(conflicting)
        assert enveloper.conflict_free_tids("EMP") == clean  # cache, case


class TestEnvelopeBounds:
    """down(Q)  <=  consistent(Q)  <=  up(Q), on several query shapes."""

    QUERIES = [
        "SELECT * FROM emp",
        "SELECT * FROM emp WHERE salary > 11",
        "SELECT name, dept FROM emp WHERE salary = 15",
        "SELECT * FROM emp WHERE dept = 'cs' UNION SELECT * FROM emp WHERE dept = 'me'",
        "SELECT name, dept FROM emp WHERE salary = 10"
        " UNION SELECT name, dept FROM emp WHERE salary = 12",
        "SELECT * FROM emp EXCEPT SELECT * FROM emp WHERE salary > 14",
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_sandwich(self, setup, text):
        db, graph, enveloper = setup
        tree = tree_of(db, text)
        evaluation = enveloper.evaluate(tree)
        truth = ground_truth_consistent_answers(db, graph, tree)
        candidates = frozenset(evaluation.candidates.keys())
        assert evaluation.certain <= truth, "core must be sound"
        assert truth <= candidates, "envelope must be complete"

    def test_core_skip_counts(self, setup):
        db, _graph, enveloper = setup
        tree = tree_of(db, "SELECT * FROM emp")
        evaluation = enveloper.evaluate(tree)
        # bob and dave are conflict-free: they land in the certain core.
        assert evaluation.certain == {("bob", "ee", 20), ("dave", "ee", 18)}

    def test_core_disabled(self, setup):
        db, _graph, enveloper = setup
        tree = tree_of(db, "SELECT * FROM emp")
        evaluation = enveloper.evaluate(tree, compute_core=False)
        assert evaluation.certain == frozenset()
        assert evaluation.candidate_count == 6

    def test_difference_envelope_uses_core_of_right(self, setup):
        db, _graph, enveloper = setup
        tree = tree_of(
            db, "SELECT * FROM emp EXCEPT SELECT * FROM emp WHERE salary <= 12"
        )
        candidates = frozenset(enveloper.evaluate(tree).candidates.keys())
        # ann's tuples conflict, so they are not *certainly* in the
        # right-hand side (not in down(right)); the envelope must keep
        # them as candidates even though raw evaluation would drop one.
        assert ("ann", "cs", 10) in candidates
        assert ("ann", "cs", 12) in candidates
        # dave is conflict-free with salary 18: certainly in the left,
        # certainly not in the right -> a certain answer.
        evaluation = enveloper.evaluate(tree)
        assert ("dave", "ee", 18) in evaluation.certain


class TestProvenance:
    def test_candidates_carry_witness_tids(self, setup):
        db, _graph, enveloper = setup
        tree = tree_of(db, "SELECT * FROM emp WHERE salary = 15")
        evaluation = enveloper.evaluate(tree)
        for value, provenance in evaluation.candidates.items():
            assert provenance is not None
            ((relation, tid),) = provenance
            assert relation == "emp"
            assert db.table("emp").get(tid) == value

    def test_provenance_hints_translation(self, setup):
        db, _graph, _enveloper = setup
        tid = next(iter(db.table("emp").lookup(("bob", "ee", 20))))
        hints = provenance_hints(db, (("emp", tid),))
        assert hints == {fact("emp", ("bob", "ee", 20)): vertex("emp", tid)}

    def test_provenance_hints_empty(self, setup):
        db, _graph, _enveloper = setup
        assert provenance_hints(db, None) == {}
        assert provenance_hints(db, ()) == {}
