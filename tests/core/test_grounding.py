"""Tests for grounding candidate tuples into membership formulas."""


from repro.core import formula as fm
from repro.core.facts import fact
from repro.core.grounding import GroundQuery
from repro.ra import CatalogSchemaProvider, from_sql_query
from repro.sql.parser import parse_query


def grounder_for(db, text):
    schema = CatalogSchemaProvider(db.catalog)
    tree = from_sql_query(parse_query(text), schema)
    return GroundQuery(tree, schema)


class TestCoreGrounding:
    def test_identity_query(self, two_table_db):
        grounder = grounder_for(two_table_db, "SELECT * FROM r")
        phi = grounder.formula_for((1, 1))
        assert phi == fm.AtomF(fact("r", (1, 1)))

    def test_condition_failure_grounds_to_false(self, two_table_db):
        grounder = grounder_for(two_table_db, "SELECT * FROM r WHERE a > 2")
        assert grounder.formula_for((1, 1)) == fm.FALSE
        assert grounder.formula_for((3, 7)) == fm.AtomF(fact("r", (3, 7)))

    def test_constant_reconstruction(self, two_table_db):
        grounder = grounder_for(two_table_db, "SELECT a FROM r WHERE b = 5")
        assert grounder.formula_for((2,)) == fm.AtomF(fact("r", (2, 5)))

    def test_join_grounds_to_conjunction(self, two_table_db):
        grounder = grounder_for(
            two_table_db, "SELECT x.a, x.b, y.b FROM r x, s y WHERE x.a = y.a"
        )
        phi = grounder.formula_for((2, 5, 5))
        assert isinstance(phi, fm.AndF)
        assert fm.atoms_of(phi) == {fact("r", (2, 5)), fact("s", (2, 5))}

    def test_join_condition_checked_on_reconstruction(self, two_table_db):
        grounder = grounder_for(
            two_table_db,
            "SELECT x.a, x.b, y.a, y.b FROM r x, s y WHERE x.b < y.b",
        )
        assert grounder.formula_for((1, 1, 2, 5)) != fm.FALSE
        assert grounder.formula_for((2, 5, 1, 1)) == fm.FALSE


class TestSetOperations:
    def test_union_grounds_to_disjunction(self, two_table_db):
        grounder = grounder_for(
            two_table_db, "SELECT * FROM r UNION SELECT * FROM s"
        )
        phi = grounder.formula_for((2, 5))
        assert isinstance(phi, fm.OrF)
        assert fm.atoms_of(phi) == {fact("r", (2, 5)), fact("s", (2, 5))}

    def test_union_branch_condition_prunes(self, two_table_db):
        grounder = grounder_for(
            two_table_db,
            "SELECT * FROM r WHERE a = 1 UNION SELECT * FROM s WHERE a = 9",
        )
        # (9,9) only satisfies the right branch: the OR collapses.
        assert grounder.formula_for((9, 9)) == fm.AtomF(fact("s", (9, 9)))

    def test_difference_grounds_to_and_not(self, two_table_db):
        grounder = grounder_for(
            two_table_db, "SELECT * FROM r EXCEPT SELECT * FROM s"
        )
        phi = grounder.formula_for((2, 5))
        (disjunct,) = fm.to_dnf(phi)
        assert disjunct == (
            frozenset([fact("r", (2, 5))]),
            frozenset([fact("s", (2, 5))]),
        )

    def test_difference_right_branch_false_simplifies(self, two_table_db):
        grounder = grounder_for(
            two_table_db, "SELECT * FROM r EXCEPT SELECT * FROM s WHERE a > 5"
        )
        # (2,5) cannot satisfy the right branch; NOT(FALSE) vanishes.
        assert grounder.formula_for((2, 5)) == fm.AtomF(fact("r", (2, 5)))


class TestWitnessFacts:
    def test_witness_facts_cover_all_branches(self, two_table_db):
        grounder = grounder_for(
            two_table_db, "SELECT * FROM r UNION SELECT * FROM s"
        )
        facts = grounder.witness_facts((2, 5))
        assert facts == {fact("r", (2, 5)), fact("s", (2, 5))}

    def test_formula_size_independent_of_data(self, two_table_db):
        """The polynomial-data-complexity linchpin: |Phi| ~ query size."""
        grounder = grounder_for(two_table_db, "SELECT * FROM r")
        before = grounder.formula_for((1, 1))
        for i in range(100, 200):
            two_table_db.execute(f"INSERT INTO r VALUES ({i}, {i})")
        after = grounder.formula_for((1, 1))
        assert before == after  # same single-atom formula
