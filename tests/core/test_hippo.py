"""Integration tests for the full HippoEngine pipeline."""

import pytest

from repro import Database, HippoEngine
from repro.constraints import (
    ConstraintAtom,
    DenialConstraint,
    ExclusionConstraint,
    FunctionalDependency,
)
from repro.errors import UnsupportedQueryError
from repro.repairs import ground_truth_consistent_answers
from repro.sql.parser import parse_expression


@pytest.fixture
def hippo(emp_db):
    fd = FunctionalDependency("emp", ["name"], ["dept", "salary"])
    return HippoEngine(emp_db, [fd])


class TestAnswers:
    def test_selection(self, hippo):
        answers = hippo.consistent_answers("SELECT * FROM emp WHERE salary >= 10")
        assert answers.rows == [("bob", "ee", 20), ("dave", "ee", 18)]
        assert answers.columns == ["name", "dept", "salary"]

    def test_matches_ground_truth(self, hippo):
        for text in [
            "SELECT * FROM emp",
            "SELECT * FROM emp WHERE dept = 'cs'",
            "SELECT name, dept FROM emp WHERE salary = 15",
            "SELECT name, dept FROM emp WHERE salary = 10"
            " UNION SELECT name, dept FROM emp WHERE salary = 12",
            "SELECT * FROM emp EXCEPT SELECT * FROM emp WHERE dept = 'ee'",
        ]:
            tree, _ = hippo.parse(text)
            truth = ground_truth_consistent_answers(
                hippo.db, hippo.hypergraph, tree
            )
            assert hippo.consistent_answers(text).as_set() == truth, text

    def test_all_membership_strategies_agree(self, emp_db):
        fd = FunctionalDependency("emp", ["name"], ["dept", "salary"])
        text = (
            "SELECT name, dept FROM emp WHERE salary = 10"
            " UNION SELECT name, dept FROM emp WHERE salary = 12"
        )
        results = {
            strategy: HippoEngine(emp_db, [fd], membership=strategy)
            .consistent_answers(text)
            .as_set()
            for strategy in ("query", "cached", "provenance")
        }
        assert len(set(results.values())) == 1

    def test_core_on_off_agree(self, emp_db):
        fd = FunctionalDependency("emp", ["name"], ["dept", "salary"])
        text = "SELECT * FROM emp WHERE salary > 9"
        with_core = HippoEngine(emp_db, [fd], use_core=True)
        without_core = HippoEngine(emp_db, [fd], use_core=False)
        assert (
            with_core.consistent_answers(text).as_set()
            == without_core.consistent_answers(text).as_set()
        )
        assert with_core.consistent_answers(text).stats["skipped_by_core"] > 0
        assert without_core.consistent_answers(text).stats["skipped_by_core"] == 0

    def test_provenance_avoids_db_queries(self, emp_db):
        fd = FunctionalDependency("emp", ["name"], ["dept", "salary"])
        base = HippoEngine(emp_db, [fd], membership="query", use_core=False)
        optimized = HippoEngine(emp_db, [fd], membership="provenance", use_core=False)
        text = "SELECT * FROM emp"
        base_stats = base.consistent_answers(text).stats["membership"]
        optimized_stats = optimized.consistent_answers(text).stats["membership"]
        assert base_stats.db_queries > 0
        assert optimized_stats.db_queries == 0
        assert optimized_stats.free_answers > 0

    def test_order_by_applied_to_answers(self, hippo):
        answers = hippo.consistent_answers(
            "SELECT * FROM emp WHERE salary >= 10 ORDER BY salary DESC"
        )
        assert answers.rows == [("bob", "ee", 20), ("dave", "ee", 18)]

    def test_order_by_position(self, hippo):
        answers = hippo.consistent_answers("SELECT * FROM emp ORDER BY 3")
        assert [row[2] for row in answers.rows] == sorted(
            row[2] for row in answers.rows
        )

    def test_order_by_non_output_rejected(self, hippo):
        with pytest.raises(UnsupportedQueryError):
            hippo.consistent_answers(
                "SELECT name, dept FROM emp WHERE salary = 10 ORDER BY salary"
            )

    def test_stats_shape(self, hippo):
        stats = hippo.consistent_answers("SELECT * FROM emp").stats
        assert stats["candidates"] == 6
        assert stats["answers"] == 2
        assert stats["total_seconds"] > 0
        assert stats["hypergraph"]["edges"] == 2


class TestBaselines:
    def test_raw_answers(self, hippo):
        assert len(hippo.raw_answers("SELECT * FROM emp").rows) == 6

    def test_cleaned_is_subset_for_monotone(self, hippo):
        text = "SELECT * FROM emp WHERE salary >= 10"
        cleaned = hippo.cleaned_answers(text).as_set()
        consistent = hippo.consistent_answers(text).as_set()
        raw = hippo.raw_answers(text).as_set()
        assert cleaned <= consistent <= raw

    def test_cleaning_can_be_wrong_for_difference(self):
        """Cleaning is not merely incomplete: with difference it returns
        answers that are NOT consistent (the introduction's point that
        removing conflicting data "is not a good option")."""
        db = Database()
        db.execute("CREATE TABLE p (a INTEGER, b INTEGER)")
        db.execute("CREATE TABLE q (a INTEGER, b INTEGER)")
        db.execute("INSERT INTO p VALUES (1, 5)")
        db.execute("INSERT INTO q VALUES (1, 5), (1, 6)")  # q's key 1 disputed
        fd = FunctionalDependency("q", ["a"], ["b"])
        hippo = HippoEngine(db, [fd])
        text = "SELECT * FROM p EXCEPT SELECT * FROM q"
        truth = ground_truth_consistent_answers(
            db, hippo.hypergraph, hippo.parse(text)[0]
        )
        # The repair keeping q(1,5) excludes p(1,5) from the difference.
        assert truth == frozenset()
        assert hippo.consistent_answers(text).as_set() == truth
        # Cleaning deleted both q tuples and wrongly reports p(1,5).
        assert hippo.cleaned_answers(text).as_set() == {(1, 5)}

    def test_cleaning_loses_union_information(self, hippo):
        text = (
            "SELECT name, dept FROM emp WHERE salary = 10"
            " UNION SELECT name, dept FROM emp WHERE salary = 12"
        )
        assert hippo.consistent_answers(text).rows == [("ann", "cs")]
        assert hippo.cleaned_answers(text).rows == []


class TestConstraintVariety:
    def test_exclusion_constraint(self, two_table_db):
        excl = ExclusionConstraint("r", "s", [("a", "a"), ("b", "b")])
        hippo = HippoEngine(two_table_db, [excl])
        answers = hippo.consistent_answers("SELECT * FROM r")
        # r(2,5) and r(4,4) clash with s; r(1,*), r(3,7) survive everywhere.
        assert answers.as_set() == {(1, 1), (1, 2), (3, 7)}

    def test_ternary_constraint(self, two_table_db):
        denial = DenialConstraint(
            "t",
            (
                ConstraintAtom("x", "r"),
                ConstraintAtom("y", "r"),
                ConstraintAtom("z", "s"),
            ),
            parse_expression("x.a = y.a AND x.b < y.b AND z.a = x.a"),
        )
        two_table_db.execute("INSERT INTO s VALUES (1, 0)")
        hippo = HippoEngine(two_table_db, [denial])
        tree, _ = hippo.parse("SELECT * FROM r")
        truth = ground_truth_consistent_answers(
            two_table_db, hippo.hypergraph, tree
        )
        assert hippo.consistent_answers("SELECT * FROM r").as_set() == truth

    def test_multiple_constraints(self, emp_db):
        emp_db.execute("CREATE TABLE retired (name TEXT)")
        emp_db.execute("INSERT INTO retired VALUES ('dave')")
        constraints = [
            FunctionalDependency("emp", ["name"], ["dept", "salary"]),
            ExclusionConstraint("emp", "retired", [("name", "name")]),
        ]
        hippo = HippoEngine(emp_db, constraints)
        answers = hippo.consistent_answers("SELECT * FROM emp")
        # dave now conflicts with his retirement record.
        assert answers.as_set() == {("bob", "ee", 20)}


class TestRefresh:
    def test_refresh_after_data_change(self, hippo):
        before = hippo.consistent_answers("SELECT * FROM emp").as_set()
        hippo.db.execute("INSERT INTO emp VALUES ('bob', 'ee', 99)")
        hippo.refresh()
        after = hippo.consistent_answers("SELECT * FROM emp").as_set()
        assert ("bob", "ee", 20) in before
        assert ("bob", "ee", 20) not in after

    def test_consistent_database_passthrough(self, two_table_db):
        fd = FunctionalDependency("s", ["a"], ["b"])
        hippo = HippoEngine(two_table_db, [fd])
        text = "SELECT * FROM s"
        assert (
            hippo.consistent_answers(text).as_set()
            == hippo.raw_answers(text).as_set()
        )
        stats = hippo.consistent_answers(text).stats
        assert stats["skipped_by_core"] == stats["candidates"]
