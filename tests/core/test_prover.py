"""Tests for HProver: repair existence and consistency checks."""

import pytest

from repro.conflicts import ConflictHypergraph, vertex
from repro.core import formula as fm
from repro.core.facts import fact
from repro.core.membership import CachedMembership
from repro.core.prover import Prover
from repro.engine import Database
from repro.engine.types import SQLType


@pytest.fixture
def setup():
    """r(a) with tuples 1..5; conflicts {1,2}, {2,3}; 4,5 conflict-free."""
    db = Database()
    db.create_table("r", [("a", SQLType.INTEGER)])
    tids = db.insert_rows("r", [(i,) for i in range(1, 6)])
    v = {i: vertex("r", tid) for i, tid in zip(range(1, 6), tids)}
    graph = ConflictHypergraph(
        [frozenset({v[1], v[2]}), frozenset({v[2], v[3]})]
    )
    prover = Prover(graph, CachedMembership(db))
    return db, graph, prover


def f(value):
    return fact("r", (value,))


class TestExistsRepair:
    def test_empty_requirements_always_satisfiable(self, setup):
        _db, _graph, prover = setup
        assert prover.exists_repair([], [])

    def test_require_absent_fact_fails(self, setup):
        _db, _graph, prover = setup
        assert not prover.exists_repair([f(99)], [])

    def test_require_conflicting_pair_fails(self, setup):
        _db, _graph, prover = setup
        assert not prover.exists_repair([f(1), f(2)], [])

    def test_require_independent_pair_succeeds(self, setup):
        _db, _graph, prover = setup
        assert prover.exists_repair([f(1), f(3)], [])

    def test_forbid_conflict_free_tuple_fails(self, setup):
        # 4 is in every repair: no repair avoids it.
        _db, _graph, prover = setup
        assert not prover.exists_repair([], [f(4)])

    def test_forbid_absent_fact_trivially_succeeds(self, setup):
        _db, _graph, prover = setup
        assert prover.exists_repair([], [f(99)])

    def test_forbid_conflicting_tuple_succeeds(self, setup):
        # Excluding 2 works: the repair {1, 3, 4, 5}.
        _db, _graph, prover = setup
        assert prover.exists_repair([], [f(2)])

    def test_forbid_with_blocked_witness(self, setup):
        # Exclude 1: needs edge {1,2} with 2 kept.  Requiring 3 is fine
        # (2 and 3 conflict, but the witness is 2... wait, keeping 2 and 3
        # together violates {2,3}).  So forbidding 1 while requiring 3
        # must fail: the only blocker for 1 is 2, and 2 conflicts with 3.
        _db, _graph, prover = setup
        assert not prover.exists_repair([f(3)], [f(1)])

    def test_forbid_two_tuples_with_shared_blocker(self, setup):
        # Exclude both 1 and 3: blocked by 2 on both sides; {2,4,5} works.
        _db, _graph, prover = setup
        assert prover.exists_repair([], [f(1), f(3)])

    def test_forbid_adjacent_pair_fails(self, setup):
        # Exclude 1 and 2: 1's only blocking edge {1,2} has its remainder
        # {2} inside the forbidden set; 2's blockers {1},{3}: {3} works
        # for 2, but nothing blocks 1.  No such repair.
        _db, _graph, prover = setup
        assert not prover.exists_repair([], [f(1), f(2)])

    def test_required_and_forbidden_same_fact_fails(self, setup):
        _db, _graph, prover = setup
        assert not prover.exists_repair([f(1)], [f(1)])


class TestIsConsistentAnswer:
    def test_conflict_free_atom_consistent(self, setup):
        _db, _graph, prover = setup
        assert prover.is_consistent_answer(fm.AtomF(f(4)))

    def test_conflicting_atom_not_consistent(self, setup):
        _db, _graph, prover = setup
        assert not prover.is_consistent_answer(fm.AtomF(f(1)))

    def test_middle_vertex_not_consistent(self, setup):
        _db, _graph, prover = setup
        assert not prover.is_consistent_answer(fm.AtomF(f(2)))

    def test_disjunction_covering_edge_consistent(self, setup):
        # Every repair contains 1 or 2 (they form an edge; maximality
        # forces one of them in).
        _db, _graph, prover = setup
        phi = fm.disj([fm.AtomF(f(1)), fm.AtomF(f(2))])
        assert prover.is_consistent_answer(phi)

    def test_disjunction_of_nonadjacent_not_consistent(self, setup):
        # Repair {2,4,5} contains neither 1 nor 3.
        _db, _graph, prover = setup
        phi = fm.disj([fm.AtomF(f(1)), fm.AtomF(f(3))])
        assert not prover.is_consistent_answer(phi)

    def test_negated_absent_fact_consistent(self, setup):
        _db, _graph, prover = setup
        assert prover.is_consistent_answer(fm.NotF(fm.AtomF(f(99))))

    def test_negated_present_fact_not_consistent(self, setup):
        # 1 is in some repair, so NOT r(1) fails there.
        _db, _graph, prover = setup
        assert not prover.is_consistent_answer(fm.NotF(fm.AtomF(f(1))))

    def test_true_and_false(self, setup):
        _db, _graph, prover = setup
        assert prover.is_consistent_answer(fm.TRUE)
        assert not prover.is_consistent_answer(fm.FALSE)

    def test_stats_tracked(self, setup):
        _db, _graph, prover = setup
        prover.is_consistent_answer(fm.AtomF(f(4)))
        prover.is_consistent_answer(fm.AtomF(f(1)))
        assert prover.stats.candidates_checked == 2
        assert prover.stats.consistent == 1
        assert prover.stats.repair_searches >= 2


class TestSingletonEdges:
    def test_singleton_edge_tuple_never_consistent(self):
        db = Database()
        db.create_table("r", [("a", SQLType.INTEGER)])
        (tid,) = db.insert_rows("r", [(1,)])
        graph = ConflictHypergraph([frozenset({vertex("r", tid)})])
        prover = Prover(graph, CachedMembership(db))
        assert not prover.is_consistent_answer(fm.AtomF(f(1)))
        # ...and its negation holds in every repair.
        assert prover.is_consistent_answer(fm.NotF(fm.AtomF(f(1))))


class TestDuplicates:
    def test_excluding_fact_excludes_every_copy(self):
        """Forbidding a fact must account for all duplicate tids."""
        db = Database()
        db.create_table("r", [("a", SQLType.INTEGER)])
        t1, t2, t3 = db.insert_rows("r", [(1,), (1,), (2,)])
        # Both copies of value 1 conflict with value 2.
        graph = ConflictHypergraph(
            [
                frozenset({vertex("r", t1), vertex("r", t3)}),
                frozenset({vertex("r", t2), vertex("r", t3)}),
            ]
        )
        prover = Prover(graph, CachedMembership(db))
        # A repair avoiding value 1 entirely exists: keep {2}.
        assert prover.exists_repair([], [f(1)])
        # But a repair avoiding value 1 AND value 2 does not.
        assert not prover.exists_repair([], [f(1), f(2)])
