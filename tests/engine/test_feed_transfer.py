"""Tests for the handoff primitives: resubscription, transfer packets,
and abandoned consumers.

These are the feed-level halves of shard handoff: a topic moves between
consumer groups as a *resubscription pair* (the adopter pins the topic
at the handoff cut before the releaser drops it), and the suffix in
between is protected by a transfer packet whose pseudo-group snapshot
pins the topic for the packet's lifetime.
"""

from __future__ import annotations

import pytest

from repro.engine.database import Database
from repro.engine.feed import TRANSFER_PREFIX, ChangeFeed
from repro.errors import FeedError


def build(directory, statements):
    feed = ChangeFeed(directory)
    db = Database(feed=feed)
    for statement in statements:
        db.execute(statement)
    feed.flush()
    return feed, db

SETUP = [
    "CREATE TABLE a (id INTEGER)",
    "CREATE TABLE b (id INTEGER)",
    "INSERT INTO a VALUES (1), (2)",
    "INSERT INTO b VALUES (1)",
]


class TestUpdateSubscription:
    def test_adding_a_topic_pins_it_at_the_given_position(self, tmp_path):
        feed, db = build(tmp_path / "f", SETUP)
        reader = ChangeFeed(tmp_path / "f")
        consumer = reader.consumer("g", topics=("a", "_schema"))
        list(consumer.poll())
        consumer.commit()
        merged = consumer.resubscribe(("a", "b", "_schema"), {"b": 1})
        assert merged["b"] == 1
        point = reader.recovery_points()["g"]
        assert point.topics is not None and "b" in point.topics
        assert point.committed["b"] == 1
        reader.close()
        feed.close()

    def test_dropping_a_topic_releases_its_registration(self, tmp_path):
        feed, db = build(tmp_path / "f", SETUP)
        reader = ChangeFeed(tmp_path / "f")
        consumer = reader.consumer("g", topics=("a", "b", "_schema"))
        list(consumer.poll())
        consumer.commit()
        merged = consumer.resubscribe(("a", "_schema"))
        assert "b" not in merged
        point = reader.recovery_points()["g"]
        assert point.topics is not None and "b" not in point.topics
        assert "b" not in point.committed
        reader.close()
        feed.close()

    def test_existing_committed_wins_over_fresh_position(self, tmp_path):
        # Re-applying a resubscription must be idempotent: the group's
        # own committed offset is never rewound by the fresh position.
        feed, db = build(tmp_path / "f", SETUP)
        reader = ChangeFeed(tmp_path / "f")
        consumer = reader.consumer("g", topics=("a", "b", "_schema"))
        list(consumer.poll())
        consumer.commit()
        before = dict(consumer.committed)
        merged = consumer.resubscribe(("a", "b", "_schema"), {"a": 0})
        assert merged["a"] == before["a"]
        reader.close()
        feed.close()

    def test_ephemeral_groups_cannot_resubscribe(self):
        db = Database()
        consumer = db.changes.feed.consumer()
        with pytest.raises(FeedError):
            consumer.resubscribe(("a",))

    def test_survives_a_fresh_feed_instance(self, tmp_path):
        # The durable half: a foreign process's retention scan sees the
        # updated registration.
        feed, db = build(tmp_path / "f", SETUP)
        reader = ChangeFeed(tmp_path / "f")
        consumer = reader.consumer("g", topics=("a", "_schema"))
        list(consumer.poll())
        consumer.commit()
        consumer.resubscribe(("a", "b", "_schema"), {"b": 1})
        reader.close()
        fresh = ChangeFeed(tmp_path / "f")
        point = fresh.recovery_points()["g"]
        assert point.topics == frozenset({"a", "b", "_schema"})
        fresh.close()
        feed.close()


class TestTransferPackets:
    def test_roundtrip_and_clear(self, tmp_path):
        feed, db = build(tmp_path / "f", SETUP)
        feed.store_transfer("a", 2, {"rows": [1, 2]})
        assert feed.transfers() == {"a": 2}
        cut, payload = feed.load_transfer("a")
        assert cut == 2 and payload == {"rows": [1, 2]}
        feed.clear_transfer("a")
        assert feed.transfers() == {}
        assert feed.load_transfer("a") is None
        feed.close()

    def test_packet_pins_only_its_topic(self, tmp_path):
        feed, db = build(tmp_path / "f", SETUP)
        feed.store_transfer("a", 2, {})
        point = feed.recovery_points()[f"{TRANSFER_PREFIX}a"]
        assert point.topics == frozenset({"a"})
        assert point.floor == {"a": 2}
        feed.close()

    def test_packet_survives_a_fresh_feed_instance(self, tmp_path):
        feed, db = build(tmp_path / "f", SETUP)
        feed.store_transfer("a", 2, {"x": 1})
        feed.close()
        fresh = ChangeFeed(tmp_path / "f")
        assert fresh.transfers() == {"a": 2}
        assert fresh.load_transfer("a") == (2, {"x": 1})
        fresh.close()

    def test_in_memory_packets(self):
        db = Database()
        feed = db.changes.feed
        feed.store_transfer("a", 3, {"x": 1})
        assert feed.transfers() == {"a": 3}
        assert feed.load_transfer("a") == (3, {"x": 1})
        feed.clear_transfer("a")
        assert feed.load_transfer("a") is None


class TestAbandonedConsumers:
    def test_abandon_keeps_the_registration(self, tmp_path):
        # abandon() simulates a crash: the consumer object is dead, but
        # the durable registration -- and so the retention floor and
        # the lag accounting -- survives.
        feed, db = build(tmp_path / "f", SETUP)
        reader = ChangeFeed(tmp_path / "f")
        consumer = reader.consumer("g", topics=("a", "_schema"))
        list(consumer.poll())
        consumer.commit()
        consumer.abandon()
        assert consumer.closed
        assert "g" in reader.recovery_points()
        db.execute("INSERT INTO a VALUES (9)")
        feed.flush()
        fresh = ChangeFeed(tmp_path / "f")
        point = fresh.recovery_points()["g"]
        fresh.close()
        lag = sum(
            max(end - point.committed.get(name, 0), 0)
            for name, end in feed.end_offsets().items()
            if point.topics is None or name in point.topics
        )
        assert lag == 1  # the crashed group shows as lagging, not gone
        reader.close()
        feed.close()
