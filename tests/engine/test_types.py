"""Unit tests for the SQL value model and three-valued logic."""

import pytest

from repro.engine.types import (
    SQLType,
    coerce_value,
    compare_values,
    format_value,
    infer_type,
    is_true,
    literal_sql,
    logic_and,
    logic_not,
    logic_or,
    python_type_of,
    sort_key,
    type_from_name,
    values_equal,
)
from repro.errors import TypeError_


class TestTypeNames:
    def test_synonyms_resolve(self):
        assert type_from_name("int") is SQLType.INTEGER
        assert type_from_name("VARCHAR") is SQLType.TEXT
        assert type_from_name("double") is SQLType.REAL
        assert type_from_name("Bool") is SQLType.BOOLEAN

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError_):
            type_from_name("blob")

    def test_python_types(self):
        assert python_type_of(SQLType.INTEGER) is int
        assert python_type_of(SQLType.TEXT) is str


class TestInferType:
    def test_null_has_no_type(self):
        assert infer_type(None) is None

    def test_bool_before_int(self):
        # bool is an int subclass; it must classify as BOOLEAN.
        assert infer_type(True) is SQLType.BOOLEAN
        assert infer_type(1) is SQLType.INTEGER

    def test_unknown_value_raises(self):
        with pytest.raises(TypeError_):
            infer_type([1, 2])


class TestCoercion:
    def test_null_always_accepted(self):
        assert coerce_value(None, SQLType.INTEGER) is None

    def test_int_widens_to_real(self):
        assert coerce_value(3, SQLType.REAL) == 3.0
        assert isinstance(coerce_value(3, SQLType.REAL), float)

    def test_integral_real_narrows(self):
        assert coerce_value(3.0, SQLType.INTEGER) == 3

    def test_fractional_real_rejected_for_integer(self):
        with pytest.raises(TypeError_):
            coerce_value(3.5, SQLType.INTEGER)

    def test_text_rejected_for_integer(self):
        with pytest.raises(TypeError_):
            coerce_value("3", SQLType.INTEGER)

    def test_bool_not_coerced_to_int(self):
        with pytest.raises(TypeError_):
            coerce_value(True, SQLType.INTEGER)


class TestComparison:
    def test_null_comparisons_unknown(self):
        assert compare_values(None, 1) is None
        assert compare_values("x", None) is None
        assert values_equal(None, None) is None

    def test_numeric_cross_type(self):
        assert compare_values(1, 1.0) == 0
        assert compare_values(1, 1.5) == -1

    def test_text_ordering(self):
        assert compare_values("abc", "abd") == -1
        assert compare_values("b", "b") == 0

    def test_incomparable_types_raise(self):
        with pytest.raises(TypeError_):
            compare_values(1, "1")
        with pytest.raises(TypeError_):
            compare_values(True, 1)


class TestThreeValuedLogic:
    def test_and_truth_table(self):
        assert logic_and(True, True) is True
        assert logic_and(True, False) is False
        assert logic_and(False, None) is False  # false dominates unknown
        assert logic_and(True, None) is None
        assert logic_and(None, None) is None

    def test_or_truth_table(self):
        assert logic_or(False, False) is False
        assert logic_or(True, None) is True  # true dominates unknown
        assert logic_or(False, None) is None
        assert logic_or(None, None) is None

    def test_not(self):
        assert logic_not(True) is False
        assert logic_not(False) is True
        assert logic_not(None) is None

    def test_is_true_selects_only_true(self):
        assert is_true(True)
        assert not is_true(None)
        assert not is_true(False)


class TestRendering:
    def test_sort_key_total_order(self):
        values = ["b", None, 2, True, 1.5, "a", False]
        ordered = sorted(values, key=sort_key)
        assert ordered[0] is None  # NULLs first
        assert ordered[1:3] == [False, True]
        assert ordered[3:5] == [1.5, 2]
        assert ordered[5:] == ["a", "b"]

    def test_format_value(self):
        assert format_value(None) == "NULL"
        assert format_value(True) == "TRUE"
        assert format_value("hi") == "hi"
        assert format_value(3) == "3"

    def test_literal_sql_escapes_quotes(self):
        assert literal_sql("o'brien") == "'o''brien'"
        assert literal_sql(None) == "NULL"
        assert literal_sql(False) == "FALSE"
