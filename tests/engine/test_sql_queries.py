"""End-to-end SQL query tests against the engine (planner + executor)."""

import pytest

from repro.engine import Database
from repro.errors import PlanError


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE emp (name TEXT, dept TEXT, salary INTEGER)")
    database.execute(
        "INSERT INTO emp VALUES"
        " ('ann','cs',10), ('bob','ee',20), ('carol','cs',15),"
        " ('dave','ee',18), ('erin','cs',11)"
    )
    database.execute("CREATE TABLE dept (name TEXT, budget INTEGER)")
    database.execute("INSERT INTO dept VALUES ('cs', 100), ('ee', 200), ('me', 50)")
    return database


class TestSelection:
    def test_where(self, db):
        rows = db.query("SELECT name FROM emp WHERE salary > 14").rows
        assert sorted(rows) == [("bob",), ("carol",), ("dave",)]

    def test_select_expression(self, db):
        rows = db.query("SELECT name, salary * 2 FROM emp WHERE name = 'ann'").rows
        assert rows == [("ann", 20)]

    def test_column_aliases_in_output(self, db):
        result = db.query("SELECT name AS who, salary pay FROM emp WHERE salary = 10")
        assert result.columns == ["who", "pay"]

    def test_select_without_from(self, db):
        assert db.query("SELECT 1 + 1, 'x'").rows == [(2, "x")]

    def test_distinct(self, db):
        rows = db.query("SELECT DISTINCT dept FROM emp").rows
        assert sorted(rows) == [("cs",), ("ee",)]

    def test_star(self, db):
        assert len(db.query("SELECT * FROM emp").rows[0]) == 3

    def test_qualified_star(self, db):
        rows = db.query(
            "SELECT d.* FROM emp e, dept d WHERE e.dept = d.name AND e.name = 'bob'"
        ).rows
        assert rows == [("ee", 200)]


class TestJoins:
    def test_implicit_join(self, db):
        rows = db.query(
            "SELECT e.name, d.budget FROM emp e, dept d WHERE e.dept = d.name"
            " AND e.salary > 15"
        ).rows
        assert sorted(rows) == [("bob", 200), ("dave", 200)]

    def test_explicit_join(self, db):
        rows = db.query(
            "SELECT e.name FROM emp e JOIN dept d ON e.dept = d.name"
            " WHERE d.budget > 150"
        ).rows
        assert sorted(rows) == [("bob",), ("dave",)]

    def test_left_join_pads_nulls(self, db):
        rows = db.query(
            "SELECT d.name, e.name FROM dept d LEFT JOIN emp e ON e.dept = d.name"
            " WHERE d.name = 'me'"
        ).rows
        assert rows == [("me", None)]

    def test_cross_join_count(self, db):
        rows = db.query("SELECT * FROM emp CROSS JOIN dept").rows
        assert len(rows) == 15

    def test_self_join(self, db):
        rows = db.query(
            "SELECT a.name, b.name FROM emp a, emp b"
            " WHERE a.dept = b.dept AND a.name < b.name"
        ).rows
        assert ("ann", "carol") in rows and ("bob", "dave") in rows

    def test_hash_join_used_for_equi_join(self, db):
        plan_text = db.explain(
            "SELECT * FROM emp e, dept d WHERE e.dept = d.name"
        )
        assert "HashJoin" in plan_text

    def test_non_equi_join_uses_nested_loop(self, db):
        plan_text = db.explain(
            "SELECT * FROM emp e, dept d WHERE e.salary < d.budget"
        )
        assert "NestedLoopJoin" in plan_text

    def test_three_way_join(self, db):
        db.execute("CREATE TABLE loc (dept TEXT, city TEXT)")
        db.execute("INSERT INTO loc VALUES ('cs','buffalo'), ('ee','cracow')")
        rows = db.query(
            "SELECT e.name, l.city FROM emp e, dept d, loc l"
            " WHERE e.dept = d.name AND d.name = l.dept AND e.salary >= 18"
        ).rows
        assert sorted(rows) == [("bob", "cracow"), ("dave", "cracow")]


class TestSetOperations:
    def test_union_removes_duplicates(self, db):
        rows = db.query(
            "SELECT dept FROM emp UNION SELECT name FROM dept"
        ).rows
        assert sorted(rows) == [("cs",), ("ee",), ("me",)]

    def test_union_all_keeps_duplicates(self, db):
        rows = db.query(
            "SELECT dept FROM emp WHERE dept='cs' UNION ALL SELECT 'cs'"
        ).rows
        assert rows == [("cs",)] * 4

    def test_except(self, db):
        rows = db.query("SELECT name FROM dept EXCEPT SELECT dept FROM emp").rows
        assert rows == [("me",)]

    def test_intersect(self, db):
        rows = db.query("SELECT name FROM dept INTERSECT SELECT dept FROM emp").rows
        assert sorted(rows) == [("cs",), ("ee",)]

    def test_arity_mismatch_rejected(self, db):
        with pytest.raises(PlanError):
            db.query("SELECT name, dept FROM emp UNION SELECT name FROM dept")


class TestOrderLimit:
    def test_order_by_column(self, db):
        rows = db.query("SELECT name, salary FROM emp ORDER BY salary DESC").rows
        assert rows[0] == ("bob", 20) and rows[-1] == ("ann", 10)

    def test_order_by_position(self, db):
        rows = db.query("SELECT name, salary FROM emp ORDER BY 2").rows
        assert rows[0] == ("ann", 10)

    def test_order_by_position_out_of_range(self, db):
        with pytest.raises(PlanError):
            db.query("SELECT name FROM emp ORDER BY 3")

    def test_limit_offset(self, db):
        rows = db.query("SELECT name FROM emp ORDER BY name LIMIT 2 OFFSET 1").rows
        assert rows == [("bob",), ("carol",)]

    def test_order_by_alias(self, db):
        rows = db.query("SELECT salary AS pay FROM emp ORDER BY pay LIMIT 1").rows
        assert rows == [(10,)]


class TestDerivedTables:
    def test_derived_table(self, db):
        rows = db.query(
            "SELECT d.who FROM (SELECT name AS who, salary FROM emp"
            " WHERE salary > 14) AS d WHERE d.salary < 20"
        ).rows
        assert sorted(rows) == [("carol",), ("dave",)]

    def test_derived_table_join(self, db):
        rows = db.query(
            "SELECT e.name, t.budget FROM emp e,"
            " (SELECT name, budget FROM dept WHERE budget >= 100) AS t"
            " WHERE e.dept = t.name AND e.salary = 20"
        ).rows
        assert rows == [("bob", 200)]


class TestErrors:
    def test_unknown_column(self, db):
        with pytest.raises(PlanError):
            db.query("SELECT missing FROM emp")

    def test_ambiguous_column(self, db):
        with pytest.raises(PlanError, match="ambiguous"):
            db.query("SELECT name FROM emp, dept")

    def test_unknown_alias_star(self, db):
        with pytest.raises(PlanError):
            db.query("SELECT zz.* FROM emp")
