"""Engine corner cases exercised end-to-end through SQL."""

import pytest

from repro.engine import Database
from repro.errors import ExecutionError, TypeError_


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE t (a INTEGER, name TEXT, score REAL, active BOOLEAN)"
    )
    database.execute(
        "INSERT INTO t VALUES"
        " (1, 'ann', 1.5, TRUE),"
        " (2, 'bob', NULL, FALSE),"
        " (3, NULL, 2.5, NULL),"
        " (4, 'o''brien', 0.5, TRUE)"
    )
    return database


class TestNullHandling:
    def test_where_null_filters_row(self, db):
        rows = db.query("SELECT a FROM t WHERE score > 1").rows
        assert sorted(rows) == [(1,), (3,)]  # NULL score row filtered

    def test_is_null(self, db):
        assert db.query("SELECT a FROM t WHERE name IS NULL").rows == [(3,)]
        assert len(db.query("SELECT a FROM t WHERE name IS NOT NULL").rows) == 3

    def test_null_ordering_first(self, db):
        rows = db.query("SELECT name FROM t ORDER BY name").rows
        assert rows[0] == (None,)

    def test_coalesce_in_projection(self, db):
        rows = db.query("SELECT COALESCE(name, 'unknown') FROM t WHERE a = 3").rows
        assert rows == [("unknown",)]


class TestTextAndCase:
    def test_like_end_to_end(self, db):
        rows = db.query("SELECT a FROM t WHERE name LIKE '%n%'").rows
        assert sorted(rows) == [(1,), (4,)]

    def test_escaped_quote_round_trip(self, db):
        rows = db.query("SELECT a FROM t WHERE name = 'o''brien'").rows
        assert rows == [(4,)]

    def test_case_expression(self, db):
        rows = db.query(
            "SELECT a, CASE WHEN score >= 1.5 THEN 'high' WHEN score IS NULL"
            " THEN 'unknown' ELSE 'low' END FROM t ORDER BY a"
        ).rows
        assert rows == [
            (1, "high"),
            (2, "unknown"),
            (3, "high"),
            (4, "low"),
        ]

    def test_concat_and_functions(self, db):
        rows = db.query(
            "SELECT UPPER(name) || '!' FROM t WHERE a = 1"
        ).rows
        assert rows == [("ANN!",)]


class TestBooleans:
    def test_boolean_column_as_condition(self, db):
        rows = db.query("SELECT a FROM t WHERE active").rows
        assert sorted(rows) == [(1,), (4,)]

    def test_not_boolean_column(self, db):
        assert db.query("SELECT a FROM t WHERE NOT active").rows == [(2,)]
        # NULL active is neither.

    def test_boolean_literals_in_comparison(self, db):
        rows = db.query("SELECT a FROM t WHERE active = FALSE").rows
        assert rows == [(2,)]


class TestTypeErrors:
    def test_text_compared_to_int_raises(self, db):
        with pytest.raises(TypeError_):
            db.query("SELECT * FROM t WHERE name > 1")

    def test_arithmetic_on_text_raises(self, db):
        with pytest.raises(TypeError_):
            db.query("SELECT name + 1 FROM t")

    def test_division_by_zero(self, db):
        with pytest.raises(ExecutionError):
            db.query("SELECT a / 0 FROM t")


class TestNesting:
    def test_nested_derived_tables(self, db):
        rows = db.query(
            "SELECT z.a FROM (SELECT y.a FROM (SELECT a FROM t WHERE a > 1)"
            " AS y WHERE y.a < 4) AS z"
        ).rows
        assert sorted(rows) == [(2,), (3,)]

    def test_set_op_inside_derived_table(self, db):
        rows = db.query(
            "SELECT d.a FROM ((SELECT a FROM t WHERE a <= 2) UNION"
            " (SELECT a FROM t WHERE a >= 3)) AS d ORDER BY d.a"
        ).rows
        assert rows == [(1,), (2,), (3,), (4,)]

    def test_in_list_with_expressions(self, db):
        rows = db.query("SELECT a FROM t WHERE a IN (1 + 1, 8 / 2)").rows
        assert sorted(rows) == [(2,), (4,)]


class TestBagSemantics:
    def test_union_all_vs_union(self, db):
        all_rows = db.query(
            "SELECT active FROM t UNION ALL SELECT active FROM t"
        ).rows
        distinct_rows = db.query(
            "SELECT active FROM t UNION SELECT active FROM t"
        ).rows
        assert len(all_rows) == 8
        assert sorted(distinct_rows, key=repr) == sorted(
            {(True,), (False,), (None,)}, key=repr
        )

    def test_except_all_through_sql(self, db):
        db.execute("CREATE TABLE u (x INTEGER)")
        db.execute("INSERT INTO u VALUES (1), (1), (1), (2)")
        rows = db.query(
            "SELECT x FROM u EXCEPT ALL SELECT 1"
        ).rows
        assert sorted(rows) == [(1,), (1,), (2,)]

    def test_intersect_all_through_sql(self, db):
        db.execute("CREATE TABLE u (x INTEGER)")
        db.execute("INSERT INTO u VALUES (1), (1), (2)")
        rows = db.query(
            "SELECT x FROM u INTERSECT ALL (SELECT 1 UNION ALL SELECT 1)"
        ).rows
        assert rows == [(1,), (1,)]


class TestRealCoercion:
    def test_integer_stored_as_real(self, db):
        db.execute("INSERT INTO t VALUES (5, 'eve', 3, TRUE)")
        rows = db.query("SELECT score FROM t WHERE a = 5").rows
        assert rows == [(3.0,)] and isinstance(rows[0][0], float)

    def test_mixed_numeric_comparison(self, db):
        rows = db.query("SELECT a FROM t WHERE score = 1.5").rows
        assert rows == [(1,)]
