"""Unit tests for the expression compiler / evaluator."""

import pytest

from repro.engine.expressions import ExpressionCompiler, Scope, like_to_regex
from repro.errors import ExecutionError, PlanError, TypeError_
from repro.sql.parser import parse_expression


def evaluate(text, row=(), entries=(), outer=()):
    """Compile ``text`` against ``entries`` and evaluate on ``row``."""
    scope = Scope(list(entries))
    compiler = ExpressionCompiler(scope)
    evaluator = compiler.compile(parse_expression(text))
    return evaluator((tuple(row),) + tuple(outer))


R_AB = [(None, "a"), (None, "b")]


class TestArithmetic:
    def test_basic(self):
        assert evaluate("1 + 2 * 3") == 7
        assert evaluate("-(2 - 5)") == 3

    def test_integer_division_truncates_toward_zero(self):
        assert evaluate("7 / 2") == 3
        assert evaluate("-7 / 2") == -3
        assert evaluate("7.0 / 2") == 3.5

    def test_modulo(self):
        assert evaluate("7 % 3") == 1
        assert evaluate("-7 % 3") == -1

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError):
            evaluate("1 / 0")
        with pytest.raises(ExecutionError):
            evaluate("1 % 0")

    def test_null_propagation(self):
        assert evaluate("1 + NULL") is None
        assert evaluate("-a", row=(None,), entries=[(None, "a")]) is None

    def test_type_errors(self):
        with pytest.raises(TypeError_):
            evaluate("'x' + 1")


class TestComparisonsAndLogic:
    def test_comparisons(self):
        assert evaluate("1 < 2") is True
        assert evaluate("2 <> 2") is False
        assert evaluate("'a' <= 'b'") is True

    def test_null_comparison_unknown(self):
        assert evaluate("NULL = NULL") is None
        assert evaluate("1 > NULL") is None

    def test_three_valued_where_semantics(self):
        # FALSE AND unknown is FALSE; TRUE OR unknown is TRUE.
        assert evaluate("1 = 2 AND NULL = 1") is False
        assert evaluate("1 = 1 OR NULL = 1") is True
        assert evaluate("1 = 1 AND NULL = 1") is None

    def test_not(self):
        assert evaluate("NOT 1 = 2") is True
        assert evaluate("NOT NULL = 1") is None

    def test_boolean_type_enforced(self):
        with pytest.raises(TypeError_):
            evaluate("1 AND 2")


class TestPredicates:
    def test_in_list(self):
        assert evaluate("2 IN (1, 2, 3)") is True
        assert evaluate("5 NOT IN (1, 2)") is True

    def test_in_list_null_semantics(self):
        assert evaluate("NULL IN (1)") is None
        assert evaluate("2 IN (1, NULL)") is None  # not found, NULL present
        assert evaluate("1 IN (1, NULL)") is True
        assert evaluate("2 NOT IN (1, NULL)") is None

    def test_between(self):
        assert evaluate("2 BETWEEN 1 AND 3") is True
        assert evaluate("0 NOT BETWEEN 1 AND 3") is True
        assert evaluate("NULL BETWEEN 1 AND 3") is None

    def test_is_null(self):
        assert evaluate("NULL IS NULL") is True
        assert evaluate("1 IS NOT NULL") is True

    def test_like(self):
        assert evaluate("'hello' LIKE 'h%'") is True
        assert evaluate("'hello' LIKE 'h_llo'") is True
        assert evaluate("'hello' NOT LIKE '%z%'") is True
        assert evaluate("NULL LIKE 'x'") is None

    def test_like_escapes_regex_chars(self):
        assert evaluate("'a.c' LIKE 'a.c'") is True
        assert evaluate("'abc' LIKE 'a.c'") is False

    def test_like_to_regex(self):
        assert like_to_regex("a%b_").match("aXYbZ")
        assert not like_to_regex("a%").match("ba")


class TestCase:
    def test_searched(self):
        assert evaluate("CASE WHEN 1 = 2 THEN 'x' WHEN 1 = 1 THEN 'y' END") == "y"
        assert evaluate("CASE WHEN 1 = 2 THEN 'x' END") is None

    def test_simple(self):
        text = "CASE a WHEN 1 THEN 'one' WHEN 2 THEN 'two' ELSE 'many' END"
        assert evaluate(text, row=(2, 0), entries=R_AB) == "two"
        assert evaluate(text, row=(9, 0), entries=R_AB) == "many"


class TestFunctions:
    def test_scalar_functions(self):
        assert evaluate("ABS(-3)") == 3
        assert evaluate("LOWER('AbC')") == "abc"
        assert evaluate("UPPER('x')") == "X"
        assert evaluate("LENGTH('abcd')") == 4
        assert evaluate("SUBSTR('hello', 2, 3)") == "ell"
        assert evaluate("ROUND(3.456, 1)") == 3.5

    def test_null_propagation(self):
        assert evaluate("ABS(NULL)") is None

    def test_coalesce_and_nullif(self):
        assert evaluate("COALESCE(NULL, NULL, 3)") == 3
        assert evaluate("COALESCE(NULL)") is None
        assert evaluate("NULLIF(1, 1)") is None
        assert evaluate("NULLIF(1, 2)") == 1
        assert evaluate("IFNULL(NULL, 9)") == 9

    def test_unknown_function(self):
        with pytest.raises(ExecutionError):
            evaluate("FROBNICATE(1)")

    def test_aggregate_outside_grouping_rejected(self):
        with pytest.raises(PlanError):
            evaluate("SUM(a)", row=(1,), entries=[(None, "a")])

    def test_concat(self):
        assert evaluate("'a' || 'b'") == "ab"
        assert evaluate("'a' || NULL") is None
        with pytest.raises(TypeError_):
            evaluate("'a' || 1")


class TestScopeResolution:
    def test_column_lookup(self):
        assert evaluate("a + b", row=(2, 3), entries=R_AB) == 5

    def test_qualified_lookup(self):
        entries = [("r", "a"), ("s", "a")]
        assert evaluate("r.a - s.a", row=(5, 2), entries=entries) == 3

    def test_ambiguous_unqualified(self):
        entries = [("r", "a"), ("s", "a")]
        with pytest.raises(PlanError, match="ambiguous"):
            evaluate("a", row=(1, 2), entries=entries)

    def test_unknown_column(self):
        with pytest.raises(PlanError, match="unknown column"):
            evaluate("zzz", row=(), entries=R_AB)

    def test_outer_scope_reference(self):
        outer_scope = Scope([(None, "x")], None, 0)
        inner_scope = Scope([(None, "a")], outer_scope, 1)
        compiler = ExpressionCompiler(inner_scope)
        evaluator = compiler.compile(parse_expression("a + x"))
        assert evaluator(((1,), (10,))) == 11
        assert compiler.outer_captures == {(1, 0)}

    def test_capture_hook_invoked(self):
        captured = []
        outer_scope = Scope([(None, "x")], None, 0)
        inner_scope = Scope([(None, "a")], outer_scope, 1)
        compiler = ExpressionCompiler(
            inner_scope, capture_hook=lambda d, i: captured.append((d, i))
        )
        compiler.compile(parse_expression("x"))
        assert captured == [(1, 0)]
