"""Tests for secondary indexes and index-scan planning."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import Database
from repro.errors import CatalogError, ExecutionError


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (a INTEGER, b INTEGER, c TEXT)")
    database.execute(
        "INSERT INTO t VALUES (1, 10, 'x'), (1, 20, 'y'), (2, 10, 'z'),"
        " (3, 30, 'x'), (NULL, 10, 'w')"
    )
    return database


class TestStorageIndexes:
    def test_create_and_lookup(self, db):
        table = db.table("t")
        table.create_index([0])
        assert table.has_index([0])
        assert len(table.index_lookup([0], [1])) == 2
        assert table.index_lookup([0], [9]) == frozenset()

    def test_index_tracks_insert_delete_update(self, db):
        table = db.table("t")
        table.create_index([1])
        tid = table.insert((7, 99, "new"))
        assert tid in table.index_lookup([1], [99])
        table.update(tid, (7, 77, "new"))
        assert table.index_lookup([1], [99]) == frozenset()
        assert tid in table.index_lookup([1], [77])
        table.delete(tid)
        assert table.index_lookup([1], [77]) == frozenset()

    def test_multi_column_index(self, db):
        table = db.table("t")
        table.create_index([0, 1])
        assert len(table.index_lookup([0, 1], [1, 10])) == 1

    def test_missing_index_lookup_raises(self, db):
        with pytest.raises(ExecutionError):
            db.table("t").index_lookup([2], ["x"])

    def test_bad_positions_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.table("t").create_index([9])
        with pytest.raises(ExecutionError):
            db.table("t").create_index([])

    def test_null_keys_indexed(self, db):
        table = db.table("t")
        table.create_index([0])
        assert len(table.index_lookup([0], [None])) == 1


class TestCreateIndexSQL:
    def test_create_and_registry(self, db):
        db.execute("CREATE INDEX idx_a ON t (a)")
        assert db.indexes() == {"idx_a": ("t", ("a",))}
        assert db.table("t").has_index([0])

    def test_duplicate_name_rejected(self, db):
        db.execute("CREATE INDEX idx_a ON t (a)")
        with pytest.raises(CatalogError):
            db.execute("CREATE INDEX idx_a ON t (b)")
        db.execute("CREATE INDEX IF NOT EXISTS idx_a ON t (b)")  # no error

    def test_unknown_column_rejected(self, db):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            db.execute("CREATE INDEX idx ON t (zz)")

    def test_drop_table_clears_registry(self, db):
        db.execute("CREATE INDEX idx_a ON t (a)")
        db.execute("DROP TABLE t")
        assert db.indexes() == {}

    def test_formatter_round_trip(self):
        from repro.sql.formatter import format_statement
        from repro.sql.parser import parse_statement

        text = "CREATE INDEX idx_a ON t (a, b)"
        statement = parse_statement(text)
        assert parse_statement(format_statement(statement)) == statement


class TestIndexScanPlanning:
    def test_plan_uses_index(self, db):
        db.execute("CREATE INDEX idx_a ON t (a)")
        plan_text = db.explain("SELECT * FROM t WHERE a = 1")
        assert "IndexScan" in plan_text

    def test_plan_without_index_scans(self, db):
        plan_text = db.explain("SELECT * FROM t WHERE a = 1")
        assert "IndexScan" not in plan_text

    def test_results_identical_with_index(self, db):
        query = "SELECT * FROM t WHERE a = 1 AND b > 5"
        before = db.query(query).as_set()
        db.execute("CREATE INDEX idx_a ON t (a)")
        assert db.query(query).as_set() == before
        assert "IndexScan" in db.explain(query)

    def test_index_scan_touches_fewer_rows(self, db):
        db.execute("CREATE INDEX idx_a ON t (a)")
        db.stats.reset()
        db.query("SELECT * FROM t WHERE a = 2")
        assert db.stats.rows_scanned == 1  # not 5

    def test_multi_column_index_preferred(self, db):
        db.execute("CREATE INDEX idx_a ON t (a)")
        db.execute("CREATE INDEX idx_ab ON t (a, b)")
        plan_text = db.explain("SELECT * FROM t WHERE a = 1 AND b = 20")
        assert "IndexScan(t on [a, b])" in plan_text

    def test_residual_predicate_still_applied(self, db):
        db.execute("CREATE INDEX idx_a ON t (a)")
        rows = db.query("SELECT b FROM t WHERE a = 1 AND c = 'y'").rows
        assert rows == [(20,)]

    def test_null_equality_returns_nothing(self, db):
        db.execute("CREATE INDEX idx_a ON t (a)")
        assert db.query("SELECT * FROM t WHERE a = NULL").rows == []

    def test_index_used_in_join_branch(self, db):
        db.execute("CREATE TABLE u (a INTEGER)")
        db.execute("INSERT INTO u VALUES (1), (2)")
        db.execute("CREATE INDEX idx_a ON t (a)")
        rows = db.query(
            "SELECT t.b FROM t, u WHERE t.a = 1 AND t.a = u.a"
        ).rows
        assert sorted(rows) == [(10,), (20,)]

    def test_dml_unaffected_by_index_path(self, db):
        db.execute("CREATE INDEX idx_a ON t (a)")
        assert db.execute("DELETE FROM t WHERE a = 1").rowcount == 2
        assert db.query("SELECT COUNT(*) FROM t").scalar() == 3


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=12),
    st.integers(0, 3),
)
def test_index_scan_equivalence_property(rows, needle):
    """Index scans never change query results."""
    plain = Database()
    plain.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
    plain.insert_rows("t", rows)
    indexed = Database()
    indexed.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
    indexed.insert_rows("t", rows)
    indexed.execute("CREATE INDEX idx ON t (a)")
    query = f"SELECT * FROM t WHERE a = {needle} AND b <> {needle}"
    assert sorted(plain.query(query).rows) == sorted(indexed.query(query).rows)
