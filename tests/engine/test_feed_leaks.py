"""Regression tests for resource leaks found by hippolint HL013.

Each scenario here pins a fix for a real exception-path leak: a handle
acquired, then orphaned when a later step raised.  The fakes fail at
exactly the step that used to strand the resource and the tests assert
the resource is released anyway.
"""

from types import SimpleNamespace

import pytest

from repro.conflicts import ReplicaHypergraph
from repro.core.hippo import HippoEngine
from repro.engine.database import Database
from repro.engine.feed import ChangeFeed, FeedConsumer


class FakeWriter:
    """A duck-typed segment writer that fails at a chosen step."""

    def __init__(self, fail: str = "flush") -> None:
        self.fail = fail
        self.closed = False

    def flush(self) -> None:
        if self.fail == "flush":
            raise OSError("disk full")

    def fileno(self) -> int:
        # -1 makes the subsequent os.fsync raise EBADF.
        return -1 if self.fail == "fsync" else 0

    def close(self) -> None:
        self.closed = True


# --------------------------------------------------- feed writer handles


def test_close_still_closes_writer_when_flush_fails():
    feed = ChangeFeed()
    writer = FakeWriter(fail="flush")
    feed._writers["changes"] = writer
    with pytest.raises(OSError):
        feed.close()
    assert writer.closed
    assert feed._writers == {}


def test_close_still_closes_writer_when_fsync_fails():
    feed = ChangeFeed()
    writer = FakeWriter(fail="fsync")
    feed._writers["changes"] = writer
    with pytest.raises((OSError, ValueError)):
        feed.close()
    assert writer.closed


def test_rotate_still_closes_popped_writer_when_flush_fails():
    # _rotate pops the writer first; a failed flush/fsync used to
    # strand the popped handle with nothing referencing it.
    feed = ChangeFeed()
    writer = FakeWriter(fail="flush")
    feed._writers["changes"] = writer
    with pytest.raises(OSError):
        feed._rotate(SimpleNamespace(name="changes"))
    assert writer.closed
    assert "changes" not in feed._writers
    assert "changes" not in feed._active_counts


# ----------------------------------------------- consumer registrations


def test_failed_replica_bootstrap_releases_the_group(monkeypatch):
    feed = ChangeFeed()

    def explode(self):
        raise RuntimeError("bootstrap failed")

    monkeypatch.setattr(ReplicaHypergraph, "_bootstrap", explode)
    with pytest.raises(RuntimeError):
        ReplicaHypergraph(feed, [], group="replica")
    # The half-built replica must not pin feed retention via a
    # registered-but-dead consumer group.
    assert "replica" not in feed.groups()


def test_failed_engine_detection_releases_the_consumer(monkeypatch):
    db = Database()
    feed = db.changes.feed
    before = set(feed.groups())

    def explode(self):
        raise RuntimeError("seek failed")

    monkeypatch.setattr(FeedConsumer, "seek_to_end", explode)
    with pytest.raises(RuntimeError):
        HippoEngine(db, [])
    assert set(feed.groups()) == before


def test_replica_bootstrap_success_keeps_the_group():
    feed = ChangeFeed()
    replica = ReplicaHypergraph(feed, [], group="replica")
    assert "replica" in feed.groups()
    replica.close()
    assert "replica" not in feed.groups()
