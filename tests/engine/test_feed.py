"""Unit tests for the partitioned change feed.

The feed is the durability layer under incremental conflict detection
(see ``tests/conflicts/test_replica.py`` for the consumer side); here we
pin its mechanics: per-topic offsets, global sequence order, consumer
groups with committed offsets, retention/overflow, segment rotation, the
manifest, crash-safe replay of a torn segment tail, bounded-memory lazy
opens, cross-process live tailing, and durable retention truncation.
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.database import WRITER_GROUP, Database
from repro.engine.feed import (
    MANIFEST,
    SCHEMA_TOPIC,
    ChangeFeed,
    FeedRecord,
)
from repro.errors import FeedError, FeedRetentionError


def publish(feed: ChangeFeed, relation: str, tid: int, value: int, op: str = "insert"):
    feed.publish_change(relation, tid, (value,), op)


class TestPartitioning:
    def test_offsets_are_per_topic_and_seq_is_global(self):
        feed = ChangeFeed()
        consumer = feed.consumer("g")
        publish(feed, "r", 0, 10)
        publish(feed, "s", 0, 20)
        publish(feed, "r", 1, 11)
        records, lost = consumer.poll()
        assert not lost
        assert [(r.topic, r.offset, r.seq) for r in records] == [
            ("r", 0, 0),
            ("s", 0, 1),
            ("r", 1, 2),
        ]

    def test_nothing_buffered_without_consumers(self):
        feed = ChangeFeed()
        publish(feed, "r", 0, 1)
        assert feed.next_seq == 0 and feed.topics() == []

    def test_schema_records_ride_their_own_topic(self):
        feed = ChangeFeed()
        consumer = feed.consumer("g")
        feed.publish_schema("create_table", "r", {"name": "r", "columns": []})
        publish(feed, "r", 0, 1)
        records, _ = consumer.poll()
        assert [r.topic for r in records] == [SCHEMA_TOPIC, "r"]
        assert feed.schema_version == 1

    def test_suspended_publishing_drops_everything(self):
        feed = ChangeFeed()
        feed.consumer("g")
        with feed.suspended():
            publish(feed, "r", 0, 1)
            feed.publish_schema("drop_table", "r")
        assert feed.next_seq == 0 and feed.schema_version == 0


class TestConsumerGroups:
    def test_poll_without_commit_redelivers_on_reattach(self):
        feed = ChangeFeed()
        consumer = feed.consumer("g")
        publish(feed, "r", 0, 1)
        records, _ = consumer.poll()
        assert len(records) == 1
        # A new consumer of the same group starts at the *committed*
        # offsets -- the uncommitted poll is redelivered.
        again = feed.consumer("g")
        redelivered, _ = again.poll()
        assert [r.seq for r in redelivered] == [r.seq for r in records]

    def test_commit_advances_the_group(self):
        feed = ChangeFeed()
        consumer = feed.consumer("g")
        publish(feed, "r", 0, 1)
        consumer.poll()
        consumer.commit()
        assert consumer.committed == {"r": 1}
        assert feed.consumer("g").poll() == ([], False)

    def test_groups_are_independent(self):
        feed = ChangeFeed()
        fast, slow = feed.consumer("fast"), feed.consumer("slow")
        publish(feed, "r", 0, 1)
        fast.poll()
        fast.commit()
        records, _ = slow.poll()
        assert len(records) == 1

    def test_poll_limit_stops_at_an_intermediate_cut(self):
        feed = ChangeFeed()
        consumer = feed.consumer("g")
        for tid in range(5):
            publish(feed, "r", tid, tid)
        first, _ = consumer.poll(limit=2)
        rest, _ = consumer.poll()
        assert [r.tid for r in first] == [0, 1]
        assert [r.tid for r in rest] == [2, 3, 4]

    def test_lag_counts_from_committed(self):
        feed = ChangeFeed()
        consumer = feed.consumer("g")
        for tid in range(3):
            publish(feed, "r", tid, tid)
        consumer.poll(limit=1)
        assert consumer.pending == 2  # past the read position
        assert consumer.lag == 3  # past the committed position
        consumer.commit()
        assert consumer.lag == 2


class TestRetention:
    def test_compaction_waits_for_the_slowest_group(self):
        feed = ChangeFeed()
        fast, slow = feed.consumer("fast"), feed.consumer("slow")
        publish(feed, "r", 0, 1)
        fast.poll()
        fast.commit()
        (topic,) = feed.topics()
        assert topic.start == 0  # retained for the slow group
        slow.poll()
        slow.commit()
        (topic,) = feed.topics()
        assert topic.start == 1

    def test_overflow_marks_lagging_groups_lost(self):
        feed = ChangeFeed(max_retained=2)
        consumer = feed.consumer("g")
        for tid in range(4):
            publish(feed, "r", tid, tid)
        assert consumer.lost
        records, lost = consumer.poll()
        assert lost and records == []
        assert not consumer.lost  # repositioned at the end
        publish(feed, "r", 9, 9)
        records, lost = consumer.poll()
        assert not lost and [r.tid for r in records] == [9]

    def test_records_upto_raises_past_retention(self):
        feed = ChangeFeed(max_retained=2)
        feed.consumer("g")
        for tid in range(4):
            publish(feed, "r", tid, tid)
        with pytest.raises(FeedError, match="no longer retained"):
            feed.records_upto({"r": 3})

    def test_subscribed_groups_compact_their_own_topics_only(self):
        feed = ChangeFeed()
        subscribed = feed.consumer("r-only", topics=["r"])
        everything = feed.consumer("all")
        publish(feed, "r", 0, 1)
        publish(feed, "s", 0, 2)
        assert subscribed.lag == 1  # s is invisible to the subscription
        records, lost = subscribed.poll()
        assert not lost and [r.topic for r in records] == ["r"]
        subscribed.commit()
        # r is held for the subscribe-all group; s is untouched.
        assert {t.name: t.start for t in feed.topics()} == {"r": 0, "s": 0}
        everything.poll()
        everything.commit()
        assert {t.name: t.start for t in feed.topics()} == {"r": 1, "s": 1}

    def test_unsubscribed_topics_are_retained_for_late_attachers(self):
        # A topic no current group subscribes to must keep its records
        # (and dropped == 0): a subscribe-all consumer attaching later
        # still sees the full history.
        feed = ChangeFeed()
        subscribed = feed.consumer("r-only", topics=["r"])
        publish(feed, "r", 0, 1)
        publish(feed, "s", 0, 2)
        subscribed.poll()
        subscribed.commit()  # compaction runs; s has no subscriber
        assert feed.dropped == 0
        # r was consumed by its only subscriber and compacts away (the
        # normal in-memory semantics); s must survive untouched.
        assert {t.name: t.start for t in feed.topics()} == {"r": 1, "s": 0}
        late = feed.consumer("late", start="beginning", topics=["s"])
        records, lost = late.poll()
        assert not lost
        assert [(r.topic, r.tid) for r in records] == [("s", 0)]


class TestDurability:
    def test_records_survive_reopen(self, tmp_path):
        directory = tmp_path / "feed"
        with ChangeFeed(directory) as feed:
            publish(feed, "r", 0, 10)
            publish(feed, "s", 0, 20)
        reopened = ChangeFeed(directory)
        consumer = reopened.consumer("g", start="beginning")
        records, _ = consumer.poll()
        assert [(r.topic, r.tid, r.row) for r in records] == [
            ("r", 0, (10,)),
            ("s", 0, (20,)),
        ]

    def test_segments_rotate_and_land_in_the_manifest(self, tmp_path):
        directory = tmp_path / "feed"
        with ChangeFeed(directory, segment_records=2) as feed:
            for tid in range(5):
                publish(feed, "r", tid, tid)
        manifest = json.loads((directory / MANIFEST).read_text())
        segments = manifest["topics"]["r"]["segments"]
        assert segments == [
            "000000000000.jsonl",
            "000000000002.jsonl",
            "000000000004.jsonl",
        ]
        reopened = ChangeFeed(directory, segment_records=2)
        assert reopened.end_offsets() == {"r": 5}

    def test_committed_offsets_survive_reopen(self, tmp_path):
        directory = tmp_path / "feed"
        with ChangeFeed(directory) as feed:
            consumer = feed.consumer("replica", start="beginning")
            for tid in range(4):
                publish(feed, "r", tid, tid)
            consumer.poll(limit=2)
            consumer.commit()
        reopened = ChangeFeed(directory)
        resumed = reopened.consumer("replica")
        assert resumed.committed == {"r": 2}
        records, _ = resumed.poll()
        assert [r.tid for r in records] == [2, 3]

    def test_durable_feeds_never_overflow(self, tmp_path):
        feed = ChangeFeed(tmp_path / "feed", max_retained=2)
        consumer = feed.consumer("g")
        for tid in range(10):
            publish(feed, "r", tid, tid)
        assert not consumer.lost
        records, lost = consumer.poll()
        assert not lost and len(records) == 10

    def test_torn_tail_is_truncated_on_reopen(self, tmp_path):
        directory = tmp_path / "feed"
        with ChangeFeed(directory) as feed:
            for tid in range(3):
                publish(feed, "r", tid, tid)
        segment = directory / "topics" / "r" / "000000000000.jsonl"
        data = segment.read_bytes()
        torn = data[: len(data) - len(data.splitlines(True)[-1]) + 7]
        segment.write_bytes(torn)  # the crash cut the last append short
        reopened = ChangeFeed(directory)
        assert reopened.end_offsets() == {"r": 2}
        # The torn bytes are gone: appending again yields a clean file.
        publish(reopened, "r", 7, 7)
        reopened.close()
        lines = segment.read_text().splitlines()
        assert len(lines) == 3
        assert FeedRecord.from_json(lines[-1]).tid == 7

    def test_missing_active_segment_is_tolerated(self, tmp_path):
        directory = tmp_path / "feed"
        with ChangeFeed(directory, segment_records=1) as feed:
            publish(feed, "r", 0, 0)
        # Simulate a crash after the manifest named a successor segment
        # but before its first append created the file.
        manifest_path = directory / MANIFEST
        manifest = json.loads(manifest_path.read_text())
        manifest["topics"]["r"]["segments"].append("000000000001.jsonl")
        manifest_path.write_text(json.dumps(manifest))
        reopened = ChangeFeed(directory)
        assert reopened.end_offsets() == {"r": 1}

    def test_fsync_always_policy(self, tmp_path):
        feed = ChangeFeed(tmp_path / "feed", fsync="always")
        publish(feed, "r", 0, 1)
        feed.close()
        with pytest.raises(FeedError, match="fsync"):
            ChangeFeed(tmp_path / "other", fsync="sometimes")


class TestDurableDatabase:
    def test_database_restores_from_its_feed(self, tmp_path):
        directory = tmp_path / "db"
        db = Database(durable=str(directory))
        db.execute("CREATE TABLE emp (name TEXT, salary INTEGER)")
        db.execute("INSERT INTO emp VALUES ('ann', 10), ('bob', 20)")
        db.execute("UPDATE emp SET salary = 15 WHERE name = 'ann'")
        db.execute("DELETE FROM emp WHERE name = 'bob'")
        tids = dict(db.table("emp").items())
        db.changes.feed.close()

        restored = Database(durable=str(directory))
        assert dict(restored.table("emp").items()) == tids
        assert restored.changes.schema_version == db.changes.schema_version
        # The restored database keeps appending where the old one left
        # off (replay must not have re-published history).
        end = restored.changes.end
        restored.execute("INSERT INTO emp VALUES ('carol', 9)")
        assert restored.changes.end == end + 1

    def test_restore_replays_ddl_in_order(self, tmp_path):
        directory = tmp_path / "db"
        db = Database(durable=str(directory))
        db.execute("CREATE TABLE r (a INTEGER)")
        db.execute("INSERT INTO r VALUES (1)")
        db.execute("DROP TABLE r")
        db.execute("CREATE TABLE r (a INTEGER, b INTEGER)")
        db.execute("INSERT INTO r VALUES (2, 3)")
        db.changes.feed.close()

        restored = Database(durable=str(directory))
        assert list(restored.table("r").rows()) == [(2, 3)]
        assert restored.table("r").schema.arity == 2

    def test_durable_and_feed_are_exclusive(self, tmp_path):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError, match="not both"):
            Database(durable=str(tmp_path), feed=ChangeFeed())


class TestCommitDurabilityOrdering:
    def test_commit_flushes_acknowledged_records_first(self, tmp_path):
        # A commit must never survive a crash its records did not: the
        # buffered appends have to hit disk before the offsets file.
        directory = tmp_path / "feed"
        feed = ChangeFeed(directory)  # fsync="rotate": appends buffered
        consumer = feed.consumer("replica", start="beginning")
        for tid in range(3):
            publish(feed, "r", tid, tid)
        consumer.poll()
        consumer.commit()  # no explicit feed.flush()
        # Simulate the crash: reopen without close()/flush().
        reopened = ChangeFeed(directory)
        assert reopened.end_offsets() == {"r": 3}
        assert reopened.consumer("replica").committed == {"r": 3}

    def test_stale_commit_past_history_is_detected(self, tmp_path):
        directory = tmp_path / "feed"
        with ChangeFeed(directory) as feed:
            feed.consumer("replica", start="beginning")
            publish(feed, "r", 0, 0)
        reopened = ChangeFeed(directory)
        with pytest.raises(FeedError, match="past the end"):
            reopened.records_upto({"r": 5})


class TestPollMerging:
    """``_poll`` is a bounded k-way merge, not slice-of-everything."""

    def test_poll_limit_materializes_a_bounded_batch(self):
        feed = ChangeFeed()
        consumer = feed.consumer("g")
        for tid in range(100):
            publish(feed, "r" if tid % 2 else "s", tid, tid)
        records, _ = consumer.poll(limit=5)
        assert [r.seq for r in records] == [0, 1, 2, 3, 4]
        # The regression this pins: the old implementation materialized
        # the *entire* remaining backlog (100 records) and sliced to 5.
        # The merge may look one record ahead per topic, nothing more.
        assert feed.last_poll_materialized <= 5 + 2
        rest, _ = consumer.poll()
        assert [r.seq for r in rest] == list(range(5, 100))

    def test_small_batches_interleave_topics_in_seq_order(self):
        feed = ChangeFeed()
        consumer = feed.consumer("g")
        for tid in range(9):
            publish(feed, f"t{tid % 3}", tid // 3, tid)
        seen: list[int] = []
        while True:
            records, _ = consumer.poll(limit=2)
            if not records:
                break
            assert feed.last_poll_materialized <= 2 + 3
            seen.extend(r.seq for r in records)
        assert seen == list(range(9))


class TestValueRoundTrip:
    """REAL edge values survive the JSONL wire format -- as strict JSON."""

    def publish_row(self, tmp_path, row):
        directory = tmp_path / "feed"
        with ChangeFeed(directory) as feed:
            feed.publish_change("r", 0, row, "insert")
        reopened = ChangeFeed(directory)
        (record,) = reopened.records_upto(reopened.end_offsets())
        return record.row

    def test_non_finite_reals_round_trip(self, tmp_path):
        row = (float("nan"), float("inf"), float("-inf"), 2.0, -0.0)
        back = self.publish_row(tmp_path, row)
        assert math.isnan(back[0])
        assert back[1] == float("inf") and back[2] == float("-inf")
        assert back[3] == 2.0 and type(back[3]) is float
        assert str(back[4]) == "-0.0"

    def test_lines_are_strict_json(self):
        record = FeedRecord(
            seq=0,
            topic="r",
            offset=0,
            kind="change",
            tid=0,
            row=(float("nan"), float("inf"), "x", None, True, 7),
            op="insert",
        )
        line = record.to_json()
        # A strict foreign parser must never see the non-standard
        # ``NaN`` / ``Infinity`` tokens (json.loads only calls
        # parse_constant for exactly those).
        def reject(token):
            raise AssertionError(f"non-standard JSON token {token!r}")

        json.loads(line, parse_constant=reject)
        back = FeedRecord.from_json(line)
        assert math.isnan(back.row[0]) and back.row[1:] == record.row[1:]

    def test_unknown_wrapper_is_rejected(self):
        line = (
            '{"seq":0,"topic":"r","offset":0,"kind":"change",'
            '"tid":0,"row":[{"$f":"wat"}],"op":"insert"}'
        )
        with pytest.raises(FeedError):
            FeedRecord.from_json(line)


class TestLazyOpen:
    """Opening a durable feed parses no record bodies."""

    def build(self, directory, records=10, segment_records=3):
        with ChangeFeed(directory, segment_records=segment_records) as feed:
            for tid in range(records):
                publish(feed, "r", tid, tid)

    def test_end_offsets_only_open_parses_no_bodies(self, tmp_path, monkeypatch):
        directory = tmp_path / "feed"
        self.build(directory)

        def forbid(line):
            raise AssertionError(f"parsed a record body: {line!r}")

        monkeypatch.setattr(FeedRecord, "from_json", staticmethod(forbid))
        reopened = ChangeFeed(directory, segment_records=3)
        assert reopened.end_offsets() == {"r": 10}
        assert reopened.resident_records() == 0

    def test_open_keeps_only_the_active_tail_resident(self, tmp_path):
        directory = tmp_path / "feed"
        self.build(directory, records=10, segment_records=3)
        reopened = ChangeFeed(directory, segment_records=3)
        consumer = reopened.consumer("g", start="beginning")
        records, _ = consumer.poll()
        assert [r.tid for r in records] == list(range(10))
        # Tail (1 record) + the sealed-segment LRU; never the full 10.
        assert reopened.resident_records() <= 1 + 3 * reopened._cache.capacity

    def test_streaming_replay_is_segment_bounded(self, tmp_path):
        # The acceptance bar: over a history of >= 16 sealed segments,
        # replaying retains at most 2x segment_records records.
        directory = tmp_path / "feed"
        self.build(directory, records=51, segment_records=3)
        reopened = ChangeFeed(directory, segment_records=3)
        (topic,) = reopened.topics()
        assert topic.segments - 1 >= 16  # sealed segments
        tids = [r.tid for r in reopened.iter_records()]
        assert tids == list(range(51))
        # Streaming holds one segment chunk (3) at a time, never the
        # LRU, never the history.
        assert reopened.peak_resident_records <= 2 * 3

    def test_next_seq_recovered_lazily(self, tmp_path):
        directory = tmp_path / "feed"
        self.build(directory, records=5)
        reopened = ChangeFeed(directory, segment_records=3)
        assert reopened.next_seq == 5
        publish(reopened, "r", 9, 9)
        assert reopened.end_offsets() == {"r": 6}
        reopened.close()


class TestLiveTailing:
    """A reader instance sees the writer's flushed appends on poll."""

    def test_reader_sees_appends_made_after_open(self, tmp_path):
        directory = tmp_path / "feed"
        writer = ChangeFeed(directory)
        reader = ChangeFeed(directory)
        consumer = reader.consumer("follower", start="beginning")
        assert consumer.poll() == ([], False)
        publish(writer, "r", 0, 0)
        writer.flush()
        records, lost = consumer.poll()
        assert not lost and [r.tid for r in records] == [0]
        publish(writer, "r", 1, 1)
        publish(writer, "s", 0, 5)  # a topic born after the reader opened
        writer.flush()
        records, _ = consumer.poll()
        assert [(r.topic, r.tid) for r in records] == [("r", 1), ("s", 0)]
        writer.close()
        reader.close()

    def test_reader_follows_rotation(self, tmp_path):
        directory = tmp_path / "feed"
        writer = ChangeFeed(directory, segment_records=2)
        reader = ChangeFeed(directory, segment_records=2)
        consumer = reader.consumer("follower", start="beginning")
        for tid in range(5):
            publish(writer, "r", tid, tid)
        writer.flush()
        records, _ = consumer.poll()
        assert [r.tid for r in records] == [0, 1, 2, 3, 4]
        assert reader.end_offsets() == {"r": 5}
        writer.close()
        reader.close()

    def test_lag_refreshes_without_polling(self, tmp_path):
        directory = tmp_path / "feed"
        writer = ChangeFeed(directory)
        reader = ChangeFeed(directory)
        consumer = reader.consumer("follower", start="beginning")
        assert consumer.lag == 0
        publish(writer, "r", 0, 0)
        writer.flush()
        assert consumer.lag == 1
        writer.close()
        reader.close()

    def test_schema_version_follows_ddl(self, tmp_path):
        directory = tmp_path / "feed"
        writer = ChangeFeed(directory)
        reader = ChangeFeed(directory)
        reader.consumer("follower", start="beginning")
        writer.publish_schema("create_table", "r", {"name": "r"})
        writer.flush()
        reader.refresh()
        assert reader.schema_version == 1
        writer.close()
        reader.close()

    def test_reader_ignores_a_partially_flushed_line(self, tmp_path):
        directory = tmp_path / "feed"
        writer = ChangeFeed(directory)
        consumer_side = ChangeFeed(directory)
        consumer = consumer_side.consumer("follower", start="beginning")
        publish(writer, "r", 0, 0)
        writer.flush()
        consumer.poll()
        # Simulate a half-flushed append from the writer's buffer.
        segment = directory / "topics" / "r" / "000000000000.jsonl"
        whole = FeedRecord(
            seq=1, topic="r", offset=1, kind="change", tid=1, row=(1,), op="insert"
        ).to_json()
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write(whole[: len(whole) // 2])
        assert consumer.poll() == ([], False)  # incomplete line invisible
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write(whole[len(whole) // 2 :] + "\n")
        records, _ = consumer.poll()
        assert [r.tid for r in records] == [1]
        writer.close()
        consumer_side.close()

    def test_writer_instances_do_not_rescan(self, tmp_path):
        directory = tmp_path / "feed"
        writer = ChangeFeed(directory)
        publish(writer, "r", 0, 0)
        assert writer.refresh() is False  # the writer's memory is truth
        writer.close()


class TestRetentionTruncation:
    """``retention="truncate"``: sealed segments die once consumed."""

    def build(self, directory, records=6, **kwargs):
        feed = ChangeFeed(
            directory, segment_records=2, retention="truncate", **kwargs
        )
        consumer = feed.consumer("g", start="beginning")
        for tid in range(records):
            publish(feed, "r", tid, tid)
        return feed, consumer

    def test_sealed_segments_are_deleted_once_the_group_passes(self, tmp_path):
        directory = tmp_path / "feed"
        feed, consumer = self.build(directory)
        consumer.poll()
        consumer.commit()
        (topic,) = [t for t in feed.topics() if t.name == "r"]
        assert topic.start == 4  # only the newest segment survives
        names = sorted(p.name for p in (directory / "topics" / "r").glob("*"))
        assert names == ["000000000004.jsonl"]
        manifest = json.loads((directory / MANIFEST).read_text())
        assert manifest["topics"]["r"]["base"] == 4
        assert manifest["topics"]["r"]["segments"] == ["000000000004.jsonl"]
        feed.close()

    def test_truncation_waits_for_the_slowest_group(self, tmp_path):
        directory = tmp_path / "feed"
        feed, fast = self.build(directory)
        slow = feed.consumer("slow", start="beginning")
        fast.poll()
        fast.commit()
        (topic,) = [t for t in feed.topics() if t.name == "r"]
        assert topic.start == 0  # "slow" still needs the prefix
        slow.poll()
        slow.commit()
        (topic,) = [t for t in feed.topics() if t.name == "r"]
        assert topic.start == 4
        feed.close()

    def test_truncated_prefix_is_no_longer_retained(self, tmp_path):
        directory = tmp_path / "feed"
        feed, consumer = self.build(directory)
        consumer.poll()
        consumer.commit()
        with pytest.raises(FeedError, match="no longer retained"):
            feed.records_upto({"r": 6})
        feed.close()

    def test_keep_policy_never_deletes(self, tmp_path):
        directory = tmp_path / "feed"
        feed = ChangeFeed(directory, segment_records=2)  # default "keep"
        consumer = feed.consumer("g", start="beginning")
        for tid in range(6):
            publish(feed, "r", tid, tid)
        consumer.poll()
        consumer.commit()
        assert len(list((directory / "topics" / "r").glob("*.jsonl"))) == 3
        feed.close()

    def test_truncation_races_a_reattaching_group(self, tmp_path):
        # A group registered by another instance *before* truncation
        # runs must hold the segments -- registration writes the
        # consumers/ file at attach time, not first commit.
        directory = tmp_path / "feed"
        feed, consumer = self.build(directory)
        feed.flush()
        reader = ChangeFeed(directory)
        late = reader.consumer("late", start="beginning")
        consumer.poll()
        consumer.commit()  # would truncate -- but "late" is on disk at 0
        assert len(list((directory / "topics" / "r").glob("*.jsonl"))) == 3
        records, lost = late.poll()
        assert not lost and [r.tid for r in records] == list(range(6))
        feed.close()
        reader.close()

    def test_group_attaching_after_truncation_finds_history_gone(self, tmp_path):
        directory = tmp_path / "feed"
        feed, consumer = self.build(directory)
        consumer.poll()
        consumer.commit()  # truncates [0, 4)
        feed.flush()
        reader = ChangeFeed(directory)
        late = reader.consumer("late", start="beginning")
        assert late.lost  # offsets [0, 4) are gone
        records, lost = late.poll()
        assert lost and records == []
        with pytest.raises(FeedError, match="no longer retained"):
            reader.records_upto({"r": 6})
        feed.close()
        reader.close()

    def test_snapshot_is_the_groups_retention_floor(self, tmp_path):
        directory = tmp_path / "feed"
        feed, consumer = self.build(directory)
        consumer.poll(limit=2)
        consumer.commit()
        consumer.store_snapshot({"state": "at-2"})
        consumer.poll()
        consumer.commit()  # committed 6, but the snapshot pins offset 2
        names = sorted(p.name for p in (directory / "topics" / "r").glob("*"))
        assert names == [
            "000000000002.jsonl",
            "000000000004.jsonl",
        ]  # [0, 2) reclaimed; [2, 6) held for snapshot recovery
        committed, payload = consumer.load_snapshot()
        assert committed == {"r": 2} and payload == {"state": "at-2"}
        # The snapshot gap replays fine.
        assert [r.tid for r in feed.iter_records(start=committed)] == [
            2, 3, 4, 5,
        ]
        feed.close()

    def test_snapshots_need_a_named_durable_group(self, tmp_path):
        feed = ChangeFeed()
        consumer = feed.consumer("g")
        with pytest.raises(FeedError, match="durable"):
            consumer.store_snapshot({})
        durable = ChangeFeed(tmp_path / "feed")
        anonymous = durable.consumer()
        with pytest.raises(FeedError, match="named group"):
            anonymous.store_snapshot({})
        durable.close()

    def test_drop_group_releases_the_retention_hold(self, tmp_path):
        directory = tmp_path / "feed"
        feed, consumer = self.build(directory)
        feed.consumer("stuck", start="beginning")
        consumer.poll()
        consumer.commit()
        assert len(list((directory / "topics" / "r").glob("*.jsonl"))) == 3
        feed.drop_group("stuck")
        assert not (directory / "consumers" / "stuck.json").exists()
        feed.truncate()
        assert len(list((directory / "topics" / "r").glob("*.jsonl"))) == 1
        feed.close()

    def test_writer_rotation_does_not_resurrect_truncated_segments(
        self, tmp_path
    ):
        # Truncation may run in a *consumer* process; when the writer
        # next rotates (and stores its manifest) it must fold that
        # truncation in rather than resurrect the deleted names.
        directory = tmp_path / "feed"
        writer = ChangeFeed(directory, segment_records=2)
        for tid in range(6):
            publish(writer, "r", tid, tid)
        writer.flush()
        consumer_side = ChangeFeed(directory, retention="truncate")
        consumer = consumer_side.consumer("g", start="beginning")
        consumer.poll()
        consumer.commit()  # truncates [0, 4) from the consumer process
        manifest = json.loads((directory / MANIFEST).read_text())
        assert manifest["topics"]["r"]["base"] == 4
        for tid in range(6, 9):  # the writer rotates twice more
            publish(writer, "r", tid, tid)
        writer.flush()
        manifest = json.loads((directory / MANIFEST).read_text())
        assert manifest["topics"]["r"]["base"] == 4
        assert manifest["topics"]["r"]["segments"] == [
            "000000000004.jsonl",
            "000000000006.jsonl",
            "000000000008.jsonl",
        ]
        records, _ = consumer.poll()
        assert [r.tid for r in records] == [6, 7, 8]
        writer.close()
        consumer_side.close()

    def test_writer_side_cursor_observes_foreign_truncation_as_lost(
        self, tmp_path
    ):
        # A writer process never re-scans the manifest, so a truncation
        # performed by a consumer process can delete sealed segments an
        # in-writer ephemeral cursor (invisible to the foreign floor
        # scan) still needs.  That must surface as the ordinary
        # ``lost`` fallback -- not a FeedError out of every poll.
        directory = tmp_path / "feed"
        writer = ChangeFeed(directory, segment_records=2)
        stale = writer.consumer()  # ephemeral, at offset 0, never on disk
        for tid in range(6):
            publish(writer, "r", tid, tid)
        writer.flush()
        # Age the writer's resident copies out so the poll must go to
        # disk: the LRU holds the rotation-time segments.
        writer._cache.clear()
        foreign = ChangeFeed(directory, retention="truncate")
        consumer = foreign.consumer("g", start="beginning")
        consumer.poll()
        consumer.commit()  # deletes the sealed segments
        foreign.close()

        records, lost = stale.poll()
        assert lost and records == []
        publish(writer, "r", 9, 9)
        writer.flush()
        records, lost = stale.poll()
        assert not lost and [r.tid for r in records] == [9]
        writer.close()

    def test_crash_during_truncation_leaves_a_repairable_manifest(
        self, tmp_path, monkeypatch
    ):
        directory = tmp_path / "feed"
        feed, consumer = self.build(directory)
        consumer.poll()
        consumer.commit()  # commit triggers truncation...
        feed.close()

        # ...but simulate the crash *between* the manifest write and the
        # unlinks by re-creating the deleted segment files from a copy.
        untruncated = tmp_path / "copy"
        feed2, consumer2 = self.build(untruncated)
        feed2.flush()
        for path in sorted((untruncated / "topics" / "r").glob("*.jsonl")):
            target = directory / "topics" / "r" / path.name
            if not target.exists():
                target.write_bytes(path.read_bytes())
        feed2.close()
        assert len(list((directory / "topics" / "r").glob("*.jsonl"))) == 3

        # Reopen: the manifest is authoritative; the orphans are swept.
        reopened = ChangeFeed(directory, segment_records=2)
        assert reopened.end_offsets() == {"r": 6}
        names = sorted(p.name for p in (directory / "topics" / "r").glob("*"))
        assert names == ["000000000004.jsonl"]
        resumed = reopened.consumer("g")
        assert resumed.committed == {"r": 6}
        publish(reopened, "r", 9, 9)  # appends continue past the repair
        assert reopened.end_offsets() == {"r": 7}
        reopened.close()


class TestEphemeralGroups:
    def test_anonymous_cursors_leave_no_disk_state(self, tmp_path):
        directory = tmp_path / "feed"
        with ChangeFeed(directory) as feed:
            consumer = feed.consumer()  # anonymous -> ephemeral
            publish(feed, "r", 0, 0)
            consumer.poll()
            consumer.commit()
            name = consumer.group
        assert not (directory / "consumers" / f"{name}.json").exists()
        # A fresh process's first anonymous cursor reuses the name but
        # must start at the end, not at any previous position.
        reopened = ChangeFeed(directory)
        fresh = reopened.consumer()
        assert fresh.group == name
        assert fresh.pending == 0

    def test_named_groups_do_persist(self, tmp_path):
        directory = tmp_path / "feed"
        with ChangeFeed(directory) as feed:
            consumer = feed.consumer("replica", start="beginning")
            publish(feed, "r", 0, 0)
            consumer.poll()
            consumer.commit()
        assert (directory / "consumers" / "replica.json").exists()


def segment_names(directory, topic="r"):
    return sorted(p.name for p in (directory / "topics" / topic).glob("*.jsonl"))


class TestSegmentCompaction:
    """``retention="compact"``: partially-consumed sealed segments are
    rewritten down to their surviving suffix, not merely pinned whole."""

    def test_straddling_segment_is_rewritten_on_commit(self, tmp_path):
        directory = tmp_path / "feed"
        feed = ChangeFeed(directory, segment_records=4, retention="compact")
        consumer = feed.consumer("g", start="beginning")
        for tid in range(12):
            publish(feed, "r", tid, tid)  # segments at 0, 4, 8
        consumer.poll(limit=6)
        consumer.commit()
        # [0, 4) is fully consumed -> deleted whole; [4, 8) is consumed
        # up to 6 -> rewritten as [6, 8) under its new start-offset name.
        assert segment_names(directory) == [
            "000000000006.jsonl",
            "000000000008.jsonl",
        ]
        manifest = json.loads((directory / MANIFEST).read_text())
        assert manifest["topics"]["r"]["base"] == 6
        assert manifest["topics"]["r"]["segments"] == [
            "000000000006.jsonl",
            "000000000008.jsonl",
        ]
        # Surviving records keep their original offsets and stay readable.
        assert [r.tid for r in feed.iter_records(start={"r": 6})] == [
            6, 7, 8, 9, 10, 11,
        ]
        with pytest.raises(FeedError, match="no longer retained"):
            feed.records_upto({"r": 6})
        # The feed keeps appending and consuming past the rewrite.
        publish(feed, "r", 12, 12)
        records, lost = consumer.poll()
        assert not lost and [r.tid for r in records] == [6, 7, 8, 9, 10, 11, 12]
        feed.close()

    def test_auto_compaction_has_hysteresis(self, tmp_path):
        # A group inching through a sealed segment must not trigger an
        # O(segment) rewrite per commit: the automatic path waits until
        # at least half a segment is reclaimable.
        directory = tmp_path / "feed"
        feed = ChangeFeed(directory, segment_records=8, retention="compact")
        consumer = feed.consumer("g", start="beginning")
        for tid in range(16):
            publish(feed, "r", tid, tid)  # segments at 0, 8
        consumer.poll(limit=2)
        consumer.commit()  # only 2 of 8 reclaimable: no rewrite
        assert segment_names(directory) == [
            "000000000000.jsonl",
            "000000000008.jsonl",
        ]
        consumer.poll(limit=2)
        consumer.commit()  # 4 of 8 reclaimable: rewrite [4, 8)
        assert segment_names(directory) == [
            "000000000004.jsonl",
            "000000000008.jsonl",
        ]
        feed.close()

    def test_explicit_compact_reclaims_any_amount(self, tmp_path):
        # compact() on demand (the CLI's `.feed compact`) works on any
        # durable feed -- whatever its configured retention policy --
        # and takes min_reclaim=0: a single reclaimable record counts.
        directory = tmp_path / "feed"
        feed = ChangeFeed(directory, segment_records=4)  # retention="keep"
        consumer = feed.consumer("g", start="beginning")
        for tid in range(8):
            publish(feed, "r", tid, tid)
        consumer.poll(limit=1)
        consumer.commit()  # keep policy: nothing reclaimed automatically
        assert len(segment_names(directory)) == 2
        reclaimed = feed.compact()
        assert reclaimed == {"r": 1}
        assert segment_names(directory) == [
            "000000000001.jsonl",
            "000000000004.jsonl",
        ]
        assert [r.tid for r in feed.iter_records(start={"r": 1})] == list(
            range(1, 8)
        )
        feed.close()

    def test_compacted_segments_serve_reader_instances(self, tmp_path):
        directory = tmp_path / "feed"
        writer = ChangeFeed(directory, segment_records=4, retention="compact")
        reader = ChangeFeed(directory, segment_records=4)
        # Anonymous: invisible to the floor scan, so it can fall behind
        # a reclaim (a *registered* behind group would have pinned it).
        behind = reader.consumer(start="beginning")
        ahead = reader.consumer("ahead", start="beginning")
        for tid in range(12):
            publish(writer, "r", tid, tid)
        writer.flush()
        records, _ = ahead.poll()
        assert [r.tid for r in records] == list(range(12))
        ahead.commit()
        cursor = writer.consumer("g", start="beginning")
        cursor.poll(limit=6)
        cursor.commit()  # compacts to base 6
        # A reader group already past the floor reads on, through the
        # rewritten segment; one behind it observes the ordinary loss.
        publish(writer, "r", 12, 12)
        writer.flush()
        records, lost = ahead.poll()
        assert not lost and [r.tid for r in records] == [12]
        records, lost = behind.poll()
        assert lost and records == []
        writer.close()
        reader.close()

    def test_writer_folds_a_foreign_compaction_into_its_manifest(
        self, tmp_path
    ):
        # Compaction may run in a consumer process; the writer's next
        # rotation must adopt the rewritten start-offset name instead of
        # resurrecting the victim -- or the surviving records would
        # become unreachable through the writer's own manifest.
        directory = tmp_path / "feed"
        writer = ChangeFeed(directory, segment_records=2)
        for tid in range(6):
            publish(writer, "r", tid, tid)  # segments at 0, 2, 4
        writer.flush()
        foreign = ChangeFeed(directory, segment_records=2, retention="compact")
        consumer = foreign.consumer("g", start="beginning")
        consumer.poll(limit=3)
        consumer.commit()  # deletes [0, 2), rewrites [2, 4) -> [3, 4)
        foreign.close()
        assert segment_names(directory) == [
            "000000000003.jsonl",
            "000000000004.jsonl",
        ]
        for tid in range(6, 9):
            publish(writer, "r", tid, tid)  # forces rotations + manifest
        writer.flush()
        manifest = json.loads((directory / MANIFEST).read_text())
        assert manifest["topics"]["r"]["base"] == 3
        assert manifest["topics"]["r"]["segments"] == [
            "000000000003.jsonl",
            "000000000004.jsonl",
            "000000000006.jsonl",
            "000000000008.jsonl",
        ]
        assert [r.tid for r in writer.iter_records(start={"r": 3})] == list(
            range(3, 9)
        )
        writer.close()


class TestCompactionCrashSafety:
    """Crash-mid-compaction repairs to one consistent view on reopen."""

    def build(self, directory, records=10, committed=5):
        with ChangeFeed(directory, segment_records=4) as feed:
            consumer = feed.consumer("g", start="beginning")
            for tid in range(records):
                publish(feed, "r", tid, tid)
            consumer.poll(limit=committed)
            consumer.commit()

    def test_crash_between_rewrite_and_manifest_commit(self, tmp_path):
        directory = tmp_path / "feed"
        self.build(directory)
        feed = ChangeFeed(directory, segment_records=4)

        def boom() -> None:
            raise RuntimeError("crash before the manifest commit")

        feed._store_manifest = boom  # the rewrite happened, the commit dies
        with pytest.raises(RuntimeError):
            feed.compact()
        # The failed commit rolled the instance's memory back: it keeps
        # serving the layout the on-disk manifest still names.
        (topic,) = feed.topics()
        assert topic.start == 0
        assert [r.tid for r in feed.iter_records()] == list(range(10))
        # The old manifest still names the old segments; the rewritten
        # temporary (000000000005.jsonl) is an orphan the reopen sweeps.
        assert "000000000005.jsonl" in segment_names(directory)
        reopened = ChangeFeed(directory, segment_records=4)
        assert segment_names(directory) == [
            "000000000000.jsonl",
            "000000000004.jsonl",
            "000000000008.jsonl",
        ]
        # One consistent (old) view: the full history is intact.
        assert [r.tid for r in reopened.iter_records()] == list(range(10))
        resumed = reopened.consumer("g")
        assert resumed.committed == {"r": 5}
        publish(reopened, "r", 10, 10)
        assert reopened.end_offsets() == {"r": 11}
        reopened.close()

    def test_crash_between_manifest_commit_and_unlink(self, tmp_path):
        directory = tmp_path / "feed"
        self.build(directory)
        untouched = {
            name: (directory / "topics" / "r" / name).read_bytes()
            for name in segment_names(directory)
        }
        feed = ChangeFeed(directory, segment_records=4)
        assert feed.compact() == {"r": 5}
        feed.close()
        # Resurrect the unlinked victims: the crash happened after the
        # manifest commit but before the unlinks.
        for name, data in untouched.items():
            path = directory / "topics" / "r" / name
            if not path.exists():
                path.write_bytes(data)
        reopened = ChangeFeed(directory, segment_records=4)
        # The new manifest is authoritative; the victims are swept.
        assert segment_names(directory) == [
            "000000000005.jsonl",
            "000000000008.jsonl",
        ]
        assert [r.tid for r in reopened.iter_records(start={"r": 5})] == list(
            range(5, 10)
        )
        reopened.close()

    @settings(max_examples=25, deadline=None)
    @given(
        records=st.integers(min_value=3, max_value=40),
        committed=st.integers(min_value=1, max_value=40),
        crash=st.sampled_from(["none", "before_manifest", "after_manifest"]),
    )
    def test_crash_mid_compaction_repairs_to_one_view(
        self, tmp_path_factory, records, committed, crash
    ):
        """Whatever the commit point and wherever the crash lands, the
        reopened feed presents one consistent view: a contiguous record
        range [base, end), orphan files swept, committed offsets intact,
        and appends continuing past the repair."""
        committed = min(committed, records)
        directory = tmp_path_factory.mktemp("compact") / "feed"
        self.build(directory, records=records, committed=committed)
        before = {
            name: (directory / "topics" / "r" / name).read_bytes()
            for name in segment_names(directory)
        }
        feed = ChangeFeed(directory, segment_records=4)
        if crash == "before_manifest":
            def boom() -> None:
                raise RuntimeError("crash")

            feed._store_manifest = boom
            try:
                feed.compact()
            except RuntimeError:
                pass
        else:
            feed.compact()
            if crash == "after_manifest":
                for name, data in before.items():
                    path = directory / "topics" / "r" / name
                    if not path.exists():
                        path.write_bytes(data)
        feed.close()

        reopened = ChangeFeed(directory, segment_records=4)
        (topic,) = reopened.topics()
        assert topic.end == records
        assert 0 <= topic.start <= committed
        # Orphans are gone: disk holds exactly the manifest's segments.
        manifest = json.loads((directory / MANIFEST).read_text())
        assert segment_names(directory) == sorted(
            manifest["topics"]["r"]["segments"]
        )
        # The retained suffix replays contiguously...
        assert [
            r.tid for r in reopened.iter_records(start={"r": topic.start})
        ] == list(range(topic.start, records))
        # ...the group resumes exactly at its commit...
        resumed = reopened.consumer("g")
        assert resumed.committed == {"r": committed}
        rest, lost = resumed.poll()
        assert not lost and [r.tid for r in rest] == list(
            range(committed, records)
        )
        # ...and the feed keeps accepting appends.
        publish(reopened, "r", records, records)
        assert reopened.end_offsets() == {"r": records + 1}
        reopened.close()


class TestWriterRecovery:
    """``Database(durable=dir)`` reopens after its own retention via
    writer checkpoints (the ISSUE 4 headline regression)."""

    def primary(self, feed):
        db = Database(feed=feed)
        db.execute("CREATE TABLE emp (name TEXT, salary INTEGER)")
        db.execute("INSERT INTO emp VALUES ('ann', 10), ('ann', 20), ('bob', 5)")
        db.execute("INSERT INTO emp VALUES ('carol', 7), ('dan', 8)")
        db.execute("UPDATE emp SET salary = 9 WHERE name = 'dan'")
        return db

    def test_reopen_after_own_retention_truncated_segments(self, tmp_path):
        # The headline bug: a consumer group commits past the sealed
        # segments, retention deletes them, and before writer-side
        # checkpoints existed the writer's own reopen then raised
        # FeedError out of the full replay.
        directory = tmp_path / "feed"
        feed = ChangeFeed(directory, segment_records=2, retention="truncate")
        db = self.primary(feed)
        cut = db.checkpoint()
        db.execute("INSERT INTO emp VALUES ('erin', 3)")
        consumer = feed.consumer("g", start="beginning")
        consumer.poll()
        consumer.commit()  # truncates everything below the checkpoint
        (emp,) = [t for t in feed.topics() if t.name == "emp"]
        assert emp.start > 0  # a full replay is genuinely impossible now
        with pytest.raises(FeedError, match="no longer retained"):
            feed.records_upto(feed.end_offsets())
        expected = dict(db.table("emp").items())
        end = db.changes.end
        feed.close()

        reopened_feed = ChangeFeed(
            directory, segment_records=2, retention="truncate"
        )
        restored = Database(feed=reopened_feed)
        assert restored.restore_mode == "snapshot"
        # Only the records published after the checkpoint were replayed.
        assert restored.restore_records == end - sum(cut.values())
        assert dict(restored.table("emp").items()) == expected
        # The restored writer keeps appending where the old one left off.
        restored.execute("INSERT INTO emp VALUES ('fred', 1)")
        assert restored.changes.end == end + 1
        reopened_feed.close()

    def test_truncated_and_never_checkpointed_is_unrecoverable(self, tmp_path):
        directory = tmp_path / "feed"
        feed = ChangeFeed(directory, segment_records=2, retention="truncate")
        db = self.primary(feed)
        consumer = feed.consumer("g", start="beginning")
        consumer.poll()
        consumer.commit()
        # The writer's registration pins the history ... until an
        # operator drops it without a checkpoint ever being stored
        # (drop_group itself re-runs retention).
        feed.drop_group(WRITER_GROUP)
        (emp,) = [t for t in feed.topics() if t.name == "emp"]
        assert emp.start > 0  # sealed history is gone for good
        feed.close()

        with pytest.raises(FeedRetentionError, match="no writer checkpoint"):
            Database(feed=ChangeFeed(directory, segment_records=2))

    def test_writer_registration_is_the_retention_floor(self, tmp_path):
        # The satellite bug: a writer-only directory used to compute its
        # truncation floor from whatever consumer groups existed --
        # letting a fully-caught-up group (or an ephemeral engine
        # cursor) truncate history the writer itself still needed.
        directory = tmp_path / "feed"
        feed = ChangeFeed(directory, segment_records=2, retention="truncate")
        db = self.primary(feed)
        consumer = feed.consumer("g", start="beginning")
        consumer.poll()
        consumer.commit()  # fully caught up -- but the writer is not
        assert len(segment_names(directory, "emp")) == 4  # nothing died
        assert feed.truncate() == {}  # even explicitly
        db.checkpoint()  # the checkpoint *is* the writer's floor
        assert len(segment_names(directory, "emp")) == 1
        feed.close()
        restored = Database(feed=ChangeFeed(directory, segment_records=2))
        assert restored.restore_mode == "snapshot"
        assert dict(restored.table("emp").items()) == dict(
            db.table("emp").items()
        )
        restored.changes.feed.close()

    def test_checkpoint_cadence(self, tmp_path):
        directory = tmp_path / "feed"
        feed = ChangeFeed(directory, segment_records=2, retention="truncate")
        db = Database(feed=feed, checkpoint_records=4)
        db.execute("CREATE TABLE r (a INTEGER)")
        assert feed.load_snapshot(WRITER_GROUP) is None
        for i in range(4):
            db.execute(f"INSERT INTO r VALUES ({i})")
        first = feed.load_snapshot(WRITER_GROUP)
        assert first is not None  # cadence reached: auto-checkpointed
        for i in range(4, 8):
            db.execute(f"INSERT INTO r VALUES ({i})")
        second = feed.load_snapshot(WRITER_GROUP)
        assert second[0] != first[0]  # the cut advanced with the writes
        feed.close()
        restored = Database(feed=ChangeFeed(directory, segment_records=2))
        assert restored.restore_mode == "snapshot"
        assert sorted(r[0] for r in restored.table("r").rows()) == list(
            range(8)
        )
        restored.changes.feed.close()

    def test_checkpoint_needs_a_durable_database(self, tmp_path):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError, match="durable"):
            Database().checkpoint()
        with pytest.raises(ExecutionError, match="durable"):
            Database(checkpoint_records=5)
        with pytest.raises(ExecutionError, match="retention"):
            Database(feed=ChangeFeed(), retention="truncate")

    def test_mixed_case_table_survives_the_checkpoint_path(self, tmp_path):
        # Feed topics are lower-cased relation names while the catalog
        # (and the snapshot's serialized schemas) keep declared case:
        # the snapshot + suffix-replay path must bridge the two.
        directory = tmp_path / "feed"
        feed = ChangeFeed(directory, segment_records=2, retention="truncate")
        db = Database(feed=feed)
        db.execute("CREATE TABLE Emp (Name TEXT, Salary INTEGER)")
        db.execute("INSERT INTO Emp VALUES ('ann', 10), ('bob', 20)")
        db.checkpoint()
        db.execute("UPDATE Emp SET Salary = 15 WHERE Name = 'ann'")
        consumer = feed.consumer("g", start="beginning")
        consumer.poll()
        consumer.commit()
        expected = dict(db.table("emp").items())
        feed.close()

        restored = Database(feed=ChangeFeed(directory, segment_records=2))
        assert restored.restore_mode == "snapshot"
        assert restored.catalog.table_names() == ["Emp"]  # case preserved
        # The suffix replay resolved the lower-cased topic onto the
        # mixed-case table, and both spellings look it up.
        assert dict(restored.table("emp").items()) == expected
        assert dict(restored.table("EMP").items()) == expected
        restored.changes.feed.close()
