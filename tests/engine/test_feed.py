"""Unit tests for the partitioned change feed.

The feed is the durability layer under incremental conflict detection
(see ``tests/conflicts/test_replica.py`` for the consumer side); here we
pin its mechanics: per-topic offsets, global sequence order, consumer
groups with committed offsets, retention/overflow, segment rotation, the
manifest, and crash-safe replay of a torn segment tail.
"""

from __future__ import annotations

import json

import pytest

from repro.engine.database import Database
from repro.engine.feed import (
    MANIFEST,
    SCHEMA_TOPIC,
    ChangeFeed,
    FeedRecord,
)
from repro.errors import FeedError


def publish(feed: ChangeFeed, relation: str, tid: int, value: int, op: str = "insert"):
    feed.publish_change(relation, tid, (value,), op)


class TestPartitioning:
    def test_offsets_are_per_topic_and_seq_is_global(self):
        feed = ChangeFeed()
        consumer = feed.consumer("g")
        publish(feed, "r", 0, 10)
        publish(feed, "s", 0, 20)
        publish(feed, "r", 1, 11)
        records, lost = consumer.poll()
        assert not lost
        assert [(r.topic, r.offset, r.seq) for r in records] == [
            ("r", 0, 0),
            ("s", 0, 1),
            ("r", 1, 2),
        ]

    def test_nothing_buffered_without_consumers(self):
        feed = ChangeFeed()
        publish(feed, "r", 0, 1)
        assert feed.next_seq == 0 and feed.topics() == []

    def test_schema_records_ride_their_own_topic(self):
        feed = ChangeFeed()
        consumer = feed.consumer("g")
        feed.publish_schema("create_table", "r", {"name": "r", "columns": []})
        publish(feed, "r", 0, 1)
        records, _ = consumer.poll()
        assert [r.topic for r in records] == [SCHEMA_TOPIC, "r"]
        assert feed.schema_version == 1

    def test_suspended_publishing_drops_everything(self):
        feed = ChangeFeed()
        feed.consumer("g")
        with feed.suspended():
            publish(feed, "r", 0, 1)
            feed.publish_schema("drop_table", "r")
        assert feed.next_seq == 0 and feed.schema_version == 0


class TestConsumerGroups:
    def test_poll_without_commit_redelivers_on_reattach(self):
        feed = ChangeFeed()
        consumer = feed.consumer("g")
        publish(feed, "r", 0, 1)
        records, _ = consumer.poll()
        assert len(records) == 1
        # A new consumer of the same group starts at the *committed*
        # offsets -- the uncommitted poll is redelivered.
        again = feed.consumer("g")
        redelivered, _ = again.poll()
        assert [r.seq for r in redelivered] == [r.seq for r in records]

    def test_commit_advances_the_group(self):
        feed = ChangeFeed()
        consumer = feed.consumer("g")
        publish(feed, "r", 0, 1)
        consumer.poll()
        consumer.commit()
        assert consumer.committed == {"r": 1}
        assert feed.consumer("g").poll() == ([], False)

    def test_groups_are_independent(self):
        feed = ChangeFeed()
        fast, slow = feed.consumer("fast"), feed.consumer("slow")
        publish(feed, "r", 0, 1)
        fast.poll()
        fast.commit()
        records, _ = slow.poll()
        assert len(records) == 1

    def test_poll_limit_stops_at_an_intermediate_cut(self):
        feed = ChangeFeed()
        consumer = feed.consumer("g")
        for tid in range(5):
            publish(feed, "r", tid, tid)
        first, _ = consumer.poll(limit=2)
        rest, _ = consumer.poll()
        assert [r.tid for r in first] == [0, 1]
        assert [r.tid for r in rest] == [2, 3, 4]

    def test_lag_counts_from_committed(self):
        feed = ChangeFeed()
        consumer = feed.consumer("g")
        for tid in range(3):
            publish(feed, "r", tid, tid)
        consumer.poll(limit=1)
        assert consumer.pending == 2  # past the read position
        assert consumer.lag == 3  # past the committed position
        consumer.commit()
        assert consumer.lag == 2


class TestRetention:
    def test_compaction_waits_for_the_slowest_group(self):
        feed = ChangeFeed()
        fast, slow = feed.consumer("fast"), feed.consumer("slow")
        publish(feed, "r", 0, 1)
        fast.poll()
        fast.commit()
        (topic,) = feed.topics()
        assert topic.start == 0  # retained for the slow group
        slow.poll()
        slow.commit()
        (topic,) = feed.topics()
        assert topic.start == 1

    def test_overflow_marks_lagging_groups_lost(self):
        feed = ChangeFeed(max_retained=2)
        consumer = feed.consumer("g")
        for tid in range(4):
            publish(feed, "r", tid, tid)
        assert consumer.lost
        records, lost = consumer.poll()
        assert lost and records == []
        assert not consumer.lost  # repositioned at the end
        publish(feed, "r", 9, 9)
        records, lost = consumer.poll()
        assert not lost and [r.tid for r in records] == [9]

    def test_records_upto_raises_past_retention(self):
        feed = ChangeFeed(max_retained=2)
        feed.consumer("g")
        for tid in range(4):
            publish(feed, "r", tid, tid)
        with pytest.raises(FeedError, match="no longer retained"):
            feed.records_upto({"r": 3})


class TestDurability:
    def test_records_survive_reopen(self, tmp_path):
        directory = tmp_path / "feed"
        with ChangeFeed(directory) as feed:
            publish(feed, "r", 0, 10)
            publish(feed, "s", 0, 20)
        reopened = ChangeFeed(directory)
        consumer = reopened.consumer("g", start="beginning")
        records, _ = consumer.poll()
        assert [(r.topic, r.tid, r.row) for r in records] == [
            ("r", 0, (10,)),
            ("s", 0, (20,)),
        ]

    def test_segments_rotate_and_land_in_the_manifest(self, tmp_path):
        directory = tmp_path / "feed"
        with ChangeFeed(directory, segment_records=2) as feed:
            for tid in range(5):
                publish(feed, "r", tid, tid)
        manifest = json.loads((directory / MANIFEST).read_text())
        segments = manifest["topics"]["r"]["segments"]
        assert segments == [
            "000000000000.jsonl",
            "000000000002.jsonl",
            "000000000004.jsonl",
        ]
        reopened = ChangeFeed(directory, segment_records=2)
        assert reopened.end_offsets() == {"r": 5}

    def test_committed_offsets_survive_reopen(self, tmp_path):
        directory = tmp_path / "feed"
        with ChangeFeed(directory) as feed:
            consumer = feed.consumer("replica", start="beginning")
            for tid in range(4):
                publish(feed, "r", tid, tid)
            consumer.poll(limit=2)
            consumer.commit()
        reopened = ChangeFeed(directory)
        resumed = reopened.consumer("replica")
        assert resumed.committed == {"r": 2}
        records, _ = resumed.poll()
        assert [r.tid for r in records] == [2, 3]

    def test_durable_feeds_never_overflow(self, tmp_path):
        feed = ChangeFeed(tmp_path / "feed", max_retained=2)
        consumer = feed.consumer("g")
        for tid in range(10):
            publish(feed, "r", tid, tid)
        assert not consumer.lost
        records, lost = consumer.poll()
        assert not lost and len(records) == 10

    def test_torn_tail_is_truncated_on_reopen(self, tmp_path):
        directory = tmp_path / "feed"
        with ChangeFeed(directory) as feed:
            for tid in range(3):
                publish(feed, "r", tid, tid)
        segment = directory / "topics" / "r" / "000000000000.jsonl"
        data = segment.read_bytes()
        torn = data[: len(data) - len(data.splitlines(True)[-1]) + 7]
        segment.write_bytes(torn)  # the crash cut the last append short
        reopened = ChangeFeed(directory)
        assert reopened.end_offsets() == {"r": 2}
        # The torn bytes are gone: appending again yields a clean file.
        publish(reopened, "r", 7, 7)
        reopened.close()
        lines = segment.read_text().splitlines()
        assert len(lines) == 3
        assert FeedRecord.from_json(lines[-1]).tid == 7

    def test_missing_active_segment_is_tolerated(self, tmp_path):
        directory = tmp_path / "feed"
        with ChangeFeed(directory, segment_records=1) as feed:
            publish(feed, "r", 0, 0)
        # Simulate a crash after the manifest named a successor segment
        # but before its first append created the file.
        manifest_path = directory / MANIFEST
        manifest = json.loads(manifest_path.read_text())
        manifest["topics"]["r"]["segments"].append("000000000001.jsonl")
        manifest_path.write_text(json.dumps(manifest))
        reopened = ChangeFeed(directory)
        assert reopened.end_offsets() == {"r": 1}

    def test_fsync_always_policy(self, tmp_path):
        feed = ChangeFeed(tmp_path / "feed", fsync="always")
        publish(feed, "r", 0, 1)
        feed.close()
        with pytest.raises(FeedError, match="fsync"):
            ChangeFeed(tmp_path / "other", fsync="sometimes")


class TestDurableDatabase:
    def test_database_restores_from_its_feed(self, tmp_path):
        directory = tmp_path / "db"
        db = Database(durable=str(directory))
        db.execute("CREATE TABLE emp (name TEXT, salary INTEGER)")
        db.execute("INSERT INTO emp VALUES ('ann', 10), ('bob', 20)")
        db.execute("UPDATE emp SET salary = 15 WHERE name = 'ann'")
        db.execute("DELETE FROM emp WHERE name = 'bob'")
        tids = dict(db.table("emp").items())
        db.changes.feed.close()

        restored = Database(durable=str(directory))
        assert dict(restored.table("emp").items()) == tids
        assert restored.changes.schema_version == db.changes.schema_version
        # The restored database keeps appending where the old one left
        # off (replay must not have re-published history).
        end = restored.changes.end
        restored.execute("INSERT INTO emp VALUES ('carol', 9)")
        assert restored.changes.end == end + 1

    def test_restore_replays_ddl_in_order(self, tmp_path):
        directory = tmp_path / "db"
        db = Database(durable=str(directory))
        db.execute("CREATE TABLE r (a INTEGER)")
        db.execute("INSERT INTO r VALUES (1)")
        db.execute("DROP TABLE r")
        db.execute("CREATE TABLE r (a INTEGER, b INTEGER)")
        db.execute("INSERT INTO r VALUES (2, 3)")
        db.changes.feed.close()

        restored = Database(durable=str(directory))
        assert list(restored.table("r").rows()) == [(2, 3)]
        assert restored.table("r").schema.arity == 2

    def test_durable_and_feed_are_exclusive(self, tmp_path):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError, match="not both"):
            Database(durable=str(tmp_path), feed=ChangeFeed())


class TestCommitDurabilityOrdering:
    def test_commit_flushes_acknowledged_records_first(self, tmp_path):
        # A commit must never survive a crash its records did not: the
        # buffered appends have to hit disk before the offsets file.
        directory = tmp_path / "feed"
        feed = ChangeFeed(directory)  # fsync="rotate": appends buffered
        consumer = feed.consumer("replica", start="beginning")
        for tid in range(3):
            publish(feed, "r", tid, tid)
        consumer.poll()
        consumer.commit()  # no explicit feed.flush()
        # Simulate the crash: reopen without close()/flush().
        reopened = ChangeFeed(directory)
        assert reopened.end_offsets() == {"r": 3}
        assert reopened.consumer("replica").committed == {"r": 3}

    def test_stale_commit_past_history_is_detected(self, tmp_path):
        directory = tmp_path / "feed"
        with ChangeFeed(directory) as feed:
            feed.consumer("replica", start="beginning")
            publish(feed, "r", 0, 0)
        reopened = ChangeFeed(directory)
        with pytest.raises(FeedError, match="past the end"):
            reopened.records_upto({"r": 5})


class TestEphemeralGroups:
    def test_anonymous_cursors_leave_no_disk_state(self, tmp_path):
        directory = tmp_path / "feed"
        with ChangeFeed(directory) as feed:
            consumer = feed.consumer()  # anonymous -> ephemeral
            publish(feed, "r", 0, 0)
            consumer.poll()
            consumer.commit()
            name = consumer.group
        assert not (directory / "consumers" / f"{name}.json").exists()
        # A fresh process's first anonymous cursor reuses the name but
        # must start at the end, not at any previous position.
        reopened = ChangeFeed(directory)
        fresh = reopened.consumer()
        assert fresh.group == name
        assert fresh.pending == 0

    def test_named_groups_do_persist(self, tmp_path):
        directory = tmp_path / "feed"
        with ChangeFeed(directory) as feed:
            consumer = feed.consumer("replica", start="beginning")
            publish(feed, "r", 0, 0)
            consumer.poll()
            consumer.commit()
        assert (directory / "consumers" / "replica.json").exists()
