"""Unit tests for the partitioned change feed.

The feed is the durability layer under incremental conflict detection
(see ``tests/conflicts/test_replica.py`` for the consumer side); here we
pin its mechanics: per-topic offsets, global sequence order, consumer
groups with committed offsets, retention/overflow, segment rotation, the
manifest, crash-safe replay of a torn segment tail, bounded-memory lazy
opens, cross-process live tailing, and durable retention truncation.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.engine.database import Database
from repro.engine.feed import (
    MANIFEST,
    SCHEMA_TOPIC,
    ChangeFeed,
    FeedRecord,
)
from repro.errors import FeedError


def publish(feed: ChangeFeed, relation: str, tid: int, value: int, op: str = "insert"):
    feed.publish_change(relation, tid, (value,), op)


class TestPartitioning:
    def test_offsets_are_per_topic_and_seq_is_global(self):
        feed = ChangeFeed()
        consumer = feed.consumer("g")
        publish(feed, "r", 0, 10)
        publish(feed, "s", 0, 20)
        publish(feed, "r", 1, 11)
        records, lost = consumer.poll()
        assert not lost
        assert [(r.topic, r.offset, r.seq) for r in records] == [
            ("r", 0, 0),
            ("s", 0, 1),
            ("r", 1, 2),
        ]

    def test_nothing_buffered_without_consumers(self):
        feed = ChangeFeed()
        publish(feed, "r", 0, 1)
        assert feed.next_seq == 0 and feed.topics() == []

    def test_schema_records_ride_their_own_topic(self):
        feed = ChangeFeed()
        consumer = feed.consumer("g")
        feed.publish_schema("create_table", "r", {"name": "r", "columns": []})
        publish(feed, "r", 0, 1)
        records, _ = consumer.poll()
        assert [r.topic for r in records] == [SCHEMA_TOPIC, "r"]
        assert feed.schema_version == 1

    def test_suspended_publishing_drops_everything(self):
        feed = ChangeFeed()
        feed.consumer("g")
        with feed.suspended():
            publish(feed, "r", 0, 1)
            feed.publish_schema("drop_table", "r")
        assert feed.next_seq == 0 and feed.schema_version == 0


class TestConsumerGroups:
    def test_poll_without_commit_redelivers_on_reattach(self):
        feed = ChangeFeed()
        consumer = feed.consumer("g")
        publish(feed, "r", 0, 1)
        records, _ = consumer.poll()
        assert len(records) == 1
        # A new consumer of the same group starts at the *committed*
        # offsets -- the uncommitted poll is redelivered.
        again = feed.consumer("g")
        redelivered, _ = again.poll()
        assert [r.seq for r in redelivered] == [r.seq for r in records]

    def test_commit_advances_the_group(self):
        feed = ChangeFeed()
        consumer = feed.consumer("g")
        publish(feed, "r", 0, 1)
        consumer.poll()
        consumer.commit()
        assert consumer.committed == {"r": 1}
        assert feed.consumer("g").poll() == ([], False)

    def test_groups_are_independent(self):
        feed = ChangeFeed()
        fast, slow = feed.consumer("fast"), feed.consumer("slow")
        publish(feed, "r", 0, 1)
        fast.poll()
        fast.commit()
        records, _ = slow.poll()
        assert len(records) == 1

    def test_poll_limit_stops_at_an_intermediate_cut(self):
        feed = ChangeFeed()
        consumer = feed.consumer("g")
        for tid in range(5):
            publish(feed, "r", tid, tid)
        first, _ = consumer.poll(limit=2)
        rest, _ = consumer.poll()
        assert [r.tid for r in first] == [0, 1]
        assert [r.tid for r in rest] == [2, 3, 4]

    def test_lag_counts_from_committed(self):
        feed = ChangeFeed()
        consumer = feed.consumer("g")
        for tid in range(3):
            publish(feed, "r", tid, tid)
        consumer.poll(limit=1)
        assert consumer.pending == 2  # past the read position
        assert consumer.lag == 3  # past the committed position
        consumer.commit()
        assert consumer.lag == 2


class TestRetention:
    def test_compaction_waits_for_the_slowest_group(self):
        feed = ChangeFeed()
        fast, slow = feed.consumer("fast"), feed.consumer("slow")
        publish(feed, "r", 0, 1)
        fast.poll()
        fast.commit()
        (topic,) = feed.topics()
        assert topic.start == 0  # retained for the slow group
        slow.poll()
        slow.commit()
        (topic,) = feed.topics()
        assert topic.start == 1

    def test_overflow_marks_lagging_groups_lost(self):
        feed = ChangeFeed(max_retained=2)
        consumer = feed.consumer("g")
        for tid in range(4):
            publish(feed, "r", tid, tid)
        assert consumer.lost
        records, lost = consumer.poll()
        assert lost and records == []
        assert not consumer.lost  # repositioned at the end
        publish(feed, "r", 9, 9)
        records, lost = consumer.poll()
        assert not lost and [r.tid for r in records] == [9]

    def test_records_upto_raises_past_retention(self):
        feed = ChangeFeed(max_retained=2)
        feed.consumer("g")
        for tid in range(4):
            publish(feed, "r", tid, tid)
        with pytest.raises(FeedError, match="no longer retained"):
            feed.records_upto({"r": 3})


class TestDurability:
    def test_records_survive_reopen(self, tmp_path):
        directory = tmp_path / "feed"
        with ChangeFeed(directory) as feed:
            publish(feed, "r", 0, 10)
            publish(feed, "s", 0, 20)
        reopened = ChangeFeed(directory)
        consumer = reopened.consumer("g", start="beginning")
        records, _ = consumer.poll()
        assert [(r.topic, r.tid, r.row) for r in records] == [
            ("r", 0, (10,)),
            ("s", 0, (20,)),
        ]

    def test_segments_rotate_and_land_in_the_manifest(self, tmp_path):
        directory = tmp_path / "feed"
        with ChangeFeed(directory, segment_records=2) as feed:
            for tid in range(5):
                publish(feed, "r", tid, tid)
        manifest = json.loads((directory / MANIFEST).read_text())
        segments = manifest["topics"]["r"]["segments"]
        assert segments == [
            "000000000000.jsonl",
            "000000000002.jsonl",
            "000000000004.jsonl",
        ]
        reopened = ChangeFeed(directory, segment_records=2)
        assert reopened.end_offsets() == {"r": 5}

    def test_committed_offsets_survive_reopen(self, tmp_path):
        directory = tmp_path / "feed"
        with ChangeFeed(directory) as feed:
            consumer = feed.consumer("replica", start="beginning")
            for tid in range(4):
                publish(feed, "r", tid, tid)
            consumer.poll(limit=2)
            consumer.commit()
        reopened = ChangeFeed(directory)
        resumed = reopened.consumer("replica")
        assert resumed.committed == {"r": 2}
        records, _ = resumed.poll()
        assert [r.tid for r in records] == [2, 3]

    def test_durable_feeds_never_overflow(self, tmp_path):
        feed = ChangeFeed(tmp_path / "feed", max_retained=2)
        consumer = feed.consumer("g")
        for tid in range(10):
            publish(feed, "r", tid, tid)
        assert not consumer.lost
        records, lost = consumer.poll()
        assert not lost and len(records) == 10

    def test_torn_tail_is_truncated_on_reopen(self, tmp_path):
        directory = tmp_path / "feed"
        with ChangeFeed(directory) as feed:
            for tid in range(3):
                publish(feed, "r", tid, tid)
        segment = directory / "topics" / "r" / "000000000000.jsonl"
        data = segment.read_bytes()
        torn = data[: len(data) - len(data.splitlines(True)[-1]) + 7]
        segment.write_bytes(torn)  # the crash cut the last append short
        reopened = ChangeFeed(directory)
        assert reopened.end_offsets() == {"r": 2}
        # The torn bytes are gone: appending again yields a clean file.
        publish(reopened, "r", 7, 7)
        reopened.close()
        lines = segment.read_text().splitlines()
        assert len(lines) == 3
        assert FeedRecord.from_json(lines[-1]).tid == 7

    def test_missing_active_segment_is_tolerated(self, tmp_path):
        directory = tmp_path / "feed"
        with ChangeFeed(directory, segment_records=1) as feed:
            publish(feed, "r", 0, 0)
        # Simulate a crash after the manifest named a successor segment
        # but before its first append created the file.
        manifest_path = directory / MANIFEST
        manifest = json.loads(manifest_path.read_text())
        manifest["topics"]["r"]["segments"].append("000000000001.jsonl")
        manifest_path.write_text(json.dumps(manifest))
        reopened = ChangeFeed(directory)
        assert reopened.end_offsets() == {"r": 1}

    def test_fsync_always_policy(self, tmp_path):
        feed = ChangeFeed(tmp_path / "feed", fsync="always")
        publish(feed, "r", 0, 1)
        feed.close()
        with pytest.raises(FeedError, match="fsync"):
            ChangeFeed(tmp_path / "other", fsync="sometimes")


class TestDurableDatabase:
    def test_database_restores_from_its_feed(self, tmp_path):
        directory = tmp_path / "db"
        db = Database(durable=str(directory))
        db.execute("CREATE TABLE emp (name TEXT, salary INTEGER)")
        db.execute("INSERT INTO emp VALUES ('ann', 10), ('bob', 20)")
        db.execute("UPDATE emp SET salary = 15 WHERE name = 'ann'")
        db.execute("DELETE FROM emp WHERE name = 'bob'")
        tids = dict(db.table("emp").items())
        db.changes.feed.close()

        restored = Database(durable=str(directory))
        assert dict(restored.table("emp").items()) == tids
        assert restored.changes.schema_version == db.changes.schema_version
        # The restored database keeps appending where the old one left
        # off (replay must not have re-published history).
        end = restored.changes.end
        restored.execute("INSERT INTO emp VALUES ('carol', 9)")
        assert restored.changes.end == end + 1

    def test_restore_replays_ddl_in_order(self, tmp_path):
        directory = tmp_path / "db"
        db = Database(durable=str(directory))
        db.execute("CREATE TABLE r (a INTEGER)")
        db.execute("INSERT INTO r VALUES (1)")
        db.execute("DROP TABLE r")
        db.execute("CREATE TABLE r (a INTEGER, b INTEGER)")
        db.execute("INSERT INTO r VALUES (2, 3)")
        db.changes.feed.close()

        restored = Database(durable=str(directory))
        assert list(restored.table("r").rows()) == [(2, 3)]
        assert restored.table("r").schema.arity == 2

    def test_durable_and_feed_are_exclusive(self, tmp_path):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError, match="not both"):
            Database(durable=str(tmp_path), feed=ChangeFeed())


class TestCommitDurabilityOrdering:
    def test_commit_flushes_acknowledged_records_first(self, tmp_path):
        # A commit must never survive a crash its records did not: the
        # buffered appends have to hit disk before the offsets file.
        directory = tmp_path / "feed"
        feed = ChangeFeed(directory)  # fsync="rotate": appends buffered
        consumer = feed.consumer("replica", start="beginning")
        for tid in range(3):
            publish(feed, "r", tid, tid)
        consumer.poll()
        consumer.commit()  # no explicit feed.flush()
        # Simulate the crash: reopen without close()/flush().
        reopened = ChangeFeed(directory)
        assert reopened.end_offsets() == {"r": 3}
        assert reopened.consumer("replica").committed == {"r": 3}

    def test_stale_commit_past_history_is_detected(self, tmp_path):
        directory = tmp_path / "feed"
        with ChangeFeed(directory) as feed:
            feed.consumer("replica", start="beginning")
            publish(feed, "r", 0, 0)
        reopened = ChangeFeed(directory)
        with pytest.raises(FeedError, match="past the end"):
            reopened.records_upto({"r": 5})


class TestPollMerging:
    """``_poll`` is a bounded k-way merge, not slice-of-everything."""

    def test_poll_limit_materializes_a_bounded_batch(self):
        feed = ChangeFeed()
        consumer = feed.consumer("g")
        for tid in range(100):
            publish(feed, "r" if tid % 2 else "s", tid, tid)
        records, _ = consumer.poll(limit=5)
        assert [r.seq for r in records] == [0, 1, 2, 3, 4]
        # The regression this pins: the old implementation materialized
        # the *entire* remaining backlog (100 records) and sliced to 5.
        # The merge may look one record ahead per topic, nothing more.
        assert feed.last_poll_materialized <= 5 + 2
        rest, _ = consumer.poll()
        assert [r.seq for r in rest] == list(range(5, 100))

    def test_small_batches_interleave_topics_in_seq_order(self):
        feed = ChangeFeed()
        consumer = feed.consumer("g")
        for tid in range(9):
            publish(feed, f"t{tid % 3}", tid // 3, tid)
        seen: list[int] = []
        while True:
            records, _ = consumer.poll(limit=2)
            if not records:
                break
            assert feed.last_poll_materialized <= 2 + 3
            seen.extend(r.seq for r in records)
        assert seen == list(range(9))


class TestValueRoundTrip:
    """REAL edge values survive the JSONL wire format -- as strict JSON."""

    def publish_row(self, tmp_path, row):
        directory = tmp_path / "feed"
        with ChangeFeed(directory) as feed:
            feed.publish_change("r", 0, row, "insert")
        reopened = ChangeFeed(directory)
        (record,) = reopened.records_upto(reopened.end_offsets())
        return record.row

    def test_non_finite_reals_round_trip(self, tmp_path):
        row = (float("nan"), float("inf"), float("-inf"), 2.0, -0.0)
        back = self.publish_row(tmp_path, row)
        assert math.isnan(back[0])
        assert back[1] == float("inf") and back[2] == float("-inf")
        assert back[3] == 2.0 and type(back[3]) is float
        assert str(back[4]) == "-0.0"

    def test_lines_are_strict_json(self):
        record = FeedRecord(
            seq=0,
            topic="r",
            offset=0,
            kind="change",
            tid=0,
            row=(float("nan"), float("inf"), "x", None, True, 7),
            op="insert",
        )
        line = record.to_json()
        # A strict foreign parser must never see the non-standard
        # ``NaN`` / ``Infinity`` tokens (json.loads only calls
        # parse_constant for exactly those).
        def reject(token):
            raise AssertionError(f"non-standard JSON token {token!r}")

        json.loads(line, parse_constant=reject)
        back = FeedRecord.from_json(line)
        assert math.isnan(back.row[0]) and back.row[1:] == record.row[1:]

    def test_unknown_wrapper_is_rejected(self):
        line = (
            '{"seq":0,"topic":"r","offset":0,"kind":"change",'
            '"tid":0,"row":[{"$f":"wat"}],"op":"insert"}'
        )
        with pytest.raises(FeedError):
            FeedRecord.from_json(line)


class TestLazyOpen:
    """Opening a durable feed parses no record bodies."""

    def build(self, directory, records=10, segment_records=3):
        with ChangeFeed(directory, segment_records=segment_records) as feed:
            for tid in range(records):
                publish(feed, "r", tid, tid)

    def test_end_offsets_only_open_parses_no_bodies(self, tmp_path, monkeypatch):
        directory = tmp_path / "feed"
        self.build(directory)

        def forbid(line):
            raise AssertionError(f"parsed a record body: {line!r}")

        monkeypatch.setattr(FeedRecord, "from_json", staticmethod(forbid))
        reopened = ChangeFeed(directory, segment_records=3)
        assert reopened.end_offsets() == {"r": 10}
        assert reopened.resident_records() == 0

    def test_open_keeps_only_the_active_tail_resident(self, tmp_path):
        directory = tmp_path / "feed"
        self.build(directory, records=10, segment_records=3)
        reopened = ChangeFeed(directory, segment_records=3)
        consumer = reopened.consumer("g", start="beginning")
        records, _ = consumer.poll()
        assert [r.tid for r in records] == list(range(10))
        # Tail (1 record) + the sealed-segment LRU; never the full 10.
        assert reopened.resident_records() <= 1 + 3 * reopened._cache.capacity

    def test_streaming_replay_is_segment_bounded(self, tmp_path):
        # The acceptance bar: over a history of >= 16 sealed segments,
        # replaying retains at most 2x segment_records records.
        directory = tmp_path / "feed"
        self.build(directory, records=51, segment_records=3)
        reopened = ChangeFeed(directory, segment_records=3)
        (topic,) = reopened.topics()
        assert topic.segments - 1 >= 16  # sealed segments
        tids = [r.tid for r in reopened.iter_records()]
        assert tids == list(range(51))
        # Streaming holds one segment chunk (3) at a time, never the
        # LRU, never the history.
        assert reopened.peak_resident_records <= 2 * 3

    def test_next_seq_recovered_lazily(self, tmp_path):
        directory = tmp_path / "feed"
        self.build(directory, records=5)
        reopened = ChangeFeed(directory, segment_records=3)
        assert reopened.next_seq == 5
        publish(reopened, "r", 9, 9)
        assert reopened.end_offsets() == {"r": 6}
        reopened.close()


class TestLiveTailing:
    """A reader instance sees the writer's flushed appends on poll."""

    def test_reader_sees_appends_made_after_open(self, tmp_path):
        directory = tmp_path / "feed"
        writer = ChangeFeed(directory)
        reader = ChangeFeed(directory)
        consumer = reader.consumer("follower", start="beginning")
        assert consumer.poll() == ([], False)
        publish(writer, "r", 0, 0)
        writer.flush()
        records, lost = consumer.poll()
        assert not lost and [r.tid for r in records] == [0]
        publish(writer, "r", 1, 1)
        publish(writer, "s", 0, 5)  # a topic born after the reader opened
        writer.flush()
        records, _ = consumer.poll()
        assert [(r.topic, r.tid) for r in records] == [("r", 1), ("s", 0)]
        writer.close()
        reader.close()

    def test_reader_follows_rotation(self, tmp_path):
        directory = tmp_path / "feed"
        writer = ChangeFeed(directory, segment_records=2)
        reader = ChangeFeed(directory, segment_records=2)
        consumer = reader.consumer("follower", start="beginning")
        for tid in range(5):
            publish(writer, "r", tid, tid)
        writer.flush()
        records, _ = consumer.poll()
        assert [r.tid for r in records] == [0, 1, 2, 3, 4]
        assert reader.end_offsets() == {"r": 5}
        writer.close()
        reader.close()

    def test_lag_refreshes_without_polling(self, tmp_path):
        directory = tmp_path / "feed"
        writer = ChangeFeed(directory)
        reader = ChangeFeed(directory)
        consumer = reader.consumer("follower", start="beginning")
        assert consumer.lag == 0
        publish(writer, "r", 0, 0)
        writer.flush()
        assert consumer.lag == 1
        writer.close()
        reader.close()

    def test_schema_version_follows_ddl(self, tmp_path):
        directory = tmp_path / "feed"
        writer = ChangeFeed(directory)
        reader = ChangeFeed(directory)
        reader.consumer("follower", start="beginning")
        writer.publish_schema("create_table", "r", {"name": "r"})
        writer.flush()
        reader.refresh()
        assert reader.schema_version == 1
        writer.close()
        reader.close()

    def test_reader_ignores_a_partially_flushed_line(self, tmp_path):
        directory = tmp_path / "feed"
        writer = ChangeFeed(directory)
        consumer_side = ChangeFeed(directory)
        consumer = consumer_side.consumer("follower", start="beginning")
        publish(writer, "r", 0, 0)
        writer.flush()
        consumer.poll()
        # Simulate a half-flushed append from the writer's buffer.
        segment = directory / "topics" / "r" / "000000000000.jsonl"
        whole = FeedRecord(
            seq=1, topic="r", offset=1, kind="change", tid=1, row=(1,), op="insert"
        ).to_json()
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write(whole[: len(whole) // 2])
        assert consumer.poll() == ([], False)  # incomplete line invisible
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write(whole[len(whole) // 2 :] + "\n")
        records, _ = consumer.poll()
        assert [r.tid for r in records] == [1]
        writer.close()
        consumer_side.close()

    def test_writer_instances_do_not_rescan(self, tmp_path):
        directory = tmp_path / "feed"
        writer = ChangeFeed(directory)
        publish(writer, "r", 0, 0)
        assert writer.refresh() is False  # the writer's memory is truth
        writer.close()


class TestRetentionTruncation:
    """``retention="truncate"``: sealed segments die once consumed."""

    def build(self, directory, records=6, **kwargs):
        feed = ChangeFeed(
            directory, segment_records=2, retention="truncate", **kwargs
        )
        consumer = feed.consumer("g", start="beginning")
        for tid in range(records):
            publish(feed, "r", tid, tid)
        return feed, consumer

    def test_sealed_segments_are_deleted_once_the_group_passes(self, tmp_path):
        directory = tmp_path / "feed"
        feed, consumer = self.build(directory)
        consumer.poll()
        consumer.commit()
        (topic,) = [t for t in feed.topics() if t.name == "r"]
        assert topic.start == 4  # only the newest segment survives
        names = sorted(p.name for p in (directory / "topics" / "r").glob("*"))
        assert names == ["000000000004.jsonl"]
        manifest = json.loads((directory / MANIFEST).read_text())
        assert manifest["topics"]["r"]["base"] == 4
        assert manifest["topics"]["r"]["segments"] == ["000000000004.jsonl"]
        feed.close()

    def test_truncation_waits_for_the_slowest_group(self, tmp_path):
        directory = tmp_path / "feed"
        feed, fast = self.build(directory)
        slow = feed.consumer("slow", start="beginning")
        fast.poll()
        fast.commit()
        (topic,) = [t for t in feed.topics() if t.name == "r"]
        assert topic.start == 0  # "slow" still needs the prefix
        slow.poll()
        slow.commit()
        (topic,) = [t for t in feed.topics() if t.name == "r"]
        assert topic.start == 4
        feed.close()

    def test_truncated_prefix_is_no_longer_retained(self, tmp_path):
        directory = tmp_path / "feed"
        feed, consumer = self.build(directory)
        consumer.poll()
        consumer.commit()
        with pytest.raises(FeedError, match="no longer retained"):
            feed.records_upto({"r": 6})
        feed.close()

    def test_keep_policy_never_deletes(self, tmp_path):
        directory = tmp_path / "feed"
        feed = ChangeFeed(directory, segment_records=2)  # default "keep"
        consumer = feed.consumer("g", start="beginning")
        for tid in range(6):
            publish(feed, "r", tid, tid)
        consumer.poll()
        consumer.commit()
        assert len(list((directory / "topics" / "r").glob("*.jsonl"))) == 3
        feed.close()

    def test_truncation_races_a_reattaching_group(self, tmp_path):
        # A group registered by another instance *before* truncation
        # runs must hold the segments -- registration writes the
        # consumers/ file at attach time, not first commit.
        directory = tmp_path / "feed"
        feed, consumer = self.build(directory)
        feed.flush()
        reader = ChangeFeed(directory)
        late = reader.consumer("late", start="beginning")
        consumer.poll()
        consumer.commit()  # would truncate -- but "late" is on disk at 0
        assert len(list((directory / "topics" / "r").glob("*.jsonl"))) == 3
        records, lost = late.poll()
        assert not lost and [r.tid for r in records] == list(range(6))
        feed.close()
        reader.close()

    def test_group_attaching_after_truncation_finds_history_gone(self, tmp_path):
        directory = tmp_path / "feed"
        feed, consumer = self.build(directory)
        consumer.poll()
        consumer.commit()  # truncates [0, 4)
        feed.flush()
        reader = ChangeFeed(directory)
        late = reader.consumer("late", start="beginning")
        assert late.lost  # offsets [0, 4) are gone
        records, lost = late.poll()
        assert lost and records == []
        with pytest.raises(FeedError, match="no longer retained"):
            reader.records_upto({"r": 6})
        feed.close()
        reader.close()

    def test_snapshot_is_the_groups_retention_floor(self, tmp_path):
        directory = tmp_path / "feed"
        feed, consumer = self.build(directory)
        consumer.poll(limit=2)
        consumer.commit()
        consumer.store_snapshot({"state": "at-2"})
        consumer.poll()
        consumer.commit()  # committed 6, but the snapshot pins offset 2
        names = sorted(p.name for p in (directory / "topics" / "r").glob("*"))
        assert names == [
            "000000000002.jsonl",
            "000000000004.jsonl",
        ]  # [0, 2) reclaimed; [2, 6) held for snapshot recovery
        committed, payload = consumer.load_snapshot()
        assert committed == {"r": 2} and payload == {"state": "at-2"}
        # The snapshot gap replays fine.
        assert [r.tid for r in feed.iter_records(start=committed)] == [
            2, 3, 4, 5,
        ]
        feed.close()

    def test_snapshots_need_a_named_durable_group(self, tmp_path):
        feed = ChangeFeed()
        consumer = feed.consumer("g")
        with pytest.raises(FeedError, match="durable"):
            consumer.store_snapshot({})
        durable = ChangeFeed(tmp_path / "feed")
        anonymous = durable.consumer()
        with pytest.raises(FeedError, match="named group"):
            anonymous.store_snapshot({})
        durable.close()

    def test_drop_group_releases_the_retention_hold(self, tmp_path):
        directory = tmp_path / "feed"
        feed, consumer = self.build(directory)
        feed.consumer("stuck", start="beginning")
        consumer.poll()
        consumer.commit()
        assert len(list((directory / "topics" / "r").glob("*.jsonl"))) == 3
        feed.drop_group("stuck")
        assert not (directory / "consumers" / "stuck.json").exists()
        feed.truncate()
        assert len(list((directory / "topics" / "r").glob("*.jsonl"))) == 1
        feed.close()

    def test_writer_rotation_does_not_resurrect_truncated_segments(
        self, tmp_path
    ):
        # Truncation may run in a *consumer* process; when the writer
        # next rotates (and stores its manifest) it must fold that
        # truncation in rather than resurrect the deleted names.
        directory = tmp_path / "feed"
        writer = ChangeFeed(directory, segment_records=2)
        for tid in range(6):
            publish(writer, "r", tid, tid)
        writer.flush()
        consumer_side = ChangeFeed(directory, retention="truncate")
        consumer = consumer_side.consumer("g", start="beginning")
        consumer.poll()
        consumer.commit()  # truncates [0, 4) from the consumer process
        manifest = json.loads((directory / MANIFEST).read_text())
        assert manifest["topics"]["r"]["base"] == 4
        for tid in range(6, 9):  # the writer rotates twice more
            publish(writer, "r", tid, tid)
        writer.flush()
        manifest = json.loads((directory / MANIFEST).read_text())
        assert manifest["topics"]["r"]["base"] == 4
        assert manifest["topics"]["r"]["segments"] == [
            "000000000004.jsonl",
            "000000000006.jsonl",
            "000000000008.jsonl",
        ]
        records, _ = consumer.poll()
        assert [r.tid for r in records] == [6, 7, 8]
        writer.close()
        consumer_side.close()

    def test_writer_side_cursor_observes_foreign_truncation_as_lost(
        self, tmp_path
    ):
        # A writer process never re-scans the manifest, so a truncation
        # performed by a consumer process can delete sealed segments an
        # in-writer ephemeral cursor (invisible to the foreign floor
        # scan) still needs.  That must surface as the ordinary
        # ``lost`` fallback -- not a FeedError out of every poll.
        directory = tmp_path / "feed"
        writer = ChangeFeed(directory, segment_records=2)
        stale = writer.consumer()  # ephemeral, at offset 0, never on disk
        for tid in range(6):
            publish(writer, "r", tid, tid)
        writer.flush()
        # Age the writer's resident copies out so the poll must go to
        # disk: the LRU holds the rotation-time segments.
        writer._cache.clear()
        foreign = ChangeFeed(directory, retention="truncate")
        consumer = foreign.consumer("g", start="beginning")
        consumer.poll()
        consumer.commit()  # deletes the sealed segments
        foreign.close()

        records, lost = stale.poll()
        assert lost and records == []
        publish(writer, "r", 9, 9)
        writer.flush()
        records, lost = stale.poll()
        assert not lost and [r.tid for r in records] == [9]
        writer.close()

    def test_crash_during_truncation_leaves_a_repairable_manifest(
        self, tmp_path, monkeypatch
    ):
        from pathlib import Path

        directory = tmp_path / "feed"
        feed, consumer = self.build(directory)
        consumer.poll()
        consumer.commit()  # commit triggers truncation...
        feed.close()

        # ...but simulate the crash *between* the manifest write and the
        # unlinks by re-creating the deleted segment files from a copy.
        untruncated = tmp_path / "copy"
        feed2, consumer2 = self.build(untruncated)
        feed2.flush()
        for path in sorted((untruncated / "topics" / "r").glob("*.jsonl")):
            target = directory / "topics" / "r" / path.name
            if not target.exists():
                target.write_bytes(path.read_bytes())
        feed2.close()
        assert len(list((directory / "topics" / "r").glob("*.jsonl"))) == 3

        # Reopen: the manifest is authoritative; the orphans are swept.
        reopened = ChangeFeed(directory, segment_records=2)
        assert reopened.end_offsets() == {"r": 6}
        names = sorted(p.name for p in (directory / "topics" / "r").glob("*"))
        assert names == ["000000000004.jsonl"]
        resumed = reopened.consumer("g")
        assert resumed.committed == {"r": 6}
        publish(reopened, "r", 9, 9)  # appends continue past the repair
        assert reopened.end_offsets() == {"r": 7}
        reopened.close()


class TestEphemeralGroups:
    def test_anonymous_cursors_leave_no_disk_state(self, tmp_path):
        directory = tmp_path / "feed"
        with ChangeFeed(directory) as feed:
            consumer = feed.consumer()  # anonymous -> ephemeral
            publish(feed, "r", 0, 0)
            consumer.poll()
            consumer.commit()
            name = consumer.group
        assert not (directory / "consumers" / f"{name}.json").exists()
        # A fresh process's first anonymous cursor reuses the name but
        # must start at the end, not at any previous position.
        reopened = ChangeFeed(directory)
        fresh = reopened.consumer()
        assert fresh.group == name
        assert fresh.pending == 0

    def test_named_groups_do_persist(self, tmp_path):
        directory = tmp_path / "feed"
        with ChangeFeed(directory) as feed:
            consumer = feed.consumer("replica", start="beginning")
            publish(feed, "r", 0, 0)
            consumer.poll()
            consumer.commit()
        assert (directory / "consumers" / "replica.json").exists()
