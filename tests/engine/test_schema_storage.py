"""Unit tests for table schemas, heap storage and the catalog."""

import pytest

from repro.engine.catalog import Catalog
from repro.engine.schema import Column, make_schema
from repro.engine.storage import Table
from repro.engine.types import SQLType
from repro.errors import CatalogError, ExecutionError, SchemaError


def r_schema(**kwargs):
    return make_schema(
        "r", [("a", SQLType.INTEGER), ("b", SQLType.TEXT)], **kwargs
    )


class TestSchema:
    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            make_schema("r", [("a", SQLType.INTEGER), ("A", SQLType.TEXT)])

    def test_primary_key_must_exist(self):
        with pytest.raises(SchemaError):
            make_schema("r", [("a", SQLType.INTEGER)], primary_key=["z"])

    def test_index_of_case_insensitive(self):
        schema = r_schema()
        assert schema.index_of("A") == 0
        assert schema.index_of("b") == 1
        with pytest.raises(SchemaError):
            schema.index_of("c")

    def test_coerce_row_arity(self):
        schema = r_schema()
        with pytest.raises(SchemaError):
            schema.coerce_row((1,))

    def test_coerce_row_not_null(self):
        schema = make_schema("r", [Column("a", SQLType.INTEGER, nullable=False)])
        with pytest.raises(SchemaError):
            schema.coerce_row((None,))

    def test_key_indexes(self):
        schema = r_schema(primary_key=["b"])
        assert schema.key_indexes() == (1,)


class TestTable:
    def test_insert_assigns_increasing_tids(self):
        table = Table(r_schema())
        t0 = table.insert((1, "x"))
        t1 = table.insert((2, "y"))
        assert (t0, t1) == (0, 1)
        assert table.get(t1) == (2, "y")

    def test_lookup_by_value(self):
        table = Table(r_schema())
        table.insert((1, "x"))
        table.insert((1, "x"))  # duplicate gets its own tid
        table.insert((2, "y"))
        assert len(table.lookup((1, "x"))) == 2
        assert table.lookup((9, "z")) == frozenset()
        assert table.has_duplicates()

    def test_delete_updates_value_index(self):
        table = Table(r_schema())
        tid = table.insert((1, "x"))
        table.delete(tid)
        assert table.lookup((1, "x")) == frozenset()
        assert len(table) == 0
        with pytest.raises(ExecutionError):
            table.delete(tid)

    def test_update_keeps_tid(self):
        table = Table(r_schema())
        tid = table.insert((1, "x"))
        table.update(tid, (5, "z"))
        assert table.get(tid) == (5, "z")
        assert table.lookup((1, "x")) == frozenset()
        assert tid in table.lookup((5, "z"))

    def test_update_missing_tid(self):
        table = Table(r_schema())
        with pytest.raises(ExecutionError):
            table.update(3, (1, "x"))

    def test_contains_by_value(self):
        table = Table(r_schema())
        table.insert((1, "x"))
        assert (1, "x") in table
        assert (2, "x") not in table

    def test_restricted_rows(self):
        table = Table(r_schema())
        tids = [table.insert((i, "v")) for i in range(4)]
        kept = frozenset(tids[:2])
        rows = list(table.restricted_rows(kept))
        assert [tid for tid, _row in rows] == tids[:2]
        assert len(list(table.restricted_rows(None))) == 4

    def test_coercion_on_insert(self):
        table = Table(make_schema("r", [("a", SQLType.REAL)]))
        table.insert((1,))
        assert table.get(0) == (1.0,)


class TestCatalog:
    def test_create_and_lookup(self):
        catalog = Catalog()
        catalog.create_table(r_schema())
        assert catalog.has_table("R")
        assert catalog.table("r").schema.name == "r"

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.create_table(r_schema())
        with pytest.raises(CatalogError):
            catalog.create_table(r_schema())

    def test_drop(self):
        catalog = Catalog()
        catalog.create_table(r_schema())
        catalog.drop_table("R")
        assert not catalog.has_table("r")
        with pytest.raises(CatalogError):
            catalog.drop_table("r")
        catalog.drop_table("r", if_exists=True)  # no error

    def test_unknown_table(self):
        with pytest.raises(CatalogError):
            Catalog().table("nope")

    def test_table_names_order(self):
        catalog = Catalog()
        catalog.create_table(make_schema("x", [("a", SQLType.INTEGER)]))
        catalog.create_table(make_schema("y", [("a", SQLType.INTEGER)]))
        assert catalog.table_names() == ["x", "y"]
