"""Tests for EXISTS / IN subqueries, correlation and decorrelation."""

import pytest

from repro.engine import Database


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE r (a INTEGER, b INTEGER)")
    database.execute("CREATE TABLE s (a INTEGER, b INTEGER)")
    database.execute("INSERT INTO r VALUES (1,1), (1,2), (2,5), (3,7), (4, NULL)")
    database.execute("INSERT INTO s VALUES (1,9), (2,5), (5,0)")
    return database


class TestExists:
    def test_uncorrelated_exists(self, db):
        rows = db.query(
            "SELECT a FROM r WHERE EXISTS (SELECT * FROM s WHERE s.b = 0)"
        ).rows
        assert len(rows) == 5

    def test_uncorrelated_exists_false(self, db):
        rows = db.query(
            "SELECT a FROM r WHERE EXISTS (SELECT * FROM s WHERE s.b = 42)"
        ).rows
        assert rows == []

    def test_correlated_exists(self, db):
        rows = db.query(
            "SELECT DISTINCT r.a FROM r WHERE EXISTS"
            " (SELECT * FROM s WHERE s.a = r.a)"
        ).rows
        assert sorted(rows) == [(1,), (2,)]

    def test_correlated_not_exists(self, db):
        rows = db.query(
            "SELECT DISTINCT r.a FROM r WHERE NOT EXISTS"
            " (SELECT * FROM s WHERE s.a = r.a)"
        ).rows
        assert sorted(rows) == [(3,), (4,)]

    def test_correlated_with_residual(self, db):
        # The FD-residue shape: equality + correlated inequality.
        rows = db.query(
            "SELECT r.a, r.b FROM r WHERE NOT EXISTS"
            " (SELECT * FROM r t WHERE t.a = r.a AND t.b <> r.b)"
        ).rows
        assert sorted(rows, key=repr) == [(2, 5), (3, 7), (4, None)]

    def test_decorrelation_probes_cached(self, db):
        db.stats.reset()
        db.query(
            "SELECT r.a FROM r WHERE EXISTS (SELECT * FROM s WHERE s.a = r.a)"
        )
        # One inner evaluation (hash build), one probe per outer row.
        assert db.stats.subquery_evaluations == 1
        assert db.stats.subquery_cache_hits == 5

    def test_null_outer_key_never_matches(self, db):
        rows = db.query(
            "SELECT r.a FROM r WHERE EXISTS (SELECT * FROM s WHERE s.b = r.b)"
        ).rows
        assert sorted(rows) == [(2,)]  # r(2,5) matches s(2,5); NULL b does not

    def test_exists_with_local_filter(self, db):
        rows = db.query(
            "SELECT DISTINCT r.a FROM r WHERE EXISTS"
            " (SELECT * FROM s WHERE s.a = r.a AND s.b > 5)"
        ).rows
        assert rows == [(1,)]


class TestInSubquery:
    def test_in_subquery(self, db):
        rows = db.query("SELECT DISTINCT a FROM r WHERE a IN (SELECT a FROM s)").rows
        assert sorted(rows) == [(1,), (2,)]

    def test_not_in_subquery(self, db):
        rows = db.query(
            "SELECT DISTINCT a FROM r WHERE a NOT IN (SELECT a FROM s WHERE a < 5)"
        ).rows
        assert sorted(rows) == [(3,), (4,)]

    def test_correlated_in_subquery(self, db):
        rows = db.query(
            "SELECT r.a FROM r WHERE r.b IN (SELECT s.b FROM s WHERE s.a = r.a)"
        ).rows
        assert rows == [(2,)]

    def test_in_subquery_null_needle(self, db):
        # r(4, NULL): NULL IN (...) is unknown, row filtered out.
        rows = db.query("SELECT a FROM r WHERE b IN (SELECT b FROM s)").rows
        assert rows == [(2,)]


class TestNestedCorrelation:
    def test_two_level_correlation(self, db):
        # Inner-most subquery references the outermost scope.
        rows = db.query(
            "SELECT DISTINCT r.a FROM r WHERE EXISTS ("
            "  SELECT * FROM s WHERE s.a = r.a AND EXISTS ("
            "    SELECT * FROM s t WHERE t.b = s.b AND t.a <> r.a))"
        ).rows
        assert rows == []

    def test_nested_exists_same_table(self, db):
        rows = db.query(
            "SELECT DISTINCT a FROM s WHERE EXISTS ("
            "  SELECT * FROM r WHERE r.a = s.a AND EXISTS ("
            "    SELECT * FROM r u WHERE u.a = r.a AND u.b <> r.b))"
        ).rows
        assert rows == [(1,)]


class TestGenericFallbackPath:
    """Shapes decorrelation refuses: the memoized generic path must work."""

    def test_correlated_inequality_only(self, db):
        # No equality conjunct at all: cannot hash, nested evaluation.
        rows = db.query(
            "SELECT DISTINCT r.a FROM r WHERE EXISTS"
            " (SELECT * FROM s WHERE s.a > r.a)"
        ).rows
        assert sorted(rows) == [(1,), (2,), (3,), (4,)]

    def test_exists_over_union(self, db):
        rows = db.query(
            "SELECT DISTINCT r.a FROM r WHERE EXISTS"
            " ((SELECT a FROM s WHERE s.a = r.a) UNION"
            "  (SELECT a FROM s WHERE s.a = r.a + 2))"
        ).rows
        assert sorted(rows) == [(1,), (2,), (3,)]

    def test_exists_with_limit(self, db):
        rows = db.query(
            "SELECT DISTINCT r.a FROM r WHERE EXISTS"
            " (SELECT * FROM s WHERE s.a = r.a LIMIT 1)"
        ).rows
        assert sorted(rows) == [(1,), (2,)]

    def test_uncorrelated_cached_once(self, db):
        db.stats.reset()
        db.query(
            "SELECT r.a FROM r WHERE EXISTS (SELECT * FROM s WHERE s.a > 4)"
        )
        # The generic path memoizes on captures; none -> one evaluation.
        assert db.stats.subquery_evaluations == 1
