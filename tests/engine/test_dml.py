"""Tests for DDL / DML execution through the Database facade."""

import pytest

from repro.errors import CatalogError, ExecutionError, SchemaError


class TestCreateDrop:
    def test_create_and_describe(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b TEXT NOT NULL, PRIMARY KEY (a))")
        schema = db.table("t").schema
        assert schema.column_names == ("a", "b")
        assert schema.primary_key == ("a",)
        assert not schema.column("b").nullable

    def test_create_duplicate_rejected(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE t (a INTEGER)")

    def test_if_not_exists(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("CREATE TABLE IF NOT EXISTS t (a INTEGER)")  # no error

    def test_drop(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("DROP TABLE t")
        with pytest.raises(CatalogError):
            db.query("SELECT * FROM t")


class TestInsert:
    def test_insert_rowcount(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        result = db.execute("INSERT INTO t VALUES (1,'x'), (2,'y')")
        assert result.rowcount == 2

    def test_insert_with_columns_fills_nulls(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b TEXT, c REAL)")
        db.execute("INSERT INTO t (c, a) VALUES (1.5, 7)")
        assert db.query("SELECT * FROM t").rows == [(7, None, 1.5)]

    def test_insert_arity_mismatch(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        with pytest.raises(SchemaError):
            db.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(ExecutionError):
            db.execute("INSERT INTO t (a) VALUES (1, 'x')")

    def test_insert_not_null_violation(self, db):
        db.execute("CREATE TABLE t (a INTEGER NOT NULL)")
        with pytest.raises(SchemaError):
            db.execute("INSERT INTO t VALUES (NULL)")

    def test_insert_expression_values(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (1 + 2 * 3)")
        assert db.query("SELECT a FROM t").scalar() == 7

    def test_key_uniqueness_not_enforced(self, db):
        # Deliberate: Hippo queries databases that VIOLATE their keys.
        db.execute("CREATE TABLE t (a INTEGER PRIMARY KEY, b TEXT)")
        db.execute("INSERT INTO t VALUES (1,'x'), (1,'y')")
        assert len(db.query("SELECT * FROM t").rows) == 2


class TestDeleteUpdate:
    def test_delete_where(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        result = db.execute("DELETE FROM t WHERE a >= 2")
        assert result.rowcount == 2
        assert db.query("SELECT a FROM t").rows == [(1,)]

    def test_delete_all(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        assert db.execute("DELETE FROM t").rowcount == 2

    def test_update(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        db.execute("INSERT INTO t VALUES (1,'x'), (2,'y')")
        result = db.execute("UPDATE t SET a = a * 10 WHERE b = 'y'")
        assert result.rowcount == 1
        assert sorted(db.query("SELECT a FROM t").rows) == [(1,), (20,)]

    def test_update_swaps_columns_simultaneously(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
        db.execute("INSERT INTO t VALUES (1, 2)")
        db.execute("UPDATE t SET a = b, b = a")
        assert db.query("SELECT a, b FROM t").rows == [(2, 1)]

    def test_update_preserves_tid(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        tid = next(db.table("t").tids())
        db.execute("UPDATE t SET a = 5")
        assert db.table("t").get(tid) == (5,)


class TestFacade:
    def test_execute_script(self, db):
        results = db.execute_script(
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT a FROM t"
        )
        assert results[-1].rows == [(1,)]

    def test_query_rejects_dml(self, db):
        with pytest.raises(ExecutionError):
            db.query("CREATE TABLE t (a INT)")

    def test_scalar_shape_check(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        with pytest.raises(ExecutionError):
            db.query("SELECT a FROM t").scalar()

    def test_lookup_counts_stats(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.stats.reset()
        assert db.lookup("t", (1,)) == frozenset({0})
        assert db.lookup("t", (9,)) == frozenset()
        assert db.stats.point_lookups == 2

    def test_statements_counted(self, db):
        db.stats.reset()
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        assert db.stats.statements == 2
