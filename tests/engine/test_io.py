"""Tests for SQL dump / restore and CSV import / export."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import Database
from repro.engine.io import dump_csv, dump_sql, load_csv, restore_sql
from repro.errors import SchemaError


class TestDumpRestore:
    def test_round_trip(self, emp_db):
        script = dump_sql(emp_db)
        restored = restore_sql(script)
        assert restored.catalog.table_names() == emp_db.catalog.table_names()
        assert sorted(restored.table("emp").rows()) == sorted(
            emp_db.table("emp").rows()
        )
        assert restored.table("emp").schema.primary_key == ("name",)

    def test_dump_escapes_strings(self, db):
        db.execute("CREATE TABLE t (s TEXT)")
        db.execute("INSERT INTO t VALUES ('o''brien')")
        restored = restore_sql(dump_sql(db))
        assert list(restored.table("t").rows()) == [("o'brien",)]

    def test_dump_nulls_and_booleans(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b BOOLEAN)")
        db.execute("INSERT INTO t VALUES (NULL, TRUE), (2, NULL)")
        restored = restore_sql(dump_sql(db))
        assert sorted(restored.table("t").rows(), key=repr) == sorted(
            [(None, True), (2, None)], key=repr
        )

    def test_not_null_preserved(self, db):
        db.execute("CREATE TABLE t (a INTEGER NOT NULL)")
        restored = restore_sql(dump_sql(db))
        assert not restored.table("t").schema.columns[0].nullable

    def test_empty_database(self, db):
        assert dump_sql(db) == ""

    def test_subset_of_tables(self, two_table_db):
        script = dump_sql(two_table_db, ["s"])
        restored = restore_sql(script)
        assert restored.catalog.table_names() == ["s"]

    def test_large_table_chunks(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.insert_rows("t", [(i,) for i in range(1203)])
        restored = restore_sql(dump_sql(db))
        assert len(restored.table("t")) == 1203

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.one_of(st.none(), st.integers(-5, 5)),
                st.one_of(st.none(), st.text(alphabet="ab'\"x ", max_size=5)),
            ),
            max_size=8,
        )
    )
    def test_round_trip_property(self, rows):
        db = Database()
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        db.insert_rows("t", rows)
        restored = restore_sql(dump_sql(db))
        assert sorted(restored.table("t").rows(), key=repr) == sorted(
            db.table("t").rows(), key=repr
        )


class TestCSV:
    def test_load_with_header_any_order(self, db):
        db.execute("CREATE TABLE t (a INTEGER, name TEXT, ok BOOLEAN)")
        source = io.StringIO("name,ok,a\nann,true,1\nbob,false,2\n")
        assert load_csv(db, "t", source) == 2
        assert sorted(db.table("t").rows()) == [
            (1, "ann", True),
            (2, "bob", False),
        ]

    def test_load_positional(self, db):
        db.execute("CREATE TABLE t (a INTEGER, s REAL)")
        source = io.StringIO("1,2.5\n3,4.5\n")
        assert load_csv(db, "t", source, has_header=False) == 2
        assert list(db.table("t").rows()) == [(1, 2.5), (3, 4.5)]

    def test_empty_field_is_null(self, db):
        db.execute("CREATE TABLE t (a INTEGER, s TEXT)")
        load_csv(db, "t", io.StringIO("a,s\n,x\n2,\n"))
        assert list(db.table("t").rows()) == [(None, "x"), (2, None)]

    def test_unknown_header_column(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        with pytest.raises(SchemaError):
            load_csv(db, "t", io.StringIO("zz\n1\n"))

    def test_arity_mismatch(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
        with pytest.raises(SchemaError):
            load_csv(db, "t", io.StringIO("a,b\n1\n"))
        with pytest.raises(SchemaError):
            load_csv(db, "t", io.StringIO("1,2,3\n"), has_header=False)

    def test_bad_boolean(self, db):
        db.execute("CREATE TABLE t (ok BOOLEAN)")
        with pytest.raises(SchemaError):
            load_csv(db, "t", io.StringIO("ok\nmaybe\n"))

    def test_empty_file_with_header_flag(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        assert load_csv(db, "t", io.StringIO("")) == 0

    def test_dump_then_load_round_trip(self, emp_db):
        target = io.StringIO()
        count = dump_csv(emp_db, "emp", target)
        assert count == 6
        fresh = Database()
        fresh.execute(
            "CREATE TABLE emp (name TEXT, dept TEXT, salary INTEGER)"
        )
        target.seek(0)
        assert load_csv(fresh, "emp", target) == 6
        assert sorted(fresh.table("emp").rows()) == sorted(
            emp_db.table("emp").rows()
        )

    def test_integration_through_cqa(self, db):
        """Two CSV sources -> one table -> consistent answers."""
        from repro import HippoEngine
        from repro.constraints import FunctionalDependency

        db.execute("CREATE TABLE c (id INTEGER, city TEXT)")
        load_csv(db, "c", io.StringIO("id,city\n1,buffalo\n2,cracow\n"))
        load_csv(db, "c", io.StringIO("id,city\n2,delft\n3,athens\n"))
        hippo = HippoEngine(db, [FunctionalDependency("c", ["id"], ["city"])])
        answers = hippo.consistent_answers("SELECT * FROM c")
        assert answers.as_set() == {(1, "buffalo"), (3, "athens")}
