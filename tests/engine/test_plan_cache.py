"""Statement→plan cache: hits, epoch invalidation, and correctness.

The cache must never serve a stale plan: any DDL, index creation or
constraint (re)binding moves the catalog epoch and forces a replan.  The
final class is the property-style check -- cached answers must equal the
answers of an identical database with the cache disabled, over random
mixed workloads.
"""

from __future__ import annotations

import io
import random

import pytest

from repro.cli import HippoShell
from repro.constraints import FunctionalDependency
from repro.core.hippo import HippoEngine
from repro.engine.database import Database
from repro.engine.planner import PlanCache, normalize_statement
from repro.engine.stats import ExecutionStats
from repro.errors import CatalogError
from repro.rewriting import RewritingEngine


def fresh_db() -> Database:
    db = Database()
    db.execute("CREATE TABLE emp (name TEXT, salary INTEGER)")
    db.execute("INSERT INTO emp VALUES ('ann', 10), ('bob', 5)")
    return db


class TestNormalization:
    def test_outside_only_trimming(self):
        assert normalize_statement("  SELECT 1 ;  ") == "SELECT 1"
        assert normalize_statement("SELECT 1") == "SELECT 1"

    def test_inner_text_is_preserved(self):
        # Inner whitespace and case must NOT be folded: they can differ
        # inside string literals, and folding would share a plan between
        # genuinely distinct statements.
        assert normalize_statement("SELECT  'a  b'") == "SELECT  'a  b'"

    def test_trailing_semicolon_variants_share_an_entry(self):
        db = fresh_db()
        db.execute("SELECT name FROM emp")
        db.execute("SELECT name FROM emp;")
        db.execute("  SELECT name FROM emp ;  ")
        assert db.stats.plan_cache_misses == 1
        assert db.stats.plan_cache_hits == 2


class TestCacheHits:
    def test_repeated_select_hits(self):
        db = fresh_db()
        first = db.execute("SELECT name FROM emp ORDER BY name")
        second = db.execute("SELECT name FROM emp ORDER BY name")
        assert first.rows == second.rows == [("ann",), ("bob",)]
        assert db.stats.plan_cache_misses == 1
        assert db.stats.plan_cache_hits == 1

    def test_cached_plan_sees_fresh_data(self):
        # Plans read live tables: DML does not invalidate, yet a cache
        # hit must observe the mutation.
        db = fresh_db()
        assert db.execute("SELECT COUNT(*) FROM emp").scalar() == 2
        db.execute("INSERT INTO emp VALUES ('cyd', 7)")
        assert db.execute("SELECT COUNT(*) FROM emp").scalar() == 3
        db.execute("DELETE FROM emp WHERE name = 'ann'")
        assert db.execute("SELECT COUNT(*) FROM emp").scalar() == 2
        assert db.stats.plan_cache_hits == 2

    def test_query_and_execute_share_the_cache(self):
        db = fresh_db()
        db.query("SELECT salary FROM emp")
        db.execute("SELECT salary FROM emp")
        assert db.stats.plan_cache_hits == 1

    def test_dml_does_not_pollute_miss_counter(self):
        db = fresh_db()
        db.execute("INSERT INTO emp VALUES ('dee', 1)")
        db.execute("DELETE FROM emp WHERE name = 'dee'")
        assert db.stats.plan_cache_misses == 0

    def test_disabled_cache_never_hits(self):
        db = Database(plan_cache=False)
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        for _ in range(3):
            assert db.execute("SELECT a FROM t").rows == [(1,)]
        assert db.stats.plan_cache_hits == 0
        assert db.stats.plan_cache_misses == 3
        assert len(db.plan_cache) == 0


class TestEpochInvalidation:
    def test_ddl_bumps_schema_version_and_invalidates(self):
        db = fresh_db()
        db.execute("SELECT name FROM emp")
        before = db.changes.schema_version
        db.execute("CREATE TABLE other (x INTEGER)")
        assert db.changes.schema_version > before
        db.execute("SELECT name FROM emp")
        assert db.stats.plan_cache_invalidations == 1
        assert db.stats.plan_cache_misses == 2
        assert db.stats.plan_cache_hits == 0

    def test_drop_table_prevents_serving_the_stale_plan(self):
        db = fresh_db()
        db.execute("SELECT name FROM emp")
        db.execute("DROP TABLE emp")
        with pytest.raises(CatalogError):
            db.execute("SELECT name FROM emp")

    def test_create_index_bumps_plan_epoch(self):
        db = fresh_db()
        db.execute("SELECT salary FROM emp WHERE name = 'ann'")
        before = db.changes.plan_epoch
        db.execute("CREATE INDEX idx_name ON emp (name)")
        assert db.changes.plan_epoch > before
        db.execute("SELECT salary FROM emp WHERE name = 'ann'")
        # The replan (not the stale plan) picks the new index up.
        assert db.stats.plan_cache_invalidations == 1
        assert "IndexScan" in db.explain(
            "SELECT salary FROM emp WHERE name = 'ann'"
        )

    def test_hippo_engine_binding_invalidates(self):
        db = fresh_db()
        db.execute("SELECT name FROM emp")
        HippoEngine(db, [FunctionalDependency("emp", ["name"], ["salary"])])
        db.execute("SELECT name FROM emp")
        assert db.stats.plan_cache_hits == 0
        assert db.stats.plan_cache_misses == 2

    def test_rewriting_engine_binding_invalidates(self):
        db = fresh_db()
        db.execute("SELECT name FROM emp")
        RewritingEngine(
            db, [FunctionalDependency("emp", ["name"], ["salary"])]
        )
        db.execute("SELECT name FROM emp")
        assert db.stats.plan_cache_hits == 0
        assert db.stats.plan_cache_misses == 2

    def test_constraint_drop_invalidates(self):
        # "Dropping" a constraint set is rebinding an engine with fewer
        # constraints; the new binding must also force fresh plans.
        db = fresh_db()
        fd = FunctionalDependency("emp", ["name"], ["salary"])
        HippoEngine(db, [fd])
        db.execute("SELECT name FROM emp")
        HippoEngine(db, [])
        db.execute("SELECT name FROM emp")
        assert db.stats.plan_cache_hits == 0

    def test_explicit_invalidate_plans(self):
        db = fresh_db()
        db.execute("SELECT name FROM emp")
        db.invalidate_plans()
        db.execute("SELECT name FROM emp")
        assert db.stats.plan_cache_hits == 0
        assert db.stats.plan_cache_invalidations == 1


class TestUncacheableStatements:
    def test_subquery_plans_are_not_cached(self):
        # _Subplan / _DecorrelatedSubplan memoize per-statement results;
        # caching them would serve stale subquery answers after DML.
        db = fresh_db()
        sql = (
            "SELECT name FROM emp e WHERE EXISTS"
            " (SELECT 1 FROM emp x WHERE x.salary > e.salary)"
        )
        assert db.execute(sql).as_set() == {("bob",)}
        assert len(db.plan_cache) == 0
        db.execute("INSERT INTO emp VALUES ('zed', 99)")
        assert db.execute(sql).as_set() == {("ann",), ("bob",)}
        assert db.stats.plan_cache_hits == 0


class TestCacheBounds:
    def test_lru_eviction_respects_max_entries(self):
        stats = ExecutionStats()
        cache = PlanCache(stats, max_entries=2)
        epoch = (0, 0)
        cache.put("SELECT 1", epoch, "p1")  # type: ignore[arg-type]
        cache.put("SELECT 2", epoch, "p2")  # type: ignore[arg-type]
        cache.put("SELECT 3", epoch, "p3")  # type: ignore[arg-type]
        assert len(cache) == 2
        assert cache.get("SELECT 1", epoch) is None  # evicted, not stale
        assert stats.plan_cache_invalidations == 0
        assert cache.get("SELECT 3", epoch) == "p3"

    def test_lru_recency_refresh_on_hit(self):
        stats = ExecutionStats()
        cache = PlanCache(stats, max_entries=2)
        epoch = (0, 0)
        cache.put("SELECT 1", epoch, "p1")  # type: ignore[arg-type]
        cache.put("SELECT 2", epoch, "p2")  # type: ignore[arg-type]
        cache.get("SELECT 1", epoch)  # refresh: 2 is now the LRU entry
        cache.put("SELECT 3", epoch, "p3")  # type: ignore[arg-type]
        assert cache.get("SELECT 1", epoch) == "p1"
        assert cache.get("SELECT 2", epoch) is None

    def test_clear_counts_invalidations(self):
        stats = ExecutionStats()
        cache = PlanCache(stats)
        cache.put("SELECT 1", (0, 0), "p1")  # type: ignore[arg-type]
        cache.clear()
        assert len(cache) == 0
        assert stats.plan_cache_invalidations == 1


class TestShellIntegration:
    def run_shell(self, script: str) -> str:
        out = io.StringIO()
        shell = HippoShell(out=out)
        shell.run(script.splitlines())
        return out.getvalue()

    SETUP = (
        "CREATE TABLE emp (name TEXT, salary INTEGER);\n"
        "INSERT INTO emp VALUES ('ann', 10), ('ann', 20), ('bob', 5);\n"
        ".constraint FD emp: name -> salary\n"
    )

    def test_stats_reports_plan_cache_counters(self):
        output = self.run_shell(
            self.SETUP
            + "SELECT name FROM emp;\nSELECT name FROM emp;\n.stats"
        )
        assert "plan cache:" in output
        assert "  hits: 1" in output
        assert "  misses: 1" in output
        assert "  entries: 1" in output

    def test_classify_then_execute_observes_a_fresh_plan(self):
        output = self.run_shell(
            self.SETUP
            + "SELECT name FROM emp;\n"
            ".classify SELECT * FROM emp;\n"
            "SELECT name FROM emp;\n"
            ".stats"
        )
        # The re-execute after .classify replanned: the first plan was
        # invalidated, not served.
        assert "  hits: 0" in output
        assert "  misses: 2" in output
        assert "  invalidations: 1" in output


class TestCachedEqualsUncached:
    """Property: a cached database answers exactly like an uncached one
    over random mixed workloads (DDL + DML + repeated queries)."""

    QUERIES = [
        "SELECT a, b FROM t ORDER BY a, b",
        "SELECT b FROM t WHERE a = 1",
        "SELECT COUNT(*) FROM t",
        "SELECT a, SUM(b) FROM t GROUP BY a ORDER BY a",
        "SELECT t.a, s.c FROM t, s WHERE t.a = s.a ORDER BY t.a, s.c",
        "SELECT a FROM t WHERE b > 10 ORDER BY a",
    ]

    def random_actions(self, rng: random.Random) -> list[str]:
        actions: list[str] = [
            "CREATE TABLE t (a INTEGER, b INTEGER)",
            "CREATE TABLE s (a INTEGER, c TEXT)",
        ]
        for _ in range(60):
            roll = rng.random()
            if roll < 0.25:
                actions.append(
                    f"INSERT INTO t VALUES"
                    f" ({rng.randint(0, 4)}, {rng.randint(0, 30)})"
                )
            elif roll < 0.35:
                actions.append(
                    f"INSERT INTO s VALUES"
                    f" ({rng.randint(0, 4)}, 'v{rng.randint(0, 3)}')"
                )
            elif roll < 0.42:
                actions.append(f"DELETE FROM t WHERE b = {rng.randint(0, 30)}")
            elif roll < 0.47:
                actions.append(
                    f"UPDATE t SET b = b + 1 WHERE a = {rng.randint(0, 4)}"
                )
            elif roll < 0.52:
                actions.append("CREATE INDEX IF NOT EXISTS idx_ta ON t (a)")
            else:
                actions.append(rng.choice(self.QUERIES))
        return actions

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_workload_equivalence(self, seed):
        actions = self.random_actions(random.Random(seed))
        cached = Database()
        uncached = Database(plan_cache=False)
        for sql in actions:
            left = cached.execute(sql)
            right = uncached.execute(sql)
            assert left.columns == right.columns, sql
            assert left.rows == right.rows, sql
        # The workload repeated queries, so the cache was exercised.
        assert cached.stats.plan_cache_hits > 0
        assert uncached.stats.plan_cache_hits == 0
