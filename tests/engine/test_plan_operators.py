"""Unit tests for physical plan operators, driven directly (no SQL)."""

import pytest

from repro.engine.plan import (
    Aggregate,
    Distinct,
    Except,
    Filter,
    HashJoin,
    Intersect,
    Limit,
    NestedLoopJoin,
    Project,
    Scan,
    SingleRow,
    Sort,
    UnionAll,
    Values,
    run_plan,
)
from repro.engine.schema import make_schema
from repro.engine.stats import ExecutionStats
from repro.engine.storage import Table
from repro.engine.types import SQLType


def table_ab(rows):
    table = Table(make_schema("t", [("a", SQLType.INTEGER), ("b", SQLType.INTEGER)]))
    for row in rows:
        table.insert(row)
    return table


def col(i):
    return lambda env: env[0][i]


class TestScan:
    def test_scan_counts_rows(self):
        stats = ExecutionStats()
        table = table_ab([(1, 2), (3, 4)])
        assert run_plan(Scan(table, stats)) == [(1, 2), (3, 4)]
        assert stats.rows_scanned == 2

    def test_scan_with_tid(self):
        table = table_ab([(1, 2), (3, 4)])
        rows = run_plan(Scan(table, ExecutionStats(), include_tid=True))
        assert rows == [(1, 2, 0), (3, 4, 1)]

    def test_restricted_scan(self):
        table = table_ab([(1, 2), (3, 4), (5, 6)])
        node = Scan(table, ExecutionStats(), keep_tids=frozenset({0, 2}))
        assert run_plan(node) == [(1, 2), (5, 6)]


class TestFilterProject:
    def test_filter_keeps_only_true(self):
        source = Values([(1,), (None,), (5,)], 1)
        node = Filter(source, lambda env: env[0][0] is not None and env[0][0] > 2)
        assert run_plan(node) == [(5,)]

    def test_project(self):
        source = Values([(1, 2)], 2)
        node = Project(source, [col(1), col(0), lambda env: 9])
        assert run_plan(node) == [(2, 1, 9)]

    def test_single_row(self):
        assert run_plan(SingleRow()) == [()]


class TestJoins:
    def test_nested_loop_cross(self):
        node = NestedLoopJoin(Values([(1,), (2,)], 1), Values([(10,), (20,)], 1))
        assert run_plan(node) == [(1, 10), (1, 20), (2, 10), (2, 20)]

    def test_nested_loop_with_predicate(self):
        node = NestedLoopJoin(
            Values([(1,), (2,)], 1),
            Values([(1,), (3,)], 1),
            predicate=lambda env: env[0][0] == env[0][1],
            kind="inner",
        )
        assert run_plan(node) == [(1, 1)]

    def test_left_outer_nested_loop(self):
        node = NestedLoopJoin(
            Values([(1,), (2,)], 1),
            Values([(1,)], 1),
            predicate=lambda env: env[0][0] == env[0][1],
            kind="left",
        )
        assert run_plan(node) == [(1, 1), (2, None)]

    def test_hash_join_matches_nested_loop(self):
        left = [(i % 5, i) for i in range(20)]
        right = [(i % 7, i * 10) for i in range(20)]
        hash_rows = run_plan(
            HashJoin(Values(left, 2), Values(right, 2), [col(0)], [col(0)])
        )
        loop_rows = run_plan(
            NestedLoopJoin(
                Values(left, 2),
                Values(right, 2),
                predicate=lambda env: env[0][0] == env[0][2],
                kind="inner",
            )
        )
        assert sorted(hash_rows) == sorted(loop_rows)

    def test_hash_join_null_keys_never_match(self):
        node = HashJoin(
            Values([(None, 1), (2, 2)], 2),
            Values([(None, 9), (2, 8)], 2),
            [col(0)],
            [col(0)],
        )
        assert run_plan(node) == [(2, 2, 2, 8)]

    def test_hash_join_residual(self):
        node = HashJoin(
            Values([(1, 5), (1, 6)], 2),
            Values([(1, 6)], 2),
            [col(0)],
            [col(0)],
            residual=lambda env: env[0][1] == env[0][3],
        )
        assert run_plan(node) == [(1, 6, 1, 6)]

    def test_left_hash_join_pads(self):
        node = HashJoin(
            Values([(1,), (2,)], 1), Values([(1,)], 1), [col(0)], [col(0)], kind="left"
        )
        assert run_plan(node) == [(1, 1), (2, None)]

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            NestedLoopJoin(Values([], 1), Values([], 1), kind="full")
        with pytest.raises(ValueError):
            HashJoin(Values([], 1), Values([], 1), [col(0)], [col(0)], kind="cross")


class TestSetOperators:
    def test_union_all_and_distinct(self):
        node = UnionAll([Values([(1,), (2,)], 1), Values([(2,)], 1)])
        assert run_plan(node) == [(1,), (2,), (2,)]
        assert run_plan(Distinct(node)) == [(1,), (2,)]

    def test_union_width_mismatch(self):
        with pytest.raises(ValueError):
            UnionAll([Values([], 1), Values([], 2)])

    def test_except_set_semantics(self):
        node = Except(Values([(1,), (1,), (2,)], 1), Values([(2,)], 1))
        assert run_plan(node) == [(1,)]

    def test_except_all_bag_semantics(self):
        node = Except(Values([(1,), (1,), (2,)], 1), Values([(1,)], 1), all=True)
        assert run_plan(node) == [(1,), (2,)]

    def test_intersect(self):
        node = Intersect(Values([(1,), (2,), (2,)], 1), Values([(2,), (3,)], 1))
        assert run_plan(node) == [(2,)]

    def test_intersect_all(self):
        node = Intersect(
            Values([(1,), (2,), (2,), (2,)], 1), Values([(2,), (2,)], 1), all=True
        )
        assert run_plan(node) == [(2,), (2,)]


class TestSortLimit:
    def test_sort_multi_key_stable(self):
        rows = [(1, "b"), (2, "a"), (1, "a")]
        node = Sort(Values(rows, 2), [(col(0), True), (col(1), False)])
        assert run_plan(node) == [(1, "b"), (1, "a"), (2, "a")]

    def test_sort_nulls_first(self):
        node = Sort(Values([(2,), (None,), (1,)], 1), [(col(0), True)])
        assert run_plan(node) == [(None,), (1,), (2,)]

    def test_limit_offset(self):
        source = Values([(i,) for i in range(10)], 1)
        assert run_plan(Limit(source, 3, 2)) == [(2,), (3,), (4,)]
        assert run_plan(Limit(source, None, 8)) == [(8,), (9,)]
        assert run_plan(Limit(source, 0, None)) == []


class TestAggregate:
    def test_group_by_count_sum(self):
        rows = [(1, 10), (1, 20), (2, 5)]
        node = Aggregate(
            Values(rows, 2),
            [col(0)],
            [("COUNT", False, None), ("SUM", False, col(1))],
        )
        assert sorted(run_plan(node)) == [(1, 2, 30), (2, 1, 5)]

    def test_global_aggregate_empty_input(self):
        node = Aggregate(
            Values([], 2),
            [],
            [("COUNT", False, None), ("SUM", False, col(1)), ("MIN", False, col(0))],
        )
        assert run_plan(node) == [(0, None, None)]

    def test_nulls_ignored(self):
        rows = [(1, None), (1, 4)]
        node = Aggregate(
            Values(rows, 2),
            [col(0)],
            [("COUNT", False, col(1)), ("AVG", False, col(1))],
        )
        assert run_plan(node) == [(1, 1, 4.0)]

    def test_distinct_aggregate(self):
        rows = [(1, 5), (1, 5), (1, 6)]
        node = Aggregate(Values(rows, 2), [], [("SUM", True, col(1))])
        assert run_plan(node) == [(11,)]

    def test_empty_group_by_on_empty_table_no_groups(self):
        node = Aggregate(Values([], 2), [col(0)], [("COUNT", False, None)])
        assert run_plan(node) == []


class TestExplain:
    def test_explain_renders_tree(self):
        stats = ExecutionStats()
        table = table_ab([])
        node = Limit(Filter(Scan(table, stats), lambda env: True), 1, None)
        text = node.explain()
        assert "Limit" in text and "Filter" in text and "Scan(t)" in text
        assert text.splitlines()[1].startswith("  ")
