"""Tests for GROUP BY / HAVING / aggregate SQL."""

import pytest

from repro.engine import Database
from repro.errors import PlanError


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE sale (dept TEXT, amount INTEGER, region TEXT)")
    database.execute(
        "INSERT INTO sale VALUES"
        " ('cs', 10, 'east'), ('cs', 20, 'west'), ('ee', 5, 'east'),"
        " ('ee', NULL, 'west'), ('me', 7, 'east')"
    )
    return database


class TestGroupBy:
    def test_count_sum_min_max_avg(self, db):
        rows = db.query(
            "SELECT dept, COUNT(*), SUM(amount), MIN(amount), MAX(amount),"
            " AVG(amount) FROM sale GROUP BY dept"
        ).rows
        assert sorted(rows) == [
            ("cs", 2, 30, 10, 20, 15.0),
            ("ee", 2, 5, 5, 5, 5.0),  # NULL ignored by SUM/MIN/MAX/AVG
            ("me", 1, 7, 7, 7, 7.0),
        ]

    def test_count_column_ignores_nulls(self, db):
        rows = db.query("SELECT dept, COUNT(amount) FROM sale GROUP BY dept").rows
        assert ("ee", 1) in rows

    def test_group_by_expression(self, db):
        rows = db.query(
            "SELECT amount % 2, COUNT(*) FROM sale WHERE amount IS NOT NULL"
            " GROUP BY amount % 2"
        ).rows
        assert sorted(rows) == [(0, 2), (1, 2)]

    def test_having(self, db):
        rows = db.query(
            "SELECT dept FROM sale GROUP BY dept HAVING COUNT(*) > 1"
        ).rows
        assert sorted(rows) == [("cs",), ("ee",)]

    def test_having_with_arithmetic_over_aggregates(self, db):
        rows = db.query(
            "SELECT dept, SUM(amount) + 1 FROM sale GROUP BY dept"
            " HAVING SUM(amount) + 1 > 7"
        ).rows
        assert sorted(rows) == [("cs", 31), ("me", 8)]

    def test_global_aggregate(self, db):
        assert db.query("SELECT COUNT(*) FROM sale").scalar() == 5
        assert db.query("SELECT SUM(amount) FROM sale").scalar() == 42

    def test_global_aggregate_on_empty_table(self, db):
        db.execute("DELETE FROM sale")
        assert db.query("SELECT COUNT(*) FROM sale").scalar() == 0
        assert db.query("SELECT SUM(amount) FROM sale").scalar() is None

    def test_having_without_group_by(self, db):
        rows = db.query("SELECT COUNT(*) FROM sale HAVING COUNT(*) > 99").rows
        assert rows == []

    def test_distinct_aggregate(self, db):
        db.execute("INSERT INTO sale VALUES ('cs', 10, 'north')")
        assert (
            db.query("SELECT COUNT(DISTINCT amount) FROM sale WHERE dept='cs'").scalar()
            == 2
        )

    def test_group_key_required_in_select(self, db):
        with pytest.raises(PlanError, match="GROUP BY"):
            db.query("SELECT region, COUNT(*) FROM sale GROUP BY dept")

    def test_aggregate_of_expression(self, db):
        assert (
            db.query("SELECT SUM(amount * 2) FROM sale WHERE dept = 'cs'").scalar()
            == 60
        )

    def test_group_by_with_where(self, db):
        rows = db.query(
            "SELECT dept, COUNT(*) FROM sale WHERE region = 'east' GROUP BY dept"
        ).rows
        assert sorted(rows) == [("cs", 1), ("ee", 1), ("me", 1)]

    def test_order_by_after_group(self, db):
        rows = db.query(
            "SELECT dept, COUNT(*) AS n FROM sale GROUP BY dept ORDER BY n DESC, dept"
        ).rows
        assert rows[0][1] == 2 and rows[-1] == ("me", 1)
