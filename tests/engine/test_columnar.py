"""Columnar batch execution: equivalence with the row-at-a-time paths.

The column-major snapshot (:class:`ColumnStore`) sits *behind* the table
API: every consumer must see exactly the answers the row paths produce,
the cached batch must be dropped on any mutation, and the batched change
application (`Table.apply_changes` / `apply_feed_records`) must leave
state identical to per-record replay -- including on failure.
"""

from __future__ import annotations

import pytest

from repro.engine.columnar import ColumnStore
from repro.engine.database import (
    Database,
    apply_feed_record,
    apply_feed_records,
)
from repro.engine.feed import ChangeFeed
from repro.errors import ExecutionError, TypeError_


def fresh_db() -> Database:
    db = Database()
    db.execute("CREATE TABLE emp (name TEXT, salary INTEGER)")
    db.execute(
        "INSERT INTO emp VALUES ('ann', 10), ('bob', 5), ('ann', 20)"
    )
    return db


class TestColumnStore:
    ITEMS = [(1, ("a", 10)), (3, ("b", 20)), (7, ("a", 30))]

    def test_rows_and_tids_preserve_order(self):
        store = ColumnStore(self.ITEMS, arity=2)
        assert store.tids == (1, 3, 7)
        assert store.rows == [("a", 10), ("b", 20), ("a", 30)]
        assert len(store) == 3

    def test_column_extraction_is_lazy_and_cached(self):
        store = ColumnStore(self.ITEMS, arity=2)
        first = store.column(0)
        assert first == ["a", "b", "a"]
        assert store.column(0) is first
        assert store.column(1) == [10, 20, 30]

    def test_tid_rows_suffix_the_tid(self):
        store = ColumnStore(self.ITEMS, arity=2)
        batch = store.tid_rows()
        assert batch == [("a", 10, 1), ("b", 20, 3), ("a", 30, 7)]
        assert store.tid_rows() is batch

    def test_select_equals_single_column(self):
        store = ColumnStore(self.ITEMS, arity=2)
        assert store.select_equals((0,), ("a",)) == [("a", 10), ("a", 30)]
        assert store.select_equals((0,), ("z",)) == []

    def test_select_equals_multi_column(self):
        store = ColumnStore(self.ITEMS, arity=2)
        assert store.select_equals((0, 1), ("a", 30)) == [("a", 30)]

    def test_select_equals_null_matches_nothing(self):
        # SQL equality with NULL is never true -- same as IndexScan.
        store = ColumnStore(self.ITEMS, arity=2)
        assert store.select_equals((0,), (None,)) == []

    def test_empty_store(self):
        store = ColumnStore([], arity=2)
        assert store.rows == []
        assert store.tid_rows() == []
        assert store.select_equals((0,), ("a",)) == []


class TestTableColumnarCache:
    def test_cached_until_mutation(self):
        db = fresh_db()
        table = db.table("emp")
        store = table.columnar()
        assert table.columnar() is store

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda t: t.insert(("cyd", 7)),
            lambda t: t.restore(99, ("cyd", 7)),
            lambda t: t.delete(next(iter(t.tids()))),
            lambda t: t.update(next(iter(t.tids())), ("cyd", 7)),
            lambda t: t.apply_changes([(99, ("cyd", 7), "insert")]),
        ],
    )
    def test_every_mutation_drops_the_cache(self, mutate):
        db = fresh_db()
        table = db.table("emp")
        stale = table.columnar()
        mutate(table)
        fresh = table.columnar()
        assert fresh is not stale
        assert sorted(fresh.tids) == sorted(table.tids())


class TestScanEquivalence:
    def test_unrestricted_scan_answers_match(self):
        db = fresh_db()
        result = db.execute("SELECT name, salary FROM emp ORDER BY salary")
        assert result.rows == [("bob", 5), ("ann", 10), ("ann", 20)]

    def test_rows_scanned_counts_the_whole_batch(self):
        db = fresh_db()
        db.stats.reset()
        db.execute("SELECT name FROM emp")
        assert db.stats.rows_scanned == 3

    def test_scan_after_mutation_sees_fresh_batch(self):
        db = fresh_db()
        db.execute("SELECT name FROM emp")
        db.execute("DELETE FROM emp WHERE salary = 20")
        assert db.execute("SELECT COUNT(*) FROM emp").scalar() == 2


class TestColumnEqScan:
    def test_planner_uses_columnar_equality_without_an_index(self):
        db = fresh_db()
        plan = db.explain("SELECT salary FROM emp WHERE name = 'ann'")
        assert "ColumnEqScan" in plan
        assert "IndexScan" not in plan

    def test_index_beats_the_columnar_fallback(self):
        db = fresh_db()
        db.execute("CREATE INDEX idx_name ON emp (name)")
        plan = db.explain("SELECT salary FROM emp WHERE name = 'ann'")
        assert "IndexScan" in plan
        assert "ColumnEqScan" not in plan

    def test_answers_match_the_filter_path(self):
        db = fresh_db()
        fallback = db.execute(
            "SELECT salary FROM emp WHERE name = 'ann' ORDER BY salary"
        )
        db.execute("CREATE INDEX idx_name ON emp (name)")
        indexed = db.execute(
            "SELECT salary FROM emp WHERE name = 'ann' ORDER BY salary"
        )
        assert fallback.rows == indexed.rows == [(10,), (20,)]

    def test_multi_column_equality(self):
        db = fresh_db()
        result = db.execute(
            "SELECT name FROM emp WHERE name = 'ann' AND salary = 20"
        )
        assert result.rows == [("ann",)]

    def test_incomparable_types_still_raise(self):
        # Python `==` would silently return nothing for TEXT vs INTEGER;
        # the engine's comparison semantics raise instead, so the
        # planner must keep incomparable conjuncts on the filter path.
        db = fresh_db()
        with pytest.raises(TypeError_):
            db.execute("SELECT name FROM emp WHERE name = 5")

    def test_null_literal_matches_nothing(self):
        db = fresh_db()
        db.execute("INSERT INTO emp (salary) VALUES (1)")
        assert db.execute("SELECT salary FROM emp WHERE name = NULL").rows == []


class TestApplyChanges:
    def changes(self):
        return [
            (1, ("ann", 10), "insert"),
            (2, ("bob", 5), "insert"),
            (1, None, "delete"),
            (3, ("cyd", 7), "insert"),
        ]

    def build(self, batched: bool) -> Database:
        db = Database()
        db.execute("CREATE TABLE emp (name TEXT, salary INTEGER)")
        table = db.table("emp")
        if batched:
            table.apply_changes(self.changes())
        else:
            for tid, row, op in self.changes():
                if op == "insert":
                    table.restore(tid, row)
                else:
                    table.delete(tid)
        return db

    def test_batched_equals_per_record(self):
        batched = self.build(batched=True)
        sequential = self.build(batched=False)
        assert (
            batched.execute("SELECT * FROM emp ORDER BY salary").rows
            == sequential.execute("SELECT * FROM emp ORDER BY salary").rows
        )
        assert sorted(batched.table("emp").tids()) == sorted(
            sequential.table("emp").tids()
        )

    def test_next_tid_continues_past_restored_tids(self):
        db = self.build(batched=True)
        new_tid = db.table("emp").insert(("dee", 1))
        assert new_tid > 3

    def test_failure_leaves_the_per_record_prefix_applied(self):
        db = Database()
        db.execute("CREATE TABLE emp (name TEXT, salary INTEGER)")
        table = db.table("emp")
        bad = [
            (1, ("ann", 10), "insert"),
            (1, ("dup", 1), "insert"),  # tid collision fails here
            (2, ("bob", 5), "insert"),
        ]
        with pytest.raises(ExecutionError):
            table.apply_changes(bad)
        # State identical to per-record replay stopping at the failure.
        assert table.lookup(("ann", 10)) == frozenset({1})
        assert table.lookup(("bob", 5)) == frozenset()
        assert table.insert(("dee", 1)) > 1

    def test_indexes_maintained_through_batched_apply(self):
        db = Database()
        db.execute("CREATE TABLE emp (name TEXT, salary INTEGER)")
        db.execute("CREATE INDEX idx_name ON emp (name)")
        db.table("emp").apply_changes(self.changes())
        assert db.execute(
            "SELECT salary FROM emp WHERE name = 'cyd'"
        ).rows == [(7,)]


class TestFeedReplayEquivalence:
    def feed_records(self, tmp_path, name):
        directory = tmp_path / name
        db = Database(durable=str(directory))
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        db.execute("CREATE TABLE u (x INTEGER)")
        for i in range(20):
            db.execute(f"INSERT INTO t VALUES ({i}, 'v{i % 3}')")
            if i % 4 == 0:
                db.execute(f"INSERT INTO u VALUES ({i})")
        db.execute("DELETE FROM t WHERE a < 5")
        db.execute("UPDATE t SET b = 'z' WHERE a = 7")
        db.changes.feed.flush()
        feed = ChangeFeed(str(directory))
        records = list(feed.iter_records())
        feed.close()
        db.changes.feed.close()
        return records

    def test_batched_replay_equals_per_record_replay(self, tmp_path):
        records = self.feed_records(tmp_path, "src")
        one = Database()
        with one.changes.feed.suspended():
            for record in records:
                apply_feed_record(one, record)
        many = Database()
        with many.changes.feed.suspended():
            apply_feed_records(many, records)
        for table in ("t", "u"):
            left = sorted(
                (tid, row) for tid, row in one.table(table).items()
            )
            right = sorted(
                (tid, row) for tid, row in many.table(table).items()
            )
            assert left == right

    def test_durable_reopen_uses_batched_replay(self, tmp_path):
        self.feed_records(tmp_path, "db")
        reopened = Database(durable=str(tmp_path / "db"))
        assert reopened.restore_mode == "replay"
        assert (
            reopened.execute("SELECT COUNT(*) FROM t").scalar() == 15
        )
        assert reopened.execute(
            "SELECT b FROM t WHERE a = 7"
        ).rows == [("z",)]
        reopened.changes.feed.close()


class TestReplicaBatchApply:
    def test_batch_and_per_record_replicas_agree(self, tmp_path):
        from repro.conflicts import ReplicaHypergraph
        from repro.constraints import FunctionalDependency

        directory = str(tmp_path / "db")
        db = Database(durable=directory)
        db.execute("CREATE TABLE emp (name TEXT, salary INTEGER)")
        db.execute(
            "INSERT INTO emp VALUES ('ann', 10), ('ann', 20), ('bob', 5)"
        )
        db.changes.feed.flush()
        fd = FunctionalDependency("emp", ["name"], ["salary"])

        feed_a = ChangeFeed(directory)
        batched = ReplicaHypergraph(feed_a, [fd], group="batched")
        feed_b = ChangeFeed(directory)
        plain = ReplicaHypergraph(
            feed_b, [fd], group="plain", batch_apply=False
        )
        for replica in (batched, plain):
            replica.sync()
        assert (
            batched.graph.as_dict() == plain.graph.as_dict()
        )
        db.execute("INSERT INTO emp VALUES ('bob', 6)")
        db.changes.feed.flush()
        for replica in (batched, plain):
            replica.sync()
        assert batched.graph.as_dict() == plain.graph.as_dict()
        assert len(batched.graph.as_dict()) == 2
        feed_a.close()
        feed_b.close()
        db.changes.feed.close()
