"""Membership-check strategies for the Prover.

For every candidate tuple, the Prover must decide whether certain ground
facts are in the database (and with which tids).  The paper:

    "In the base version of the system this is done by simply executing
    the appropriate membership queries on the database.  This is a costly
    procedure ...  We have introduced several optimizations addressing
    this problem.  In general, by modifying the expression defining the
    envelope ... the optimizations allow us to answer the required
    membership checks without executing any queries on the database."

Three strategies reproduce that spectrum:

* :class:`QueryMembership` -- the base system: every check is a point
  query against the engine (counted in ``point_lookups``).
* :class:`CachedMembership` -- batches/memoizes lookups, the moral
  equivalent of prefetching all potentially needed facts once.
* :class:`ProvenanceMembership` -- the extended-envelope optimization:
  the envelope evaluation already carried each candidate's witness tids,
  so positive checks about those facts are answered without touching the
  database at all; only facts outside the provenance (e.g. from the
  negative side of a difference) fall back to a cached lookup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol

from repro.conflicts.hypergraph import Vertex
from repro.core.facts import Fact
from repro.engine.database import Database


@dataclass
class MembershipStats:
    """Counters surfaced by benchmarks.

    Attributes:
        checks: membership questions asked by the Prover.
        db_queries: checks that executed a database point query.
        free_answers: checks answered from provenance / cache.
    """

    checks: int = 0
    db_queries: int = 0
    free_answers: int = 0


class MembershipResolver(Protocol):
    """What the Prover needs to know about facts."""

    stats: MembershipStats

    def some_vertex(self, fact: Fact) -> Optional[Vertex]:
        """Any one tid storing ``fact`` (None when absent).

        Duplicate copies of a fact have value-symmetric conflict
        neighbourhoods, so any copy serves as the *required* witness.
        """

    def all_vertices(self, fact: Fact) -> frozenset[Vertex]:
        """Every tid storing ``fact`` (excluding a fact excludes them all)."""

    def prime(self, provenance: dict[Fact, Vertex]) -> None:
        """Install per-candidate provenance hints (no-op by default)."""


class QueryMembership:
    """The base strategy: one point query per check, no caching."""

    def __init__(self, db: Database) -> None:
        self._db = db
        self.stats = MembershipStats()

    def _lookup(self, fact: Fact) -> frozenset[Vertex]:
        self.stats.db_queries += 1
        tids = self._db.lookup(fact.relation, fact.values)
        # Fact relations are built lower-case by the grounder.
        # hippolint: disable-next-line=HL005 -- relation already lower-case
        return frozenset(Vertex(fact.relation, tid) for tid in tids)

    def some_vertex(self, fact: Fact) -> Optional[Vertex]:
        self.stats.checks += 1
        vertices = self._lookup(fact)
        return min(vertices) if vertices else None

    def all_vertices(self, fact: Fact) -> frozenset[Vertex]:
        self.stats.checks += 1
        return self._lookup(fact)

    def prime(self, provenance: dict[Fact, Vertex]) -> None:
        """The base strategy ignores provenance."""


class CachedMembership:
    """Memoized lookups: each distinct fact costs at most one query."""

    def __init__(self, db: Database) -> None:
        self._db = db
        self._cache: dict[Fact, frozenset[Vertex]] = {}
        self.stats = MembershipStats()

    def _lookup(self, fact: Fact) -> frozenset[Vertex]:
        cached = self._cache.get(fact)
        if cached is not None:
            self.stats.free_answers += 1
            return cached
        self.stats.db_queries += 1
        tids = self._db.lookup(fact.relation, fact.values)
        # Fact relations are built lower-case by the grounder.
        # hippolint: disable-next-line=HL005 -- relation already lower-case
        vertices = frozenset(Vertex(fact.relation, tid) for tid in tids)
        self._cache[fact] = vertices
        return vertices

    def some_vertex(self, fact: Fact) -> Optional[Vertex]:
        self.stats.checks += 1
        vertices = self._lookup(fact)
        return min(vertices) if vertices else None

    def all_vertices(self, fact: Fact) -> frozenset[Vertex]:
        self.stats.checks += 1
        return self._lookup(fact)

    def prime(self, provenance: dict[Fact, Vertex]) -> None:
        """The cached strategy ignores provenance."""


class ProvenanceMembership:
    """The extended-envelope strategy: provenance answers checks for free.

    Args:
        db: the database (fallback lookups).
        duplicate_free: when True (the common, set-semantics case --
            verified by the caller), a provenance hint fully answers
            ``all_vertices`` too; with duplicates it only answers
            ``some_vertex`` and exclusion checks fall back to a lookup.
    """

    def __init__(self, db: Database, duplicate_free: bool = True) -> None:
        self._fallback = CachedMembership(db)
        self._hints: dict[Fact, Vertex] = {}
        self._duplicate_free = duplicate_free
        self.stats = self._fallback.stats  # shared counters

    def prime(self, provenance: dict[Fact, Vertex]) -> None:
        self._hints = provenance

    def some_vertex(self, fact: Fact) -> Optional[Vertex]:
        hint = self._hints.get(fact)
        if hint is not None:
            self.stats.checks += 1
            self.stats.free_answers += 1
            return hint
        return self._fallback.some_vertex(fact)

    def all_vertices(self, fact: Fact) -> frozenset[Vertex]:
        hint = self._hints.get(fact)
        if hint is not None and self._duplicate_free:
            self.stats.checks += 1
            self.stats.free_answers += 1
            return frozenset([hint])
        return self._fallback.all_vertices(fact)


def make_membership(
    strategy: str, db: Database, duplicate_free: bool = True
) -> MembershipResolver:
    """Factory: ``"query"``, ``"cached"`` or ``"provenance"``.

    Raises:
        ValueError: for unknown strategy names.
    """
    if strategy == "query":
        return QueryMembership(db)
    if strategy == "cached":
        return CachedMembership(db)
    if strategy == "provenance":
        return ProvenanceMembership(db, duplicate_free)
    raise ValueError(
        f"unknown membership strategy {strategy!r}"
        " (expected 'query', 'cached' or 'provenance')"
    )
