"""Enveloping: computing candidates (and certain answers) for a query.

    "The processing of the Query starts from Enveloping.  As a result of
    this step we get a query defining Candidates (candidate consistent
    query answers).  This query subsequently undergoes Evaluation by the
    RDBMS."  (Hippo, EDBT 2004)

For every SJUD tree ``Q`` two approximations are evaluated:

* the **envelope** ``Q-up``: a superset of the tuples true in *some*
  repair (hence a superset of the consistent answers) -- these are the
  candidates handed to the Prover;
* the **core** ``Q-down``: a subset of the tuples true in *every* repair
  (hence certain consistent answers) -- candidates found here skip the
  Prover entirely, the paper's "expression selecting a subset of the set
  of consistent query answers ... significantly reduce[s] the number of
  tuples that have to be processed by Prover".

Rules (C a conjunctive core, evaluated by the engine):

    up(C)      = C(DB)                      down(C)    = C(conflict-free DB)
    up(A ∪ B)  = up(A) ∪ up(B)              down(A ∪ B) = down(A) ∪ down(B)
    up(A − B)  = up(A) − down(B)            down(A − B) = down(A) − up(B)

Soundness is proved by induction: ``up`` over-approximates possible truth
and ``down`` under-approximates certain truth, with the difference rules
swapping the two (a tuple certainly in ``B`` is certainly not in
``A − B``; a tuple possibly in ``B`` cannot be *certainly* in ``A − B``).

Envelope evaluation also records, per candidate, the witness tids that
produced it (its *provenance*) -- the extended-envelope optimization uses
them to answer the Prover's membership checks without database queries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.conflicts.hypergraph import ConflictHypergraph, Vertex
from repro.core.facts import Fact
from repro.engine.database import Database
from repro.ra.compile import evaluate_core
from repro.ra.sjud import Difference, SJUDCore, SJUDTree, Union_

#: candidate value -> witness (relation, tid) pairs, or None if the
#: witness came from a branch we did not track.
Provenance = Optional[tuple[tuple[str, int], ...]]


@dataclass
class EnvelopeEvaluation:
    """The result of Enveloping + Evaluation for one query.

    Attributes:
        candidates: envelope rows (``Q-up``) with their provenance.
        certain: core rows (``Q-down``); guaranteed consistent answers.
        seconds: wall-clock time of the evaluation.
    """

    candidates: dict[tuple, Provenance]
    certain: frozenset[tuple]
    seconds: float = 0.0

    @property
    def candidate_count(self) -> int:
        return len(self.candidates)


class Enveloper:
    """Evaluates envelopes / cores against a database + hypergraph."""

    def __init__(self, db: Database, hypergraph: ConflictHypergraph) -> None:
        self._db = db
        self._hypergraph = hypergraph
        self._clean_tids: dict[str, frozenset[int]] = {}

    # ------------------------------------------------------------ plumbing

    def conflict_free_tids(self, relation: str) -> frozenset[int]:
        """Tids of the conflict-free tuples of ``relation`` (memoized)."""
        key = relation.lower()
        cached = self._clean_tids.get(key)
        if cached is None:
            table = self._db.catalog.table(key)
            conflicting = self._hypergraph.conflicting_tids(key)
            cached = frozenset(
                tid for tid in table.tids() if tid not in conflicting
            )
            self._clean_tids[key] = cached
        return cached

    def _restrict_clean(self, relation: str) -> Optional[frozenset[int]]:
        return self.conflict_free_tids(relation)

    # ---------------------------------------------------------- evaluation

    def evaluate(self, tree: SJUDTree, compute_core: bool = True) -> EnvelopeEvaluation:
        """Evaluate ``Q-up`` (with provenance) and optionally ``Q-down``."""
        started = time.perf_counter()
        candidates = self._up(tree)
        certain = self._down(tree) if compute_core else frozenset()
        elapsed = time.perf_counter() - started
        return EnvelopeEvaluation(candidates, certain, elapsed)

    def _up(self, tree: SJUDTree) -> dict[tuple, Provenance]:
        if isinstance(tree, SJUDCore):
            return dict(evaluate_core(tree, self._db))
        if isinstance(tree, Union_):
            merged = self._up(tree.left)
            for value, provenance in self._up(tree.right).items():
                merged.setdefault(value, provenance)
            return merged
        if isinstance(tree, Difference):
            left = self._up(tree.left)
            removed = self._down(tree.right)
            return {
                value: provenance
                for value, provenance in left.items()
                if value not in removed
            }
        raise TypeError(f"cannot envelope {type(tree).__name__}")

    def _down(self, tree: SJUDTree) -> frozenset[tuple]:
        if isinstance(tree, SJUDCore):
            return frozenset(
                evaluate_core(tree, self._db, self._restrict_clean).keys()
            )
        if isinstance(tree, Union_):
            return self._down(tree.left) | self._down(tree.right)
        if isinstance(tree, Difference):
            return self._down(tree.left) - frozenset(self._up(tree.right).keys())
        raise TypeError(f"cannot envelope {type(tree).__name__}")


def provenance_hints(
    db: Database, provenance: Provenance
) -> dict[Fact, Vertex]:
    """Translate a candidate's provenance into membership hints.

    Each witness tid is turned into the fact it stores, so the Prover's
    positive membership checks about those facts are answered for free.
    """
    if not provenance:
        return {}
    hints: dict[Fact, Vertex] = {}
    for relation, tid in provenance:
        table = db.catalog.table(relation)
        if table.has_tid(tid):
            # Provenance relations are lower-cased by evaluate_core.
            # hippolint: disable-next-line=HL005 -- relation already lower-case
            hints[Fact(relation, table.get(tid))] = Vertex(relation, tid)
    return hints
