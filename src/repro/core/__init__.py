"""The Hippo core: enveloping, grounding, the Prover and the pipeline."""

from repro.core.envelope import EnvelopeEvaluation, Enveloper, provenance_hints
from repro.core.facts import Fact, fact
from repro.core.grounding import GroundQuery
from repro.core.hippo import AnswerSet, HippoEngine
from repro.core.membership import (
    CachedMembership,
    MembershipStats,
    ProvenanceMembership,
    QueryMembership,
    make_membership,
)
from repro.core.prover import Prover, ProverStats

__all__ = [
    "EnvelopeEvaluation",
    "Enveloper",
    "provenance_hints",
    "Fact",
    "fact",
    "GroundQuery",
    "AnswerSet",
    "HippoEngine",
    "CachedMembership",
    "MembershipStats",
    "ProvenanceMembership",
    "QueryMembership",
    "make_membership",
    "Prover",
    "ProverStats",
]
