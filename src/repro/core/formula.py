"""Boolean formulas over membership atoms, with NNF / DNF conversion.

Grounding a query for a candidate tuple yields a formula ``Phi`` over
atoms ``fact in M`` such that for every subset ``M`` of the database,
``candidate in Q(M)  iff  M |= Phi``.  The candidate is a consistent
answer iff no repair satisfies ``not Phi`` -- so the Prover converts
``not Phi`` to disjunctive normal form and checks each disjunct with one
"does a repair containing S and avoiding T exist?" query against the
conflict hypergraph.

DNF conversion is exponential in formula size in the worst case, but the
formula's size is bounded by the *query* size (number of atoms in the
SJUD tree), not the data -- which is exactly why Hippo's data complexity
stays polynomial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

from repro.core.facts import Fact


class Formula:
    """Marker base class."""


@dataclass(frozen=True)
class TrueF(Formula):
    """The constant true."""


@dataclass(frozen=True)
class FalseF(Formula):
    """The constant false."""


@dataclass(frozen=True)
class AtomF(Formula):
    """Membership atom: ``fact`` is in the repair."""

    fact: Fact


@dataclass(frozen=True)
class NotF(Formula):
    """Negation."""

    child: Formula


@dataclass(frozen=True)
class AndF(Formula):
    """Conjunction (n-ary)."""

    children: tuple[Formula, ...]


@dataclass(frozen=True)
class OrF(Formula):
    """Disjunction (n-ary)."""

    children: tuple[Formula, ...]


TRUE = TrueF()
FALSE = FalseF()


def conj(children: Iterable[Formula]) -> Formula:
    """Simplifying conjunction constructor."""
    flat: list[Formula] = []
    for child in children:
        if isinstance(child, FalseF):
            return FALSE
        if isinstance(child, TrueF):
            continue
        if isinstance(child, AndF):
            flat.extend(child.children)
        else:
            flat.append(child)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return AndF(tuple(flat))


def disj(children: Iterable[Formula]) -> Formula:
    """Simplifying disjunction constructor."""
    flat: list[Formula] = []
    for child in children:
        if isinstance(child, TrueF):
            return TRUE
        if isinstance(child, FalseF):
            continue
        if isinstance(child, OrF):
            flat.extend(child.children)
        else:
            flat.append(child)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return OrF(tuple(flat))


def negate(formula: Formula) -> Formula:
    """Logical negation (kept shallow; NNF handles the pushing)."""
    if isinstance(formula, TrueF):
        return FALSE
    if isinstance(formula, FalseF):
        return TRUE
    if isinstance(formula, NotF):
        return formula.child
    return NotF(formula)


def to_nnf(formula: Formula, negated: bool = False) -> Formula:
    """Negation normal form: negations pushed onto atoms."""
    if isinstance(formula, TrueF):
        return FALSE if negated else TRUE
    if isinstance(formula, FalseF):
        return TRUE if negated else FALSE
    if isinstance(formula, AtomF):
        return NotF(formula) if negated else formula
    if isinstance(formula, NotF):
        return to_nnf(formula.child, not negated)
    if isinstance(formula, AndF):
        children = tuple(to_nnf(child, negated) for child in formula.children)
        return disj(children) if negated else conj(children)
    if isinstance(formula, OrF):
        children = tuple(to_nnf(child, negated) for child in formula.children)
        return conj(children) if negated else disj(children)
    raise TypeError(f"unknown formula node {type(formula).__name__}")


#: One DNF disjunct: (facts that must be IN the repair,
#:                    facts that must be OUT of the repair).
Disjunct = tuple[frozenset[Fact], frozenset[Fact]]


def to_dnf(formula: Formula) -> list[Disjunct]:
    """Disjunctive normal form of an NNF-able formula.

    Contradictory disjuncts (a fact required both in and out) are dropped.
    An empty list means *unsatisfiable*; a disjunct ``(empty, empty)``
    means *valid* (true in every repair).
    """
    nnf = to_nnf(formula)

    def recurse(node: Formula) -> list[Disjunct]:
        if isinstance(node, TrueF):
            return [(frozenset(), frozenset())]
        if isinstance(node, FalseF):
            return []
        if isinstance(node, AtomF):
            return [(frozenset([node.fact]), frozenset())]
        if isinstance(node, NotF):
            assert isinstance(node.child, AtomF), "input must be in NNF"
            return [(frozenset(), frozenset([node.child.fact]))]
        if isinstance(node, OrF):
            result: list[Disjunct] = []
            for child in node.children:
                result.extend(recurse(child))
            return result
        if isinstance(node, AndF):
            partial: list[Disjunct] = [(frozenset(), frozenset())]
            for child in node.children:
                child_disjuncts = recurse(child)
                combined: list[Disjunct] = []
                for pos1, neg1 in partial:
                    for pos2, neg2 in child_disjuncts:
                        pos = pos1 | pos2
                        neg = neg1 | neg2
                        if pos & neg:
                            continue  # contradictory
                        combined.append((pos, neg))
                partial = combined
                if not partial:
                    return []
            return partial
        raise TypeError(f"unknown formula node {type(node).__name__}")

    # Deduplicate and drop disjuncts subsumed by smaller ones.
    disjuncts = recurse(nnf)
    unique: list[Disjunct] = []
    seen: set[tuple[frozenset[Fact], frozenset[Fact]]] = set()
    for disjunct in disjuncts:
        if disjunct not in seen:
            seen.add(disjunct)
            unique.append(disjunct)
    return unique


def atoms_of(formula: Formula) -> frozenset[Fact]:
    """Every fact mentioned by the formula."""
    if isinstance(formula, AtomF):
        return frozenset([formula.fact])
    if isinstance(formula, NotF):
        return atoms_of(formula.child)
    if isinstance(formula, (AndF, OrF)):
        result: frozenset[Fact] = frozenset()
        for child in formula.children:
            result |= atoms_of(child)
        return result
    return frozenset()


def evaluate(formula: Formula, present: Union[set, frozenset]) -> bool:
    """Evaluate under an explicit set of present facts (testing aid)."""
    if isinstance(formula, TrueF):
        return True
    if isinstance(formula, FalseF):
        return False
    if isinstance(formula, AtomF):
        return formula.fact in present
    if isinstance(formula, NotF):
        return not evaluate(formula.child, present)
    if isinstance(formula, AndF):
        return all(evaluate(child, present) for child in formula.children)
    if isinstance(formula, OrF):
        return any(evaluate(child, present) for child in formula.children)
    raise TypeError(f"unknown formula node {type(formula).__name__}")
