"""HProver: deciding consistency of a candidate answer.

Theory (Chomicki & Marcinkowski, *Minimal-Change Integrity Maintenance
Using Tuple Deletions*): for denial constraints, repairs are the maximal
independent sets of the conflict hypergraph, and

    there is a repair M with S subset-of M and M disjoint-from T
        iff
    one can choose, for every tuple t of T that is in the database, a
    hyperedge e_t containing t whose remainder e_t - {t} avoids T, such
    that S union (all remainders) is independent.

(The remainders "block" the T-tuples: any maximal independent superset of
the union would complete the edge e_t if it tried to include t.)  The
number of tuples in S and T is bounded by the *query* size, and each
tuple's candidate edges are polynomial in the data, so the check is
polynomial-time in the data.

A candidate ``t`` with ground formula ``Phi`` is a consistent answer iff
*no* repair satisfies ``not Phi``; the Prover converts ``not Phi`` to DNF
and runs the repair-existence check on every disjunct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.conflicts.hypergraph import ConflictHypergraph, Vertex
from repro.core import formula as fm
from repro.core.facts import Fact
from repro.core.membership import MembershipResolver


@dataclass
class ProverStats:
    """Counters surfaced by benchmarks.

    Attributes:
        candidates_checked: tuples submitted to the Prover.
        consistent: tuples accepted as consistent answers.
        disjuncts_checked: DNF disjuncts of ``not Phi`` examined.
        repair_searches: repair-existence checks executed.
        independence_checks: hypergraph independence tests performed.
        witness_combinations: covering-edge combinations explored.
    """

    candidates_checked: int = 0
    consistent: int = 0
    disjuncts_checked: int = 0
    repair_searches: int = 0
    independence_checks: int = 0
    witness_combinations: int = 0


class Prover:
    """Checks candidate tuples against the conflict hypergraph."""

    def __init__(
        self, hypergraph: ConflictHypergraph, membership: MembershipResolver
    ) -> None:
        self.hypergraph = hypergraph
        self.membership = membership
        self.stats = ProverStats()

    # ----------------------------------------------------------- entrypoint

    def is_consistent_answer(self, phi: fm.Formula) -> bool:
        """Whether ``Phi`` holds in *every* repair."""
        self.stats.candidates_checked += 1
        negated = fm.negate(phi)
        for require, forbid in fm.to_dnf(negated):
            self.stats.disjuncts_checked += 1
            if self.exists_repair(require, forbid):
                return False
        self.stats.consistent += 1
        return True

    def is_possible_answer(self, phi: fm.Formula) -> bool:
        """Whether ``Phi`` holds in *some* repair (the certainty dual).

        Possible answers bound what any way of resolving the conflicts
        could yield; together with the consistent answers they bracket
        the information content of the inconsistent database.
        """
        self.stats.candidates_checked += 1
        for require, forbid in fm.to_dnf(phi):
            self.stats.disjuncts_checked += 1
            if self.exists_repair(require, forbid):
                return True
        return False

    # ------------------------------------------------------- repair search

    def exists_repair(
        self, require: Iterable[Fact], forbid: Iterable[Fact]
    ) -> bool:
        """Is there a repair containing ``require`` and avoiding ``forbid``?"""
        self.stats.repair_searches += 1

        required_vertices: set[Vertex] = set()
        for fact in require:
            witness = self.membership.some_vertex(fact)
            if witness is None:
                return False  # the fact is not even in the database
            required_vertices.add(witness)

        if not self._independent(required_vertices):
            return False

        forbidden_vertices: set[Vertex] = set()
        for fact in forbid:
            forbidden_vertices |= self.membership.all_vertices(fact)
        # Facts absent from the database are trivially avoided.

        if required_vertices & forbidden_vertices:
            return False

        # For every forbidden tuple, collect the hyperedges that can block
        # it: edges through it whose remainder avoids the forbidden set.
        blockers: list[tuple[Vertex, list[frozenset[Vertex]]]] = []
        for target in forbidden_vertices:
            candidate_edges = [
                edge
                for edge in self.hypergraph.edges_of(target)
                if not ((edge - {target}) & forbidden_vertices)
            ]
            if not candidate_edges:
                # The tuple is in every repair (e.g. conflict-free): no
                # repair can avoid it.
                return False
            # Prefer small remainders: cheaper and more likely independent.
            candidate_edges.sort(key=len)
            blockers.append((target, candidate_edges))

        return self._choose_blockers(blockers, 0, set(required_vertices))

    def _choose_blockers(
        self,
        blockers: list[tuple[Vertex, list[frozenset[Vertex]]]],
        position: int,
        chosen: set[Vertex],
    ) -> bool:
        """Backtracking search over covering-edge choices.

        Independence is antitone (supersets of dependent sets stay
        dependent), so pruning at every level is sound; checking at every
        level makes the final set independent by construction.
        """
        if position == len(blockers):
            return True
        target, edges = blockers[position]
        for edge in edges:
            self.stats.witness_combinations += 1
            remainder = edge - {target}
            extended = chosen | remainder
            if self._independent(extended):
                if self._choose_blockers(blockers, position + 1, extended):
                    return True
        return False

    def _independent(self, vertices: set[Vertex]) -> bool:
        self.stats.independence_checks += 1
        return self.hypergraph.is_independent(vertices)
