"""Grounding: candidate tuple x SJUD query -> boolean membership formula.

Because Hippo's query class restricts projection to be non-existential,
a candidate answer determines, for every atom of every core, the *unique*
witness tuple that could have produced it (see
:func:`repro.ra.sjud.reconstruction_map`).  Grounding therefore reduces
``candidate in Q(M)`` to a quantifier-free boolean combination of ground
membership atoms:

* core ``pi(sigma(R1 x .. x Rk))``: reconstruct each atom's tuple from the
  candidate; if the core's condition fails on the reconstruction the core
  contributes FALSE, otherwise it contributes ``R1(t1) AND .. AND Rk(tk)``;
* ``Q1 UNION Q2`` contributes ``Phi1 OR Phi2``;
* ``Q1 EXCEPT Q2`` contributes ``Phi1 AND NOT Phi2``.

The resulting formula's size depends only on the query, never on the
data -- the linchpin of Hippo's polynomial data complexity.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.core import formula as fm
from repro.core.facts import Fact
from repro.engine.expressions import ExpressionCompiler, Scope
from repro.sql import ast
from repro.ra.sjud import (
    Difference,
    SJUDCore,
    SJUDTree,
    SchemaProvider,
    Source,
    Union_,
    reconstruction_map,
)

#: A prepared grounding tree: a core grounder leaf, or an
#: ("union" | "difference", left, right) combination node.
_Prepared = Union["_GroundCore", tuple[str, "_Prepared", "_Prepared"]]


class _GroundCore:
    """Pre-compiled grounding for one core."""

    def __init__(self, core: SJUDCore, schema: SchemaProvider) -> None:
        self.core = core
        recon = reconstruction_map(core, schema)
        self.atom_plans: list[tuple[str, list[Source]]] = [
            (atom.relation.lower(), recon[atom.alias.lower()])
            for atom in core.atoms
        ]
        # The condition is evaluated over the reconstructed concatenation
        # of all atom tuples, laid out atom by atom.
        entries: list[tuple[Optional[str], str]] = []
        offsets: dict[tuple[str, str], int] = {}
        for atom in core.atoms:
            for column in schema.relation_columns(atom.relation):
                offsets[(atom.alias.lower(), column.lower())] = len(entries)
                entries.append((atom.alias.lower(), column.lower()))
        self.condition: Optional[Callable] = None
        if core.condition is not None:
            compiler = ExpressionCompiler(Scope(entries))
            self.condition = compiler.compile_predicate(core.condition)
        # Output re-projection check: candidate values must agree with the
        # reconstruction (a candidate produced by *another* branch of a
        # union/difference may contradict this core's pinned constants).
        self.projection_checks: list[tuple[int, object]] = []
        for index, column in enumerate(core.outputs):
            source = column.source
            if isinstance(source, ast.Literal):
                self.projection_checks.append((index, ("const", source.value)))
            else:
                offset = offsets[(source.table.lower(), source.name.lower())]
                self.projection_checks.append((index, ("offset", offset)))

    def reconstruct(self, candidate: tuple) -> list[Fact]:
        """The unique witness facts for this candidate."""
        facts = []
        for relation, sources in self.atom_plans:
            values = tuple(
                candidate[payload] if kind == "slot" else payload
                for kind, payload in sources
            )
            # atom_plans lower-cases every relation when the plan is built.
            # hippolint: disable-next-line=HL005 -- relation already lower-case
            facts.append(Fact(relation, values))
        return facts

    def ground(self, candidate: tuple) -> fm.Formula:
        facts = self.reconstruct(candidate)
        concatenated = tuple(value for fact_ in facts for value in fact_.values)
        for index, (kind, payload) in self.projection_checks:
            expected = payload if kind == "const" else concatenated[payload]
            if candidate[index] != expected:
                return fm.FALSE
        if self.condition is not None and not self.condition((concatenated,)):
            return fm.FALSE
        return fm.conj(fm.AtomF(fact_) for fact_ in facts)


class GroundQuery:
    """A query prepared for repeated grounding (one per input query)."""

    def __init__(self, tree: SJUDTree, schema: SchemaProvider) -> None:
        self._tree = self._prepare(tree, schema)

    def _prepare(self, tree: SJUDTree, schema: SchemaProvider) -> _Prepared:
        if isinstance(tree, SJUDCore):
            return _GroundCore(tree, schema)
        if isinstance(tree, Union_):
            return (
                "union",
                self._prepare(tree.left, schema),
                self._prepare(tree.right, schema),
            )
        if isinstance(tree, Difference):
            return (
                "difference",
                self._prepare(tree.left, schema),
                self._prepare(tree.right, schema),
            )
        raise TypeError(f"cannot ground {type(tree).__name__}")

    def formula_for(self, candidate: tuple) -> fm.Formula:
        """The membership formula ``Phi`` with ``t in Q(M) iff M |= Phi``."""

        def recurse(node: _Prepared) -> fm.Formula:
            if isinstance(node, _GroundCore):
                return node.ground(candidate)
            op, left, right = node
            if op == "union":
                return fm.disj([recurse(left), recurse(right)])
            return fm.conj([recurse(left), fm.negate(recurse(right))])

        return recurse(self._tree)

    def witness_facts(self, candidate: tuple) -> frozenset[Fact]:
        """All facts the formula for ``candidate`` could mention.

        Used by the prefetch membership strategy to batch lookups.
        """
        return fm.atoms_of(self.formula_for(candidate))
