"""The Hippo engine: the full pipeline of the paper's Figure 1.

::

    Query ──> Enveloping ──> Candidates ──> Evaluation ┐
                                                       ├──> Prover ──> Answer Set
    IC ───> Conflict Detection ──> Conflict Hypergraph ┘
    DB ──────────────────────────────────────────────────┘

Conflict Detection runs once per (database, constraint set); each query
then goes through Enveloping, RDBMS Evaluation of the candidates, and the
Prover.  Two optional optimizations from the paper are controlled by
constructor flags:

* ``membership`` -- how the Prover's membership checks are answered
  (``"query"``: the base system's per-check point queries;
  ``"cached"``: batched; ``"provenance"``: the extended-envelope
  optimization answering checks without database queries);
* ``use_core`` -- evaluate the certain-answer core ``Q-down`` and skip
  the Prover for candidates found there.
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.backends.base import Backend

from repro.conflicts.detection import DetectionReport, detect_conflicts
from repro.conflicts.hypergraph import ConflictHypergraph
from repro.conflicts.incremental import IncrementalDetector
from repro.core.envelope import Enveloper, provenance_hints
from repro.core.grounding import GroundQuery
from repro.core.membership import make_membership
from repro.core.prover import Prover
from repro.engine.database import Database
from repro.engine.feed import ChangeFeed, FeedConsumer
from repro.engine.types import sort_key
from repro.errors import BackendError, UnsupportedQueryError
from repro.ra.compile import evaluate_tree
from repro.ra.sjud import (
    CatalogSchemaProvider,
    SJUDTree,
    from_sql_query,
    output_names_of,
)
from repro.sql import ast
from repro.sql.parser import parse_query

QueryLike = Union[str, ast.Query, SJUDTree]


@dataclass
class AnswerSet:
    """The consistent answers to a query, with run statistics.

    Attributes:
        columns: output column names.
        rows: the consistent answers, deterministically ordered.
        stats: pipeline counters (see :meth:`HippoEngine.consistent_answers`).
    """

    columns: list[str]
    rows: list[tuple]
    stats: dict[str, object] = field(default_factory=dict)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def as_set(self) -> frozenset[tuple]:
        return frozenset(self.rows)


class HippoEngine:
    """Consistent query answering over one database + constraint set.

    Args:
        db: the database instance (need not satisfy the constraints --
            that is the point).
        constraints: denial constraints / FDs / keys / exclusions.
        membership: Prover membership strategy (``"provenance"`` default).
        use_core: skip the Prover for candidates in the certain core.
        feed: the change feed to consume (defaults to the database's
            own; pass explicitly when the database publishes to a shared
            or durable feed the engine should subscribe to).
        group: consumer-group name for the engine's subscription.  With
            a named group the engine's position is visible (and, on a
            durable feed, persistent) under that name -- the CLI's
            ``.feed`` command shows per-group lag; anonymous engines get
            an ephemeral ``cursor-<n>`` group.
        hypergraph: a precomputed conflict hypergraph to answer from
            instead of running detection.  The engine is then *static*
            (detached: no feed subscription, no auto-sync) -- the shape
            :class:`~repro.conflicts.shard.ShardCoordinator.engine`
            uses to answer queries from a merged shard view.  An
            explicit :meth:`refresh` still falls back to full
            detection.
        backend: an execution backend (a registry name like
            ``"sqlite"``, or a constructed
            :class:`~repro.backends.base.Backend`) that full detection
            pushes residual joins to and :meth:`raw_answers` evaluates
            on.  The envelope/Prover pipeline itself stays native -- its
            restriction-driven evaluation is not SQL-expressible.  A
            pushing backend that declines work falls back to native
            execution; None (default) runs everything natively.

    The conflict hypergraph is built eagerly and then maintained
    *incrementally*: the engine is a consumer group of the database's
    change feed, and row deltas only touch the hyperedges around changed
    tuples (see :mod:`repro.conflicts.incremental`; the detector plans
    its matcher indexes eagerly at attach, so the first delta after a
    bulk load pays no index build).  Queries fold pending deltas in
    automatically; :meth:`refresh` does it explicitly, and
    ``refresh(full=True)`` is the escape hatch forcing complete
    re-detection.  DDL, constraint-list changes and lost feed history
    (in-memory overflow, or a durable feed's retention truncating past
    the engine's cursor) all fall back to full detection on their own.

    On a durable feed, the engine's pending-delta checks go through the
    consumer, which re-scans the feed directory on *reader* instances --
    so an engine subscribed to another process's feed keeps its
    hypergraph live as that process appends.
    """

    def __init__(
        self,
        db: Database,
        constraints: Iterable[object],
        membership: str = "provenance",
        use_core: bool = True,
        feed: Optional[ChangeFeed] = None,
        group: Optional[str] = None,
        hypergraph: Optional[ConflictHypergraph] = None,
        backend: Optional[Union["Backend", str]] = None,
    ) -> None:
        self.db = db
        self.constraints = list(constraints)
        self.membership_strategy = membership
        self.use_core = use_core
        self._schema = CatalogSchemaProvider(db.catalog)
        self.backend = self._resolve_backend(backend, db)
        # Binding a constraint set changes planner-relevant state (e.g.
        # detection creates indexes): cached statement plans must not
        # survive the transition.
        db.invalidate_plans()
        if hypergraph is not None:
            # Externally-maintained detection (e.g. a merged shard
            # view): the engine answers from it statically -- detached,
            # so no consumer, no incremental maintainer.
            self._consumer = None
            self._incremental = None
            self._schema_version = db.changes.schema_version
            self._constraints_snapshot = tuple(self.constraints)
            self.detection = DetectionReport(
                hypergraph=hypergraph, mode="external"
            )
            self._enveloper = Enveloper(db, self.hypergraph)
            return
        source = feed if feed is not None else db.changes.feed
        self._consumer: Optional[FeedConsumer] = source.consumer(group)
        try:
            # The engine is about to run full detection on the *current*
            # state: history before that (e.g. a resumed named group's
            # backlog) must not be re-applied on top of it.
            self._consumer.seek_to_end()
            # An engine dropped without detach() must not pin the change
            # feed forever (dbs commonly outlive engines, e.g. in tests
            # and the CLI); closing is idempotent, so detach() and GC
            # can both run.
            self._consumer_finalizer = weakref.finalize(
                self, self._consumer.close
            )
            self._schema_version = db.changes.schema_version
            self._constraints_snapshot = tuple(self.constraints)
            self._incremental: Optional[IncrementalDetector] = None
            self.detection: DetectionReport = self._full_detection()
        except BaseException:
            self._consumer.close()
            raise
        self._enveloper = Enveloper(db, self.hypergraph)

    # ------------------------------------------------------------ plumbing

    @staticmethod
    def _resolve_backend(
        spec: Optional[Union["Backend", str]], db: Database
    ) -> Optional["Backend"]:
        """Resolve a ``backend=`` argument and attach it to ``db``."""
        if spec is None:
            return None
        if isinstance(spec, str):
            from repro.backends import create_backend

            return create_backend(spec, db)
        spec.attach(db)
        return spec

    @property
    def hypergraph(self) -> ConflictHypergraph:
        """The conflict hypergraph built by Conflict Detection."""
        return self.detection.hypergraph

    @property
    def feed_lag(self) -> int:
        """Change-feed records past the engine's committed cut.

        Re-scans the directory on durable reader feeds (live tailing),
        so it reflects appends made by other processes; 0 for a
        detached engine.
        """
        return self._consumer.lag if self._consumer is not None else 0

    def _full_detection(self) -> DetectionReport:
        """Complete re-detection, re-seeding the incremental maintainer."""
        if self._consumer is None:
            # Detached engine: no deltas will ever arrive, so don't
            # build (and keep) a shadow store nobody can consume.
            return detect_conflicts(
                self.db, self.constraints, backend=self.backend
            )
        report = detect_conflicts(
            self.db, self.constraints, keep_raw=True, backend=self.backend
        )
        self._incremental = IncrementalDetector(self.db, self.constraints)
        self._incremental.bootstrap(report)
        report.raw_edges = None  # the shadow store owns the raw stream now
        report.raw_labels = None
        return report

    def refresh(self, full: bool = False) -> None:
        """Fold pending data changes into the conflict hypergraph.

        Incremental maintenance applies the change-log deltas in place;
        ``full=True`` forces complete re-detection (the always-correct
        escape hatch).  Full detection also happens automatically when
        the change log overflowed, DDL ran, or the constraint list was
        modified since the last detection.
        """
        records, lost = (
            self._consumer.poll() if self._consumer is not None else ([], True)
        )
        if (
            full
            or lost
            or self._incremental is None
            or self.db.changes.schema_version != self._schema_version
            or tuple(self.constraints) != self._constraints_snapshot
        ):
            # Forget the old maintainer first: if detection raises (e.g.
            # a constraint now references a dropped table), the next
            # refresh must retry full detection -- not resume applying
            # deltas with a detector built for the old schema.
            self._incremental = None
            self.detection = self._full_detection()
            self._schema_version = self.db.changes.schema_version
            self._constraints_snapshot = tuple(self.constraints)
            if self._consumer is not None:
                self._consumer.commit()
        elif records:
            try:
                stats = self._incremental.apply_records(records)
            except Exception:
                # A failed application (e.g. the data left the restricted
                # FK class mid-batch) may leave the maintained graph
                # partial: force full re-detection on the next refresh.
                # The poll stays uncommitted -- the fallback recomputes
                # from the database, not from the records.
                self._incremental = None
                raise
            self._consumer.commit()
            self.detection = DetectionReport(
                hypergraph=self._incremental.graph,
                per_constraint=stats.per_constraint,
                seconds=stats.seconds,
                subsumed=stats.per_constraint_subsumed,
                mode="incremental",
                deltas=stats.deltas,
                edges_added=stats.added + stats.resurrected,
                edges_retracted=stats.retracted,
            )
        else:
            return  # nothing pending; current state is already exact
        self._enveloper = Enveloper(self.db, self.hypergraph)

    def _sync(self) -> None:
        """Bring the hypergraph up to date before answering a query."""
        if self._consumer is None:
            return  # detached: the engine is deliberately static
        if (
            self._consumer.pending
            or self._consumer.lost
            or self._incremental is None
            or self.db.changes.schema_version != self._schema_version
            or tuple(self.constraints) != self._constraints_snapshot
        ):
            self.refresh()

    def detach(self) -> None:
        """Stop consuming the change feed (the engine becomes static).

        Queries stop auto-syncing; an explicit :meth:`refresh` still
        re-runs full detection.
        """
        if self._consumer is not None:
            self._consumer.close()
            self._consumer = None
        self._incremental = None

    def parse(self, query: QueryLike) -> tuple[SJUDTree, tuple[ast.OrderItem, ...]]:
        """Normalize any supported query form to an SJUD tree.

        Returns the tree plus any top-level ORDER BY items (consistent
        answers are a set; ordering is re-applied to the final answers).

        Raises:
            UnsupportedQueryError: for queries outside Hippo's class.
        """
        if isinstance(query, str):
            query = parse_query(query)
        if isinstance(query, ast.Query):
            order_by = query.order_by
            tree = from_sql_query(query, self._schema)
            return tree, order_by
        return query, ()

    # ------------------------------------------------------------- answers

    def consistent_answers(self, query: QueryLike) -> AnswerSet:
        """The paper's Answer Set: tuples true in every repair.

        The returned :class:`AnswerSet` carries statistics:
        ``candidates`` (envelope size), ``certain`` (core size),
        ``prover_checked``, ``prover_rejected``, membership-check counts,
        and per-stage wall-clock times.
        """
        self._sync()
        started = time.perf_counter()
        tree, order_by = self.parse(query)
        columns = list(output_names_of(tree))

        envelope = self._enveloper.evaluate(tree, compute_core=self.use_core)

        duplicate_free = not any(
            self.db.catalog.table(name).has_duplicates()
            for name in self.db.catalog.table_names()
        )
        membership = make_membership(
            self.membership_strategy, self.db, duplicate_free
        )
        prover = Prover(self.hypergraph, membership)
        grounder = GroundQuery(tree, self._schema)

        answers: list[tuple] = []
        skipped_by_core = 0
        prover_started = time.perf_counter()
        for candidate, provenance in envelope.candidates.items():
            if self.use_core and candidate in envelope.certain:
                skipped_by_core += 1
                answers.append(candidate)
                continue
            if self.membership_strategy == "provenance":
                membership.prime(provenance_hints(self.db, provenance))
            phi = grounder.formula_for(candidate)
            if prover.is_consistent_answer(phi):
                answers.append(candidate)
        prover_seconds = time.perf_counter() - prover_started

        rows = self._order(answers, columns, order_by)
        total_seconds = time.perf_counter() - started
        stats: dict[str, object] = {
            "candidates": envelope.candidate_count,
            "certain": len(envelope.certain),
            "skipped_by_core": skipped_by_core,
            "answers": len(rows),
            "prover": prover.stats,
            "membership": membership.stats,
            "envelope_seconds": envelope.seconds,
            "prover_seconds": prover_seconds,
            "total_seconds": total_seconds,
            "hypergraph": self.hypergraph.summary(),
        }
        return AnswerSet(columns, rows, stats)

    def possible_answers(self, query: QueryLike) -> AnswerSet:
        """Tuples true in *some* repair (the dual of consistent answers).

        Together the two sets bracket the inconsistent database's
        information: ``consistent <= any-resolution <= possible``.
        """
        self._sync()
        started = time.perf_counter()
        tree, order_by = self.parse(query)
        columns = list(output_names_of(tree))
        envelope = self._enveloper.evaluate(tree, compute_core=self.use_core)
        duplicate_free = not any(
            self.db.catalog.table(name).has_duplicates()
            for name in self.db.catalog.table_names()
        )
        membership = make_membership(
            self.membership_strategy, self.db, duplicate_free
        )
        prover = Prover(self.hypergraph, membership)
        grounder = GroundQuery(tree, self._schema)
        answers = []
        for candidate, provenance in envelope.candidates.items():
            if self.use_core and candidate in envelope.certain:
                answers.append(candidate)  # certain implies possible
                continue
            if self.membership_strategy == "provenance":
                membership.prime(provenance_hints(self.db, provenance))
            if prover.is_possible_answer(grounder.formula_for(candidate)):
                answers.append(candidate)
        rows = self._order(answers, columns, order_by)
        return AnswerSet(
            columns,
            rows,
            {
                "candidates": envelope.candidate_count,
                "answers": len(rows),
                "total_seconds": time.perf_counter() - started,
            },
        )

    def explain_candidate(self, query: QueryLike, candidate: tuple) -> dict:
        """Why a tuple is / is not a consistent answer.

        Returns a report with the candidate's ground formula, whether it
        is consistent and possible, and -- when it is not consistent --
        one counterexample requirement: a (require, forbid) fact pair for
        which a repair falsifying the formula exists.
        """
        from repro.core import formula as fm
        from repro.sql.formatter import format_expression  # noqa: F401

        self._sync()
        tree, _ = self.parse(query)
        grounder = GroundQuery(tree, self._schema)
        membership = make_membership("cached", self.db)
        prover = Prover(self.hypergraph, membership)
        phi = grounder.formula_for(tuple(candidate))
        consistent = prover.is_consistent_answer(phi)
        possible = prover.is_possible_answer(phi)
        report: dict[str, object] = {
            "candidate": tuple(candidate),
            "formula": phi,
            "facts": sorted(str(f) for f in fm.atoms_of(phi)),
            "consistent": consistent,
            "possible": possible,
        }
        if not consistent:
            for require, forbid in fm.to_dnf(fm.negate(phi)):
                if prover.exists_repair(require, forbid):
                    report["falsifying_repair_requires"] = sorted(
                        str(f) for f in require
                    )
                    report["falsifying_repair_excludes"] = sorted(
                        str(f) for f in forbid
                    )
                    break
        return report

    # ------------------------------------------------------------ baselines

    def raw_answers(self, query: QueryLike) -> AnswerSet:
        """Evaluate the query directly, ignoring inconsistency.

        This is the paper's "execution time of this query by the RDBMS
        backend ... the approach when we ignore the fact that the database
        is inconsistent".  With a pushing ``backend=`` bound to the
        engine, that RDBMS is literal: the tree is rendered to
        parameterized SQL and executed there (native fallback on
        decline).
        """
        started = time.perf_counter()
        tree, order_by = self.parse(query)
        columns = list(output_names_of(tree))
        rows: Iterable[tuple]
        if self.backend is not None and self.backend.capabilities.pushes_sql:
            try:
                rows = self.backend.execute_tree(tree)
            except BackendError:
                rows = evaluate_tree(tree, self.db)
        else:
            rows = evaluate_tree(tree, self.db)
        ordered = self._order(rows, columns, order_by)
        return AnswerSet(
            columns, ordered, {"total_seconds": time.perf_counter() - started}
        )

    def cleaned_answers(self, query: QueryLike) -> AnswerSet:
        """Evaluate over the database with all conflicting tuples removed.

        The "traditional approach" of the paper's introduction ("removing
        the conflicting data ... is not a good option"): it returns a
        subset of the consistent answers for monotone queries and can be
        plain wrong for queries with difference.
        """
        self._sync()
        started = time.perf_counter()
        tree, order_by = self.parse(query)
        columns = list(output_names_of(tree))
        rows = evaluate_tree(
            tree, self.db, self._enveloper._restrict_clean
        )
        ordered = self._order(rows, columns, order_by)
        return AnswerSet(
            columns, ordered, {"total_seconds": time.perf_counter() - started}
        )

    # -------------------------------------------------------------- helpers

    def _order(
        self,
        rows: Iterable[tuple],
        columns: Sequence[str],
        order_by: tuple[ast.OrderItem, ...],
    ) -> list[tuple]:
        """Apply top-level ORDER BY (or a deterministic default order)."""
        materialized = list(rows)
        if not order_by:
            materialized.sort(key=lambda row: tuple(sort_key(v) for v in row))
            return materialized
        lowered = [column.lower() for column in columns]
        for item in reversed(order_by):
            index = self._order_index(item.expr, lowered)
            materialized.sort(
                key=lambda row: sort_key(row[index]),
                reverse=not item.ascending,
            )
        return materialized

    @staticmethod
    def _order_index(expr: ast.Expression, columns: list[str]) -> int:
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            if 1 <= expr.value <= len(columns):
                return expr.value - 1
            raise UnsupportedQueryError(f"ORDER BY position {expr.value} out of range")
        if isinstance(expr, ast.ColumnRef) and expr.name.lower() in columns:
            return columns.index(expr.name.lower())
        raise UnsupportedQueryError(
            "ORDER BY on consistent answers must reference an output column"
        )
