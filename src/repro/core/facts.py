"""Ground facts: value-level tuples the Prover reasons about.

The CQA theory is set-based: a membership atom ``R(v1..vn)`` asks whether
a tuple *with those values* is in a repair.  Storage-level tuple ids (the
hypergraph's vertices) are related to facts through the membership
resolvers in :mod:`repro.core.membership`:

* a fact may match **no** tid (not in the database),
* exactly one tid (the usual, duplicate-free case), or
* several tids (duplicate rows).  Duplicates are interchangeable for
  *requiring* a fact in a repair (their conflict neighbourhoods are
  value-symmetric) but excluding a fact means excluding **every** copy.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.engine.types import format_value


class Fact(NamedTuple):
    """A ground fact ``relation(values)`` (relation name lower-cased)."""

    relation: str
    values: tuple

    def __str__(self) -> str:
        rendered = ", ".join(format_value(value) for value in self.values)
        return f"{self.relation}({rendered})"


def fact(relation: str, values: tuple) -> Fact:
    """Construct a normalized fact."""
    return Fact(relation.lower(), tuple(values))
