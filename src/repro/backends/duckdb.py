"""The DuckDB pushdown backend (optional ``backends`` extra).

DuckDB is vectorized and columnar -- the "fast as the hardware allows"
axis of the roadmap's multi-backend item.  The module imports lazily:
:func:`duckdb_available` reports whether the driver is installed, and
constructing :class:`DuckDBBackend` without it raises
:class:`~repro.errors.BackendError`.  The differential suite *skips*
(never silently passes) its DuckDB cases when the driver is absent.

DuckDB's ``rowid`` pseudo-column cannot be assigned on insert, so
mirrors carry native tids in an explicit leading ``_tid`` column
instead; everything else is the shared mirror machinery.
"""

from __future__ import annotations

import importlib
from typing import Any, Optional

from repro.backends.base import BackendCapabilities
from repro.backends.mirror import MirrorBackend
from repro.engine.types import SQLType
from repro.errors import BackendError

_CAPABILITIES = BackendCapabilities(
    param_style="qmark", pushes_sql=True, requires_sync=True
)

_TYPE_NAMES = {
    SQLType.INTEGER: "BIGINT",
    SQLType.REAL: "DOUBLE",
    SQLType.TEXT: "VARCHAR",
    SQLType.BOOLEAN: "BOOLEAN",
}


def _load_duckdb() -> Optional[Any]:
    try:
        return importlib.import_module("duckdb")
    except ImportError:
        return None


def duckdb_available() -> bool:
    """Whether the optional ``duckdb`` driver is importable."""
    return _load_duckdb() is not None


class DuckDBBackend(MirrorBackend):
    """Push rewritten queries and residual joins to DuckDB.

    Raises:
        BackendError: on construction when ``duckdb`` is not installed
            (install the ``backends`` extra).
    """

    name = "duckdb"
    tid_column = "_tid"
    tid_is_rowid = False

    def __init__(self) -> None:
        module = _load_duckdb()
        if module is None:
            raise BackendError(
                "the duckdb driver is not installed; install the"
                " 'backends' extra (pip install repro[backends])"
            )
        self._duckdb = module
        super().__init__()

    @property
    def capabilities(self) -> BackendCapabilities:
        """qmark parameters; pushes SQL; mirrors must be synced."""
        return _CAPABILITIES

    def _connect(self) -> Any:
        """An in-memory DuckDB database."""
        return self._duckdb.connect(":memory:")

    def _driver_errors(self) -> tuple[type[BaseException], ...]:
        """DuckDB's exception root."""
        return (self._duckdb.Error,)

    def type_name(self, sql_type: SQLType) -> str:
        """DuckDB column types (widened integers, native booleans)."""
        return _TYPE_NAMES[sql_type]
