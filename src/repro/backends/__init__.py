"""Pluggable execution backends for CQA workloads.

See :mod:`repro.backends.base` for the protocol.  The registry here is
the single place backends are named: ``create_backend("sqlite")`` and
friends are what :class:`~repro.core.hippo.HippoEngine`, the rewriting
baseline and the CLI use to resolve a ``backend=`` selection.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.backends.base import Backend, BackendCapabilities
from repro.backends.duckdb import DuckDBBackend, duckdb_available
from repro.backends.mirror import MirrorBackend
from repro.backends.native import NativeBackend
from repro.backends.sqlite import SQLiteBackend
from repro.engine.database import Database
from repro.errors import BackendError

#: Registry: backend name -> constructor.
BACKENDS: dict[str, Callable[[], Backend]] = {
    "native": NativeBackend,
    "sqlite": SQLiteBackend,
    "duckdb": DuckDBBackend,
}


def available_backends() -> list[str]:
    """Backend names usable right now (duckdb only when installed)."""
    names = ["native", "sqlite"]
    if duckdb_available():
        names.append("duckdb")
    return names


def create_backend(name: str, db: Optional[Database] = None) -> Backend:
    """Construct (and optionally attach) a backend by registry name.

    Raises:
        BackendError: on an unknown name, or a backend whose driver is
            not installed.
    """
    try:
        constructor = BACKENDS[name.lower()]
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r}; known: {sorted(BACKENDS)}"
        ) from None
    backend = constructor()
    if db is not None:
        backend.attach(db)
    return backend


__all__ = [
    "BACKENDS",
    "Backend",
    "BackendCapabilities",
    "BackendError",
    "DuckDBBackend",
    "MirrorBackend",
    "NativeBackend",
    "SQLiteBackend",
    "available_backends",
    "create_backend",
    "duckdb_available",
]
