"""The SQLite pushdown backend (stdlib :mod:`sqlite3`, always available).

Relations mirror into an in-memory SQLite database with the native tid
pinned into SQLite's ``rowid`` -- mirrors carry exactly the native
columns, inserts name ``rowid`` explicitly, and residual joins select
``alias.rowid`` per atom, so conflict edges come back as native tids
with no extra column in the visible schema.

Dialect alignment with the native engine:

* ``PRAGMA case_sensitive_like = ON`` -- the native engine's ``LIKE``
  is case-sensitive; SQLite's default is not.
* ``BOOLEAN`` columns are stored as ``INTEGER`` and coerced back to
  :class:`bool` on read using the native schema's declared types.
"""

from __future__ import annotations

import sqlite3

from repro.backends.base import BackendCapabilities
from repro.backends.mirror import MirrorBackend
from repro.engine.types import SQLType

_CAPABILITIES = BackendCapabilities(
    param_style="qmark", pushes_sql=True, requires_sync=True
)

_TYPE_NAMES = {
    SQLType.INTEGER: "INTEGER",
    SQLType.REAL: "REAL",
    SQLType.TEXT: "TEXT",
    SQLType.BOOLEAN: "INTEGER",
}


class SQLiteBackend(MirrorBackend):
    """Push rewritten queries and residual joins to stdlib SQLite."""

    name = "sqlite"
    tid_column = "rowid"
    tid_is_rowid = True

    @property
    def capabilities(self) -> BackendCapabilities:
        """qmark parameters; pushes SQL; mirrors must be synced."""
        return _CAPABILITIES

    def _connect(self) -> sqlite3.Connection:
        """An in-memory database aligned with native semantics."""
        conn = sqlite3.connect(":memory:")
        try:
            conn.execute("PRAGMA case_sensitive_like = ON")
        except BaseException:
            conn.close()
            raise
        return conn

    def _driver_errors(self) -> tuple[type[BaseException], ...]:
        """sqlite3's exception root (plus overflow on huge integers)."""
        return (sqlite3.Error, OverflowError)

    def type_name(self, sql_type: SQLType) -> str:
        """SQLite column types (BOOLEAN stored as INTEGER)."""
        return _TYPE_NAMES[sql_type]
