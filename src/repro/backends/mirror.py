"""Shared machinery for SQL backends that mirror native relations.

A mirror backend owns a DB-API connection and keeps one mirror table
per native relation.  Sync is lazy and versioned: every execution entry
point first compares each native table's monotone mutation counter
(:attr:`repro.engine.storage.Table.version`, plus its schema and index
signature) against what the mirror last copied, and rebuilds only the
relations that changed.  Tids survive the crossing -- subclasses either
pin them into the engine's ``rowid`` (SQLite) or store them in an
explicit leading column (DuckDB) -- so residual-join results are
directly usable as conflict-hypergraph vertices.

All SQL text handed to the driver comes from
:mod:`repro.ra.to_sql` (parameterized rendering and quoting helpers);
no interpolated SQL is built here (hippolint HL012).
"""

from __future__ import annotations

from abc import abstractmethod
from typing import Any, Iterator, Optional, Sequence

from repro.backends.base import (
    Backend,
    query_output_types,
    tree_output_types,
)
from repro.engine.storage import Table
from repro.engine.types import SQLType, SQLValue
from repro.errors import AlgebraError, BackendError
from repro.ra.sjud import SJUDCore, SJUDTree
from repro.ra.to_sql import (
    ParameterizedSQL,
    create_index_sql,
    create_table_sql,
    drop_table_sql,
    insert_sql,
    render_core_tids,
    render_query,
    render_tree,
)
from repro.sql import ast

#: A mirror signature: source-table identity + mutation version +
#: schema/index shape.  Any component changing forces a rebuild.
MirrorSignature = tuple

_MAX_EDGE_ARITY = 64


class MirrorBackend(Backend):
    """Base class for backends that copy relations into a SQL engine."""

    #: The column (or pseudo-column) carrying native tids in mirrors.
    tid_column: str = "_tid"
    #: Whether :attr:`tid_column` is the engine's rowid (not a real
    #: column) rather than an explicit leading column of the mirror.
    tid_is_rowid: bool = False

    def __init__(self) -> None:
        super().__init__()
        self._conn: Optional[Any] = None
        self._mirrored: dict[str, MirrorSignature] = {}

    # ------------------------------------------------------------- plumbing

    @abstractmethod
    def _connect(self) -> Any:
        """Open and configure the driver connection."""

    @abstractmethod
    def _driver_errors(self) -> tuple[type[BaseException], ...]:
        """The driver's exception classes, wrapped into BackendError."""

    @abstractmethod
    def type_name(self, sql_type: SQLType) -> str:
        """The backend's column type name for a native :class:`SQLType`."""

    @property
    def connection(self) -> Any:
        """The live driver connection (opened on first use)."""
        if self._conn is None:
            self._conn = self._connect()
        return self._conn

    def close(self) -> None:
        """Drop mirrors state and close the driver connection."""
        try:
            if self._conn is not None:
                self._conn.close()
        finally:
            # Even a failing driver close() must not leave the backend
            # half-alive: the next use would sync against stale mirror
            # signatures over a dead connection.
            self._conn = None
            self._mirrored.clear()
            super().close()

    # ----------------------------------------------------------------- sync

    def _signature(self, table: Table) -> MirrorSignature:
        schema = table.schema
        return (
            id(table),
            table.version,
            schema.column_names,
            tuple(column.sql_type.value for column in schema.columns),
            tuple(sorted(table.indexed_column_sets())),
        )

    def _mirror_rows(self, table: Table) -> Iterator[tuple[SQLValue, ...]]:
        for tid, row in table.items():
            yield (tid,) + row

    def sync(self) -> None:
        """Bring every mirror up to date with the attached database.

        Rebuilds only relations whose signature changed; drops mirrors
        of relations that no longer exist.  Called automatically by the
        execution entry points.

        Raises:
            BackendError: on any driver failure.
        """
        conn = self.connection
        live: set[str] = set()
        try:
            for table in self.db.catalog:
                key = table.schema.name.lower()
                live.add(key)
                signature = self._signature(table)
                if self._mirrored.get(key) == signature:
                    continue
                self._rebuild_mirror(conn, table)
                self._mirrored[key] = signature
            for key in sorted(set(self._mirrored) - live):
                conn.execute(drop_table_sql(key))
                del self._mirrored[key]
        except self._driver_errors() as exc:
            raise BackendError(
                f"backend {self.name!r} failed to sync mirrors: {exc}"
            ) from exc

    def _rebuild_mirror(self, conn: Any, table: Table) -> None:
        schema = table.schema
        key = schema.name.lower()
        names = schema.column_names
        columns = [
            (column.name, self.type_name(column.sql_type))
            for column in schema.columns
        ]
        if not self.tid_is_rowid:
            columns.insert(0, (self.tid_column, self.type_name(SQLType.INTEGER)))
        elif self.tid_column.lower() in {n.lower() for n in names}:
            raise BackendError(
                f"relation {key!r} has a column named {self.tid_column!r},"
                f" which backend {self.name!r} reserves for native tids"
            )
        conn.execute(drop_table_sql(key))
        conn.execute(create_table_sql(key, columns))
        insert = insert_sql(
            key,
            schema.arity + 1,
            style=self.capabilities.param_style,
            columns=(self.tid_column,) + names,
        )
        conn.executemany(insert, self._mirror_rows(table))
        for number, positions in enumerate(table.indexed_column_sets()):
            conn.execute(
                create_index_sql(
                    f"idx_{key}_{number}",
                    key,
                    [names[position] for position in positions],
                )
            )

    # ------------------------------------------------------------ execution

    def _run(self, rendered: ParameterizedSQL) -> tuple[tuple[str, ...], list[tuple]]:
        try:
            cursor = self.connection.execute(rendered.text, rendered.params)
            columns = tuple(
                description[0] for description in cursor.description or ()
            )
            rows = [tuple(row) for row in cursor.fetchall()]
        except self._driver_errors() as exc:
            raise BackendError(
                f"backend {self.name!r} rejected pushed SQL: {exc}"
            ) from exc
        self.db.stats.backend_pushdowns += 1
        return columns, rows

    @staticmethod
    def _coerce_rows(
        rows: list[tuple], types: Sequence[Optional[SQLType]]
    ) -> list[tuple]:
        if not any(t is SQLType.BOOLEAN for t in types):
            return rows
        boolean = [
            index for index, t in enumerate(types) if t is SQLType.BOOLEAN
        ]
        coerced = []
        for row in rows:
            values = list(row)
            for index in boolean:
                if values[index] is not None:
                    values[index] = bool(values[index])
            coerced.append(tuple(values))
        return coerced

    def execute_tree(self, tree: SJUDTree) -> frozenset[tuple]:
        """Render the tree to parameterized SQL and push it down."""
        self.sync()
        try:
            rendered = render_tree(tree, self.capabilities.param_style)
        except AlgebraError as exc:
            raise BackendError(f"cannot lower tree: {exc}") from exc
        _, rows = self._run(rendered)
        types = tree_output_types(tree, self.db.catalog)
        return frozenset(self._coerce_rows(rows, types))

    def execute_query(
        self, query: ast.Query
    ) -> tuple[tuple[str, ...], list[tuple]]:
        """Render the SELECT to parameterized SQL and push it down."""
        self.sync()
        try:
            rendered = render_query(query, self.capabilities.param_style)
        except AlgebraError as exc:
            raise BackendError(f"cannot lower query: {exc}") from exc
        columns, rows = self._run(rendered)
        types = query_output_types(query, self.db.catalog)
        if len(types) == 0 or (rows and len(types) != len(rows[0])):
            return columns, rows
        return columns, self._coerce_rows(rows, types)

    def residual_join(self, core: SJUDCore) -> list[tuple[int, ...]]:
        """Push the constraint body down, reading one tid per atom."""
        if len(core.atoms) > _MAX_EDGE_ARITY:
            raise BackendError(
                f"residual join over {len(core.atoms)} atoms exceeds the"
                f" mirror backend limit of {_MAX_EDGE_ARITY}"
            )
        self.sync()
        try:
            rendered = render_core_tids(
                core, self.tid_column, self.capabilities.param_style
            )
        except AlgebraError as exc:
            raise BackendError(f"cannot lower residual join: {exc}") from exc
        _, rows = self._run(rendered)
        return [tuple(int(tid) for tid in row) for row in rows]
