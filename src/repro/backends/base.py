"""The execution-backend protocol.

The paper's point about the rewriting approach is that consistent
queries are *first-order*, hence runnable on any ordinary RDBMS; this
package makes that concrete.  A :class:`Backend` is an executor the CQA
layers can hand relational work to: an SJUD tree (the envelope / a
rewritten consistent query) or a denial constraint's residual join.  The
:class:`~repro.backends.native.NativeBackend` wraps the in-memory
planner and plan executor; SQL backends
(:class:`~repro.backends.sqlite.SQLiteBackend`,
:class:`~repro.backends.duckdb.DuckDBBackend`) mirror relations into a
real database and push rendered SQL with bound parameters.

Ownership rules: a backend never owns the data.  The native
:class:`~repro.engine.database.Database` is the single source of truth;
SQL backends keep per-relation mirrors stamped with the source table's
mutation version and re-sync lazily before executing.  Answers flow back
coerced to the native type system (booleans in particular), so every
backend is exchangeable under the differential oracle suite
(``tests/backends/test_differential.py``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.engine.catalog import Catalog
from repro.engine.database import Database
from repro.engine.types import SQLType, infer_type
from repro.errors import BackendError
from repro.ra.sjud import Difference, SJUDCore, SJUDTree, Union_
from repro.sql import ast


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can do and how to talk to it.

    Attributes:
        param_style: key into :data:`repro.ra.to_sql.PARAM_STYLES`; the
            placeholder dialect the backend's driver expects.
        pushes_sql: whether the backend executes rendered SQL text (SQL
            backends) or native plan objects (the native engine).
        requires_sync: whether relations must be mirrored into the
            backend before queries can run against it.
    """

    param_style: str
    pushes_sql: bool
    requires_sync: bool


class Backend(ABC):
    """An executor for relational work produced by the CQA layers.

    Lifecycle: construct, :meth:`attach` to a database, execute any
    number of trees / queries / residual joins, :meth:`close`.  A
    backend is bound to at most one database at a time; attaching a
    second one replaces the first.
    """

    #: Registry name (``"native"``, ``"sqlite"``, ``"duckdb"``).
    name: str = "abstract"

    def __init__(self) -> None:
        self._db: Optional[Database] = None

    @property
    @abstractmethod
    def capabilities(self) -> BackendCapabilities:
        """The backend's capability flags."""

    def attach(self, db: Database) -> None:
        """Bind the backend to ``db`` (the oracle and source of truth)."""
        self._db = db

    def close(self) -> None:
        """Release the bound database and any driver resources."""
        self._db = None

    @property
    def db(self) -> Database:
        """The attached database.

        Raises:
            BackendError: when no database is attached.
        """
        if self._db is None:
            raise BackendError(f"backend {self.name!r} is not attached")
        return self._db

    @abstractmethod
    def execute_tree(self, tree: SJUDTree) -> frozenset[tuple]:
        """Evaluate an SJUD tree, returning its answer set."""

    @abstractmethod
    def execute_query(self, query: ast.Query) -> tuple[tuple[str, ...], list[tuple]]:
        """Evaluate a SELECT AST; returns (column names, rows).

        Raises:
            BackendError: when the query cannot be lowered or executed
                by this backend (callers holding a native fallback catch
                this and re-run natively).
        """

    @abstractmethod
    def residual_join(self, core: SJUDCore) -> list[tuple[int, ...]]:
        """Evaluate a denial constraint's residual join.

        ``core`` is the constraint body (atoms + condition, no outputs);
        the result rows carry one native tid per atom, in atom order,
        with duplicates removed.  Conflict detection turns each row into
        a conflict-hypergraph hyperedge.
        """


# ---------------------------------------------------------------------------
# Output typing (read-side coercion contract)
# ---------------------------------------------------------------------------


def _alias_map(from_items: Sequence[ast.FromItem]) -> dict[str, str]:
    mapping: dict[str, str] = {}
    for item in from_items:
        if isinstance(item, ast.TableRef):
            mapping[(item.alias or item.name).lower()] = item.name
    return mapping


def _column_type(
    expr: ast.Expression, aliases: dict[str, str], catalog: Catalog
) -> Optional[SQLType]:
    if isinstance(expr, ast.Literal):
        return None if expr.value is None else infer_type(expr.value)
    if isinstance(expr, ast.ColumnRef):
        candidates = (
            [aliases[expr.table.lower()]]
            if expr.table is not None and expr.table.lower() in aliases
            else list(aliases.values())
        )
        for relation in candidates:
            if not catalog.has_table(relation):
                continue
            schema = catalog.table(relation).schema
            if schema.has_column(expr.name):
                return schema.column(expr.name).sql_type
    return None


def query_output_types(
    query: ast.Query, catalog: Catalog
) -> tuple[Optional[SQLType], ...]:
    """Declared types of a query's output columns, where derivable.

    ``None`` marks a column whose type cannot be resolved statically (an
    expression, or an unresolvable reference); SQL backends leave those
    values as the driver returned them.  Set operations take the left
    branch's types (both sides are union-compatible by construction).
    """
    body = query.body
    while isinstance(body, ast.SetOperation):
        body = body.left
    aliases = _alias_map(body.from_items)
    types: list[Optional[SQLType]] = []
    for item in body.items:
        if isinstance(item, ast.Star):
            relations = (
                [aliases[item.table.lower()]]
                if item.table is not None and item.table.lower() in aliases
                else list(aliases.values())
            )
            for relation in relations:
                if catalog.has_table(relation):
                    schema = catalog.table(relation).schema
                    types.extend(c.sql_type for c in schema.columns)
            continue
        types.append(_column_type(item.expr, aliases, catalog))
    return tuple(types)


def tree_output_types(
    tree: SJUDTree, catalog: Catalog
) -> tuple[Optional[SQLType], ...]:
    """Declared types of an SJUD tree's output columns, where derivable."""
    core = tree
    while isinstance(core, (Union_, Difference)):
        core = core.left
    aliases = {
        atom.alias.lower(): atom.relation for atom in core.atoms
    }
    return tuple(
        _column_type(column.source, aliases, catalog)
        for column in core.outputs
    )
