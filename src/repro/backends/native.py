"""The native backend: today's planner / plan executor behind the seam.

This is the reference implementation every other backend is measured
against (the *differential oracle*): it evaluates SJUD trees through
:mod:`repro.ra.compile`, SELECT ASTs through the database's planner, and
residual joins through the same compiled-core machinery conflict
detection has always used.  It needs no mirroring -- it reads the
attached database's storage directly.
"""

from __future__ import annotations

from repro.backends.base import Backend, BackendCapabilities
from repro.errors import BackendError, ReproError
from repro.ra.compile import compile_core, evaluate_tree
from repro.ra.sjud import SJUDCore, SJUDTree
from repro.sql import ast

_CAPABILITIES = BackendCapabilities(
    param_style="qmark", pushes_sql=False, requires_sync=False
)


class NativeBackend(Backend):
    """Execute on the in-memory engine (the reference oracle)."""

    name = "native"

    @property
    def capabilities(self) -> BackendCapabilities:
        """Plan-object execution; no mirroring."""
        return _CAPABILITIES

    def execute_tree(self, tree: SJUDTree) -> frozenset[tuple]:
        """Evaluate via :func:`repro.ra.compile.evaluate_tree`."""
        return evaluate_tree(tree, self.db)

    def execute_query(
        self, query: ast.Query
    ) -> tuple[tuple[str, ...], list[tuple]]:
        """Plan and run the SELECT on the native engine.

        Raises:
            BackendError: when the native engine rejects the query.
        """
        try:
            result = self.db.execute_statement(ast.SelectStatement(query))
        except ReproError as exc:
            raise BackendError(f"native execution failed: {exc}") from exc
        return tuple(result.columns), list(result.rows)

    def residual_join(self, core: SJUDCore) -> list[tuple[int, ...]]:
        """Compile the constraint body and read its tid rows."""
        node = compile_core(core, self.db)
        seen: set[tuple[int, ...]] = set()
        rows: list[tuple[int, ...]] = []
        for row in node.rows(()):
            tids = tuple(row)
            if tids not in seen:
                seen.add(tids)
                rows.append(tids)
        return rows
