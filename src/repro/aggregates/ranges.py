"""Range-consistent answers for scalar aggregation (extension).

The demo paper's reference [3] (Arenas, Bertossi, Chomicki, He, Raghavan &
Spinrad, *Scalar Aggregation in Inconsistent Databases*, TCS 296(3), 2003)
defines the consistent answer to an aggregate query as the *range*
``[glb, lub]`` of its value across all repairs, and gives polynomial
algorithms for one key FD.  Hippo's future work points at this line; the
module reproduces the single-FD algorithms:

With a key FD ``X -> rest``, every repair keeps exactly one tuple per key
group, so with per-group minima ``m_g`` and maxima ``M_g`` over the
aggregated column:

==========  ======================  ======================
aggregate   glb                      lub
==========  ======================  ======================
COUNT(*)    #groups                 #groups
SUM(c)      sum of m_g              sum of M_g
MIN(c)      min of m_g              min of M_g
MAX(c)      max of m_g              max of M_g
AVG(c)      (sum of m_g)/#groups    (sum of M_g)/#groups
==========  ======================  ======================

(The MIN/MAX lub/glb entries follow from a simple exchange argument: each
repair picks one value per group, so e.g. the largest achievable minimum
picks every group's maximum.)

Everything is validated against brute-force repair enumeration in the
test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.constraints.fd import FunctionalDependency
from repro.engine.database import Database
from repro.errors import ConstraintError, UnsupportedQueryError

_SUPPORTED = ("COUNT", "SUM", "MIN", "MAX", "AVG")


@dataclass(frozen=True)
class AggregateRange:
    """The range-consistent answer ``[glb, lub]`` of an aggregate.

    Attributes:
        glb: greatest lower bound of the value over all repairs.
        lub: least upper bound of the value over all repairs.
        definite: whether glb == lub (the aggregate is repair-invariant).
    """

    glb: float
    lub: float

    @property
    def definite(self) -> bool:
        return self.glb == self.lub


def _validate_key_fd(db: Database, fd: FunctionalDependency) -> tuple[int, ...]:
    """Check the FD is a key FD for its relation; return key indexes."""
    schema = db.catalog.table(fd.relation).schema
    lhs = {a.lower() for a in fd.lhs}
    rhs = {a.lower() for a in fd.rhs}
    all_columns = {c.lower() for c in schema.column_names}
    if lhs | rhs != all_columns:
        raise ConstraintError(
            "aggregate ranges require a *key* FD (lhs + rhs covering every"
            f" column of {fd.relation!r}); got {fd}"
        )
    return tuple(schema.index_of(a) for a in fd.lhs)


def aggregate_range(
    db: Database,
    fd: FunctionalDependency,
    function: str,
    column: Optional[str] = None,
) -> AggregateRange:
    """Range-consistent answer to ``SELECT agg(column) FROM fd.relation``.

    Args:
        fd: the (single) key FD the relation is inconsistent with respect to.
        function: COUNT / SUM / MIN / MAX / AVG (COUNT means ``COUNT(*)``).
        column: the aggregated column (ignored for COUNT).

    Raises:
        UnsupportedQueryError: unknown aggregate, NULLs in the aggregated
            column, or (for MIN/MAX/SUM/AVG on an empty table) an undefined
            aggregate value.
        ConstraintError: the FD is not a key FD.
    """
    name = function.upper()
    if name not in _SUPPORTED:
        raise UnsupportedQueryError(
            f"unsupported aggregate {function!r}; expected one of {_SUPPORTED}"
        )
    key_indexes = _validate_key_fd(db, fd)
    table = db.catalog.table(fd.relation)

    if name == "COUNT":
        groups = {tuple(row[i] for i in key_indexes) for row in table.rows()}
        count = float(len(groups))
        return AggregateRange(count, count)

    if column is None:
        raise UnsupportedQueryError(f"{name} requires a column argument")
    column_index = table.schema.index_of(column)

    group_min: dict[tuple, float] = {}
    group_max: dict[tuple, float] = {}
    for row in table.rows():
        value = row[column_index]
        if value is None:
            raise UnsupportedQueryError(
                f"NULL in {fd.relation}.{column}: aggregate ranges assume"
                " a NULL-free aggregated column"
            )
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise UnsupportedQueryError(
                f"{name} requires a numeric column, found {value!r}"
            )
        key = tuple(row[i] for i in key_indexes)
        if key not in group_min:
            group_min[key] = group_max[key] = value
        else:
            group_min[key] = min(group_min[key], value)
            group_max[key] = max(group_max[key], value)

    if not group_min:
        raise UnsupportedQueryError(
            f"{name} over an empty relation has no defined value"
        )

    minima = list(group_min.values())
    maxima = list(group_max.values())
    if name == "SUM":
        return AggregateRange(float(sum(minima)), float(sum(maxima)))
    if name == "MIN":
        return AggregateRange(float(min(minima)), float(min(maxima)))
    if name == "MAX":
        return AggregateRange(float(max(minima)), float(max(maxima)))
    # AVG: COUNT is repair-invariant (one tuple per group), so the average
    # is extremal exactly when the sum is.
    groups = float(len(minima))
    return AggregateRange(sum(minima) / groups, sum(maxima) / groups)


def brute_force_range(
    db: Database,
    fd: FunctionalDependency,
    function: str,
    column: Optional[str] = None,
) -> AggregateRange:
    """Oracle: the same range by enumerating every repair (tests only)."""
    from repro.conflicts.detection import detect_conflicts
    from repro.repairs.enumerate import all_repairs

    name = function.upper()
    if name not in _SUPPORTED:
        raise UnsupportedQueryError(f"unsupported aggregate {function!r}")
    _validate_key_fd(db, fd)
    table = db.catalog.table(fd.relation)
    column_index = table.schema.index_of(column) if column is not None else None

    report = detect_conflicts(db, [fd])
    values: list[float] = []
    for repair in all_repairs(db, report.hypergraph):
        kept = repair[fd.relation.lower()]
        # Set semantics: duplicate stored copies of a tuple count once,
        # matching the relational CQA model (and the fast algorithm).
        rows = sorted({row for tid, row in table.items() if tid in kept})
        if name == "COUNT":
            values.append(float(len(rows)))
            continue
        assert column_index is not None
        column_values = [row[column_index] for row in rows]
        if name == "SUM":
            values.append(float(sum(column_values)))
        elif name == "MIN":
            values.append(float(min(column_values)))
        elif name == "MAX":
            values.append(float(max(column_values)))
        else:
            values.append(sum(column_values) / len(column_values))
    return AggregateRange(min(values), max(values))
