"""Per-group aggregate ranges under a key FD (extension).

Extends the scalar ranges of :mod:`repro.aggregates.ranges` to
``GROUP BY`` queries of the shape::

    SELECT g, agg(v) FROM r GROUP BY g

under a key FD ``k -> rest``.  Every repair keeps exactly one tuple per
key, so the keys contribute *independently* to each group ``g``:

* a key whose tuples all carry group value ``g`` always contributes one
  chosen tuple to ``g``;
* a key with tuples both inside and outside ``g`` can contribute either
  one tuple or nothing (the choice may "escape" the group);
* a key with no tuple in ``g`` never contributes.

Summing per-key contribution extrema gives exact glb/lub per group for
COUNT and SUM (a vanished contribution counts as 0; this also makes the
bounds correct for negative values).  MIN/MAX per group are *not*
computed here: a group can be empty in some repairs, where its MIN/MAX is
undefined rather than 0 -- the scalar module handles the global case.

Everything is validated against brute-force repair enumeration in the
test suite.
"""

from __future__ import annotations

from typing import Optional

from repro.aggregates.ranges import AggregateRange, _validate_key_fd
from repro.constraints.fd import FunctionalDependency
from repro.engine.database import Database
from repro.engine.types import SQLValue
from repro.errors import UnsupportedQueryError

#: key tuple -> the (group value, contribution value) options of its tuples.
_Contributions = dict[tuple[SQLValue, ...], list[tuple[SQLValue, SQLValue]]]


def _group_contributions(
    db: Database,
    fd: FunctionalDependency,
    group_column: str,
    value_column: Optional[str],
) -> _Contributions:
    """Per (group, key): the contribution values and escapability."""
    key_indexes = _validate_key_fd(db, fd)
    table = db.catalog.table(fd.relation)
    group_index = table.schema.index_of(group_column)
    value_index = (
        table.schema.index_of(value_column) if value_column is not None else None
    )

    # key -> list of (group value, aggregated value)
    per_key: _Contributions = {}
    for row in set(table.rows()):  # set semantics: duplicates count once
        key = tuple(row[i] for i in key_indexes)
        value = 1 if value_index is None else row[value_index]
        if value_index is not None:
            if value is None:
                raise UnsupportedQueryError(
                    f"NULL in {fd.relation}.{value_column}: grouped ranges"
                    " assume a NULL-free aggregated column"
                )
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise UnsupportedQueryError(
                    f"SUM requires a numeric column, found {value!r}"
                )
        per_key.setdefault(key, []).append((row[group_index], value))
    return per_key


def _ranges_from_contributions(
    per_key: _Contributions,
) -> dict[SQLValue, AggregateRange]:
    groups: set[SQLValue] = {
        group for options in per_key.values() for group, _value in options
    }
    result: dict[SQLValue, AggregateRange] = {}
    for group in groups:
        glb = 0.0
        lub = 0.0
        for options in per_key.values():
            inside = [value for g, value in options if g == group]
            if not inside:
                continue
            escapable = any(g != group for g, _value in options)
            if escapable:
                glb += min(0.0, min(inside))
                lub += max(0.0, max(inside))
            else:
                glb += min(inside)
                lub += max(inside)
        result[group] = AggregateRange(glb, lub)
    return result


def grouped_count_range(
    db: Database, fd: FunctionalDependency, group_column: str
) -> dict[SQLValue, AggregateRange]:
    """Ranges of ``SELECT group_column, COUNT(*) ... GROUP BY group_column``.

    Groups are the values present in the full instance; a group whose
    count can drop to zero reports ``glb == 0``.
    """
    per_key = _group_contributions(db, fd, group_column, None)
    return _ranges_from_contributions(per_key)


def grouped_sum_range(
    db: Database,
    fd: FunctionalDependency,
    group_column: str,
    value_column: str,
) -> dict[SQLValue, AggregateRange]:
    """Ranges of ``SELECT group_column, SUM(value) ... GROUP BY group_column``.

    An empty group sums to 0 (SQL would return no row; reporting the
    zero range keeps the group comparable across repairs).
    """
    if group_column.lower() == value_column.lower():
        raise UnsupportedQueryError(
            "grouping column and aggregated column must differ"
        )
    per_key = _group_contributions(db, fd, group_column, value_column)
    return _ranges_from_contributions(per_key)
