"""Range-consistent aggregation (extension; TCS 2003 reference [3])."""

from repro.aggregates.groups import grouped_count_range, grouped_sum_range
from repro.aggregates.ranges import AggregateRange, aggregate_range, brute_force_range

__all__ = [
    "AggregateRange",
    "aggregate_range",
    "brute_force_range",
    "grouped_count_range",
    "grouped_sum_range",
]
