"""Hand-crafted demo scenarios.

The integration scenario realizes the paper's opening motivation: *"in
the case of integration of several data sources, even if the sources are
separately consistent, the integrated data can violate the integrity
constraints"* -- and its demonstration part 1: consistent query answers
extract more information than evaluating over the database with the
conflicting tuples removed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.constraints.fd import FunctionalDependency
from repro.engine.database import Database


@dataclass(frozen=True)
class IntegrationScenario:
    """Two customer databases merged into one inconsistent instance.

    Attributes:
        db: the integrated database, table ``customer(id, city, status)``.
        fd: the key FD ``id -> city, status`` both sources satisfied.
        n_agreeing: customers present with identical data in both sources.
        n_disputed: customers whose sources disagree (key conflicts).
        n_unique: customers present in exactly one source.
    """

    db: Database
    fd: FunctionalDependency
    n_agreeing: int
    n_disputed: int
    n_unique: int


def build_integration_scenario(
    n_customers: int = 300,
    disputed_fraction: float = 0.2,
    seed: int = 7,
) -> IntegrationScenario:
    """Merge two per-source-consistent customer tables.

    Each customer has an id, a city and a status ('gold' / 'silver').
    Sources agree on most customers; for a ``disputed_fraction`` they
    disagree on the status (or city), producing key conflicts in the
    integrated table.  Crucially, many disputes still agree on the *city*
    -- so a union query can recover definite city information that the
    remove-conflicts approach loses.
    """
    rng = random.Random(seed)
    cities = ["athens", "buffalo", "cracow", "delft", "edinburgh"]

    db = Database()
    db.execute(
        "CREATE TABLE customer (id INTEGER, city TEXT, status TEXT,"
        " PRIMARY KEY (id))"
    )

    n_disputed = int(n_customers * disputed_fraction)
    n_unique = max(n_customers // 10, 1)
    n_agreeing = n_customers - n_disputed - n_unique

    rows: list[tuple] = []
    customer_id = 0
    for _ in range(n_agreeing):
        rows.append(
            (customer_id, rng.choice(cities), rng.choice(["gold", "silver"]))
        )
        customer_id += 1
    for index in range(n_disputed):
        city = rng.choice(cities)
        if index % 3 == 0:
            # Sources disagree on the city as well.
            other_city = rng.choice([c for c in cities if c != city])
            rows.append((customer_id, city, "gold"))
            rows.append((customer_id, other_city, "gold"))
        else:
            # Sources agree on the city but dispute the status.
            rows.append((customer_id, city, "gold"))
            rows.append((customer_id, city, "silver"))
        customer_id += 1
    for _ in range(n_unique):
        rows.append(
            (customer_id, rng.choice(cities), rng.choice(["gold", "silver"]))
        )
        customer_id += 1

    rng.shuffle(rows)
    db.insert_rows("customer", rows)
    fd = FunctionalDependency("customer", ["id"], ["city", "status"])
    return IntegrationScenario(db, fd, n_agreeing, n_disputed, n_unique)


#: The union query of demonstration part 1: "which (id, city) pairs are
#: certain?"  Disputed customers whose sources agree on the city are
#: recovered through the union over both possible statuses.
CITY_CERTAIN_QUERY = (
    "SELECT id, city FROM customer WHERE status = 'gold'"
    " UNION "
    "SELECT id, city FROM customer WHERE status = 'silver'"
)

#: A selection query over the same scenario (gold customers, certain).
GOLD_QUERY = "SELECT id, city, status FROM customer WHERE status = 'gold'"
