"""Synthetic inconsistent databases, in the shape of the Hippo experiments.

The companion experiments (Chomicki, Marcinkowski & Staworko; the demo's
part 3) use relations ``R(A, B, ...)`` with a key FD ``A -> rest``,
``N`` tuples, and a controlled percentage of tuples involved in key
conflicts.  :func:`generate_key_conflict_table` reproduces that design:

* ``n_clean`` tuples get unique keys;
* conflicts are injected as *clusters* of ``cluster_size`` tuples sharing
  a key but differing in the dependent attributes, until the requested
  fraction of all tuples participates in a conflict.

All generators are deterministic in their ``seed``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.constraints.fd import FunctionalDependency
from repro.engine.database import Database
from repro.engine.types import SQLType


@dataclass(frozen=True)
class GeneratedTable:
    """What a generator produced (for reporting and assertions).

    Attributes:
        name: table name.
        total_tuples: number of inserted tuples.
        conflicting_tuples: tuples that share a key with another tuple.
        fd: the key FD the table is generated against.
    """

    name: str
    total_tuples: int
    conflicting_tuples: int
    fd: FunctionalDependency


def generate_key_conflict_table(
    db: Database,
    name: str,
    n_tuples: int,
    conflict_fraction: float,
    seed: int = 0,
    n_dependent_columns: int = 1,
    cluster_size: int = 2,
    key_domain: Optional[int] = None,
    value_domain: int = 1_000_000,
) -> GeneratedTable:
    """Create and populate ``name(a, b0..bk)`` with a key FD ``a -> b*``.

    Args:
        n_tuples: total number of tuples to insert.
        conflict_fraction: fraction of tuples participating in a key
            conflict (0 <= f <= 1); e.g. 0.05 means 5% of tuples share
            their key with at least one other tuple.
        cluster_size: tuples per conflicting key (2 = pairwise conflicts,
            matching the experiments; larger values stress the Prover's
            witness search).
        key_domain: key values are drawn 0..key_domain-1 (defaults to a
            range comfortably larger than ``n_tuples``).

    Returns:
        A :class:`GeneratedTable` report (including the FD to enforce).

    Raises:
        ValueError: on nonsensical parameters.
    """
    if not 0.0 <= conflict_fraction <= 1.0:
        raise ValueError("conflict_fraction must be within [0, 1]")
    if cluster_size < 2:
        raise ValueError("cluster_size must be at least 2")
    if n_tuples < 0:
        raise ValueError("n_tuples must be non-negative")

    rng = random.Random(seed)
    columns = [("a", SQLType.INTEGER)] + [
        (f"b{i}", SQLType.INTEGER) for i in range(n_dependent_columns)
    ]
    db.create_table(name, columns, primary_key=["a"])

    n_conflicting = int(round(n_tuples * conflict_fraction))
    n_clusters = n_conflicting // cluster_size
    n_conflicting = n_clusters * cluster_size
    n_clean = n_tuples - n_conflicting

    domain = key_domain if key_domain is not None else max(10 * n_tuples, 100)
    # Unique keys: clean tuples and clusters must not collide.
    needed_keys = n_clean + n_clusters
    if needed_keys > domain:
        raise ValueError("key_domain too small for the requested table")
    keys = rng.sample(range(domain), needed_keys)
    clean_keys = keys[:n_clean]
    cluster_keys = keys[n_clean:]

    rows: list[tuple] = []
    for key in clean_keys:
        rows.append(
            (key, *(rng.randrange(value_domain) for _ in range(n_dependent_columns)))
        )
    for key in cluster_keys:
        # Dependent values within a cluster must differ pairwise so every
        # pair of the cluster is a genuine FD violation.
        dependent_values = rng.sample(range(value_domain), cluster_size)
        for value in dependent_values:
            rows.append(
                (
                    key,
                    value,
                    *(
                        rng.randrange(value_domain)
                        for _ in range(n_dependent_columns - 1)
                    ),
                )
            )
    rng.shuffle(rows)
    db.insert_rows(name, rows)

    fd = FunctionalDependency(
        name, ["a"], [f"b{i}" for i in range(n_dependent_columns)]
    )
    return GeneratedTable(name, len(rows), n_conflicting, fd)


def generate_join_pair(
    db: Database,
    left_name: str,
    right_name: str,
    n_tuples: int,
    conflict_fraction: float,
    seed: int = 0,
    join_domain: Optional[int] = None,
) -> tuple[GeneratedTable, GeneratedTable]:
    """Two key-FD tables whose ``b0`` columns join against each other.

    The right table's keys are drawn from the same domain as the left
    table's dependent values, so ``left.b0 = right.a`` joins with
    realistic selectivity.
    """
    domain = join_domain if join_domain is not None else max(n_tuples, 100)
    left = generate_key_conflict_table(
        db,
        left_name,
        n_tuples,
        conflict_fraction,
        seed=seed,
        value_domain=domain,
    )
    right = generate_key_conflict_table(
        db,
        right_name,
        n_tuples,
        conflict_fraction,
        seed=seed + 1,
        key_domain=domain,
    )
    return left, right


def generate_union_pair(
    db: Database,
    left_name: str,
    right_name: str,
    n_tuples: int,
    conflict_fraction: float,
    seed: int = 0,
    overlap_fraction: float = 0.3,
) -> tuple[GeneratedTable, GeneratedTable]:
    """Two same-schema tables with overlapping keys (for UNION / EXCEPT).

    ``overlap_fraction`` of the right table's keys are sampled from the
    left table's key range so set operations have non-trivial overlap.
    """
    left = generate_key_conflict_table(
        db, left_name, n_tuples, conflict_fraction, seed=seed
    )
    right = generate_key_conflict_table(
        db, right_name, n_tuples, conflict_fraction, seed=seed + 1
    )
    # Copy a fraction of left rows into right (as exact duplicates of the
    # (a, b0) values) so EXCEPT has work to do.  The copies get fresh tids
    # and may create new key conflicts inside `right`, which is realistic
    # for integrated sources; callers re-detect conflicts afterwards.
    rng = random.Random(seed + 2)
    left_rows = list(db.table(left_name).rows())
    n_copy = int(len(left_rows) * overlap_fraction)
    if n_copy:
        copies = rng.sample(left_rows, n_copy)
        db.insert_rows(right_name, copies)
    return left, right


def inject_exclusion_conflicts(
    db: Database,
    left_name: str,
    right_name: str,
    n_shared: int,
    seed: int = 0,
) -> int:
    """Copy ``n_shared`` keys from ``left`` into ``right``.

    Used with an :class:`~repro.constraints.ExclusionConstraint` on the
    key columns: every copied key becomes an exclusion conflict.
    """
    rng = random.Random(seed)
    left_rows = list(db.table(left_name).rows())
    if n_shared > len(left_rows):
        raise ValueError("n_shared exceeds the left table size")
    shared = rng.sample(left_rows, n_shared)
    db.insert_rows(right_name, shared)
    return len(shared)
