"""Synthetic workloads and demo scenarios."""

from repro.workloads.generator import (
    GeneratedTable,
    generate_join_pair,
    generate_key_conflict_table,
    generate_union_pair,
    inject_exclusion_conflicts,
)
from repro.workloads.queries import (
    WorkloadQuery,
    difference_query,
    full_scan_query,
    join_query,
    selection_query,
    union_query,
)
from repro.workloads.scenarios import (
    CITY_CERTAIN_QUERY,
    GOLD_QUERY,
    IntegrationScenario,
    build_integration_scenario,
)

__all__ = [
    "GeneratedTable",
    "generate_join_pair",
    "generate_key_conflict_table",
    "generate_union_pair",
    "inject_exclusion_conflicts",
    "WorkloadQuery",
    "difference_query",
    "full_scan_query",
    "join_query",
    "selection_query",
    "union_query",
    "CITY_CERTAIN_QUERY",
    "GOLD_QUERY",
    "IntegrationScenario",
    "build_integration_scenario",
]
