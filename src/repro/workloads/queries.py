"""The benchmark query suite (the demo's query classes S, SJ, SJU, SJUD)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WorkloadQuery:
    """A named benchmark query.

    Attributes:
        name: short identifier used in benchmark output.
        query_class: S / SJ / SJU / SJUD (the paper's classification).
        sql: the SQL text (over the generator's table names).
        rewriting_supported: whether the PODS'99 rewriting baseline covers
            this class (it cannot handle unions).
    """

    name: str
    query_class: str
    sql: str
    rewriting_supported: bool


def selection_query(table: str, threshold: int = 500_000) -> WorkloadQuery:
    """S: one relation, one comparison."""
    return WorkloadQuery(
        "selection",
        "S",
        f"SELECT * FROM {table} WHERE b0 < {threshold}",
        rewriting_supported=True,
    )


def full_scan_query(table: str) -> WorkloadQuery:
    """S: the identity query (every tuple a candidate)."""
    return WorkloadQuery(
        "scan", "S", f"SELECT * FROM {table}", rewriting_supported=True
    )


def join_query(left: str, right: str) -> WorkloadQuery:
    """SJ: foreign-key style equi-join."""
    return WorkloadQuery(
        "join",
        "SJ",
        f"SELECT l.a, l.b0, r.b0 FROM {left} l, {right} r WHERE l.b0 = r.a",
        rewriting_supported=True,
    )


def union_query(left: str, right: str) -> WorkloadQuery:
    """SJU: union of two selections (indefinite disjunctive information)."""
    return WorkloadQuery(
        "union",
        "SJU",
        f"SELECT a, b0 FROM {left} UNION SELECT a, b0 FROM {right}",
        rewriting_supported=False,
    )


def difference_query(left: str, right: str) -> WorkloadQuery:
    """SJUD: set difference."""
    return WorkloadQuery(
        "difference",
        "SJUD",
        f"SELECT a, b0 FROM {left} EXCEPT SELECT a, b0 FROM {right}",
        rewriting_supported=True,
    )
