"""Exception hierarchy for the repro (Hippo) package.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch one type to handle any library failure.  The hierarchy
mirrors the layering of the system: SQL frontend errors, engine (execution)
errors, relational-algebra errors, constraint errors, and errors from the
consistent-query-answering core.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class SQLError(ReproError):
    """Base class for errors raised by the SQL frontend."""


class LexerError(SQLError):
    """Raised when the SQL lexer encounters an unrecognised character.

    Attributes:
        position: zero-based offset of the offending character.
    """

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(SQLError):
    """Raised when the SQL parser cannot derive a statement."""


class CatalogError(ReproError):
    """Raised for unknown / duplicate tables or columns in the catalog."""


class SchemaError(ReproError):
    """Raised for schema violations (arity, typing, duplicate columns)."""


class TypeError_(ReproError):
    """Raised when an expression is applied to values of the wrong type.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class ExecutionError(ReproError):
    """Raised when a plan fails at run time (e.g. division by zero)."""


class PlanError(ReproError):
    """Raised when the planner cannot produce a plan for an AST."""


class FeedError(ReproError):
    """Raised for change-feed failures: corrupt segments or manifests,
    unretained history, or invalid consumer state."""


class FeedRetentionError(FeedError):
    """Raised when requested feed offsets are no longer retained
    (in-memory overflow, or durable retention truncation/compaction).

    Distinguished from other :class:`FeedError` cases because it is the
    one failure consumers can recover from mechanically: rebuild derived
    state from the live database (or a snapshot) instead of the log.
    """


class ExecutorError(ReproError):
    """Raised by the multi-process shard executor: a worker process
    died or hung mid-request, a control message failed on the worker
    side, or a handoff/rebalance could not be driven to completion.
    The supervisor loop treats dead workers as respawnable; callers
    seeing this error should run a supervision pass and retry."""


class AlgebraError(ReproError):
    """Raised for malformed relational-algebra expressions."""


class UnsupportedQueryError(ReproError):
    """Raised when a query falls outside the class Hippo supports.

    Hippo (EDBT 2004) computes consistent answers to SJUD queries -- built
    from selection, cartesian product / join, union and difference -- plus
    projections that do not introduce existential quantifiers.  Queries
    outside that class (general projection, aggregation, ...) raise this
    error with a message explaining which construct is unsupported, because
    consistent query answering for them is co-NP-data-complete (Arenas et
    al., TCS 2003; Chomicki & Marcinkowski, 2005).
    """


class ConstraintError(ReproError):
    """Raised for malformed integrity constraints."""


class RewritingError(ReproError):
    """Raised when the PODS'99 query-rewriting baseline is not applicable."""


class BackendError(ReproError):
    """Raised when an execution backend cannot honour a pushdown request.

    Covers driver-level failures (connection lost, dialect rejection),
    unsupported capabilities (a backend asked to push SQL it cannot
    lower), and sync failures while mirroring relations.  Callers that
    hold a native fallback treat this error as "run it on the native
    engine instead"; callers that do not re-raise it.
    """
