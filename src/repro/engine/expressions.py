"""Compilation of expression ASTs into Python evaluators.

An expression is compiled against a :class:`Scope` -- the ordered list of
columns visible at that point of the plan -- into a closure
``fn(env) -> value`` where ``env`` is a tuple of row tuples: ``env[0]`` is
the current row and ``env[k]`` is the row of the ``k``-th enclosing query
(used by correlated subqueries).

Subqueries (EXISTS / IN) are compiled through a ``SubqueryPlanner``
callback supplied by the planner, which keeps this module free of a
circular import.  Each compiled subquery records which *outer* slots it
captures, enabling a memo cache keyed on just those values -- our stand-in
for the RDBMS evaluating a correlated subquery efficiently (PostgreSQL
would use an index; the cache gives the rewriting baseline comparable
asymptotics so the benchmark comparison is fair rather than rigged).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol

from repro.engine import functions
from repro.engine.types import (
    SQLValue,
    compare_values,
    is_true,
    logic_and,
    logic_not,
    logic_or,
)
from repro.errors import ExecutionError, PlanError, TypeError_
from repro.sql import ast

Env = tuple
Evaluator = Callable[[Env], SQLValue]


@dataclass
class Scope:
    """Columns visible to an expression: ``(binding, column)`` pairs.

    ``binding`` is the table alias (lower-cased) the column is reachable
    through, or ``None`` for columns that are only addressable unqualified
    (e.g. computed aggregate slots).  ``parent`` chains to the enclosing
    query's scope for correlated references.  ``level`` is the absolute
    nesting depth (root query = 0); the planner uses it to translate
    scope-relative reference depths into absolute positions when keying
    correlated-subquery caches.
    """

    entries: list[tuple[Optional[str], str]] = field(default_factory=list)
    parent: Optional["Scope"] = None
    level: int = 0

    def add(self, binding: Optional[str], column: str) -> None:
        """Append a visible column (order defines slot indexes)."""
        self.entries.append(
            (binding.lower() if binding else None, column.lower())
        )

    def resolve(self, table: Optional[str], name: str) -> tuple[int, int]:
        """Resolve a column reference to ``(depth, index)``.

        ``depth`` 0 is this scope; each parent adds 1.

        Raises:
            PlanError: if the reference is unknown or ambiguous.
        """
        table_key = table.lower() if table else None
        name_key = name.lower()
        depth = 0
        scope: Optional[Scope] = self
        while scope is not None:
            matches = [
                index
                for index, (binding, column) in enumerate(scope.entries)
                if column == name_key and (table_key is None or binding == table_key)
            ]
            if len(matches) == 1:
                return depth, matches[0]
            if len(matches) > 1:
                raise PlanError(
                    f"ambiguous column reference: {ast.ColumnRef(table, name)}"
                )
            scope = scope.parent
            depth += 1
        raise PlanError(f"unknown column: {ast.ColumnRef(table, name)}")

    def columns_of(self, table: str) -> list[int]:
        """Slot indexes of all columns bound under ``table`` (this scope only)."""
        table_key = table.lower()
        return [
            index
            for index, (binding, _column) in enumerate(self.entries)
            if binding == table_key
        ]

    def width(self) -> int:
        """Number of slots in this scope."""
        return len(self.entries)


class CompiledSubquery(Protocol):
    """What the planner returns when asked to compile a nested query."""

    def first_column_values(self, env: Env) -> list[SQLValue]:
        """Evaluate the subquery, returning its first output column."""

    def has_rows(self, env: Env) -> bool:
        """Evaluate the subquery, returning whether any row exists."""


SubqueryPlanner = Callable[[ast.Query, Scope], CompiledSubquery]


def like_to_regex(pattern: str) -> "re.Pattern[str]":
    """Translate a SQL LIKE pattern (``%``, ``_``) to an anchored regex."""
    out = []
    for char in pattern:
        if char == "%":
            out.append(".*")
        elif char == "_":
            out.append(".")
        else:
            out.append(re.escape(char))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


_ARITHMETIC = {"+", "-", "*", "/", "%"}
_COMPARISONS = {"=", "<>", "<", "<=", ">", ">="}


def _require_number(value: SQLValue, op: str) -> float | int:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError_(f"operator {op} expects numeric operands, got {value!r}")
    return value


def _apply_arithmetic(op: str, left: SQLValue, right: SQLValue) -> SQLValue:
    if left is None or right is None:
        return None
    lhs = _require_number(left, op)
    rhs = _require_number(right, op)
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    if op == "/":
        if rhs == 0:
            raise ExecutionError("division by zero")
        # SQL integer division truncates toward zero; mixed types promote.
        if isinstance(lhs, int) and isinstance(rhs, int):
            quotient = abs(lhs) // abs(rhs)
            return quotient if (lhs >= 0) == (rhs >= 0) else -quotient
        return lhs / rhs
    if op == "%":
        if rhs == 0:
            raise ExecutionError("modulo by zero")
        if isinstance(lhs, int) and isinstance(rhs, int):
            remainder = abs(lhs) % abs(rhs)
            return remainder if lhs >= 0 else -remainder
        raise TypeError_("% expects INTEGER operands")
    raise AssertionError(op)


def _apply_comparison(op: str, left: SQLValue, right: SQLValue) -> Optional[bool]:
    cmp = compare_values(left, right)
    if cmp is None:
        return None
    if op == "=":
        return cmp == 0
    if op == "<>":
        return cmp != 0
    if op == "<":
        return cmp < 0
    if op == "<=":
        return cmp <= 0
    if op == ">":
        return cmp > 0
    if op == ">=":
        return cmp >= 0
    raise AssertionError(op)


class ExpressionCompiler:
    """Compiles :mod:`repro.sql.ast` expressions into evaluators.

    Attributes:
        scope: the scope expressions are resolved against.
        subquery_planner: callback for EXISTS / IN subqueries (optional;
            compiling a subquery without one raises :class:`PlanError`).
        outer_captures: ``(depth, index)`` pairs, relative to this
            compiler's scope, of every reference that escaped to an
            enclosing scope.  The planner uses this to key subquery caches.
    """

    def __init__(
        self,
        scope: Scope,
        subquery_planner: Optional[SubqueryPlanner] = None,
        capture_hook: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        self.scope = scope
        self.subquery_planner = subquery_planner
        self.capture_hook = capture_hook
        self.outer_captures: set[tuple[int, int]] = set()

    # ------------------------------------------------------------- dispatch

    def compile(self, expr: ast.Expression) -> Evaluator:
        """Compile ``expr`` to a closure ``fn(env) -> value``."""
        method = getattr(self, "_compile_" + type(expr).__name__, None)
        if method is None:
            raise PlanError(f"cannot compile expression node {type(expr).__name__}")
        return method(expr)

    def compile_predicate(self, expr: ast.Expression) -> Callable[[Env], bool]:
        """Compile a condition; the result maps 3-valued output to bool."""
        evaluator = self.compile(expr)

        def predicate(env: Env) -> bool:
            return is_true(evaluator(env))

        return predicate

    # ----------------------------------------------------------- leaf nodes

    def _compile_Literal(self, expr: ast.Literal) -> Evaluator:
        value = expr.value
        return lambda env: value

    def _compile_ColumnRef(self, expr: ast.ColumnRef) -> Evaluator:
        depth, index = self.scope.resolve(expr.table, expr.name)
        if depth > 0:
            self.outer_captures.add((depth, index))
            if self.capture_hook is not None:
                self.capture_hook(depth, index)

            def outer_ref(env: Env) -> SQLValue:
                return env[depth][index]

            return outer_ref

        def local_ref(env: Env) -> SQLValue:
            return env[0][index]

        return local_ref

    # ------------------------------------------------------------ operators

    def _compile_BinaryOp(self, expr: ast.BinaryOp) -> Evaluator:
        op = expr.op
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        if op == "AND":
            return lambda env: logic_and(_as_bool(left(env)), _as_bool(right(env)))
        if op == "OR":
            return lambda env: logic_or(_as_bool(left(env)), _as_bool(right(env)))
        if op in _COMPARISONS:
            return lambda env: _apply_comparison(op, left(env), right(env))
        if op in _ARITHMETIC:
            return lambda env: _apply_arithmetic(op, left(env), right(env))
        if op == "||":

            def concat(env: Env) -> SQLValue:
                lhs, rhs = left(env), right(env)
                if lhs is None or rhs is None:
                    return None
                if not isinstance(lhs, str) or not isinstance(rhs, str):
                    raise TypeError_("|| expects TEXT operands")
                return lhs + rhs

            return concat
        raise PlanError(f"unknown binary operator {op!r}")

    def _compile_UnaryOp(self, expr: ast.UnaryOp) -> Evaluator:
        operand = self.compile(expr.operand)
        if expr.op == "NOT":
            return lambda env: logic_not(_as_bool(operand(env)))
        if expr.op == "-":

            def negate(env: Env) -> SQLValue:
                value = operand(env)
                return None if value is None else -_require_number(value, "-")

            return negate
        if expr.op == "+":
            return operand
        raise PlanError(f"unknown unary operator {expr.op!r}")

    def _compile_IsNull(self, expr: ast.IsNull) -> Evaluator:
        operand = self.compile(expr.operand)
        if expr.negated:
            return lambda env: operand(env) is not None
        return lambda env: operand(env) is None

    def _compile_InList(self, expr: ast.InList) -> Evaluator:
        operand = self.compile(expr.operand)
        items = [self.compile(item) for item in expr.items]
        negated = expr.negated

        def contains(env: Env) -> Optional[bool]:
            needle = operand(env)
            if needle is None:
                return None
            saw_null = False
            for item in items:
                value = item(env)
                if value is None:
                    saw_null = True
                    continue
                if compare_values(needle, value) == 0:
                    return logic_not(True) if negated else True
            if saw_null:
                return None
            return logic_not(False) if negated else False

        return contains

    def _compile_Between(self, expr: ast.Between) -> Evaluator:
        operand = self.compile(expr.operand)
        low = self.compile(expr.low)
        high = self.compile(expr.high)
        negated = expr.negated

        def between(env: Env) -> Optional[bool]:
            value = operand(env)
            result = logic_and(
                _apply_comparison(">=", value, low(env)),
                _apply_comparison("<=", value, high(env)),
            )
            return logic_not(result) if negated else result

        return between

    def _compile_Like(self, expr: ast.Like) -> Evaluator:
        operand = self.compile(expr.operand)
        pattern = self.compile(expr.pattern)
        negated = expr.negated
        cache: dict[str, re.Pattern[str]] = {}

        def like(env: Env) -> Optional[bool]:
            value = operand(env)
            pat = pattern(env)
            if value is None or pat is None:
                return None
            if not isinstance(value, str) or not isinstance(pat, str):
                raise TypeError_("LIKE expects TEXT operands")
            regex = cache.get(pat)
            if regex is None:
                regex = like_to_regex(pat)
                cache[pat] = regex
            matched = regex.match(value) is not None
            return (not matched) if negated else matched

        return like

    def _compile_Case(self, expr: ast.Case) -> Evaluator:
        operand = self.compile(expr.operand) if expr.operand is not None else None
        whens = [
            (self.compile(cond), self.compile(result))
            for cond, result in expr.whens
        ]
        else_ = self.compile(expr.else_) if expr.else_ is not None else None

        def case(env: Env) -> SQLValue:
            if operand is not None:
                subject = operand(env)
                for condition, result in whens:
                    if (
                        subject is not None
                        and compare_values(subject, condition(env)) == 0
                    ):
                        return result(env)
            else:
                for condition, result in whens:
                    if is_true(_as_bool(condition(env))):
                        return result(env)
            return else_(env) if else_ is not None else None

        return case

    def _compile_FunctionCall(self, expr: ast.FunctionCall) -> Evaluator:
        if functions.is_aggregate_function(expr.name):
            raise PlanError(
                f"aggregate function {expr.name} is not allowed here"
                " (only in SELECT list / HAVING of a grouped query)"
            )
        args = [self.compile(arg) for arg in expr.args]
        name = expr.name

        def call(env: Env) -> SQLValue:
            return functions.call_scalar(name, [arg(env) for arg in args])

        return call

    # ------------------------------------------------------------ subqueries

    def _subquery(self, query: ast.Query) -> tuple[CompiledSubquery, Evaluator]:
        if self.subquery_planner is None:
            raise PlanError("subqueries are not allowed in this context")
        subcompiler_scope = self.scope  # the subquery sees us as its parent
        compiled = self.subquery_planner(query, subcompiler_scope)
        return compiled, lambda env: None

    def _compile_Exists(self, expr: ast.Exists) -> Evaluator:
        compiled, _ = self._subquery(expr.query)
        negated = expr.negated

        def exists(env: Env) -> bool:
            found = compiled.has_rows(env)
            return (not found) if negated else found

        return exists

    def _compile_InSubquery(self, expr: ast.InSubquery) -> Evaluator:
        compiled, _ = self._subquery(expr.query)
        operand = self.compile(expr.operand)
        negated = expr.negated

        def in_subquery(env: Env) -> Optional[bool]:
            needle = operand(env)
            if needle is None:
                return None
            saw_null = False
            for value in compiled.first_column_values(env):
                if value is None:
                    saw_null = True
                    continue
                if compare_values(needle, value) == 0:
                    return False if negated else True
            if saw_null:
                return None
            return True if negated else False

        return in_subquery


def _as_bool(value: SQLValue) -> Optional[bool]:
    """Coerce an evaluated value into the 3-valued boolean domain."""
    if value is None or isinstance(value, bool):
        return value
    raise TypeError_(f"expected a boolean condition, got {value!r}")
