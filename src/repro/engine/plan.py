"""Physical plan operators (iterator / volcano model).

Every node implements ``rows(env)``, yielding output tuples.  ``env`` is
the tuple of *outer* rows (for correlated subplans); a node combines its
own row with ``env`` as ``(row,) + env`` when evaluating expressions.

The planner wires compiled expression evaluators (closures produced by
:mod:`repro.engine.expressions`) into these operators, so the operators
themselves are independent of the SQL AST.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence

from repro.engine import functions
from repro.engine.expressions import Env, Evaluator
from repro.engine.stats import ExecutionStats
from repro.engine.storage import Table
from repro.engine.types import SQLValue, sort_key

Row = tuple
Predicate = Callable[[Env], bool]


class PlanNode:
    """Base class for physical operators."""

    #: number of columns in this node's output rows
    width: int

    def rows(self, env: Env) -> Iterator[Row]:
        raise NotImplementedError

    def children(self) -> Sequence["PlanNode"]:
        """Child operators (for plan display / tests)."""
        return ()

    def explain(self, indent: int = 0) -> str:
        """A compact, indented rendering of the plan tree."""
        line = "  " * indent + self.describe()
        parts = [line]
        for child in self.children():
            parts.append(child.explain(indent + 1))
        return "\n".join(parts)

    def describe(self) -> str:
        """One-line description of this operator."""
        return type(self).__name__


class Scan(PlanNode):
    """Full scan of a stored table.

    Unrestricted scans run over the table's cached column-major batch
    (:meth:`~repro.engine.storage.Table.columnar`): the whole batch is
    produced as one materialized list and ``rows_scanned`` is bumped
    once per batch rather than once per row -- a consumer that stops
    early has still "scanned" the batch.  Restricted scans (``keep_tids``)
    keep the row-at-a-time path, since they only touch a subset.

    Args:
        table: the storage table.
        stats: counter sink.
        include_tid: when True, the tid is appended as an extra trailing
            column -- used by conflict detection and provenance tracking.
        keep_tids: when not None, only rows whose tid is in this set are
            produced -- used to evaluate queries over a repair or over the
            conflict-free core without copying data.
    """

    def __init__(
        self,
        table: Table,
        stats: ExecutionStats,
        include_tid: bool = False,
        keep_tids: Optional[frozenset[int]] = None,
    ) -> None:
        self.table = table
        self.stats = stats
        self.include_tid = include_tid
        self.keep_tids = keep_tids
        self.width = table.schema.arity + (1 if include_tid else 0)

    def rows(self, env: Env) -> Iterator[Row]:
        if self.keep_tids is None:
            store = self.table.columnar()
            batch = store.tid_rows() if self.include_tid else store.rows
            self.stats.rows_scanned += len(batch)
            return iter(batch)
        return self._restricted(self.keep_tids)

    def _restricted(self, keep: frozenset[int]) -> Iterator[Row]:
        include_tid = self.include_tid
        stats = self.stats
        for tid, row in self.table.restricted_rows(keep):
            stats.rows_scanned += 1
            yield row + (tid,) if include_tid else row

    def describe(self) -> str:
        extra = " +tid" if self.include_tid else ""
        restricted = " restricted" if self.keep_tids is not None else ""
        return f"Scan({self.table.schema.name}{extra}{restricted})"


class IndexScan(PlanNode):
    """Point lookup through a secondary hash index.

    Produced by the planner when equality-with-constant conjuncts cover
    an index's columns; only the matching rows are touched (and counted),
    which is how the engine models the index scans a disk-based RDBMS
    would use for selective predicates.
    """

    def __init__(
        self,
        table: Table,
        stats: ExecutionStats,
        positions: Sequence[int],
        values: Sequence[SQLValue],
    ) -> None:
        self.table = table
        self.stats = stats
        self.positions = tuple(positions)
        self.values = tuple(values)
        self.width = table.schema.arity

    def rows(self, env: Env) -> Iterator[Row]:
        if any(value is None for value in self.values):
            return  # '=' with NULL matches nothing
        tids = self.table.index_lookup(self.positions, self.values)
        for tid in sorted(tids):
            if self.table.has_tid(tid):
                self.stats.rows_scanned += 1
                yield self.table.get(tid)

    def describe(self) -> str:
        columns = ", ".join(
            self.table.schema.column_names[p] for p in self.positions
        )
        return f"IndexScan({self.table.schema.name} on [{columns}])"


class ColumnEqScan(PlanNode):
    """Vectorized constant-equality scan over the columnar batch.

    The planner's fallback between :class:`IndexScan` (a hash index
    covers the equality columns) and ``Filter(Scan(...))`` (arbitrary
    predicates): when equality-with-constant conjuncts are present but
    no index exists, the filter runs as a tight comparison loop over the
    table's column arrays instead of a compiled predicate call per row.
    Matching :class:`IndexScan`, ``=`` with NULL produces nothing, and
    ``rows_scanned`` counts the rows *inspected* -- the full batch, since
    a column filter reads every value of the filtered column.
    """

    def __init__(
        self,
        table: Table,
        stats: ExecutionStats,
        positions: Sequence[int],
        values: Sequence[SQLValue],
    ) -> None:
        self.table = table
        self.stats = stats
        self.positions = tuple(positions)
        self.values = tuple(values)
        self.width = table.schema.arity

    def rows(self, env: Env) -> Iterator[Row]:
        store = self.table.columnar()
        self.stats.rows_scanned += len(store)
        return iter(store.select_equals(self.positions, self.values))

    def describe(self) -> str:
        columns = ", ".join(
            self.table.schema.column_names[p] for p in self.positions
        )
        return f"ColumnEqScan({self.table.schema.name} on [{columns}])"


class Values(PlanNode):
    """A constant in-memory relation."""

    def __init__(self, rows: Sequence[Row], width: int) -> None:
        self._rows = list(rows)
        self.width = width

    def rows(self, env: Env) -> Iterator[Row]:
        return iter(self._rows)

    def describe(self) -> str:
        return f"Values({len(self._rows)} rows)"


class SingleRow(PlanNode):
    """Produces exactly one empty row (SELECT without FROM)."""

    width = 0

    def rows(self, env: Env) -> Iterator[Row]:
        yield ()


class Filter(PlanNode):
    """Keeps rows whose predicate evaluates to TRUE."""

    def __init__(self, child: PlanNode, predicate: Predicate) -> None:
        self.child = child
        self.predicate = predicate
        self.width = child.width

    def rows(self, env: Env) -> Iterator[Row]:
        predicate = self.predicate
        for row in self.child.rows(env):
            if predicate((row,) + env):
                yield row

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)


class Project(PlanNode):
    """Computes a new row from expression evaluators."""

    def __init__(self, child: PlanNode, evaluators: Sequence[Evaluator]) -> None:
        self.child = child
        self.evaluators = list(evaluators)
        self.width = len(self.evaluators)

    def rows(self, env: Env) -> Iterator[Row]:
        evaluators = self.evaluators
        for row in self.child.rows(env):
            inner_env = (row,) + env
            yield tuple(evaluator(inner_env) for evaluator in evaluators)

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)


class NestedLoopJoin(PlanNode):
    """Nested-loop join; supports inner, cross and left-outer joins.

    The right side is materialized once per call (it may be consumed many
    times).  ``predicate`` sees the concatenated row.
    """

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        predicate: Optional[Predicate] = None,
        kind: str = "inner",
    ) -> None:
        if kind not in ("inner", "cross", "left"):
            raise ValueError(f"unsupported join kind: {kind}")
        self.left = left
        self.right = right
        self.predicate = predicate
        self.kind = kind
        self.width = left.width + right.width

    def rows(self, env: Env) -> Iterator[Row]:
        right_rows = list(self.right.rows(env))
        predicate = self.predicate
        pad = (None,) * self.right.width
        for left_row in self.left.rows(env):
            matched = False
            for right_row in right_rows:
                combined = left_row + right_row
                if predicate is None or predicate((combined,) + env):
                    matched = True
                    yield combined
            if self.kind == "left" and not matched:
                yield left_row + pad

    def children(self) -> Sequence[PlanNode]:
        return (self.left, self.right)

    def describe(self) -> str:
        return f"NestedLoopJoin({self.kind})"


class HashJoin(PlanNode):
    """Equi-join via a hash table built on the right input.

    NULL keys never match (SQL semantics).  ``residual`` is an extra
    predicate applied to the concatenated row (for non-equi conjuncts).
    """

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_keys: Sequence[Evaluator],
        right_keys: Sequence[Evaluator],
        residual: Optional[Predicate] = None,
        kind: str = "inner",
    ) -> None:
        if kind not in ("inner", "left"):
            raise ValueError(f"unsupported hash-join kind: {kind}")
        if len(left_keys) != len(right_keys) or not left_keys:
            raise ValueError("hash join requires matching, non-empty key lists")
        self.left = left
        self.right = right
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.residual = residual
        self.kind = kind
        self.width = left.width + right.width

    def rows(self, env: Env) -> Iterator[Row]:
        buckets: dict[tuple, list[Row]] = {}
        for right_row in self.right.rows(env):
            inner_env = (right_row,) + env
            key = tuple(evaluator(inner_env) for evaluator in self.right_keys)
            if any(part is None for part in key):
                continue
            buckets.setdefault(key, []).append(right_row)
        residual = self.residual
        pad = (None,) * self.right.width
        for left_row in self.left.rows(env):
            inner_env = (left_row,) + env
            key = tuple(evaluator(inner_env) for evaluator in self.left_keys)
            matched = False
            if not any(part is None for part in key):
                for right_row in buckets.get(key, ()):
                    combined = left_row + right_row
                    if residual is None or residual((combined,) + env):
                        matched = True
                        yield combined
            if self.kind == "left" and not matched:
                yield left_row + pad

    def children(self) -> Sequence[PlanNode]:
        return (self.left, self.right)

    def describe(self) -> str:
        return f"HashJoin({self.kind}, {len(self.left_keys)} keys)"


class UnionAll(PlanNode):
    """Concatenation of union-compatible inputs."""

    def __init__(self, children_nodes: Sequence[PlanNode]) -> None:
        if not children_nodes:
            raise ValueError("UnionAll requires at least one child")
        widths = {child.width for child in children_nodes}
        if len(widths) != 1:
            raise ValueError("UnionAll children must have equal width")
        self._children = list(children_nodes)
        self.width = children_nodes[0].width

    def rows(self, env: Env) -> Iterator[Row]:
        for child in self._children:
            yield from child.rows(env)

    def children(self) -> Sequence[PlanNode]:
        return tuple(self._children)


class Distinct(PlanNode):
    """Removes duplicate rows (first occurrence wins, order preserved)."""

    def __init__(self, child: PlanNode) -> None:
        self.child = child
        self.width = child.width

    def rows(self, env: Env) -> Iterator[Row]:
        seen: set[Row] = set()
        for row in self.child.rows(env):
            if row not in seen:
                seen.add(row)
                yield row

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)


class Except(PlanNode):
    """Set difference.  ``all=False`` (default) applies set semantics."""

    def __init__(self, left: PlanNode, right: PlanNode, all: bool = False) -> None:
        if left.width != right.width:
            raise ValueError("EXCEPT requires equal-width inputs")
        self.left = left
        self.right = right
        self.all = all
        self.width = left.width

    def rows(self, env: Env) -> Iterator[Row]:
        if self.all:
            counts: dict[Row, int] = {}
            for row in self.right.rows(env):
                counts[row] = counts.get(row, 0) + 1
            for row in self.left.rows(env):
                remaining = counts.get(row, 0)
                if remaining:
                    counts[row] = remaining - 1
                else:
                    yield row
            return
        removed = set(self.right.rows(env))
        emitted: set[Row] = set()
        for row in self.left.rows(env):
            if row not in removed and row not in emitted:
                emitted.add(row)
                yield row

    def children(self) -> Sequence[PlanNode]:
        return (self.left, self.right)

    def describe(self) -> str:
        return f"Except(all={self.all})"


class Intersect(PlanNode):
    """Set intersection.  ``all=False`` (default) applies set semantics."""

    def __init__(self, left: PlanNode, right: PlanNode, all: bool = False) -> None:
        if left.width != right.width:
            raise ValueError("INTERSECT requires equal-width inputs")
        self.left = left
        self.right = right
        self.all = all
        self.width = left.width

    def rows(self, env: Env) -> Iterator[Row]:
        if self.all:
            counts: dict[Row, int] = {}
            for row in self.right.rows(env):
                counts[row] = counts.get(row, 0) + 1
            for row in self.left.rows(env):
                remaining = counts.get(row, 0)
                if remaining:
                    counts[row] = remaining - 1
                    yield row
            return
        keep = set(self.right.rows(env))
        emitted: set[Row] = set()
        for row in self.left.rows(env):
            if row in keep and row not in emitted:
                emitted.add(row)
                yield row

    def children(self) -> Sequence[PlanNode]:
        return (self.left, self.right)

    def describe(self) -> str:
        return f"Intersect(all={self.all})"


class Sort(PlanNode):
    """ORDER BY: stable sort on evaluated keys (NULLs first)."""

    def __init__(
        self, child: PlanNode, keys: Sequence[tuple[Evaluator, bool]]
    ) -> None:
        self.child = child
        self.keys = list(keys)
        self.width = child.width

    def rows(self, env: Env) -> Iterator[Row]:
        materialized = list(self.child.rows(env))
        # Stable multi-key sort: apply keys right-to-left.
        for evaluator, ascending in reversed(self.keys):
            materialized.sort(
                key=lambda row: sort_key(evaluator((row,) + env)),
                reverse=not ascending,
            )
        return iter(materialized)

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)


class Limit(PlanNode):
    """LIMIT / OFFSET."""

    def __init__(
        self, child: PlanNode, limit: Optional[int], offset: Optional[int]
    ) -> None:
        self.child = child
        self.limit = limit
        self.offset = offset or 0
        self.width = child.width

    def rows(self, env: Env) -> Iterator[Row]:
        remaining = self.limit
        skipped = 0
        for row in self.child.rows(env):
            if skipped < self.offset:
                skipped += 1
                continue
            if remaining is not None:
                if remaining <= 0:
                    return
                remaining -= 1
            yield row

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    def describe(self) -> str:
        return f"Limit({self.limit}, offset={self.offset})"


#: An aggregate spec: (function name, distinct, argument evaluator or None
#: for COUNT(*)).
AggregateSpec = tuple[str, bool, Optional[Evaluator]]


class Aggregate(PlanNode):
    """Hash aggregation.

    Output rows are ``group key values + one value per aggregate spec``.
    With no GROUP BY keys, exactly one row is produced even for empty
    input (``COUNT(*) = 0``, ``SUM = NULL``, ...).
    """

    def __init__(
        self,
        child: PlanNode,
        group_keys: Sequence[Evaluator],
        aggregates: Sequence[AggregateSpec],
    ) -> None:
        self.child = child
        self.group_keys = list(group_keys)
        self.aggregates = list(aggregates)
        self.width = len(self.group_keys) + len(self.aggregates)

    def _new_accumulators(self) -> list[functions.Aggregate]:
        return [
            functions.make_aggregate(name, distinct)
            for name, distinct, _arg in self.aggregates
        ]

    def rows(self, env: Env) -> Iterator[Row]:
        groups: dict[Row, list[functions.Aggregate]] = {}
        order: list[Row] = []
        for row in self.child.rows(env):
            inner_env = (row,) + env
            key = tuple(evaluator(inner_env) for evaluator in self.group_keys)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = self._new_accumulators()
                groups[key] = accumulators
                order.append(key)
            for accumulator, (_name, _distinct, arg) in zip(
                accumulators, self.aggregates
            ):
                value = 1 if arg is None else arg(inner_env)
                accumulator.add(value)
        if not groups and not self.group_keys:
            groups[()] = self._new_accumulators()
            order.append(())
        for key in order:
            yield key + tuple(acc.result() for acc in groups[key])

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    def describe(self) -> str:
        names = ", ".join(name for name, _d, _a in self.aggregates)
        return f"Aggregate(keys={len(self.group_keys)}, aggs=[{names}])"


def run_plan(plan: PlanNode) -> list[Row]:
    """Execute a plan with an empty outer environment."""
    return list(plan.rows(()))
