"""Column-major batch storage behind the table API.

The row store in :mod:`repro.engine.storage` keeps ``tid -> row`` dicts,
which is the right shape for point mutations and membership lookups but
pays per-row iterator and counter overhead in the scan/filter/join hot
loops.  A :class:`ColumnStore` is a *derived*, immutable, column-major
snapshot of one table: materialized row batches for scans (one counter
bump per batch instead of one per row) and per-column value arrays for
vectorized equality filtering when no hash index exists.

Lifecycle and invalidation contract:

* A store is built lazily by :meth:`~repro.engine.storage.Table.columnar`
  and cached on the table; **any** mutation (insert / delete / update /
  replay restore) drops the cached store wholesale.  Readers therefore
  never observe a stale batch -- at worst they rebuild.
* Everything inside a store is derived from the row dict at build time
  and never mutated afterwards, so a store handed to a plan operator
  stays internally consistent even if the table moves on (the operator
  sees the snapshot it started with, matching the iterator semantics of
  a dict scan that materialized its rows up front).
* Column arrays and tid-suffixed row batches are themselves built
  lazily, so tables that are only ever scanned row-major never pay for
  the transpose.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.engine.types import SQLValue

Row = Tuple[SQLValue, ...]


class ColumnStore:
    """An immutable column-major snapshot of a table's current rows.

    Args:
        items: the ``(tid, row)`` pairs to snapshot, in storage order.
        arity: number of columns (needed for the empty-table transpose).
    """

    __slots__ = ("tids", "rows", "_arity", "_columns", "_tid_rows")

    def __init__(self, items: List[Tuple[int, Row]], arity: int) -> None:
        #: tids in storage (insertion) order, parallel to :attr:`rows`.
        self.tids: Tuple[int, ...] = tuple(tid for tid, _row in items)
        #: materialized row batch in storage order (the scan hot path).
        self.rows: List[Row] = [row for _tid, row in items]
        self._arity = arity
        self._columns: Dict[int, List[SQLValue]] = {}
        self._tid_rows: Optional[List[Row]] = None

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, position: int) -> List[SQLValue]:
        """The value array of one column (built on first use, cached)."""
        values = self._columns.get(position)
        if values is None:
            values = [row[position] for row in self.rows]
            self._columns[position] = values
        return values

    def tid_rows(self) -> List[Row]:
        """Row batch with the tid appended as a trailing column.

        This is the shape conflict detection and provenance scans
        consume (``Scan(include_tid=True)``); cached after first use.
        """
        if self._tid_rows is None:
            self._tid_rows = [
                row + (tid,) for tid, row in zip(self.tids, self.rows)
            ]
        return self._tid_rows

    def select_equals(self, positions: Tuple[int, ...], values: Row) -> List[Row]:
        """Rows whose columns at ``positions`` equal ``values``.

        A vectorized constant-equality filter: the comparison runs over
        the column arrays instead of calling a compiled predicate per
        row.  Matches hash-index lookup semantics (``=`` with NULL
        matches nothing), so the planner may use it interchangeably with
        an :class:`~repro.engine.plan.IndexScan` when no index exists.
        """
        if any(value is None for value in values):
            return []
        rows = self.rows
        if len(positions) == 1:
            column = self.column(positions[0])
            wanted = values[0]
            return [rows[i] for i, seen in enumerate(column) if seen == wanted]
        columns = [self.column(position) for position in positions]
        return [
            rows[i]
            for i in range(len(rows))
            if all(column[i] == value for column, value in zip(columns, values))
        ]
