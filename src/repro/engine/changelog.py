"""The database change log: the feed incremental conflict detection reads.

Hippo's Figure-1 data flow runs Conflict Detection once, up front; every
later consistent-answer computation reuses the conflict hypergraph.  For
that to survive update traffic, the storage layer publishes every row
mutation as a :class:`Change` -- ``(relation, tid, row, op)`` -- and the
Hippo engine consumes the stream through a :class:`ChangeCursor`,
re-deriving only the hyperedges that touch changed tuples.

Design notes:

* **Zero cost when unused.**  Nothing is buffered until at least one
  cursor is open, so a plain :class:`~repro.engine.database.Database`
  never accumulates history.
* **Updates are delete + insert.**  An UPDATE keeps its tid but changes
  the row, so it is published as a ``delete`` of the old row followed by
  an ``insert`` of the new one under the same tid; consumers treat the
  pair as "retract everything incident to the tuple, then re-derive".
* **Bounded memory, verified fallback.**  The buffer is capped; on
  overflow it is dropped wholesale and lagging cursors report
  ``lost=True``, telling the consumer to fall back to full re-detection
  (the escape hatch is always correct, just slower).
* **DDL is out of band.**  CREATE/DROP TABLE bump ``schema_version``
  instead of emitting per-row changes; consumers compare versions and
  fall back to full detection across DDL.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple, Optional, Tuple

#: Ops a change can carry.  UPDATE is published as DELETE + INSERT.
OP_INSERT = "insert"
OP_DELETE = "delete"


class Change(NamedTuple):
    """One row mutation: ``(relation, tid, row, op)``.

    ``relation`` is lower-cased; ``row`` is the inserted row for
    ``insert`` and the row as it was stored for ``delete``.
    """

    relation: str
    tid: int
    row: Tuple
    op: str


class ChangeLog:
    """An append-only, multi-reader buffer of row mutations.

    Writers call :meth:`record`; readers open a :class:`ChangeCursor` and
    drain it with :meth:`ChangeCursor.read`.  Entries consumed by every
    open cursor are compacted away; when the buffer exceeds
    ``max_pending`` it is dropped and lagging cursors become *lost*.
    """

    def __init__(self, max_pending: int = 100_000) -> None:
        self._entries: list[Change] = []
        self._base = 0  # sequence number of _entries[0]
        self._cursors: dict[int, int] = {}  # cursor id -> next unread seq
        self._next_cursor_id = 0
        self._max_pending = max_pending
        #: bumped by DDL (CREATE/DROP TABLE); consumers that cached
        #: schema-derived state must rebuild when it moves.
        self.schema_version = 0

    # ------------------------------------------------------------- writing

    @property
    def end(self) -> int:
        """The sequence number one past the newest entry."""
        return self._base + len(self._entries)

    def record(self, change: Change) -> None:
        """Publish one mutation (dropped when nobody is listening)."""
        if not self._cursors:
            return
        self._entries.append(change)
        if len(self._entries) > self._max_pending:
            # Overflow: drop the whole buffer.  Every cursor that had not
            # caught up observes ``lost`` and falls back to full
            # re-detection.
            self._base += len(self._entries)
            self._entries.clear()

    def bump_schema_version(self) -> None:
        """Note a DDL change (no per-row history is kept for DDL)."""
        self.schema_version += 1

    # ------------------------------------------------------------- reading

    def open_cursor(self) -> "ChangeCursor":
        """Open a cursor positioned at the current end of the log."""
        cursor_id = self._next_cursor_id
        self._next_cursor_id += 1
        self._cursors[cursor_id] = self.end
        return ChangeCursor(self, cursor_id)

    def _close(self, cursor_id: int) -> None:
        self._cursors.pop(cursor_id, None)
        self._compact()

    def _read(self, cursor_id: int) -> tuple[list[Change], bool]:
        position = self._cursors[cursor_id]
        lost = position < self._base
        start = max(position - self._base, 0)
        changes = self._entries[start:] if not lost else []
        self._cursors[cursor_id] = self.end
        self._compact()
        return changes, lost

    def _pending(self, cursor_id: int) -> int:
        return self.end - self._cursors[cursor_id]

    def _lost(self, cursor_id: int) -> bool:
        return self._cursors[cursor_id] < self._base

    def _compact(self) -> None:
        """Drop entries already consumed by every open cursor."""
        if not self._cursors:
            self._base += len(self._entries)
            self._entries.clear()
            return
        low = min(self._cursors.values())
        if low > self._base:
            drop = min(low - self._base, len(self._entries))
            del self._entries[:drop]
            self._base += drop


class ChangeCursor:
    """One consumer's position in a :class:`ChangeLog`."""

    def __init__(self, log: ChangeLog, cursor_id: int) -> None:
        self._log = log
        self._id = cursor_id
        self._closed = False

    @property
    def pending(self) -> int:
        """Number of unread changes (an overflow also makes this > 0)."""
        if self._closed:
            return 0
        return self._log._pending(self._id)

    @property
    def lost(self) -> bool:
        """Whether the log overflowed past this cursor (history gone)."""
        if self._closed:
            return False
        return self._log._lost(self._id)

    def read(self) -> tuple[list[Change], bool]:
        """Drain unread changes; returns ``(changes, lost)``.

        When ``lost`` is True the returned list is empty and the consumer
        must rebuild its derived state from scratch; either way the
        cursor is repositioned at the current end of the log.
        """
        if self._closed:
            return [], False
        return self._log._read(self._id)

    def close(self) -> None:
        """Release the cursor (its unread entries may be compacted)."""
        if not self._closed:
            self._closed = True
            self._log._close(self._id)
