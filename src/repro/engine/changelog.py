"""The database change log: the feed incremental conflict detection reads.

Hippo's Figure-1 data flow runs Conflict Detection once, up front; every
later consistent-answer computation reuses the conflict hypergraph.  For
that to survive update traffic, the storage layer publishes every row
mutation as a :class:`Change` -- ``(relation, tid, row, op)`` -- and the
Hippo engine consumes the stream through a :class:`ChangeCursor`,
re-deriving only the hyperedges that touch changed tuples.

Since PR 2 the log is a facade over the partitioned
:class:`~repro.engine.feed.ChangeFeed`: every relation is its own topic
with monotonic offsets, cursors are consumer groups, and attaching a
durable feed (:class:`~repro.engine.feed.ChangeFeed` with a directory)
makes the whole stream crash-safe and replayable by other processes
(see :mod:`repro.conflicts.replica`).  The original semantics survive:

* **Zero cost when unused.**  An in-memory feed buffers nothing until at
  least one cursor/consumer group is open, so a plain
  :class:`~repro.engine.database.Database` never accumulates history.
* **Updates are delete + insert.**  An UPDATE keeps its tid but changes
  the row, so it is published as a ``delete`` of the old row followed by
  an ``insert`` of the new one under the same tid; consumers treat the
  pair as "retract everything incident to the tuple, then re-derive".
* **Bounded memory, verified fallback.**  In-memory retention is capped;
  on overflow it is dropped wholesale and lagging cursors report
  ``lost=True``, telling the consumer to fall back to full re-detection
  (the escape hatch is always correct, just slower).  Durable feeds
  never lose an unconsumed record: segments are the retention, only the
  active tail stays resident, and with ``retention="truncate"`` (or
  ``"compact"``, which additionally rewrites partially-consumed sealed
  segments down to their surviving records) sealed history is reclaimed
  once every registered recovery participant -- the durable writer's
  checkpoint included -- has passed it; cursors whose history was
  reclaimed report ``lost`` and fall back the same way.
* **DDL rides the feed.**  CREATE/DROP TABLE bump ``schema_version``
  and (when anyone is listening) publish serialized schemas on the
  ``_schema`` topic, which is what lets a replica rebuild the database
  without sharing memory.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Tuple

from repro.engine.feed import (
    RECORD_CHANGE,
    RECORD_CREATE_TABLE,
    RECORD_DROP_TABLE,
    ChangeFeed,
    serialize_schema,
)

#: Ops a change can carry.  UPDATE is published as DELETE + INSERT.
OP_INSERT = "insert"
OP_DELETE = "delete"


class Change(NamedTuple):
    """One row mutation: ``(relation, tid, row, op)``.

    ``relation`` is lower-cased; ``row`` is the inserted row for
    ``insert`` and the row as it was stored for ``delete``.
    """

    relation: str
    tid: int
    row: Tuple
    op: str


class ChangeLog:
    """The mutation stream of one database, backed by a change feed.

    Writers call :meth:`record`; readers open a :class:`ChangeCursor`
    and drain it with :meth:`ChangeCursor.read`.  Entries consumed by
    every open cursor are compacted away (in-memory feeds); when
    retention exceeds ``max_pending`` the buffer is dropped and lagging
    cursors become *lost*.
    """

    def __init__(
        self, max_pending: int = 100_000, feed: Optional[ChangeFeed] = None
    ) -> None:
        self.feed = (
            feed if feed is not None else ChangeFeed(max_retained=max_pending)
        )
        #: Planner-visible epoch for changes ``schema_version`` does not
        #: cover (index creation, constraint attach/drop): bumping it
        #: invalidates every cached statement plan keyed against it.
        #: In-process only -- unlike ``schema_version`` it does not ride
        #: the feed, since access paths are a per-process choice.
        self.plan_epoch = 0

    def invalidate_plans(self) -> None:
        """Bump :attr:`plan_epoch`, forcing fresh plans for all cached
        statements of every database bound to this log.

        Called by the storage layer when an index appears and by the CQA
        engines when the constraint set changes -- anything that can
        alter which physical plan the planner would pick.
        """
        self.plan_epoch += 1

    # ------------------------------------------------------------- writing

    @property
    def schema_version(self) -> int:
        """Bumped by DDL; consumers with schema-derived state rebuild."""
        return self.feed.schema_version

    @property
    def end(self) -> int:
        """The global sequence number one past the newest record."""
        return self.feed.next_seq

    @property
    def _max_pending(self) -> int:
        return self.feed.max_retained

    @_max_pending.setter
    def _max_pending(self, value: int) -> None:
        self.feed.max_retained = value

    def record(self, change: Change) -> None:
        """Publish one mutation (dropped when nobody is listening and
        the feed is not durable)."""
        self.feed.publish_change(
            change.relation, change.tid, change.row, change.op
        )

    def schema_created(self, schema: object) -> None:
        """Publish a CREATE TABLE (serialized schema rides the feed)."""
        self.feed.publish_schema(
            RECORD_CREATE_TABLE,
            schema.name.lower(),  # type: ignore[attr-defined]
            serialize_schema(schema),
        )

    def schema_dropped(self, name: str) -> None:
        """Publish a DROP TABLE."""
        self.feed.publish_schema(RECORD_DROP_TABLE, name.lower())

    # ------------------------------------------------------------- reading

    def open_cursor(self, group: Optional[str] = None) -> "ChangeCursor":
        """Open a cursor positioned at the current end of the log.

        With a ``group`` name the cursor is a named consumer group whose
        committed offsets are durable when the feed is; it then resumes
        from where that group last committed instead of the end.
        """
        return ChangeCursor(self.feed, group)


class ChangeCursor:
    """One consumer's position in the change stream (auto-committing).

    A thin adapter over :class:`~repro.engine.feed.FeedConsumer`:
    :meth:`read` polls, converts change records to :class:`Change` and
    commits in one step -- the contract the in-process engine wants.
    """

    def __init__(
        self, feed: ChangeFeed, group: Optional[str] = None
    ) -> None:
        self._consumer = feed.consumer(group)

    @property
    def pending(self) -> int:
        """Number of unread records (an overflow also makes this > 0)."""
        return self._consumer.pending

    @property
    def lost(self) -> bool:
        """Whether the feed dropped records past this cursor (history gone)."""
        return self._consumer.lost

    def read(self) -> tuple[list[Change], bool]:
        """Drain unread changes; returns ``(changes, lost)``.

        When ``lost`` is True the returned list is empty and the consumer
        must rebuild its derived state from scratch; either way the
        cursor is repositioned at the current end of the log.  Schema
        records are skipped (the engine watches ``schema_version``).
        """
        records, lost = self._consumer.poll()
        # Auto-committing by contract: this cursor feeds the *in-process*
        # engine, which on any failure rebuilds derived state from the
        # database rather than replaying records, so the committed offset
        # is not a durability boundary here (unlike replica consumers).
        # hippolint: disable-next-line=HL003 -- in-process auto-commit cursor
        self._consumer.commit()
        changes = [
            Change(record.topic, record.tid, record.row, record.op)
            for record in records
            if record.kind == RECORD_CHANGE
        ]
        return changes, lost

    def close(self) -> None:
        """Release the cursor (its unread entries may be compacted)."""
        self._consumer.close()
