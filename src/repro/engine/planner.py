"""Translation of query ASTs into physical plans.

The planner performs the classic minimal set of rewrites a real system
needs to make the Hippo experiments meaningful:

* WHERE clauses are split into conjuncts;
* equality conjuncts linking two FROM sources become hash joins (the
  paper's conflict-detection self-joins and the envelope queries rely on
  this to run in linear time, exactly as PostgreSQL would execute them);
* remaining conjuncts become filters at the earliest point where all of
  their columns are available;
* correlated EXISTS / IN subqueries are compiled into subplans with a memo
  cache keyed on the captured outer values, which stands in for the index
  scans an RDBMS would use when executing the rewriting baseline's
  ``NOT EXISTS`` residues.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Callable, Iterator, Optional, Sequence, Union

from repro.engine import functions, plan
from repro.engine.catalog import Catalog
from repro.engine.expressions import (
    Env,
    Evaluator,
    ExpressionCompiler,
    Scope,
)
from repro.engine.stats import ExecutionStats
from repro.engine.types import SQLType, SQLValue, infer_type
from repro.errors import PlanError
from repro.sql import ast

_SENTINEL = object()

_NUMERIC = frozenset({SQLType.INTEGER, SQLType.REAL})


def _eq_types_compatible(column_type: SQLType, value: SQLValue) -> bool:
    """Whether ``column = literal`` is well-typed under SQL comparison rules.

    Mirrors :func:`repro.engine.types.compare_values`: identical types or
    numeric-with-numeric compare fine; everything else raises there, so
    the vectorized equality path must decline and leave the conjunct to
    the compiled predicate (which surfaces the error).  A NULL literal is
    fine -- ``= NULL`` matches nothing on every path.
    """
    if value is None:
        return True
    value_type = infer_type(value)
    if value_type is column_type:
        return True
    return value_type in _NUMERIC and column_type in _NUMERIC


class _AbortDecorrelation(Exception):
    """Internal: the subquery shape cannot be decorrelated."""


def _flatten_from(from_items: Sequence[ast.FromItem]) -> tuple[ast.FromItem, ...]:
    """Flatten explicit inner joins into plain comma sources."""
    flat: list[ast.FromItem] = []

    def visit(item: ast.FromItem) -> None:
        if isinstance(item, ast.Join):
            visit(item.left)
            visit(item.right)
        else:
            flat.append(item)

    for item in from_items:
        visit(item)
    return tuple(flat)


@dataclass
class PlannedQuery:
    """A compiled query: physical plan + output column names."""

    plan: plan.PlanNode
    columns: list[str]


def normalize_statement(sql: str) -> str:
    """The statement-cache key form of a SQL text.

    Only the *outside* of the statement is normalized (surrounding
    whitespace, a trailing ``;``): anything heavier -- collapsing inner
    whitespace, case folding -- could merge statements that differ inside
    string literals, silently sharing a plan between distinct queries.
    """
    return sql.strip().rstrip(";").rstrip()


class PlanCache:
    """A keyed statement→plan cache with epoch-based invalidation.

    Maps :func:`normalize_statement` text to the :class:`PlannedQuery`
    compiled for it, stamped with the *catalog epoch* the plan was built
    under -- ``(schema_version, plan_epoch)`` from the database's
    :class:`~repro.engine.changelog.ChangeLog`.  DDL bumps
    ``schema_version``; index creation and constraint attach/drop bump
    ``plan_epoch`` -- either makes every older entry stale.  A lookup
    that finds a stale entry drops it and counts an invalidation, so
    statements never observe a plan from a previous schema.

    Concurrency contract: the cache is bound to one database and shares
    its single-threaded execution discipline; entries are immutable
    (plan, columns) pairs, and the stats sink is the caller's
    :class:`~repro.engine.stats.ExecutionStats`.

    Args:
        stats: counter sink for hit/miss/invalidation counters.
        max_entries: LRU bound; the least recently used entry is evicted
            (not counted as an invalidation) when the cache is full.
        enabled: an off switch (used by benchmarks to measure the
            uncached baseline); a disabled cache misses on every lookup
            and stores nothing.
    """

    def __init__(
        self,
        stats: ExecutionStats,
        max_entries: int = 256,
        enabled: bool = True,
    ) -> None:
        self.stats = stats
        self.max_entries = max_entries
        self.enabled = enabled
        self._entries: dict[str, tuple[tuple[int, int], PlannedQuery]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(
        self,
        sql: str,
        epoch: tuple[int, int],
        backend: str = "native",
    ) -> Optional[PlannedQuery]:
        """The cached plan for ``sql`` at ``epoch``, or None.

        A stale entry (cached under an older epoch) is evicted and
        counted as an invalidation -- the caller replans.  Misses are
        *not* counted here: the database counts one when it actually
        plans a SELECT, so DML/DDL statements passing through the lookup
        do not pollute the miss counter.  Entries are keyed on the
        executing ``backend`` id as well as the statement text, so a
        plan compiled for one executor is never replayed on another.
        """
        if not self.enabled:
            return None
        key = f"{backend}::{normalize_statement(sql)}"
        entry = self._entries.get(key)
        if entry is None:
            return None
        cached_epoch, planned = entry
        if cached_epoch != epoch:
            del self._entries[key]
            self.stats.plan_cache_invalidations += 1
            return None
        # Refresh LRU recency (dicts preserve insertion order).
        del self._entries[key]
        self._entries[key] = entry
        self.stats.plan_cache_hits += 1
        return planned

    def put(
        self,
        sql: str,
        epoch: tuple[int, int],
        planned: PlannedQuery,
        backend: str = "native",
    ) -> None:
        """Store a freshly compiled plan under the current epoch."""
        if not self.enabled:
            return
        key = f"{backend}::{normalize_statement(sql)}"
        self._entries.pop(key, None)
        if len(self._entries) >= self.max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[key] = (epoch, planned)

    def clear(self) -> None:
        """Drop every entry, counting each as an invalidation."""
        self.stats.plan_cache_invalidations += len(self._entries)
        self._entries.clear()

    def snapshot(self) -> dict[str, int]:
        """Counter snapshot for the CLI ``.stats`` report."""
        return {
            "entries": len(self._entries),
            "hits": self.stats.plan_cache_hits,
            "misses": self.stats.plan_cache_misses,
            "invalidations": self.stats.plan_cache_invalidations,
        }


@dataclass
class _Source:
    """A planned FROM item: its plan plus visible columns.

    ``consumed`` records conjuncts already absorbed into the access path
    (index lookups), so callers drop them instead of re-filtering.
    """

    node: plan.PlanNode
    entries: list[tuple[Optional[str], str]]
    displays: list[str]
    consumed: list[ast.Expression] = field(default_factory=list)


class _Subplan:
    """A compiled, cacheable subquery (implements ``CompiledSubquery``).

    The cache key is the tuple of outer values the subquery actually
    references (its *captures*).  Uncorrelated subqueries therefore run
    exactly once per statement.
    """

    def __init__(
        self,
        node: plan.PlanNode,
        captures: list[tuple[int, int]],
        site_level: int,
        stats: ExecutionStats,
    ) -> None:
        self._node = node
        self._captures = captures
        self._site_level = site_level
        self._stats = stats
        self._exists_cache: dict[tuple, bool] = {}
        self._values_cache: dict[tuple, list] = {}

    def _key(self, env: Env) -> tuple:
        site_level = self._site_level
        return tuple(env[site_level - level][index] for level, index in self._captures)

    def has_rows(self, env: Env) -> bool:
        key = self._key(env)
        cached = self._exists_cache.get(key, _SENTINEL)
        if cached is not _SENTINEL:
            self._stats.subquery_cache_hits += 1
            return cached  # type: ignore[return-value]
        self._stats.subquery_evaluations += 1
        result = next(iter(self._node.rows(env)), _SENTINEL) is not _SENTINEL
        self._exists_cache[key] = result
        return result

    def first_column_values(self, env: Env) -> list:
        key = self._key(env)
        cached = self._values_cache.get(key)
        if cached is not None:
            self._stats.subquery_cache_hits += 1
            return cached
        self._stats.subquery_evaluations += 1
        values = [row[0] for row in self._node.rows(env)]
        self._values_cache[key] = values
        return values


class _DecorrelatedSubplan:
    """A correlated EXISTS / IN subquery executed as a hash semi-join.

    A real RDBMS answers a correlated ``NOT EXISTS`` residue with an index
    scan per outer row; the equivalent here is decorrelation: the equality
    conjuncts binding inner expressions to outer references are stripped
    from the subquery, the remainder is evaluated **once**, its rows are
    hashed on the inner sides of those equalities, and each outer row
    probes the hash table (applying any remaining correlated conjuncts to
    the bucket's rows).  Without this, the rewriting baseline would
    degrade to a quadratic nested loop no real system would exhibit,
    skewing the paper's part-3 comparison in Hippo's favour.
    """

    def __init__(
        self,
        inner_plan: plan.PlanNode,
        n_keys: int,
        outer_keys: list,
        residual_predicate: Optional[Callable[[Env], bool]],
        value_evaluator: Evaluator,
        stats: ExecutionStats,
    ) -> None:
        self._inner_plan = inner_plan
        self._n_keys = n_keys
        self._outer_keys = outer_keys
        self._residual = residual_predicate
        self._value = value_evaluator
        self._stats = stats
        self._index: Optional[dict[tuple, list[tuple]]] = None

    def _buckets(self) -> dict[tuple, list[tuple]]:
        if self._index is None:
            self._stats.subquery_evaluations += 1
            index: dict[tuple, list[tuple]] = {}
            n_keys = self._n_keys
            for row in self._inner_plan.rows(()):
                key = row[:n_keys]
                if any(part is None for part in key):
                    continue  # '=' with NULL never matches
                index.setdefault(key, []).append(row[n_keys:])
            self._index = index
        return self._index

    def _probe(self, env: Env) -> list[tuple]:
        buckets = self._buckets()
        self._stats.subquery_cache_hits += 1
        key = tuple(evaluator(env) for evaluator in self._outer_keys)
        if any(part is None for part in key):
            return []
        return buckets.get(key, [])

    def has_rows(self, env: Env) -> bool:
        residual = self._residual
        for local_row in self._probe(env):
            if residual is None or residual((local_row,) + env):
                return True
        return False

    def first_column_values(self, env: Env) -> list:
        residual = self._residual
        return [
            self._value((local_row,) + env)
            for local_row in self._probe(env)
            if residual is None or residual((local_row,) + env)
        ]


def _walk_expressions(node: ast.Node) -> Iterator[ast.Node]:
    """Yield every descendant node (including ``node``), skipping subqueries."""
    yield node
    for field_info in fields(node):  # type: ignore[arg-type]
        value = getattr(node, field_info.name)
        if isinstance(value, ast.Query):
            continue
        if isinstance(value, ast.Node):
            yield from _walk_expressions(value)
        elif isinstance(value, tuple):
            for item in value:
                if isinstance(item, ast.Node):
                    yield from _walk_expressions(item)
                elif isinstance(item, tuple):
                    for sub in item:
                        if isinstance(sub, ast.Node):
                            yield from _walk_expressions(sub)


def column_refs(expr: ast.Expression) -> list[ast.ColumnRef]:
    """All column references in ``expr``, outside of nested subqueries."""
    return [node for node in _walk_expressions(expr) if isinstance(node, ast.ColumnRef)]


def contains_subquery(expr: ast.Expression) -> bool:
    """Whether ``expr`` contains an EXISTS / IN-subquery node."""
    return any(
        isinstance(node, (ast.Exists, ast.InSubquery))
        for node in _walk_expressions(expr)
    )


def find_aggregate_calls(expr: ast.Expression) -> list[ast.FunctionCall]:
    """Aggregate function calls appearing in ``expr`` (outside subqueries)."""
    return [
        node
        for node in _walk_expressions(expr)
        if isinstance(node, ast.FunctionCall)
        and (node.star or functions.is_aggregate_function(node.name))
    ]


def _resolvable(expr: ast.Expression, entries: list[tuple[Optional[str], str]]) -> bool:
    """Whether every column ref of ``expr`` resolves within ``entries``."""
    probe = Scope(list(entries))
    for ref in column_refs(expr):
        try:
            probe.resolve(ref.table, ref.name)
        except PlanError:
            return False
    return True


class Planner:
    """Plans queries against a catalog, producing physical plans."""

    def __init__(self, catalog: Catalog, stats: ExecutionStats) -> None:
        self.catalog = catalog
        self.stats = stats
        # Active capture collectors: (site_level, set of (level, index)).
        self._collectors: list[tuple[int, set[tuple[int, int]]]] = []
        #: Whether the produced plan may be reused by later statements.
        #: Cleared when planning compiles a subplan, whose memo caches
        #: are only valid within the statement that populated them.
        self.cacheable = True

    # --------------------------------------------------------------- public

    def plan_query(
        self, query: ast.Query, outer_scope: Optional[Scope] = None
    ) -> PlannedQuery:
        """Plan a full query (body + ORDER BY + LIMIT)."""
        node, entries, displays = self._plan_body(query.body, outer_scope)
        level = outer_scope.level + 1 if outer_scope is not None else 0
        output_scope = Scope(list(entries), outer_scope, level)
        if query.order_by:
            keys: list[tuple[Evaluator, bool]] = []
            for item in query.order_by:
                if isinstance(item.expr, ast.Literal) and isinstance(
                    item.expr.value, int
                ):
                    position = item.expr.value
                    if not 1 <= position <= node.width:
                        raise PlanError(f"ORDER BY position {position} out of range")
                    index = position - 1
                    keys.append((lambda env, i=index: env[0][i], item.ascending))
                else:
                    compiler = self._compiler(output_scope)
                    keys.append((compiler.compile(item.expr), item.ascending))
            node = plan.Sort(node, keys)
        if query.limit is not None or query.offset is not None:
            node = plan.Limit(node, query.limit, query.offset)
        return PlannedQuery(node, displays)

    # ----------------------------------------------------------- query body

    def _plan_body(
        self,
        body: Union[ast.SelectCore, ast.SetOperation],
        outer_scope: Optional[Scope],
    ) -> tuple[plan.PlanNode, list[tuple[Optional[str], str]], list[str]]:
        if isinstance(body, ast.SelectCore):
            return self._plan_select_core(body, outer_scope)
        left_node, left_entries, left_displays = self._plan_body(body.left, outer_scope)
        right_node, _right_entries, _right_displays = self._plan_body(
            body.right, outer_scope
        )
        if left_node.width != right_node.width:
            raise PlanError(
                f"{body.op.upper()} requires equal column counts"
                f" ({left_node.width} vs {right_node.width})"
            )
        if body.op == "union":
            node: plan.PlanNode = plan.UnionAll([left_node, right_node])
            if not body.all:
                node = plan.Distinct(node)
        elif body.op == "except":
            node = plan.Except(left_node, right_node, all=body.all)
        elif body.op == "intersect":
            node = plan.Intersect(left_node, right_node, all=body.all)
        else:  # pragma: no cover - parser never emits other ops
            raise PlanError(f"unknown set operation {body.op!r}")
        # Column names come from the left input; bindings are dropped since
        # a set-operation result is not addressable through an alias.
        entries = [(None, column) for _binding, column in left_entries]
        return node, entries, left_displays

    # ---------------------------------------------------------- SELECT core

    def _plan_select_core(
        self, core: ast.SelectCore, outer_scope: Optional[Scope]
    ) -> tuple[plan.PlanNode, list[tuple[Optional[str], str]], list[str]]:
        level = outer_scope.level + 1 if outer_scope is not None else 0

        conjuncts = ast.split_conjuncts(core.where)
        # Conjuncts containing subqueries are applied at the end, after the
        # full row scope exists (they may be correlated with anything).
        join_candidates = [c for c in conjuncts if not contains_subquery(c)]
        late_conjuncts = [c for c in conjuncts if contains_subquery(c)]

        if core.from_items:
            source, leftovers = self._plan_from_list(
                core.from_items, join_candidates, outer_scope, level
            )
        else:
            source = _Source(plan.SingleRow(), [], [])
            leftovers = join_candidates

        from_scope = Scope(list(source.entries), outer_scope, level)
        node = source.node
        remaining = leftovers + late_conjuncts
        if remaining:
            compiler = self._compiler(from_scope)
            predicate = compiler.compile_predicate(
                ast.conjunction(remaining)  # type: ignore[arg-type]
            )
            node = plan.Filter(node, predicate)

        select_items = self._expand_stars(core.items, source)

        aggregate_calls: list[ast.FunctionCall] = []
        for item in select_items:
            aggregate_calls.extend(find_aggregate_calls(item.expr))
        if core.having is not None:
            aggregate_calls.extend(find_aggregate_calls(core.having))

        if core.group_by or aggregate_calls:
            node, entries, displays = self._plan_aggregate(
                node, from_scope, core, select_items, aggregate_calls, level
            )
        else:
            compiler = self._compiler(from_scope)
            evaluators = [compiler.compile(item.expr) for item in select_items]
            node = plan.Project(node, evaluators)
            entries, displays = self._output_columns(select_items)

        if core.distinct:
            node = plan.Distinct(node)
        return node, entries, displays

    # ------------------------------------------------------------- FROM list

    def _plan_from_list(
        self,
        from_items: Sequence[ast.FromItem],
        candidates: list[ast.Expression],
        outer_scope: Optional[Scope],
        level: int,
    ) -> tuple[_Source, list[ast.Expression]]:
        """Combine comma-separated FROM items, consuming join conjuncts."""
        unused = list(candidates)
        combined: Optional[_Source] = None
        for item in from_items:
            source = self._plan_from_item(item, outer_scope, level)
            if combined is None:
                combined = source
                # Apply single-source conjuncts immediately (pushdown).
                unused = self._apply_local_filters(combined, unused, outer_scope, level)
                continue
            usable = [
                c
                for c in unused
                if _resolvable(c, combined.entries + source.entries)
            ]
            combined = self._combine(
                combined, source, usable, "inner", outer_scope, level
            )
            unused = [c for c in unused if c not in usable]
            unused = self._apply_local_filters(combined, unused, outer_scope, level)
        assert combined is not None
        return combined, unused

    def _apply_local_filters(
        self,
        source: _Source,
        conjuncts: list[ast.Expression],
        outer_scope: Optional[Scope],
        level: int,
    ) -> list[ast.Expression]:
        """Filter ``source`` by the conjuncts it can already evaluate.

        When the source is a bare table scan and constant-equality
        conjuncts cover a secondary index, the scan is replaced by an
        index lookup and those conjuncts are consumed.
        """
        local = [c for c in conjuncts if _resolvable(c, source.entries)]
        local = self._try_index_scan(source, local)
        if local:
            scope = Scope(list(source.entries), outer_scope, level)
            compiler = self._compiler(scope)
            predicate = compiler.compile_predicate(
                ast.conjunction(local)  # type: ignore[arg-type]
            )
            source.node = plan.Filter(source.node, predicate)
        return [c for c in conjuncts if c not in local and c not in source.consumed]

    @staticmethod
    def _constant_equality(
        conjunct: ast.Expression,
    ) -> Optional[tuple[ast.ColumnRef, object]]:
        """Match ``col = literal`` (either orientation); None otherwise."""
        if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
            return None
        left, right = conjunct.left, conjunct.right
        if isinstance(left, ast.ColumnRef) and isinstance(right, ast.Literal):
            return left, right.value
        if isinstance(right, ast.ColumnRef) and isinstance(left, ast.Literal):
            return right, left.value
        return None

    def _try_index_scan(
        self, source: _Source, local: list[ast.Expression]
    ) -> list[ast.Expression]:
        """Replace a plain scan with a better constant-equality access path.

        Preference order: an :class:`~repro.engine.plan.IndexScan` when a
        hash index covers the equality columns, else a vectorized
        :class:`~repro.engine.plan.ColumnEqScan` over the columnar batch
        (same NULL-never-matches semantics, no index required).  Consumed
        conjuncts are recorded on the source so callers drop them.
        """
        node = source.node
        if (
            not isinstance(node, plan.Scan)
            or node.include_tid
            or node.keep_tids is not None
        ):
            return local
        table = node.table
        by_position: dict[int, tuple[ast.Expression, object]] = {}
        for conjunct in local:
            match = self._constant_equality(conjunct)
            if match is None:
                continue
            ref, value = match
            if not table.schema.has_column(ref.name):
                continue
            by_position.setdefault(
                table.schema.index_of(ref.name), (conjunct, value)
            )
        best: Optional[tuple[int, ...]] = None
        for positions in table.indexed_column_sets():
            if all(p in by_position for p in positions):
                if best is None or len(positions) > len(best):
                    best = positions
        if best is None:
            # No covering index: vectorized equality over the columnar
            # batch still beats a per-row compiled predicate -- but only
            # where SQL comparison rules would not raise (a Filter
            # rejects TEXT = INTEGER; the batch path must too, so it
            # leaves incomparable conjuncts to the compiled predicate).
            positions_eq = tuple(
                sorted(
                    p
                    for p, (_conjunct, value) in by_position.items()
                    if _eq_types_compatible(
                        table.schema.columns[p].sql_type, value
                    )
                )
            )
            if not positions_eq:
                return local
            consumed = [by_position[p][0] for p in positions_eq]
            values = [by_position[p][1] for p in positions_eq]
            source.node = plan.ColumnEqScan(
                table, self.stats, positions_eq, values
            )
            source.consumed.extend(consumed)
            return [c for c in local if c not in consumed]
        consumed = [by_position[p][0] for p in best]
        values = [by_position[p][1] for p in best]
        source.node = plan.IndexScan(table, self.stats, best, values)
        source.consumed.extend(consumed)
        return [c for c in local if c not in consumed]

    def _plan_from_item(
        self, item: ast.FromItem, outer_scope: Optional[Scope], level: int
    ) -> _Source:
        if isinstance(item, ast.TableRef):
            table = self.catalog.table(item.name)
            binding = item.binding
            entries = [
                (binding, column.lower()) for column in table.schema.column_names
            ]
            displays = list(table.schema.column_names)
            return _Source(plan.Scan(table, self.stats), entries, displays)
        if isinstance(item, ast.DerivedTable):
            planned = self.plan_query(item.query, outer_scope)
            entries = [(item.alias, name.lower()) for name in planned.columns]
            return _Source(planned.plan, entries, list(planned.columns))
        if isinstance(item, ast.Join):
            left = self._plan_from_item(item.left, outer_scope, level)
            right = self._plan_from_item(item.right, outer_scope, level)
            conjuncts = ast.split_conjuncts(item.on)
            unresolvable = [
                c for c in conjuncts if not _resolvable(c, left.entries + right.entries)
            ]
            if unresolvable and item.kind != "cross":
                raise PlanError(
                    "JOIN ... ON condition references columns outside the join"
                )
            return self._combine(left, right, conjuncts, item.kind, outer_scope, level)
        raise PlanError(f"cannot plan FROM item {type(item).__name__}")

    def _combine(
        self,
        left: _Source,
        right: _Source,
        conjuncts: list[ast.Expression],
        kind: str,
        outer_scope: Optional[Scope],
        level: int,
    ) -> _Source:
        """Join two sources, picking a hash join when equi-keys exist."""
        entries = left.entries + right.entries
        displays = left.displays + right.displays
        scope = Scope(list(entries), outer_scope, level)

        equi_pairs: list[tuple[ast.ColumnRef, ast.ColumnRef]] = []
        residual: list[ast.Expression] = []
        for conjunct in conjuncts:
            pair = self._equi_pair(conjunct, left, right)
            if pair is not None:
                equi_pairs.append(pair)
            else:
                residual.append(conjunct)

        residual_predicate = None
        if residual:
            compiler = self._compiler(scope)
            residual_predicate = compiler.compile_predicate(
                ast.conjunction(residual)  # type: ignore[arg-type]
            )

        if equi_pairs and kind in ("inner", "left"):
            left_scope = Scope(list(left.entries), outer_scope, level)
            right_scope = Scope(list(right.entries), outer_scope, level)
            left_keys = [
                self._compiler(left_scope).compile(lref) for lref, _r in equi_pairs
            ]
            right_keys = [
                self._compiler(right_scope).compile(rref) for _l, rref in equi_pairs
            ]
            node: plan.PlanNode = plan.HashJoin(
                left.node, right.node, left_keys, right_keys, residual_predicate, kind
            )
            return _Source(node, entries, displays)

        join_kind = kind if kind != "inner" or residual_predicate else "cross"
        node = plan.NestedLoopJoin(left.node, right.node, residual_predicate, join_kind)
        return _Source(node, entries, displays)

    def _equi_pair(
        self, conjunct: ast.Expression, left: _Source, right: _Source
    ) -> Optional[tuple[ast.ColumnRef, ast.ColumnRef]]:
        """Detect ``left_col = right_col`` conjuncts linking the two sides."""
        if not (
            isinstance(conjunct, ast.BinaryOp)
            and conjunct.op == "="
            and isinstance(conjunct.left, ast.ColumnRef)
            and isinstance(conjunct.right, ast.ColumnRef)
        ):
            return None
        lhs, rhs = conjunct.left, conjunct.right
        if _resolvable(lhs, left.entries) and _resolvable(rhs, right.entries):
            if not _resolvable(lhs, right.entries) and not _resolvable(
                rhs, left.entries
            ):
                return (lhs, rhs)
        if _resolvable(rhs, left.entries) and _resolvable(lhs, right.entries):
            if not _resolvable(rhs, right.entries) and not _resolvable(
                lhs, left.entries
            ):
                return (rhs, lhs)
        return None

    # ------------------------------------------------------------ aggregates

    def _plan_aggregate(
        self,
        node: plan.PlanNode,
        from_scope: Scope,
        core: ast.SelectCore,
        select_items: list[ast.SelectItem],
        aggregate_calls: list[ast.FunctionCall],
        level: int,
    ) -> tuple[plan.PlanNode, list[tuple[Optional[str], str]], list[str]]:
        compiler = self._compiler(from_scope)

        group_canon: list[ast.Expression] = []
        group_evaluators: list[Evaluator] = []
        for key_expr in core.group_by:
            group_canon.append(self._canonicalize(key_expr, from_scope))
            group_evaluators.append(compiler.compile(key_expr))

        agg_canon: list[ast.Expression] = []
        agg_specs: list[plan.AggregateSpec] = []
        for call in aggregate_calls:
            canon = self._canonicalize(call, from_scope)
            if canon in agg_canon:
                continue
            agg_canon.append(canon)
            if call.star:
                agg_specs.append(("COUNT", False, None))
            else:
                if len(call.args) != 1:
                    raise PlanError(
                        f"aggregate {call.name} expects exactly one argument"
                    )
                agg_specs.append(
                    (call.name, call.distinct, compiler.compile(call.args[0]))
                )

        node = plan.Aggregate(node, group_evaluators, agg_specs)

        # Scope over the aggregate output: synthetic, unambiguous names.
        post_entries: list[tuple[Optional[str], str]] = []
        for index in range(len(group_canon)):
            post_entries.append((None, f"#key{index}"))
        for index in range(len(agg_canon)):
            post_entries.append((None, f"#agg{index}"))
        post_scope = Scope(post_entries, from_scope.parent, level)
        post_compiler = self._compiler(post_scope)

        rewritten_items = [
            ast.SelectItem(
                self._rewrite_post_aggregate(
                    item.expr, from_scope, group_canon, agg_canon
                ),
                item.alias,
            )
            for item in select_items
        ]
        evaluators = [post_compiler.compile(item.expr) for item in rewritten_items]

        if core.having is not None:
            having_expr = self._rewrite_post_aggregate(
                core.having, from_scope, group_canon, agg_canon
            )
            node = plan.Filter(node, post_compiler.compile_predicate(having_expr))

        node = plan.Project(node, evaluators)
        entries, displays = self._output_columns(select_items)
        return node, entries, displays

    def _canonicalize(self, expr: ast.Expression, scope: Scope) -> ast.Expression:
        """Replace column refs with resolved positions for structural matching."""

        def transform(node: ast.Expression) -> ast.Expression:
            if isinstance(node, ast.ColumnRef):
                depth, index = scope.resolve(node.table, node.name)
                return ast.ColumnRef("#resolved", f"{scope.level - depth}:{index}")
            return self._map_children(node, transform)

        return transform(expr)

    def _rewrite_post_aggregate(
        self,
        expr: ast.Expression,
        from_scope: Scope,
        group_canon: list[ast.Expression],
        agg_canon: list[ast.Expression],
    ) -> ast.Expression:
        """Rewrite an expression to refer to aggregate-output slots."""

        def transform(node: ast.Expression) -> ast.Expression:
            if isinstance(node, (ast.Exists, ast.InSubquery)):
                raise PlanError("subqueries are not supported in grouped SELECT lists")
            canon = self._canonicalize(node, from_scope)
            if canon in group_canon:
                return ast.ColumnRef(None, f"#key{group_canon.index(canon)}")
            if isinstance(node, ast.FunctionCall) and (
                node.star or functions.is_aggregate_function(node.name)
            ):
                if canon in agg_canon:
                    return ast.ColumnRef(None, f"#agg{agg_canon.index(canon)}")
                raise PlanError(  # pragma: no cover
                    f"aggregate {node.name} not collected"
                )
            if isinstance(node, ast.ColumnRef):
                raise PlanError(
                    f"column {node} must appear in GROUP BY or inside an aggregate"
                )
            return self._map_children(node, transform)

        return transform(expr)

    @staticmethod
    def _map_children(
        node: ast.Expression,
        transform: Callable[[ast.Expression], ast.Expression],
    ) -> ast.Expression:
        """Rebuild a dataclass expression node with transformed children."""
        updates = {}
        for field_info in fields(node):  # type: ignore[arg-type]
            value = getattr(node, field_info.name)
            if isinstance(value, ast.Expression):
                updates[field_info.name] = transform(value)
            elif (
                isinstance(value, tuple)
                and value
                and isinstance(value[0], ast.Expression)
            ):
                updates[field_info.name] = tuple(transform(item) for item in value)
            elif (
                isinstance(value, tuple)
                and value
                and isinstance(value[0], tuple)
            ):
                updates[field_info.name] = tuple(
                    tuple(transform(sub) for sub in item) for item in value
                )
        return replace(node, **updates) if updates else node

    # --------------------------------------------------------------- helpers

    def _expand_stars(
        self,
        items: Sequence[Union[ast.SelectItem, ast.Star]],
        source: _Source,
    ) -> list[ast.SelectItem]:
        expanded: list[ast.SelectItem] = []
        for item in items:
            if isinstance(item, ast.SelectItem):
                expanded.append(item)
                continue
            matched = False
            for (binding, column), display in zip(source.entries, source.displays):
                if item.table is None or (
                    binding is not None and binding == item.table.lower()
                ):
                    matched = True
                    expanded.append(
                        ast.SelectItem(ast.ColumnRef(binding, column), display)
                    )
            if not matched:
                raise PlanError(
                    f"* expansion failed: no columns for {item.table or 'FROM'!r}"
                )
        return expanded

    @staticmethod
    def _output_columns(
        select_items: Sequence[ast.SelectItem],
    ) -> tuple[list[tuple[Optional[str], str]], list[str]]:
        entries: list[tuple[Optional[str], str]] = []
        displays: list[str] = []
        for index, item in enumerate(select_items):
            if item.alias:
                name = item.alias
                binding = None
            elif isinstance(item.expr, ast.ColumnRef):
                name = item.expr.name
                binding = item.expr.table
            else:
                name = f"col{index}"
                binding = None
            entries.append((binding, name.lower()))
            displays.append(name)
        return entries, displays

    # ------------------------------------------------------------ subqueries

    def _compiler(self, scope: Scope) -> ExpressionCompiler:
        def capture_hook(depth: int, index: int) -> None:
            level = scope.level - depth
            for site_level, collector in self._collectors:
                if level <= site_level:
                    collector.add((level, index))

        return ExpressionCompiler(scope, self._plan_subquery, capture_hook)

    def _plan_subquery(
        self, query: ast.Query, site_scope: Scope
    ) -> Union[_Subplan, _DecorrelatedSubplan]:
        # Subplans memoize results across the *statement* they belong to
        # (exists/values caches, the decorrelated hash table), so a plan
        # containing one must not be reused by a later statement that may
        # observe different data.  Mark the whole plan non-cacheable.
        self.cacheable = False
        decorrelated = self._try_decorrelate(query, site_scope)
        if decorrelated is not None:
            return decorrelated
        collector: set[tuple[int, int]] = set()
        self._collectors.append((site_scope.level, collector))
        try:
            planned = self.plan_query(query, outer_scope=site_scope)
        finally:
            self._collectors.pop()
        # Propagate captures that also escape enclosing subqueries.
        for level, index in collector:
            for outer_level, outer_collector in self._collectors:
                if level <= outer_level:
                    outer_collector.add((level, index))
        return _Subplan(planned.plan, sorted(collector), site_scope.level, self.stats)

    # -------------------------------------------------- EXISTS decorrelation

    @staticmethod
    def _static_entries(
        from_items: Sequence[ast.FromItem], catalog: Catalog
    ) -> Optional[list[tuple[Optional[str], str]]]:
        """Visible columns of a FROM clause, without planning it."""
        entries: list[tuple[Optional[str], str]] = []

        def visit(item: ast.FromItem) -> bool:
            if isinstance(item, ast.TableRef):
                if not catalog.has_table(item.name):
                    return False
                table = catalog.table(item.name)
                binding = item.binding.lower()
                entries.extend(
                    (binding, column.lower())
                    for column in table.schema.column_names
                )
                return True
            if isinstance(item, ast.Join):
                return visit(item.left) and visit(item.right)
            return False  # derived tables: fall back to the generic path

        for item in from_items:
            if not visit(item):
                return None
        return entries

    def _try_decorrelate(
        self, query: ast.Query, site_scope: Scope
    ) -> Optional[_DecorrelatedSubplan]:
        """Compile a correlated subquery into a hash semi-join, if possible.

        Returns None (and lets the generic memoized path handle the query)
        whenever the shape does not match: set operations, grouping,
        ORDER BY / LIMIT, derived tables, or no equality conjunct linking
        an inner expression to an outer column.
        """
        body = query.body
        if not isinstance(body, ast.SelectCore):
            return None
        if body.group_by or body.having or query.order_by:
            return None
        if query.limit is not None or query.offset is not None:
            return None
        if not body.from_items:
            return None
        entries = self._static_entries(body.from_items, self.catalog)
        if entries is None:
            return None
        probe = Scope(list(entries))

        def resolves_locally(ref: ast.ColumnRef) -> bool:
            try:
                probe.resolve(ref.table, ref.name)
                return True
            except PlanError as exc:
                # A locally-ambiguous reference is still "local": letting
                # the normal compilation path report the ambiguity beats
                # silently capturing an outer column of the same name.
                return "ambiguous" in str(exc)

        def is_local(expr: ast.Expression) -> bool:
            return all(resolves_locally(ref) for ref in column_refs(expr))

        inner_keys: list[ast.Expression] = []
        outer_refs: list[ast.ColumnRef] = []
        residual: list[ast.Expression] = []
        join_conjuncts: list[ast.Expression] = []

        def collect_on(item: ast.FromItem) -> None:
            if isinstance(item, ast.Join):
                collect_on(item.left)
                collect_on(item.right)
                if item.on is not None:
                    if item.kind == "left":
                        raise _AbortDecorrelation
                    join_conjuncts.extend(ast.split_conjuncts(item.on))

        try:
            for item in body.from_items:
                collect_on(item)
        except _AbortDecorrelation:
            return None

        local_residual: list[ast.Expression] = []
        correlated_residual: list[ast.Expression] = []
        for conjunct in ast.split_conjuncts(body.where) + join_conjuncts:
            matched = False
            if (
                isinstance(conjunct, ast.BinaryOp)
                and conjunct.op == "="
                and not contains_subquery(conjunct)
            ):
                for inner, outer in (
                    (conjunct.left, conjunct.right),
                    (conjunct.right, conjunct.left),
                ):
                    if (
                        isinstance(outer, ast.ColumnRef)
                        and not resolves_locally(outer)
                        and is_local(inner)
                    ):
                        inner_keys.append(inner)
                        outer_refs.append(outer)
                        matched = True
                        break
            if matched:
                continue
            if is_local(conjunct) and not contains_subquery(conjunct):
                local_residual.append(conjunct)
            else:
                correlated_residual.append(conjunct)
        if not inner_keys:
            return None

        # The value column (for IN subqueries): the first select item.
        first = body.items[0]
        if isinstance(first, ast.Star):
            binding, column = entries[0]
            value_expr: ast.Expression = ast.ColumnRef(binding, column)
        else:
            value_expr = first.expr

        # Inner rows carry the keys followed by *every* local column, so
        # that correlated residual conjuncts and the value expression can
        # be evaluated per probed row against the local scope layout.
        items = tuple(
            ast.SelectItem(key, f"k{index}") for index, key in enumerate(inner_keys)
        ) + tuple(
            ast.SelectItem(ast.ColumnRef(binding, column), f"c{index}")
            for index, (binding, column) in enumerate(entries)
        )
        # Strip explicit JOIN ... ON conditions: they were folded into the
        # conjunct analysis above, so re-planning uses plain cross sources
        # plus the local residual WHERE.
        flat_sources = _flatten_from(body.from_items)
        modified = ast.Query(
            ast.SelectCore(items, flat_sources, ast.conjunction(local_residual))
        )
        local_scope = Scope(list(entries), site_scope, site_scope.level + 1)
        try:
            planned = self.plan_query(modified, outer_scope=None)
            site_compiler = self._compiler(site_scope)
            outer_keys = [site_compiler.compile(ref) for ref in outer_refs]
            local_compiler = self._compiler(local_scope)
            residual_predicate = (
                local_compiler.compile_predicate(
                    ast.conjunction(correlated_residual)  # type: ignore[arg-type]
                )
                if correlated_residual
                else None
            )
            value_evaluator = local_compiler.compile(value_expr)
        except PlanError:
            return None  # oddly-shaped subquery: the generic path handles it
        return _DecorrelatedSubplan(
            planned.plan,
            len(inner_keys),
            outer_keys,
            residual_predicate,
            value_evaluator,
            self.stats,
        )
