"""Scalar and aggregate function registries for the engine."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.engine.types import SQLValue, compare_values
from repro.errors import ExecutionError, TypeError_

# --------------------------------------------------------------------------
# Scalar functions.  Each takes already-evaluated argument values and
# returns a value; SQL NULL-propagation (NULL in -> NULL out) is applied
# by the dispatcher for every function except COALESCE / NULLIF.
# --------------------------------------------------------------------------


def _abs(value: SQLValue) -> SQLValue:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError_("ABS expects a numeric argument")
    return abs(value)


def _lower(value: SQLValue) -> SQLValue:
    if not isinstance(value, str):
        raise TypeError_("LOWER expects a TEXT argument")
    return value.lower()


def _upper(value: SQLValue) -> SQLValue:
    if not isinstance(value, str):
        raise TypeError_("UPPER expects a TEXT argument")
    return value.upper()


def _length(value: SQLValue) -> SQLValue:
    if not isinstance(value, str):
        raise TypeError_("LENGTH expects a TEXT argument")
    return len(value)


def _substr(value: SQLValue, start: SQLValue, count: SQLValue = None) -> SQLValue:
    if not isinstance(value, str) or not isinstance(start, int):
        raise TypeError_("SUBSTR expects (TEXT, INTEGER[, INTEGER])")
    begin = max(start - 1, 0)  # SQL SUBSTR is 1-based
    if count is None:
        return value[begin:]
    if not isinstance(count, int):
        raise TypeError_("SUBSTR length must be an INTEGER")
    return value[begin : begin + max(count, 0)]


def _round(value: SQLValue, digits: SQLValue = 0) -> SQLValue:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError_("ROUND expects a numeric argument")
    if not isinstance(digits, int):
        raise TypeError_("ROUND digits must be an INTEGER")
    return round(float(value), digits)


_NULL_TOLERANT = {"COALESCE", "NULLIF", "IFNULL"}

_SCALAR: dict[str, Callable[..., SQLValue]] = {
    "ABS": _abs,
    "LOWER": _lower,
    "UPPER": _upper,
    "LENGTH": _length,
    "SUBSTR": _substr,
    "SUBSTRING": _substr,
    "ROUND": _round,
}


def is_scalar_function(name: str) -> bool:
    """Whether ``name`` is a known scalar function."""
    return name.upper() in _SCALAR or name.upper() in _NULL_TOLERANT


def call_scalar(name: str, args: Sequence[SQLValue]) -> SQLValue:
    """Invoke a scalar function with SQL NULL-propagation rules.

    Raises:
        ExecutionError: for unknown functions or bad arity.
    """
    upper = name.upper()
    if upper == "COALESCE":
        return next((arg for arg in args if arg is not None), None)
    if upper == "IFNULL":
        if len(args) != 2:
            raise ExecutionError("IFNULL expects 2 arguments")
        return args[0] if args[0] is not None else args[1]
    if upper == "NULLIF":
        if len(args) != 2:
            raise ExecutionError("NULLIF expects 2 arguments")
        return None if compare_values(args[0], args[1]) == 0 else args[0]
    function = _SCALAR.get(upper)
    if function is None:
        raise ExecutionError(f"unknown function: {name}")
    if any(arg is None for arg in args):
        return None
    try:
        return function(*args)
    except TypeError as exc:  # wrong arity
        raise ExecutionError(f"bad arguments to {upper}: {exc}") from None


# --------------------------------------------------------------------------
# Aggregate functions.  Each aggregate is an accumulator class; NULL inputs
# are skipped per the SQL standard (COUNT(*) is handled by the planner,
# which passes a non-NULL marker for every row).
# --------------------------------------------------------------------------


class Aggregate:
    """Base accumulator: subclasses override :meth:`add` and :meth:`result`."""

    def add(self, value: SQLValue) -> None:
        raise NotImplementedError

    def result(self) -> SQLValue:
        raise NotImplementedError


class _Count(Aggregate):
    def __init__(self) -> None:
        self.count = 0

    def add(self, value: SQLValue) -> None:
        if value is not None:
            self.count += 1

    def result(self) -> SQLValue:
        return self.count


class _Sum(Aggregate):
    def __init__(self) -> None:
        self.total: Optional[float | int] = None

    def add(self, value: SQLValue) -> None:
        if value is None:
            return
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise TypeError_("SUM expects numeric inputs")
        self.total = value if self.total is None else self.total + value

    def result(self) -> SQLValue:
        return self.total


class _Avg(Aggregate):
    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def add(self, value: SQLValue) -> None:
        if value is None:
            return
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise TypeError_("AVG expects numeric inputs")
        self.total += value
        self.count += 1

    def result(self) -> SQLValue:
        return self.total / self.count if self.count else None


class _Min(Aggregate):
    def __init__(self) -> None:
        self.best: SQLValue = None

    def add(self, value: SQLValue) -> None:
        if value is None:
            return
        if self.best is None or compare_values(value, self.best) < 0:
            self.best = value

    def result(self) -> SQLValue:
        return self.best


class _Max(Aggregate):
    def __init__(self) -> None:
        self.best: SQLValue = None

    def add(self, value: SQLValue) -> None:
        if value is None:
            return
        if self.best is None or compare_values(value, self.best) > 0:
            self.best = value

    def result(self) -> SQLValue:
        return self.best


class _Distinct(Aggregate):
    """Wrapper applying DISTINCT before an inner accumulator."""

    def __init__(self, inner: Aggregate) -> None:
        self.inner = inner
        self.seen: set = set()

    def add(self, value: SQLValue) -> None:
        if value is None or value in self.seen:
            return
        self.seen.add(value)
        self.inner.add(value)

    def result(self) -> SQLValue:
        return self.inner.result()


_AGGREGATES: dict[str, Callable[[], Aggregate]] = {
    "COUNT": _Count,
    "SUM": _Sum,
    "AVG": _Avg,
    "MIN": _Min,
    "MAX": _Max,
}


def is_aggregate_function(name: str) -> bool:
    """Whether ``name`` is a known aggregate function."""
    return name.upper() in _AGGREGATES


def make_aggregate(name: str, distinct: bool = False) -> Aggregate:
    """Create a fresh accumulator for the named aggregate.

    Raises:
        ExecutionError: for unknown aggregates.
    """
    factory = _AGGREGATES.get(name.upper())
    if factory is None:
        raise ExecutionError(f"unknown aggregate function: {name}")
    accumulator = factory()
    return _Distinct(accumulator) if distinct else accumulator
