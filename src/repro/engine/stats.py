"""Execution statistics.

The paper's optimizations are *about* avoiding work on the RDBMS side
(membership queries, envelope re-evaluation), so the engine counts the
operations the Hippo layer cares about.  Benchmarks report these counters
alongside wall-clock time, the way the demonstration compares approaches.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ExecutionStats:
    """Mutable counters shared by a :class:`~repro.engine.database.Database`.

    Attributes:
        rows_scanned: rows produced by base-table scans.
        point_lookups: exact-row membership lookups (the Prover's
            "membership queries" in the paper's base system).
        statements: SQL statements executed.
        subquery_evaluations: correlated-subquery executions.
        subquery_cache_hits: correlated-subquery results served from cache.
        plan_cache_hits: statements served from the statement→plan cache.
        plan_cache_misses: statements that had to be parsed and planned.
        plan_cache_invalidations: cached plans discarded because the
            catalog epoch moved past them (DDL, index or constraint
            changes).
        backend_pushdowns: statements a pushdown backend executed
            (routed SELECTs, pushed rewritten queries and residual
            joins alike).
        backend_fallbacks: SELECTs a pushdown backend declined
            (:class:`~repro.errors.BackendError`) that fell back to
            native execution.
    """

    rows_scanned: int = 0
    point_lookups: int = 0
    statements: int = 0
    subquery_evaluations: int = 0
    subquery_cache_hits: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    plan_cache_invalidations: int = 0
    backend_pushdowns: int = 0
    backend_fallbacks: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.rows_scanned = 0
        self.point_lookups = 0
        self.statements = 0
        self.subquery_evaluations = 0
        self.subquery_cache_hits = 0
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.plan_cache_invalidations = 0
        self.backend_pushdowns = 0
        self.backend_fallbacks = 0

    def snapshot(self) -> dict[str, int]:
        """Copy the counters into a plain dict (for reports)."""
        return {
            "rows_scanned": self.rows_scanned,
            "point_lookups": self.point_lookups,
            "statements": self.statements,
            "subquery_evaluations": self.subquery_evaluations,
            "subquery_cache_hits": self.subquery_cache_hits,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "plan_cache_invalidations": self.plan_cache_invalidations,
            "backend_pushdowns": self.backend_pushdowns,
            "backend_fallbacks": self.backend_fallbacks,
        }
