"""The durable, partitioned change feed.

PR 1 made conflict detection incremental by publishing row mutations to
an in-memory change log.  That log was a single-process ring: one
overflow and the history was gone, and no other process could ever see
it.  This module promotes the log into a small **feed** subsystem in the
style of a partitioned commit log:

* **Topics.**  Every relation is its own topic; records carry a
  per-topic *offset* (monotonic from 0) plus a global *seq* that totally
  orders records across topics (replay applies records in seq order, so
  cross-relation effects -- e.g. DDL before the rows it enables -- come
  back deterministically).  DDL itself is a topic (:data:`SCHEMA_TOPIC`)
  whose records carry serialized table schemas, which is what lets a
  replica in another process rebuild the database without sharing memory.

* **Durability, bounded memory.**  With a ``directory``, every record is
  appended to a JSONL *segment* file per topic.  Segments rotate at
  ``segment_records`` records: the active segment is fsync'd and sealed,
  and a fresh segment becomes active.  Only the **active tail** of each
  topic is resident in memory; sealed segments are read back lazily from
  disk through a small LRU of parsed segments, so opening a feed costs
  O(active segment) resident records -- and an open that only asks for
  :meth:`ChangeFeed.end_offsets` never parses a record body at all (the
  manifest names the segments, their file names carry their start
  offsets, and the active segment is only line-counted).  Replays
  (:meth:`ChangeFeed.iter_records`) stream segment-by-segment.  A torn
  final line (crash mid append) is ignored on read and truncated away
  when a writer re-opens the segment, so replay converges on the longest
  durable prefix.

* **Live tailing.**  A second ``ChangeFeed`` instance opened on the same
  directory is a *reader*: every ``poll`` (and lag/pending check)
  re-scans the manifest and the active segments, so appends made by the
  writer process after the reader opened -- including rotations and new
  topics -- become visible as soon as they are flushed.  One process
  writes, any number tail.

* **Consumer groups.**  A consumer attaches to the feed under a group
  name and gets its own *committed offset* per topic.  ``poll()``
  returns records past the committed position without committing;
  ``commit()`` makes the new position durable (crash between the two
  re-delivers, which is what lets a replica apply-then-commit and stay
  exactly-once over restarts).  Named groups on a durable feed are
  registered on disk at attach time (retention must see them before
  their first commit).  Anonymous groups (``group=None``) are ephemeral
  and auto-named -- the in-process engine cursor uses one.  A group may
  also store a *snapshot*: an opaque payload bound to its committed
  offsets, which is its recovery point once retention has truncated the
  prefix it would otherwise replay.

* **Topic-subset subscriptions.**  A group may subscribe to a subset of
  the topics (``consumer(..., topics=...)``): polls, lag and loss
  checks then see only the subscribed topics, and -- crucially for
  retention -- the group's floor *only pins the topics it subscribes
  to*.  The subscription is persisted with the group's registration and
  with its snapshot offsets, so a foreign process's retention scan
  honors it too.  This is what lets shard workers
  (:mod:`repro.conflicts.shard`) each own a slice of the relations
  without one slow shard pinning every other shard's history.

* **Retention.**  In-memory feeds keep records until every group has
  consumed them, capped at ``max_retained``; past the cap the buffer is
  dropped wholesale and lagging groups observe ``lost=True`` (the
  consumer's cue to fall back to full re-detection).  Durable feeds
  never lose an unconsumed record -- but with ``retention="truncate"``
  sealed segments are *deleted* once every registered durable group has
  committed past them (a group with a snapshot holds segments only back
  to its snapshot's offsets -- its recovery point), and with
  ``retention="compact"`` the oldest *partially*-consumed sealed segment
  is additionally **rewritten**: its surviving records land in a fresh
  segment named by their start offset, so one slow group no longer pins
  a whole segment of disk for the sake of its unread suffix.  The
  manifest records the retention ``base`` per topic; a consumer that
  re-attaches needing reclaimed offsets gets the ``no longer retained``
  error and must bootstrap from its snapshot instead (see
  :meth:`FeedConsumer.load_snapshot` and
  :class:`~repro.conflicts.replica.ReplicaHypergraph`).  Both reclaim
  paths are crash-safe the same way: new files (compaction's rewritten
  segment) are written and fsync'd first, the manifest commits under the
  directory's advisory lock, and only then are victim files unlinked --
  a crash at any point leaves either the old consistent view or the new
  one plus orphan files, which the next open sweeps away.
"""

from __future__ import annotations

import bisect
import contextlib
import heapq
import io
import itertools
import json
import math
import os
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Optional

from repro.errors import FeedError, FeedRetentionError

#: Record kinds.
RECORD_CHANGE = "change"
RECORD_CREATE_TABLE = "create_table"
RECORD_DROP_TABLE = "drop_table"

#: The topic DDL records are published to.
SCHEMA_TOPIC = "_schema"

#: Reserved pseudo-group prefix for shard-handoff transfer packets: a
#: packet for topic ``t`` is stored as the snapshot of group
#: ``__transfer__.t`` (sidecar subscribed to ``t`` only), so the
#: ordinary retention floor scan pins the topic's records past the
#: handoff cut for exactly as long as the packet exists.
TRANSFER_PREFIX = "__transfer__."

#: Manifest file name inside a feed directory.
MANIFEST = "manifest.json"

#: The non-finite floats JSON cannot carry, by their wire tag.
_NONFINITE = {
    "nan": float("nan"),
    "inf": float("inf"),
    "-inf": float("-inf"),
}


def encode_value(value: object) -> object:
    """JSON-safe encoding of one SQL value.

    ``json.dumps`` would emit the non-standard ``NaN`` / ``Infinity``
    tokens for non-finite REAL values, which strict parsers (and foreign
    JSONL readers) reject.  Those three values are therefore wrapped as
    ``{"$f": "nan" | "inf" | "-inf"}``; everything else passes through
    (no other SQL value is a JSON object, so the wrapper cannot collide).
    """
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return {"$f": "nan"}
        return {"$f": "inf"} if value > 0 else {"$f": "-inf"}
    return value


def decode_value(value: object) -> object:
    """Invert :func:`encode_value`.

    Raises:
        FeedError: for an unknown wrapper object.
    """
    if isinstance(value, dict):
        try:
            return _NONFINITE[value["$f"]]
        except (KeyError, TypeError):
            raise FeedError(f"bad encoded value {value!r}") from None
    return value


def _segment_start(name: str) -> int:
    """The first offset a segment file holds (encoded in its name)."""
    try:
        return int(name.split(".", 1)[0])
    except ValueError:
        raise FeedError(f"bad segment name {name!r}") from None


def _seq_of(record: "FeedRecord") -> int:
    return record.seq


@dataclass(frozen=True)
class FeedRecord:
    """One record of the feed.

    Attributes:
        seq: global sequence number (total order across topics).
        topic: the partition (relation name, or :data:`SCHEMA_TOPIC`).
        offset: position within the topic (monotonic from 0).
        kind: :data:`RECORD_CHANGE` or one of the DDL kinds.
        tid: tuple id (change records).
        row: the row as stored (change records).
        op: ``"insert"`` / ``"delete"`` (change records).
        table: table name (DDL records).
        schema: serialized table schema (``create_table`` records).
    """

    seq: int
    topic: str
    offset: int
    kind: str
    tid: Optional[int] = None
    row: Optional[tuple] = None
    op: Optional[str] = None
    table: Optional[str] = None
    schema: Optional[dict] = None

    def to_json(self) -> str:
        """One JSONL line (compact, stable key order, strictly valid
        JSON: non-finite REAL values are encoded, never emitted as the
        ``NaN`` / ``Infinity`` tokens)."""
        payload: dict[str, object] = {
            "seq": self.seq,
            "topic": self.topic,
            "offset": self.offset,
            "kind": self.kind,
        }
        if self.kind == RECORD_CHANGE:
            payload["tid"] = self.tid
            payload["row"] = [encode_value(v) for v in (self.row or ())]
            payload["op"] = self.op
        else:
            payload["table"] = self.table
            if self.schema is not None:
                payload["schema"] = self.schema
        return json.dumps(payload, separators=(",", ":"), allow_nan=False)

    @staticmethod
    def from_json(line: str) -> "FeedRecord":
        """Parse one JSONL line.

        Raises:
            FeedError: when the line is not a valid record.
        """
        try:
            payload = json.loads(line)
            return FeedRecord(
                seq=payload["seq"],
                topic=payload["topic"],
                offset=payload["offset"],
                kind=payload["kind"],
                tid=payload.get("tid"),
                row=(
                    tuple(decode_value(v) for v in payload["row"])
                    if payload.get("row") is not None
                    else None
                ),
                op=payload.get("op"),
                table=payload.get("table"),
                schema=payload.get("schema"),
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise FeedError(f"bad feed record: {line!r}") from exc


@dataclass
class TopicInfo:
    """Public per-topic statistics (the CLI's ``.feed`` view)."""

    name: str
    start: int  # oldest retained offset
    end: int  # one past the newest offset
    segments: int  # durable segment files (0 for in-memory feeds)


@dataclass
class GroupRecovery:
    """One consumer group's recovery state, as retention sees it.

    Attributes:
        group: the group name.
        committed: committed offsets per topic.
        snapshot: the offsets of the group's snapshot, when it stored
            one -- then the group's recovery point (it rebuilds from
            the snapshot and replays forward).
        topics: the group's topic subscription (None = all topics);
            the group's floor only pins subscribed topics.
    """

    group: str
    committed: dict[str, int]
    snapshot: Optional[dict[str, int]] = None
    topics: Optional[frozenset[str]] = None

    @property
    def floor(self) -> dict[str, int]:
        """The offsets retention must keep for this group."""
        return self.snapshot if self.snapshot is not None else self.committed

    @property
    def source(self) -> str:
        """Where the floor comes from: ``"snapshot"`` or ``"committed"``."""
        return "snapshot" if self.snapshot is not None else "committed"


def _floor_of(
    name: str,
    contributions: Iterable[tuple[dict[str, int], Optional[frozenset[str]]]],
) -> int:
    """The retention floor of one topic over (offsets, subscription)
    contributions.  Groups not subscribed to the topic do not pin it; a
    topic with no subscriber at all stays pinned at 0 (conservative --
    nothing is reclaimed that a later subscribe-all attach could want).
    """
    floors = [
        offsets.get(name, 0)
        for offsets, topics in contributions
        if topics is None or name in topics
    ]
    return min(floors) if floors else 0


class _Topic:
    """One partition: the resident tail plus the durable segment chain.

    ``records`` holds the contiguous offsets ``[tail_start, end)``.  For
    in-memory feeds that is every retained record (``base`` always
    equals ``tail_start``); for durable feeds it is at most the newest
    -- active -- segment, parsed lazily, and everything below
    ``tail_start`` is read back from the sealed segment files on demand.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.records: list[FeedRecord] = []
        self.base = 0  # oldest retained offset (truncation point)
        self.tail_start = 0  # offset of records[0]
        self.end = 0  # one past the newest offset
        self.segments: list[str] = []  # durable file names, oldest first
        self.tail_loaded = True  # False: durable tail not parsed yet
        self.tail_bytes = 0  # validated bytes of the newest segment

    def drop_retained(self) -> None:
        self.base = self.tail_start = self.end
        self.records.clear()


class _SegmentCache:
    """A small LRU of parsed sealed segments, keyed by (topic, name).

    Sealed segments are immutable, so entries never go stale; eviction
    is purely a memory bound.  Truncation discards the entries of the
    segments it deletes.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = max(capacity, 1)
        self._entries: "OrderedDict[tuple[str, str], list[FeedRecord]]" = (
            OrderedDict()
        )

    @property
    def records(self) -> int:
        """Records currently held (for resident-memory accounting)."""
        return sum(len(records) for records in self._entries.values())

    def get(self, key: tuple[str, str]) -> Optional[list[FeedRecord]]:
        records = self._entries.get(key)
        if records is not None:
            self._entries.move_to_end(key)
        return records

    def put(self, key: tuple[str, str], records: list[FeedRecord]) -> None:
        self._entries[key] = records
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def discard(self, key: tuple[str, str]) -> None:
        self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()


class ChangeFeed:
    """A partitioned change feed, optionally durable.

    Args:
        directory: when given, records are persisted as JSONL segments
            under it and consumer commits under ``consumers/``; an
            existing directory is opened *lazily* (only the newest
            segment of each topic is even line-counted) and sealed
            segments are streamed from disk on demand.
        max_retained: in-memory retention cap (ignored when durable).
        segment_records: records per segment before rotation.
        fsync: ``"rotate"`` (default; appends are buffered and made
            durable at segment rotation, :meth:`flush` and
            :meth:`close`) or ``"always"`` (flush + fsync every append).
        retention: ``"keep"`` (default; sealed segments live forever),
            ``"truncate"`` (sealed segments are deleted once every
            registered durable group -- and every group snapshot -- has
            passed them; see :meth:`truncate`), or ``"compact"``
            (truncation plus rewriting the surviving records of the
            oldest partially-consumed sealed segment; see
            :meth:`compact`).
        cache_segments: capacity of the parsed-sealed-segment LRU.
    """

    def __init__(
        self,
        directory: Optional[str | os.PathLike] = None,
        *,
        max_retained: int = 100_000,
        segment_records: int = 4096,
        fsync: str = "rotate",
        retention: str = "keep",
        cache_segments: int = 4,
    ) -> None:
        if fsync not in ("rotate", "always"):
            raise FeedError(f"unknown fsync policy {fsync!r}")
        if retention not in ("keep", "truncate", "compact"):
            raise FeedError(f"unknown retention policy {retention!r}")
        self.directory = Path(directory) if directory is not None else None
        self.max_retained = max_retained
        self.segment_records = segment_records
        self.fsync = fsync
        self.retention = retention
        self._next_seq: Optional[int] = 0
        #: bumped by every DDL record (consumers that cached
        #: schema-derived state rebuild when it moves).
        self.schema_version = 0
        self._topics: dict[str, _Topic] = {}
        self._groups: dict[str, dict[str, int]] = {}  # group -> committed
        #: group -> subscribed topic names (None = all topics).
        self._subscriptions: dict[str, Optional[frozenset[str]]] = {}
        self._ephemeral: set[str] = set()  # anonymous groups (no disk state)
        #: in-memory transfer packets (durable feeds store them as
        #: ``__transfer__.<topic>`` snapshots instead).
        self._transfers: dict[str, tuple[int, dict]] = {}
        self._next_anonymous = 0
        self._suspended = 0
        #: records dropped because nobody was listening (in-memory feeds
        #: only) -- a replica attaching later checks this to refuse an
        #: unrebuildable history.
        self.dropped = 0
        self._writers: dict[str, io.TextIOWrapper] = {}  # topic -> active file
        self._active_counts: dict[str, int] = {}  # records in active segment
        #: whether this instance ever appended -- a durable instance
        #: that never did is a *reader* and re-scans the directory on
        #: poll (live tailing); the single writer's memory is
        #: authoritative, so writers never re-scan.
        self._published = False
        self._cache = _SegmentCache(cache_segments)
        self._streaming = 0  # records held by in-flight stream chunks
        self._manifest_lock_depth = 0
        #: (st_mtime_ns, st_size) of the manifest at last read -- lets
        #: refresh() skip the JSON parse when nothing rotated/truncated.
        self._manifest_stat: Optional[tuple[int, int]] = None
        #: high-water mark of records resident in this instance (tails +
        #: segment cache + streaming chunks) -- the bounded-memory gate.
        self.peak_resident_records = 0
        #: records the last ``poll`` pulled out of topic storage -- the
        #: k-way merge materializes at most ``limit`` plus one look-ahead
        #: record per topic (pinned by a regression test).
        self.last_poll_materialized = 0
        if self.directory is not None:
            self._open_durable()

    # ------------------------------------------------------------ publishing

    @contextlib.contextmanager
    def suspended(self) -> Iterator[None]:
        """Suppress publishing (used while replaying the feed back into
        storage, so recovery does not re-append its own history)."""
        self._suspended += 1
        try:
            yield
        finally:
            self._suspended -= 1

    @property
    def is_suspended(self) -> bool:
        """Whether publishing is currently suspended (replay in
        progress); nested :meth:`suspended` blocks stack."""
        return self._suspended > 0

    @property
    def durable(self) -> bool:
        """Whether this feed persists to a directory (False: in-memory
        retention only, lagging consumers can lose history)."""
        return self.directory is not None

    @property
    def next_seq(self) -> int:
        """One past the newest global sequence number.

        Lazily recovered from the durable tail on first use, so opening
        a feed only to read its offsets never parses a record body.
        """
        if self._next_seq is None:
            self._next_seq = self._scan_next_seq()
        return self._next_seq

    @next_seq.setter
    def next_seq(self, value: int) -> None:
        """Set the recovered sequence cursor (manifest reopen path)."""
        self._next_seq = value

    @property
    def has_history(self) -> bool:
        """Whether any records exist (retained or durable)."""
        if self._topics:
            return any(t.end > 0 for t in self._topics.values())
        return bool(self._next_seq)

    def publish_change(self, relation: str, tid: int, row: tuple, op: str) -> None:
        """Append one row mutation to the relation's topic.

        In-memory feeds drop the record when no consumer group exists
        (zero cost when unused); durable feeds always append.
        """
        if self.is_suspended:
            return
        if not self.durable and not self._groups:
            self.dropped += 1
            return
        topic = self._topic(relation)
        record = FeedRecord(
            seq=self.next_seq,
            topic=topic.name,
            offset=topic.end,
            kind=RECORD_CHANGE,
            tid=tid,
            row=tuple(row),
            op=op,
        )
        self._append(topic, record)

    def publish_schema(
        self, kind: str, table: str, schema: Optional[dict] = None
    ) -> None:
        """Append a DDL record and bump :attr:`schema_version`."""
        if self.is_suspended:
            return
        self.schema_version += 1
        if not self.durable and not self._groups:
            self.dropped += 1
            return
        topic = self._topic(SCHEMA_TOPIC)
        record = FeedRecord(
            seq=self.next_seq,
            topic=SCHEMA_TOPIC,
            offset=topic.end,
            kind=kind,
            table=table,
            schema=schema,
        )
        self._append(topic, record)

    def _append(self, topic: _Topic, record: FeedRecord) -> None:
        self.next_seq = record.seq + 1
        if self.durable:
            # The write prepares the tail (loads / repairs the resumed
            # segment) *before* the record joins it.
            self._write_durable(topic, record)
            topic.records.append(record)
            topic.end += 1
            self._published = True
            self._note_peak()
            if self._active_counts[topic.name] >= self.segment_records:
                self._rotate(topic)
            return
        topic.records.append(record)
        topic.end += 1
        retained = sum(len(t.records) for t in self._topics.values())
        self._note_peak()
        if retained > self.max_retained:
            # Overflow: drop everything; lagging groups observe ``lost``
            # and fall back to full re-detection.
            for t in self._topics.values():
                t.drop_retained()

    # ------------------------------------------------------------- consuming

    def consumer(
        self,
        group: Optional[str] = None,
        start: str = "end",
        topics: Optional[Iterable[str]] = None,
    ) -> "FeedConsumer":
        """Attach a consumer under ``group``.

        A new group starts at the feed's current ``end`` (or at offset 0
        everywhere with ``start="beginning"`` -- what a replica wants).
        An existing group resumes from its committed offsets, which for
        durable feeds survive process restarts.  New named groups on a
        durable feed are registered on disk immediately, so retention
        respects them before their first commit.

        ``topics`` subscribes the group to a subset of the topic names
        (lower-cased): polls, lag, loss and retention floors are then
        restricted to that subset.  A group's subscription should stay
        stable across re-attaches (it is persisted with the group's
        registration; the value passed here wins).
        """
        ephemeral = group is None
        if group is None:
            group = f"cursor-{self._next_anonymous}"
            self._next_anonymous += 1
        subscription = (
            None
            if topics is None
            else frozenset(topic.lower() for topic in topics)
        )
        self._subscriptions[group] = subscription
        if group not in self._groups:
            # Ephemeral groups never touch consumers/ on disk: their
            # position is meaningless to any other process, and a stale
            # file under a recycled cursor-<n> name must not be resumed.
            committed = None if ephemeral else self._load_committed(group)
            fresh = committed is None
            if committed is None:
                committed = (
                    {}
                    if start == "beginning"
                    else {
                        name: t.end
                        for name, t in self._topics.items()
                        if subscription is None or name in subscription
                    }
                )
            self._groups[group] = committed
            if ephemeral:
                self._ephemeral.add(group)
            elif self.durable and fresh:
                # Register before the group's first commit, serialized
                # with truncation's consumers/ scan (which runs under
                # the same lock): a concurrent truncation either sees
                # this group's floor or completes before it attaches --
                # never in between.
                with self._manifest_lock():
                    self._store_committed(group, committed)
        return FeedConsumer(self, group)

    def update_subscription(
        self,
        group: str,
        topics: Iterable[str],
        positions: Optional[dict[str, int]] = None,
    ) -> dict[str, int]:
        """Rewrite a named group's topic subscription in place.

        The group keeps its committed offsets for topics it retains;
        a newly subscribed topic starts at its ``positions`` entry
        (omitted = offset 0, a full replay); dropped topics leave the
        registration entirely, releasing their retention hold.  The
        rewrite is persisted under the manifest lock, so a concurrent
        truncation sees either the old floor set or the new one --
        never a torn mixture.  This is the shard-handoff primitive:
        transferring a topic is exactly a resubscription pair (the new
        owner pins the topic at the handoff cut, then the old owner
        releases it).  Returns the group's new committed offsets.

        Raises:
            FeedError: for an ephemeral (anonymous) group -- its
                registration is process-local and not transferable.
        """
        if group in self._ephemeral:
            raise FeedError(
                f"cannot resubscribe ephemeral group {group!r}"
            )
        subscription = frozenset(str(t).lower() for t in topics)
        committed = self._groups.get(group)
        if committed is None:
            committed = self._load_committed(group) or {}
        fresh = {
            str(name).lower(): int(offset)
            for name, offset in (positions or {}).items()
        }
        merged = {
            name: offset
            for name, offset in committed.items()
            if name in subscription
        }
        for name, offset in fresh.items():
            if name in subscription:
                merged.setdefault(name, offset)
        self._subscriptions[group] = subscription
        self._groups[group] = merged
        if self.durable:
            with self._manifest_lock():
                self._store_committed(group, merged)
        self._compact()
        return dict(merged)

    def close_group(self, group: str) -> None:
        """Drop a group's in-memory registration (durable commits stay)."""
        self._groups.pop(group, None)
        self._subscriptions.pop(group, None)
        self._ephemeral.discard(group)
        self._compact()

    def drop_group(self, group: str) -> None:
        """Deregister a group *everywhere*: in memory, its committed
        offsets on disk, and its snapshot.  Releases the group's
        retention hold -- the operator's tool for abandoned groups."""
        self._groups.pop(group, None)
        self._subscriptions.pop(group, None)
        self._ephemeral.discard(group)
        if self.durable:
            for path in (
                self._consumers_dir() / f"{group}.json",
                self._snapshots_dir() / f"{group}.json",
                self._snapshots_dir() / f"{group}.offsets.json",
            ):
                with contextlib.suppress(OSError):
                    path.unlink()
        self._compact()

    def groups(self) -> dict[str, dict[str, int]]:
        """Registered groups -> committed offsets per topic (a copy)."""
        return {group: dict(c) for group, c in self._groups.items()}

    def topics(self) -> list[TopicInfo]:
        """Per-topic statistics, creation order."""
        return [
            TopicInfo(
                name=t.name,
                start=t.base,
                end=t.end,
                segments=len(t.segments),
            )
            for t in self._topics.values()
        ]

    def end_offsets(self) -> dict[str, int]:
        """Topic -> one past the newest offset."""
        return {name: t.end for name, t in self._topics.items()}

    def iter_records(
        self,
        start: Optional[dict[str, int]] = None,
        upto: Optional[dict[str, int]] = None,
    ) -> Iterator[FeedRecord]:
        """Stream records with ``start <= offset < upto`` in seq order.

        This is the bounded-memory replay primitive: durable topics are
        read one segment at a time straight from disk (no tail loading,
        no LRU pollution) and the per-topic streams are merged by global
        ``seq``, so replaying an arbitrarily long history keeps at most
        one segment per topic resident.  ``start`` defaults to the
        beginning, ``upto`` to the current end offsets.

        Validation happens eagerly (before the first record is
        yielded), so a caller never applies half a prefix:

        Raises:
            FeedError: when part of the requested range is no longer
                retained (in-memory overflow, or durable truncation), or
                lies past the end of the history.
        """
        lows = dict(start or {})
        highs = dict(upto) if upto is not None else self.end_offsets()
        plans: list[tuple[_Topic, int, int]] = []
        for name, high in highs.items():
            low = lows.get(name, 0)
            if high <= 0 or high <= low:
                continue
            topic = self._topics.get(name)
            if topic is None or low < topic.base:
                raise FeedRetentionError(
                    f"topic {name!r}: committed prefix up to offset"
                    f" {high} is no longer retained"
                )
            if high > topic.end:
                # A commit that outlived its records (e.g. a crash that
                # tore away more history than the offsets acknowledge).
                raise FeedError(
                    f"topic {name!r}: committed offset {high} is past the"
                    f" end of the durable history ({topic.end})"
                )
            plans.append((topic, low, high))
        iterators = [
            self._iter_stream(topic, low, high) for topic, low, high in plans
        ]
        return heapq.merge(*iterators, key=_seq_of)

    def records_upto(self, committed: dict[str, int]) -> list[FeedRecord]:
        """All records strictly below ``committed``, seq order.

        This is the *committed prefix* a re-attaching replica rebuilds
        its state from -- materialized; prefer :meth:`iter_records` for
        long histories.

        Raises:
            FeedError: when part of the prefix is no longer retained
                (in-memory overflow, or durable retention truncation).
        """
        return list(self.iter_records(upto=committed))

    # ------------------------------------------------------------ resident

    def resident_records(self) -> int:
        """Feed records currently resident in this instance's memory:
        active tails + the sealed-segment LRU + in-flight stream chunks."""
        return (
            sum(len(t.records) for t in self._topics.values())
            + self._cache.records
            + self._streaming
        )

    def _note_peak(self, extra: int = 0) -> None:
        resident = self.resident_records() + extra
        if resident > self.peak_resident_records:
            self.peak_resident_records = resident

    # ------------------------------------------- group plumbing (consumers)

    def _topic(self, name: str) -> _Topic:
        topic = self._topics.get(name)
        if topic is None:
            topic = _Topic(name)
            self._topics[name] = topic
        return topic

    def _subscribed(self, group: str, topic: str) -> bool:
        subscription = self._subscriptions.get(group)
        return subscription is None or topic in subscription

    def _poll(
        self,
        positions: dict[str, int],
        limit: Optional[int],
        topics: Optional[frozenset[str]] = None,
    ) -> list[FeedRecord]:
        """Merge per-topic reads up to ``limit`` by global seq.

        A bounded k-way merge: each topic contributes a lazy iterator
        and the heap stops pulling once ``limit`` records came out, so a
        slow consumer polling in small batches does O(limit + topics)
        work per poll instead of materializing the whole backlog.
        ``topics`` restricts the merge to a subscription.
        """
        self.last_poll_materialized = 0
        iterators = []
        for name, topic in self._topics.items():
            if topics is not None and name not in topics:
                continue
            position = positions.get(name, 0)
            if position < topic.end:
                iterators.append(self._iter_topic(topic, position))
        merged = heapq.merge(*iterators, key=_seq_of)
        if limit is None:
            return list(merged)
        return list(itertools.islice(merged, limit))

    def _iter_topic(
        self, topic: _Topic, start: int, upto: Optional[int] = None
    ) -> Iterator[FeedRecord]:
        """Lazily yield ``[start, upto)`` of one topic (poll path).

        Sealed segments go through the LRU (repeated small polls inside
        the same segment parse it once); the tail is served resident.
        """
        end = topic.end if upto is None else min(upto, topic.end)
        position = max(start, topic.base)
        index: Optional[int] = None
        while self.durable and position < min(topic.tail_start, end):
            # The walk is strictly sequential: bisect once, then carry
            # the segment index forward (catch-up over S sealed
            # segments is O(S), not O(S^2) name re-parses).
            if index is None:
                index = self._segment_index(topic, position)
            else:
                index += 1
            records = self._segment_records(topic, index)
            first = _segment_start(topic.segments[index])
            for record in records[position - first :]:
                if record.offset >= end:
                    return
                self.last_poll_materialized += 1
                yield record
            position = first + len(records)
        if position >= end:
            return
        if self.durable:
            self._load_tail(topic)
            end = min(end, topic.end)  # a torn tail may shrink on parse
        for index in range(position - topic.tail_start, len(topic.records)):
            record = topic.records[index]
            if record.offset >= end:
                return
            self.last_poll_materialized += 1
            yield record

    def _iter_stream(
        self, topic: _Topic, start: int, upto: int
    ) -> Iterator[FeedRecord]:
        """Stream ``[start, upto)`` reading segment files directly.

        The bounded-memory replay path: no tail residency, no LRU
        pollution -- each segment's records are dropped as soon as the
        stream moves past them.
        """
        if not self.durable:
            yield from self._iter_topic(topic, start, upto)
            return
        position = max(start, topic.base)
        for index, name in enumerate(topic.segments):
            last = index == len(topic.segments) - 1
            first = _segment_start(name)
            seg_end = (
                topic.end
                if last
                else _segment_start(topic.segments[index + 1])
            )
            if seg_end <= position:
                continue
            if first >= upto:
                return
            if last and topic.tail_loaded:
                # The tail is already resident (writer, or a prior
                # poll): serve it from memory.
                for i in range(position - topic.tail_start, len(topic.records)):
                    record = topic.records[i]
                    if record.offset >= upto:
                        return
                    yield record
                return
            records = self._read_segment(
                topic, name, first, seg_end - first, sealed=not last
            )
            self._streaming += len(records)
            self._note_peak()
            try:
                for record in records[position - first :]:
                    if record.offset >= upto:
                        return
                    yield record
            finally:
                self._streaming -= len(records)
            position = seg_end

    def _segment_index(self, topic: _Topic, offset: int) -> int:
        starts = [_segment_start(name) for name in topic.segments]
        return max(bisect.bisect_right(starts, offset) - 1, 0)

    def _segment_records(self, topic: _Topic, index: int) -> list[FeedRecord]:
        """A sealed segment's parsed records, through the LRU."""
        name = topic.segments[index]
        key = (topic.name, name)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        first = _segment_start(name)
        expected = _segment_start(topic.segments[index + 1]) - first
        records = self._read_segment(topic, name, first, expected, sealed=True)
        self._cache.put(key, records)
        self._note_peak()
        return records

    def _read_segment(
        self, topic: _Topic, name: str, first: int, expected: int, sealed: bool
    ) -> list[FeedRecord]:
        path = self._segment_dir(topic.name) / name
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            if sealed:
                # Almost certainly a foreign process's retention
                # truncation (writers never re-scan the manifest, so
                # their base can be stale): fold the disk state in --
                # later _lost() checks then see the raised base -- and
                # signal retention loss, which consumers map to the
                # rebuild-from-scratch fallback.  Lock-free by design:
                # this path only *reads* the foreign manifest and raises
                # our in-memory base; it never writes MANIFEST.
                # hippolint: disable-next-line=HL001,HL014 -- read-only fold
                self._merge_disk_retention()
                raise FeedRetentionError(
                    f"topic {topic.name!r}: sealed segment {name} is"
                    " missing -- its offsets are no longer retained"
                ) from None
            return []  # rotation crashed before the first append
        records, _good = self._parse_lines(data, repair=not sealed, where=path)
        if sealed:
            if len(records) != expected or any(
                record.offset != first + i for i, record in enumerate(records)
            ):
                raise FeedError(
                    f"corrupt sealed segment {path}: expected {expected}"
                    f" records from offset {first}"
                )
        return records

    def _lost(
        self,
        positions: dict[str, int],
        topics: Optional[frozenset[str]] = None,
    ) -> bool:
        return any(
            positions.get(name, 0) < topic.base
            for name, topic in self._topics.items()
            if topics is None or name in topics
        )

    def _lag(
        self,
        positions: dict[str, int],
        topics: Optional[frozenset[str]] = None,
    ) -> int:
        return sum(
            max(topic.end - positions.get(name, 0), 0)
            for name, topic in self._topics.items()
            if topics is None or name in topics
        )

    def _commit(self, group: str, committed: dict[str, int]) -> None:
        self._groups[group] = dict(committed)
        if self.durable and group not in self._ephemeral:
            # The acknowledged records must hit disk before the offsets
            # that acknowledge them: a commit that survives a crash its
            # records did not would strand the group past data that
            # replays at lower offsets.
            self.flush()
            self._store_committed(group, committed)
        self._compact()

    def _compact(self) -> None:
        """In-memory: drop records every group consumed.  Durable with
        ``retention="truncate"``: delete fully-consumed sealed segments;
        with ``retention="compact"``: additionally rewrite the oldest
        partially-consumed sealed segment down to its surviving suffix."""
        if self.durable:
            if self.retention in ("truncate", "compact"):
                self._maybe_reclaim(rewrite=self.retention == "compact")
            return
        for name, topic in self._topics.items():
            if not self._groups:
                topic.drop_retained()
                continue
            lows = [
                committed.get(name, 0)
                for group, committed in self._groups.items()
                if self._subscribed(group, name)
            ]
            if not lows:
                # No *subscribed* listener right now -- but groups
                # exist, and a subscribe-all consumer may still attach:
                # retain, exactly like the durable floor pins an
                # unsubscribed topic at 0 (the overflow cap is the
                # backstop, and it marks lagging groups as lost).
                continue
            low = min(lows)
            if low > topic.tail_start:
                del topic.records[: low - topic.tail_start]
                topic.tail_start = topic.base = low

    # ----------------------------------------------------------- retention

    def _maybe_reclaim(self, rewrite: bool) -> None:
        """Run :meth:`truncate` / :meth:`compact` only when this
        instance's own groups already allow reclaiming something (the
        full scan reads every consumer/snapshot file; don't pay it on
        every commit)."""
        min_reclaim = self._auto_min_reclaim() if rewrite else 0
        if self._groups:
            local = [
                (committed, self._subscriptions.get(group))
                for group, committed in self._groups.items()
            ]
            for name, topic in self._topics.items():
                if len(topic.segments) < 2:
                    continue
                floor = _floor_of(name, local)
                if _segment_start(topic.segments[1]) <= floor:
                    break
                if (
                    rewrite
                    and floor - _segment_start(topic.segments[0])
                    >= min_reclaim
                ):
                    break
            else:
                return
        if rewrite:
            self.compact(min_reclaim=min_reclaim)
        else:
            self.truncate()

    def _auto_min_reclaim(self) -> int:
        """Records the automatic (post-commit) compaction must be able
        to reclaim from the straddling segment before it rewrites it --
        hysteresis so a group inching through a segment does not trigger
        an O(segment) rewrite on every commit."""
        return max(self.segment_records // 2, 1)

    def truncate(self) -> dict[str, int]:
        """Delete sealed segments every registered group has passed.

        A group's retention floor is its *recovery point*: the committed
        offsets of its latest snapshot when it has one (it can rebuild
        from there and replay forward), its committed offsets otherwise.
        Registered groups on disk (other processes included), their
        snapshots, and this instance's in-memory groups (ephemeral
        cursors included) all hold segments; with no groups at all
        nothing is deleted.  The newest segment of a topic is never
        deleted.  The manifest (with the new per-topic ``base``) is
        committed *before* any file is unlinked -- a crash in between
        leaves orphan files, swept by the next open.

        Returns the new ``base`` per truncated topic (empty when nothing
        was deleted).
        """
        return self._reclaim(rewrite=False, min_reclaim=0)

    def compact(self, min_reclaim: int = 0) -> dict[str, int]:
        """Truncate, then rewrite the oldest straddling sealed segment.

        Everything :meth:`truncate` deletes is deleted; on top of that,
        when the retention floor falls *inside* a sealed segment (a
        group mid-way through it), that segment's surviving records
        ``[floor, end)`` are rewritten into a fresh segment named by
        ``floor`` -- reclaiming the consumed prefix a whole-segment
        policy would keep pinned.  Offsets and seqs of the surviving
        records are unchanged; only the file boundary moves.

        Crash-safe write order: the rewritten segment is written and
        fsync'd under the manifest lock *before* the manifest commits,
        and the old file is unlinked only after; a crash leaves either
        the old view (plus a swept-on-next-open orphan rewrite) or the
        new view (plus a swept orphan victim).

        Args:
            min_reclaim: rewrite only when at least this many records of
                the straddling segment can be reclaimed (0 = any).

        Returns the new ``base`` per reclaimed topic.
        """
        return self._reclaim(rewrite=True, min_reclaim=min_reclaim)

    def _reclaim(self, rewrite: bool, min_reclaim: int) -> dict[str, int]:
        if not self.durable:
            return {}
        with self._manifest_lock():
            # Work from the live layout under the lock: a concurrent
            # rotation can no longer slip between our manifest read and
            # our store.
            self.refresh()
            contributions = self._floor_contributions()
            if not contributions:
                return {}
            # Phase 1 -- plan.  Pure reads: a corrupt sealed segment (or
            # a foreign reclaim racing us) surfaces here, before any
            # topic's in-memory state was touched.
            plans: list[
                tuple[_Topic, int, int, list[int], Optional[list[FeedRecord]]]
            ] = []
            for name, topic in self._topics.items():
                if len(topic.segments) < 2:
                    continue
                floor = _floor_of(name, contributions)
                starts = [_segment_start(s) for s in topic.segments]
                keep = 0
                while (
                    keep + 1 < len(topic.segments)
                    and starts[keep + 1] <= floor
                ):
                    keep += 1
                survivors: Optional[list[FeedRecord]] = None
                if (
                    rewrite
                    and keep + 1 < len(topic.segments)
                    and starts[keep] < floor < starts[keep + 1]
                    and floor - starts[keep] >= max(min_reclaim, 1)
                ):
                    try:
                        records = self._segment_records(topic, keep)
                    except FeedRetentionError:
                        records = None  # a foreign reclaim beat us here
                    if records is not None:
                        survivors = records[floor - starts[keep] :]
                if keep or survivors is not None:
                    plans.append((topic, keep, floor, starts, survivors))
            if not plans:
                return {}
            # Phase 2 -- apply: write the rewritten segments, repoint
            # the topics, commit the manifest.  Any failure before the
            # commit rolls the in-memory state back, so this instance
            # never serves a layout the on-disk manifest does not name
            # (the written files are then orphans the next open sweeps).
            saved = [
                (topic, list(topic.segments), topic.base)
                for topic, *_ in plans
            ]
            reclaimed: dict[str, int] = {}
            removed: list[tuple[str, str]] = []
            added: list[tuple[str, str]] = []
            try:
                for topic, keep, floor, starts, survivors in plans:
                    if keep:
                        removed.extend(
                            (topic.name, victim)
                            for victim in topic.segments[:keep]
                        )
                        topic.segments = topic.segments[keep:]
                        topic.base = starts[keep]
                        reclaimed[topic.name] = topic.base
                    if survivors is not None:
                        removed.append((topic.name, topic.segments[0]))
                        name = self._segment_name(floor)
                        self._write_sealed(topic, name, survivors)
                        added.append((topic.name, name))
                        topic.segments[0] = name
                        topic.base = floor
                        reclaimed[topic.name] = floor
                self._store_manifest()
            except BaseException:
                for topic, segments, base in saved:
                    topic.segments = segments
                    topic.base = base
                for key in added:
                    self._cache.discard(key)
                raise
        for name, victim in removed:
            self._cache.discard((name, victim))
            with contextlib.suppress(OSError):
                (self._segment_dir(name) / victim).unlink()
        return reclaimed

    def _write_sealed(
        self, topic: _Topic, name: str, records: list[FeedRecord]
    ) -> None:
        """Write a complete sealed segment file (fsync'd) and cache it."""
        path = self._segment_dir(topic.name) / name
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(record.to_json() + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._cache.put((topic.name, name), records)

    def _floor_contributions(
        self,
    ) -> list[tuple[dict[str, int], Optional[frozenset[str]]]]:
        """One (floor offsets, subscription) pair per consumer retention
        respects.  A group's floor only pins the topics it subscribes
        to (``None`` = all topics)."""
        return [
            (recovery.floor, recovery.topics)
            for recovery in self._registered_floors().values()
        ]

    def _registered_floors(self) -> dict[str, "GroupRecovery"]:
        """Every registered group's recovery state, on-disk groups of
        other processes included (durable feeds)."""
        by_group: dict[str, GroupRecovery] = {}
        if self.durable:
            directory = self._consumers_dir()
            if directory.exists():
                for path in sorted(directory.glob("*.json")):
                    offsets, topics = self._parse_offsets_file(path)
                    by_group[path.stem] = GroupRecovery(
                        group=path.stem, committed=offsets, topics=topics
                    )
            snapshots = self._snapshots_dir()
            if snapshots.exists():
                for path in sorted(snapshots.glob("*.offsets.json")):
                    group = path.name[: -len(".offsets.json")]
                    offsets, topics = self._parse_offsets_file(path)
                    entry = by_group.get(group)
                    if entry is None:
                        entry = GroupRecovery(
                            group=group, committed={}, topics=topics
                        )
                        by_group[group] = entry
                    elif topics is not None and entry.topics is None:
                        # The registration is the live subscription
                        # truth (a resubscribe rewrites it immediately;
                        # the sidecar only updates at checkpoint time).
                        # A topic subscribed but not yet covered by the
                        # snapshot pins at 0 -- conservative until the
                        # group's next checkpoint.
                        entry.topics = topics
                    # The snapshot is the group's recovery point: it
                    # overrides the (>=) committed offsets.
                    entry.snapshot = offsets
        for group, committed in self._groups.items():
            by_group.setdefault(
                group,
                GroupRecovery(
                    group=group,
                    committed=dict(committed),
                    topics=self._subscriptions.get(group),
                ),
            )
        return by_group

    @staticmethod
    def _parse_offsets_file(
        path: Path,
    ) -> tuple[dict[str, int], Optional[frozenset[str]]]:
        """One parse for a registration / sidecar file: its committed
        offsets plus its ``topics`` subscription (None = all)."""
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            offsets = {str(k): int(v) for k, v in data["committed"].items()}
        except (ValueError, KeyError) as exc:
            raise FeedError(f"corrupt consumer state {path}") from exc
        topics = data.get("topics")
        if topics is None:
            return offsets, None
        return offsets, frozenset(str(t) for t in topics)

    def recovery_points(self) -> dict[str, "GroupRecovery"]:
        """Every registered group's recovery point -- its snapshot
        offsets when it stored a snapshot, else its committed offsets
        -- plus its topic subscription.  This is exactly the state the
        retention floor scan reads, surfaced for operators (the CLI's
        ``.feed`` view): a topic is pinned at the minimum floor over
        the groups subscribed to it."""
        return self._registered_floors()

    # ------------------------------------------------------------ tailing

    def refresh(self) -> bool:
        """Re-scan the manifest and active segments for new records.

        Live tailing: a durable *reader* instance (this process never
        appended) picks up appends, rotations, new topics, and
        truncations another process performed since the last scan.
        Writers and in-memory feeds are authoritative in memory, so the
        call is a no-op there.  Returns whether anything changed.
        """
        if not self.durable or self._published or self._writers:
            return False
        path = self.directory / MANIFEST
        try:
            stat = path.stat()
        except FileNotFoundError:
            return False
        signature = (stat.st_mtime_ns, stat.st_size)
        if signature == self._manifest_stat:
            # Nothing rotated or truncated since the last scan: skip the
            # JSON parse and only look for appends to the known tails.
            changed = False
            for topic in self._topics.values():
                if self._extend_tail(topic):
                    changed = True
            if changed:
                self._next_seq = None
                schema_topic = self._topics.get(SCHEMA_TOPIC)
                if schema_topic is not None:
                    self.schema_version = max(
                        self.schema_version, schema_topic.end
                    )
            return changed
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
            topics = manifest["topics"]
        except FileNotFoundError:
            return False
        except (ValueError, KeyError) as exc:
            raise FeedError(f"corrupt manifest {path}") from exc
        self._manifest_stat = signature
        changed = False
        for name, entry in topics.items():
            topic = self._topic(name)
            base = int(entry.get("base", 0))
            segments = [str(s) for s in entry.get("segments", [])]
            if base > topic.base:
                topic.base = base
                changed = True
            if segments != topic.segments:
                same_tail = bool(
                    topic.segments
                    and segments
                    and segments[-1] == topic.segments[-1]
                )
                topic.segments = segments
                if same_tail:  # truncation only: the tail still applies
                    self._extend_tail(topic)
                else:  # rotation / first sight: re-point at the new tail
                    self._init_topic_from_disk(topic)
                changed = True
            elif self._extend_tail(topic):
                changed = True
        if changed:
            self._next_seq = None  # recover from the new tail on demand
            schema_topic = self._topics.get(SCHEMA_TOPIC)
            if schema_topic is not None:
                self.schema_version = max(
                    self.schema_version, schema_topic.end
                )
        return changed

    def _extend_tail(self, topic: _Topic) -> bool:
        """Pick up bytes appended to the newest segment since last scan."""
        if not topic.segments:
            return False
        path = self._segment_dir(topic.name) / topic.segments[-1]
        try:
            size = path.stat().st_size
        except FileNotFoundError:
            return False
        if size < topic.tail_bytes:
            # The file shrank under us (a writer repaired a torn tail
            # differently than we scanned it): start over from disk.
            self._init_topic_from_disk(topic)
            return True
        if size == topic.tail_bytes:
            return False
        with open(path, "rb") as handle:
            handle.seek(topic.tail_bytes)
            data = handle.read()
        if topic.tail_loaded:
            records, good = self._parse_lines(data, repair=True, where=path)
            topic.records.extend(records)
            topic.end = topic.tail_start + len(topic.records)
            topic.tail_bytes += good
            self._note_peak()
            return bool(records)
        count, good = _count_lines(data)
        topic.end += count
        topic.tail_bytes += good
        return count > 0

    # ------------------------------------------------------------ durability

    @contextlib.contextmanager
    def _manifest_lock(self) -> Iterator[None]:
        """Advisory exclusive lock over manifest read-modify-write.

        Truncation (in a consumer process) and rotation (in the writer)
        both read the manifest, fold the other side's changes in, and
        write it back; without mutual exclusion one could overwrite the
        other's update in the read-to-write window -- e.g. a rotating
        writer resurrecting just-deleted segment names.  ``flock`` is
        advisory, per-host and reentrant here via a depth counter; on
        platforms without ``fcntl`` the lock degrades to a no-op (the
        single-process case needs none).
        """
        assert self.directory is not None
        if self._manifest_lock_depth:
            self._manifest_lock_depth += 1
            try:
                yield
            finally:
                self._manifest_lock_depth -= 1
            return
        try:
            import fcntl
        except ImportError:  # non-POSIX: single-process feeds only
            yield
            return
        with open(self.directory / "manifest.lock", "a") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            self._manifest_lock_depth = 1
            try:
                yield
            finally:
                self._manifest_lock_depth = 0
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def _segment_dir(self, topic: str) -> Path:
        assert self.directory is not None
        return self.directory / "topics" / topic

    def _consumers_dir(self) -> Path:
        assert self.directory is not None
        return self.directory / "consumers"

    def _snapshots_dir(self) -> Path:
        assert self.directory is not None
        return self.directory / "snapshots"

    @staticmethod
    def _segment_name(start_offset: int) -> str:
        return f"{start_offset:012d}.jsonl"

    def _write_durable(self, topic: _Topic, record: FeedRecord) -> None:
        writer = self._writers.get(topic.name)
        if writer is None:
            writer = self._open_segment(topic, record.offset)
        line = record.to_json() + "\n"
        writer.write(line)
        if self.fsync == "always":
            writer.flush()
            os.fsync(writer.fileno())
        # Under the "rotate" policy appends stay in the userspace buffer
        # until rotation / flush() / close(): a crash can cost the tail
        # of the active segment, never a sealed one -- and the next
        # writer truncates any torn line it left behind.
        topic.tail_bytes += len(line.encode("utf-8"))
        self._active_counts[topic.name] += 1

    def _open_segment(self, topic: _Topic, next_offset: int) -> io.TextIOWrapper:
        directory = self._segment_dir(topic.name)
        directory.mkdir(parents=True, exist_ok=True)
        name = self._segment_name(next_offset)
        held = 0
        if topic.segments:
            # Becoming the writer of this topic: first drop any torn
            # bytes a crashed writer left on the newest segment.
            self._repair_tail(topic)
            last = topic.segments[-1]
            held = next_offset - _segment_start(last)
            if 0 <= held < self.segment_records:
                # Resume the newest segment while it still has room; the
                # resident tail must hold it in full before we append.
                name = last
                self._load_tail(topic)
            else:
                # The previous newest segment is sealed by this cut;
                # keep its parsed records around for in-process readers.
                if topic.tail_loaded and topic.records:
                    self._cache.put((topic.name, last), topic.records)
                topic.records = []
                topic.tail_loaded = True
                topic.tail_start = next_offset
                topic.tail_bytes = 0
                held = 0
        writer = open(directory / name, "a", encoding="utf-8")
        self._writers[topic.name] = writer
        self._active_counts[topic.name] = held
        if not topic.segments or topic.segments[-1] != name:
            topic.segments.append(name)
            self._store_manifest()
        return writer

    def _repair_tail(self, topic: _Topic) -> None:
        """Truncate torn bytes off the newest segment (writer open)."""
        if not topic.segments:
            return
        path = self._segment_dir(topic.name) / topic.segments[-1]
        try:
            size = path.stat().st_size
        except FileNotFoundError:
            return  # rotation crashed before the first append created it
        if size > topic.tail_bytes:
            with open(path, "r+b") as handle:
                handle.truncate(topic.tail_bytes)

    def _rotate(self, topic: _Topic) -> None:
        """Seal the active segment: fsync it, then cut a new one."""
        writer = self._writers.pop(topic.name)
        try:
            writer.flush()
            os.fsync(writer.fileno())
        finally:
            # A failed flush/fsync must not strand the popped handle:
            # nothing references it once it leaves self._writers.
            writer.close()
            self._active_counts.pop(topic.name, None)
        # The next append opens the successor segment (named by the
        # first offset it will hold) and records it in the manifest; the
        # resident tail keeps serving readers until then.

    def _store_manifest(self) -> None:
        assert self.directory is not None
        with self._manifest_lock():
            self._merge_disk_retention()
            payload = {
                "version": 2,
                "segment_records": self.segment_records,
                "topics": {
                    name: {
                        "base": topic.base,
                        "segments": list(topic.segments),
                    }
                    for name, topic in self._topics.items()
                },
            }
            self._atomic_json(self.directory / MANIFEST, payload)

    def _merge_disk_retention(self) -> None:
        """Fold another instance's retention reclaim into our view.

        Truncation / compaction may run in a *consumer* process; a
        writer that rotates afterwards must not resurrect the deleted
        segments when it stores its own (stale) manifest.  The on-disk
        ``base`` only ever grows, so taking the max and pruning segments
        below it is always safe.  A foreign *compaction* additionally
        rewrites the straddling segment under a new start-offset name
        our stale list does not know: the disk names preceding our kept
        suffix are adopted, so the surviving records stay reachable."""
        path = self.directory / MANIFEST
        try:
            topics = json.loads(path.read_text(encoding="utf-8"))["topics"]
        except (OSError, ValueError, KeyError):
            return
        for name, entry in topics.items():
            topic = self._topics.get(name)
            if topic is None:
                continue
            base = int(entry.get("base", 0))
            if base > topic.base:
                topic.base = base
                kept = [
                    s for s in topic.segments if _segment_start(s) >= base
                ]
                cut = _segment_start(kept[0]) if kept else None
                adopted = [
                    str(s)
                    for s in entry.get("segments", [])
                    if _segment_start(str(s)) >= base
                    and (cut is None or _segment_start(str(s)) < cut)
                ]
                topic.segments = adopted + kept

    def _store_committed(self, group: str, committed: dict[str, int]) -> None:
        directory = self._consumers_dir()
        directory.mkdir(parents=True, exist_ok=True)
        payload: dict[str, object] = {
            "group": group,
            "committed": dict(committed),
        }
        subscription = self._subscriptions.get(group)
        if subscription is not None:
            # Persist the subscription so a *foreign* process's
            # retention scan knows this group only pins these topics.
            payload["topics"] = sorted(subscription)
        self._atomic_json(directory / f"{group}.json", payload)

    def _load_committed(self, group: str) -> Optional[dict[str, int]]:
        if not self.durable:
            return None
        path = self._consumers_dir() / f"{group}.json"
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            return {str(k): int(v) for k, v in payload["committed"].items()}
        except (ValueError, KeyError) as exc:
            raise FeedError(f"corrupt consumer state {path}") from exc

    def store_snapshot(
        self,
        group: str,
        committed: dict[str, int],
        payload: dict,
        topics: Optional[Iterable[str]] = None,
    ) -> None:
        """Persist a group's recovery snapshot: an opaque payload bound
        to the committed offsets it captures.  Retention never deletes
        past a group's snapshot, so the group can always restore the
        payload and replay forward from those offsets.  ``topics``
        overrides the subscription recorded in the sidecar (which
        otherwise comes from the group's live registration) -- what a
        pseudo-group with no live consumer, like a transfer packet,
        needs so its floor pins only the topics it actually covers."""
        if not self.durable:
            raise FeedError("snapshots need a durable feed")
        directory = self._snapshots_dir()
        directory.mkdir(parents=True, exist_ok=True)
        subscription = (
            frozenset(str(t).lower() for t in topics)
            if topics is not None
            else self._subscriptions.get(group)
        )
        extra: dict[str, object] = (
            {} if subscription is None else {"topics": sorted(subscription)}
        )
        self._atomic_json(
            directory / f"{group}.json",
            {
                "group": group,
                "committed": dict(committed),
                "payload": payload,
                **extra,
            },
        )
        # A small offsets sidecar, written *after* the payload it
        # describes (a crash in between leaves the older -- lower, so
        # safe -- floor on disk): truncation's floor scan reads this
        # instead of json-parsing every group's full snapshot payload.
        self._atomic_json(
            directory / f"{group}.offsets.json",
            {"group": group, "committed": dict(committed), **extra},
        )

    def load_snapshot(
        self, group: str
    ) -> Optional[tuple[dict[str, int], dict]]:
        """The group's snapshot as ``(committed offsets, payload)``, or
        None when it never stored one.

        Raises:
            FeedError: when the snapshot file is corrupt.
        """
        if not self.durable:
            return None
        path = self._snapshots_dir() / f"{group}.json"
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            committed = {
                str(k): int(v) for k, v in data["committed"].items()
            }
            return committed, data["payload"]
        except (ValueError, KeyError) as exc:
            raise FeedError(f"corrupt snapshot {path}") from exc

    # ---------------------------------------------------- transfer packets

    def store_transfer(self, topic: str, cut: int, payload: dict) -> None:
        """Persist a shard-handoff transfer packet for ``topic``.

        The packet carries the releasing worker's slice of the database
        for the topic at its committed ``cut``; the adopting worker
        restores it and replays only the retained suffix past the cut
        (no full re-bootstrap).  On durable feeds it is stored as the
        snapshot of the reserved pseudo-group ``__transfer__.<topic>``
        with a sidecar subscribed to the topic alone, so the ordinary
        retention floor scan keeps the suffix readable for as long as
        the packet exists; in-memory feeds keep it in the instance.
        """
        name = str(topic).lower()
        if not self.durable:
            self._transfers[name] = (int(cut), dict(payload))
            return
        self.store_snapshot(
            f"{TRANSFER_PREFIX}{name}",
            {name: int(cut)},
            payload,
            topics=(name,),
        )

    def load_transfer(self, topic: str) -> Optional[tuple[int, dict]]:
        """The pending transfer packet for ``topic`` as ``(cut,
        payload)``, or None when no handoff is in flight."""
        name = str(topic).lower()
        if not self.durable:
            entry = self._transfers.get(name)
            return None if entry is None else (entry[0], dict(entry[1]))
        snapshot = self.load_snapshot(f"{TRANSFER_PREFIX}{name}")
        if snapshot is None:
            return None
        committed, payload = snapshot
        return committed.get(name, 0), payload

    def clear_transfer(self, topic: str) -> None:
        """Delete ``topic``'s transfer packet (after the adopting worker
        checkpointed past the handoff cut), releasing its retention
        pin.  A no-op when no packet exists."""
        name = str(topic).lower()
        self._transfers.pop(name, None)
        if self.durable:
            group = f"{TRANSFER_PREFIX}{name}"
            for path in (
                self._snapshots_dir() / f"{group}.json",
                self._snapshots_dir() / f"{group}.offsets.json",
            ):
                with contextlib.suppress(OSError):
                    path.unlink()
        self._compact()

    def transfers(self) -> dict[str, int]:
        """Pending transfer packets: topic -> handoff cut (on-disk
        packets of other processes included)."""
        pending = {name: cut for name, (cut, _) in self._transfers.items()}
        if self.durable:
            for group, recovery in self._registered_floors().items():
                if group.startswith(TRANSFER_PREFIX):
                    name = group[len(TRANSFER_PREFIX):]
                    pending[name] = recovery.floor.get(name, 0)
        return pending

    @staticmethod
    def _atomic_json(path: Path, payload: dict) -> None:
        temp = path.with_suffix(path.suffix + ".tmp")
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"), allow_nan=False)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)

    def _open_durable(self) -> None:
        """Open (or create) the feed directory -- lazily.

        Nothing is parsed here: the manifest names each topic's segments
        and truncation base, the newest segment of each topic is
        line-counted to learn the end offset (and the repair point for a
        future writer), and everything else -- record bodies, the global
        sequence -- is recovered on demand.
        """
        assert self.directory is not None
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest_path = self.directory / MANIFEST
        if not manifest_path.exists():
            self._store_manifest()
            return
        # The manifest read and the orphan sweep share the manifest
        # lock: a foreign compaction commits its rewritten segment and
        # the manifest naming it atomically with respect to us, so the
        # sweep can never mistake a live rewrite for a crashed one.
        with self._manifest_lock():
            try:
                manifest = json.loads(
                    manifest_path.read_text(encoding="utf-8")
                )
                topics = manifest["topics"]
            except (ValueError, KeyError) as exc:
                raise FeedError(f"corrupt manifest {manifest_path}") from exc
            for name, entry in topics.items():
                topic = self._topic(name)
                topic.base = int(entry.get("base", 0))
                topic.segments = [str(s) for s in entry.get("segments", [])]
                self._sweep_orphans(topic)
                self._init_topic_from_disk(topic)
        schema_topic = self._topics.get(SCHEMA_TOPIC)
        self.schema_version = schema_topic.end if schema_topic else 0
        if self._topics:
            self._next_seq = None  # recovered lazily from the tails

    def _init_topic_from_disk(self, topic: _Topic) -> None:
        """Point the topic at its newest segment without parsing bodies."""
        if not topic.segments:
            topic.tail_start = topic.end = topic.base
            topic.records = []
            topic.tail_loaded = True
            topic.tail_bytes = 0
            return
        first = _segment_start(topic.segments[-1])
        path = self._segment_dir(topic.name) / topic.segments[-1]
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            data = b""  # rotation crashed before the first append
        count, good = _count_lines(data)
        topic.tail_start = first
        topic.end = first + count
        topic.tail_bytes = good
        topic.records = []
        topic.tail_loaded = False

    def _sweep_orphans(self, topic: _Topic) -> None:
        """Delete segment files a crashed retention reclaim left behind.

        Truncation commits the manifest first and unlinks after, so a
        crash between the two leaves victim files no manifest entry
        names (their offsets are below ``base``).  Compaction writes its
        rewritten segment *before* the manifest commit, so a crash in
        between leaves a temporary whose start offset falls inside a
        still-named segment's range.  Either way: any file the manifest
        does not name whose start lies below the newest named segment's
        start is dead weight.  Files at or past that start are left
        alone -- they are a resuming writer's successor segment, created
        just before its manifest store."""
        directory = self._segment_dir(topic.name)
        if not directory.exists():
            return
        named = set(topic.segments)
        cut = (
            _segment_start(topic.segments[-1])
            if topic.segments
            else topic.base
        )
        for path in directory.glob("*.jsonl"):
            if path.name in named:
                continue
            if _segment_start(path.name) < cut:
                with contextlib.suppress(OSError):
                    path.unlink()

    def _load_tail(self, topic: _Topic) -> None:
        """Parse the newest segment into the resident tail (idempotent)."""
        if topic.tail_loaded:
            return
        path = self._segment_dir(topic.name) / topic.segments[-1]
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            data = b""
        records, good = self._parse_lines(data, repair=True, where=path)
        topic.records = records
        topic.tail_loaded = True
        topic.tail_bytes = good
        topic.end = topic.tail_start + len(records)
        self._note_peak()

    def _parse_lines(
        self, data: bytes, repair: bool, where: Path
    ) -> tuple[list[FeedRecord], int]:
        """Parse JSONL bytes; on a torn tail, stop (``repair``) or raise."""
        records: list[FeedRecord] = []
        good_bytes = 0
        for line in data.splitlines(keepends=True):
            if not line.endswith(b"\n"):
                break  # torn tail: the crash cut this append short
            try:
                records.append(FeedRecord.from_json(line.decode("utf-8")))
            except FeedError:
                break  # garbage tail (e.g. partial line + later append)
            good_bytes += len(line)
        if good_bytes < len(data) and not repair:
            raise FeedError(f"corrupt record inside sealed segment {where}")
        return records, good_bytes

    def _scan_next_seq(self) -> int:
        """Recover the global sequence from the newest durable records."""
        best = 0
        for topic in self._topics.values():
            record = self._last_record(topic)
            if record is not None:
                best = max(best, record.seq + 1)
        return best

    def _last_record(self, topic: _Topic) -> Optional[FeedRecord]:
        if self.durable:
            self._load_tail(topic)
        if topic.records:
            return topic.records[-1]
        for index in range(len(topic.segments) - 2, -1, -1):
            records = self._segment_records(topic, index)
            if records:
                return records[-1]
        return None

    def flush(self) -> None:
        """Flush + fsync every active segment writer."""
        for writer in self._writers.values():
            writer.flush()
            os.fsync(writer.fileno())

    def close(self) -> None:
        """Flush and close the durable writers (idempotent)."""
        for name in list(self._writers):
            writer = self._writers.pop(name)
            try:
                writer.flush()
                os.fsync(writer.fileno())
            finally:
                writer.close()
        self._active_counts.clear()
        self._cache.clear()

    def __enter__(self) -> "ChangeFeed":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _count_lines(data: bytes) -> tuple[int, int]:
    """Complete (newline-terminated) lines in ``data`` and their bytes.

    A crash truncates an append stream at a point, so only the final
    line can be partial -- counting complete lines is enough to know how
    many records are durable without parsing a single body.
    """
    count = 0
    good_bytes = 0
    for line in data.splitlines(keepends=True):
        if not line.endswith(b"\n"):
            break
        count += 1
        good_bytes += len(line)
    return count, good_bytes


class FeedConsumer:
    """One consumer group member: poll / commit with explicit offsets.

    ``poll()`` advances an *uncommitted* read position; ``commit()``
    publishes it as the group's committed offsets (durably, when the
    feed is).  A consumer that crashes between the two is re-delivered
    the uncommitted records on re-attach -- apply-then-commit therefore
    gives exactly-once effects for idempotent appliers.  On a reader
    instance of a durable feed, every poll / lag / pending / lost check
    first re-scans the directory (live tailing).
    """

    def __init__(self, feed: ChangeFeed, group: str) -> None:
        self.feed = feed
        self.group = group
        #: the group's topic subscription (None = all topics).
        self.topics = feed._subscriptions.get(group)
        self._positions = dict(feed._groups[group])
        if self.topics is not None:
            self._positions = {
                name: offset
                for name, offset in self._positions.items()
                if name in self.topics
            }
        self._closed = False

    @property
    def committed(self) -> dict[str, int]:
        """The group's committed offset per topic (a copy)."""
        return dict(self.feed._groups.get(self.group, {}))

    @property
    def closed(self) -> bool:
        """Whether this consumer was closed or abandoned (its group may
        still be registered -- see :meth:`abandon`)."""
        return self._closed

    @property
    def lag(self) -> int:
        """Records past the *committed* position (includes unpolled;
        subscribed topics only)."""
        if self._closed:
            return 0
        self.feed.refresh()
        return self.feed._lag(self.feed._groups[self.group], self.topics)

    @property
    def pending(self) -> int:
        """Records past the current *read* position."""
        if self._closed:
            return 0
        self.feed.refresh()
        return self.feed._lag(self._positions, self.topics)

    @property
    def lost(self) -> bool:
        """Whether retention dropped records this consumer never read."""
        if self._closed:
            return False
        self.feed.refresh()
        return self.feed._lost(self._positions, self.topics)

    def resubscribe(
        self,
        topics: Iterable[str],
        positions: Optional[dict[str, int]] = None,
    ) -> dict[str, int]:
        """Rewrite this group's topic subscription in place (see
        :meth:`ChangeFeed.update_subscription`): kept topics keep their
        committed offsets, new topics start at their ``positions``
        entry (the handoff cut), dropped topics release their retention
        hold.  The read position resets to the new committed offsets,
        so call at a sync boundary (read position == committed).
        Returns the new committed offsets.

        Raises:
            FeedError: on a closed consumer or an ephemeral group.
        """
        if self._closed:
            raise FeedError(
                f"consumer group {self.group!r} is closed"
            )
        merged = self.feed.update_subscription(self.group, topics, positions)
        self.topics = self.feed._subscriptions.get(self.group)
        self._positions = dict(merged)
        return merged

    def seek(self, positions: dict[str, int]) -> None:
        """Set the read position per topic (uncommitted until
        :meth:`commit`).  Used by consumers that seeded their state out
        of band -- e.g. a fresh replica bootstrapping from the writer's
        checkpoint because the feed's prefix was already reclaimed.
        Positions outside the subscription are dropped."""
        self._positions = {
            name: offset
            for name, offset in positions.items()
            if self.topics is None or name in self.topics
        }

    def poll(
        self, limit: Optional[int] = None
    ) -> tuple[list[FeedRecord], bool]:
        """Read records past the current position; returns ``(records, lost)``.

        On ``lost`` the list is empty and the position jumps to the feed
        end (the history cannot be recovered; the consumer must rebuild
        derived state from scratch).
        """
        if self._closed:
            return [], False
        self.feed.refresh()
        if self.feed._lost(self._positions, self.topics):
            self._positions = self._subscribed_ends()
            return [], True
        try:
            records = self.feed._poll(self._positions, limit, self.topics)
        except FeedRetentionError:
            # A foreign truncation deleted segments between our _lost
            # check and the read (writers never re-scan, so their base
            # can be stale until the miss).  Same contract as any other
            # retention loss: reposition at the end, report lost.
            self._positions = self._subscribed_ends()
            return [], True
        for record in records:
            self._positions[record.topic] = record.offset + 1
        return records, False

    def commit(self) -> None:
        """Make the current read position the group's committed offsets."""
        if self._closed:
            return
        self.feed._commit(self.group, self._positions)

    def seek_to_end(self) -> None:
        """Jump past all retained (subscribed) records and commit there."""
        self.feed.refresh()
        self._positions = self._subscribed_ends()
        self.commit()

    def _subscribed_ends(self) -> dict[str, int]:
        ends = self.feed.end_offsets()
        if self.topics is None:
            return ends
        return {
            name: offset
            for name, offset in ends.items()
            if name in self.topics
        }

    def store_snapshot(self, payload: dict) -> None:
        """Persist ``payload`` as this group's recovery snapshot, bound
        to its *committed* offsets.  Retention keeps every record past
        the snapshot, so the group can always restore the payload and
        replay forward -- even after its committed prefix is truncated.

        Raises:
            FeedError: on an in-memory feed or an ephemeral group.
        """
        if self._closed or self.group in self.feed._ephemeral:
            raise FeedError("snapshots need a named group on a durable feed")
        self.feed.flush()
        self.feed.store_snapshot(self.group, self.committed, payload)

    def load_snapshot(self) -> Optional[tuple[dict[str, int], dict]]:
        """This group's snapshot ``(committed offsets, payload)``, if any."""
        return self.feed.load_snapshot(self.group)

    def abandon(self) -> None:
        """Mark this consumer dead *without* deregistering its group.

        The crash simulation: the group's registration -- committed
        offsets, subscription, retention floor -- survives in memory
        and on disk exactly as if the owning process had been killed,
        so status views report the group as lagging (not absent) and a
        successor re-attaching under the same name resumes from the
        committed cut.  Compare :meth:`close`, which deregisters the
        group's in-memory state (a deliberate detach)."""
        self._closed = True

    def close(self) -> None:
        """Deregister the group (in-memory registration only)."""
        if not self._closed:
            self._closed = True
            self.feed.close_group(self.group)


def serialize_schema(schema: object) -> dict:
    """Serialize a :class:`~repro.engine.schema.TableSchema` to JSON-safe
    form (the payload of ``create_table`` records)."""
    return {
        "name": schema.name,  # type: ignore[attr-defined]
        "columns": [
            {
                "name": column.name,
                "type": column.sql_type.value,
                "nullable": column.nullable,
            }
            for column in schema.columns  # type: ignore[attr-defined]
        ],
        "primary_key": list(schema.primary_key),  # type: ignore[attr-defined]
    }


def deserialize_schema(payload: dict) -> "object":
    """Rebuild a :class:`~repro.engine.schema.TableSchema` from
    :func:`serialize_schema` output."""
    from repro.engine.schema import Column, TableSchema
    from repro.engine.types import type_from_name

    return TableSchema(
        payload["name"],
        tuple(
            Column(
                column["name"],
                type_from_name(column["type"]),
                nullable=column.get("nullable", True),
            )
            for column in payload["columns"]
        ),
        tuple(payload.get("primary_key", ())),
    )
