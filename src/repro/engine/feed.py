"""The durable, partitioned change feed.

PR 1 made conflict detection incremental by publishing row mutations to
an in-memory change log.  That log was a single-process ring: one
overflow and the history was gone, and no other process could ever see
it.  This module promotes the log into a small **feed** subsystem in the
style of a partitioned commit log:

* **Topics.**  Every relation is its own topic; records carry a
  per-topic *offset* (monotonic from 0) plus a global *seq* that totally
  orders records across topics (replay applies records in seq order, so
  cross-relation effects -- e.g. DDL before the rows it enables -- come
  back deterministically).  DDL itself is a topic (:data:`SCHEMA_TOPIC`)
  whose records carry serialized table schemas, which is what lets a
  replica in another process rebuild the database without sharing memory.

* **Durability.**  With a ``directory``, every record is appended to a
  JSONL *segment* file per topic.  Segments rotate at
  ``segment_records`` records: the active segment is fsync'd, sealed
  into the manifest (written atomically: temp file + fsync +
  ``os.replace``), and a fresh segment becomes active.  On open, the
  manifest names the segments to replay; a torn final line (crash mid
  append) is detected and truncated away, so replay converges on the
  longest durable prefix.

* **Consumer groups.**  A consumer attaches to the feed under a group
  name and gets its own *committed offset* per topic.  ``poll()``
  returns records past the committed position without committing;
  ``commit()`` makes the new position durable (crash between the two
  re-delivers, which is what lets a replica apply-then-commit and stay
  exactly-once over restarts).  Anonymous groups (``group=None``) are
  ephemeral and auto-named -- the in-process engine cursor uses one.

* **Retention.**  In-memory feeds keep records until every group has
  consumed them, capped at ``max_retained``; past the cap the buffer is
  dropped wholesale and lagging groups observe ``lost=True`` (the
  consumer's cue to fall back to full re-detection).  Durable feeds
  never drop: segments are the retention.
"""

from __future__ import annotations

import contextlib
import io
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

from repro.errors import FeedError

#: Record kinds.
RECORD_CHANGE = "change"
RECORD_CREATE_TABLE = "create_table"
RECORD_DROP_TABLE = "drop_table"

#: The topic DDL records are published to.
SCHEMA_TOPIC = "_schema"

#: Manifest file name inside a feed directory.
MANIFEST = "manifest.json"


@dataclass(frozen=True)
class FeedRecord:
    """One record of the feed.

    Attributes:
        seq: global sequence number (total order across topics).
        topic: the partition (relation name, or :data:`SCHEMA_TOPIC`).
        offset: position within the topic (monotonic from 0).
        kind: :data:`RECORD_CHANGE` or one of the DDL kinds.
        tid: tuple id (change records).
        row: the row as stored (change records).
        op: ``"insert"`` / ``"delete"`` (change records).
        table: table name (DDL records).
        schema: serialized table schema (``create_table`` records).
    """

    seq: int
    topic: str
    offset: int
    kind: str
    tid: Optional[int] = None
    row: Optional[tuple] = None
    op: Optional[str] = None
    table: Optional[str] = None
    schema: Optional[dict] = None

    def to_json(self) -> str:
        """One JSONL line (compact, stable key order)."""
        payload: dict[str, object] = {
            "seq": self.seq,
            "topic": self.topic,
            "offset": self.offset,
            "kind": self.kind,
        }
        if self.kind == RECORD_CHANGE:
            payload["tid"] = self.tid
            payload["row"] = list(self.row or ())
            payload["op"] = self.op
        else:
            payload["table"] = self.table
            if self.schema is not None:
                payload["schema"] = self.schema
        return json.dumps(payload, separators=(",", ":"))

    @staticmethod
    def from_json(line: str) -> "FeedRecord":
        """Parse one JSONL line.

        Raises:
            FeedError: when the line is not a valid record.
        """
        try:
            payload = json.loads(line)
            return FeedRecord(
                seq=payload["seq"],
                topic=payload["topic"],
                offset=payload["offset"],
                kind=payload["kind"],
                tid=payload.get("tid"),
                row=(
                    tuple(payload["row"])
                    if payload.get("row") is not None
                    else None
                ),
                op=payload.get("op"),
                table=payload.get("table"),
                schema=payload.get("schema"),
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise FeedError(f"bad feed record: {line!r}") from exc


@dataclass
class TopicInfo:
    """Public per-topic statistics (the CLI's ``.feed`` view)."""

    name: str
    start: int  # oldest retained offset
    end: int  # one past the newest offset
    segments: int  # durable segment files (0 for in-memory feeds)


class _Topic:
    """One partition: retained records + the durable segment chain."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.records: list[FeedRecord] = []
        self.base = 0  # offset of records[0]
        self.segments: list[str] = []  # durable file names, oldest first

    @property
    def end(self) -> int:
        return self.base + len(self.records)

    def read(self, start: int, limit: Optional[int] = None) -> list[FeedRecord]:
        index = max(start - self.base, 0)
        chunk = self.records[index:]
        return chunk if limit is None else chunk[:limit]

    def drop_retained(self) -> None:
        self.base = self.end
        self.records.clear()


class ChangeFeed:
    """A partitioned change feed, optionally durable.

    Args:
        directory: when given, records are persisted as JSONL segments
            under it and consumer commits under ``consumers/``; an
            existing directory is *replayed* on open (crash-safe).
        max_retained: in-memory retention cap (ignored when durable).
        segment_records: records per segment before rotation.
        fsync: ``"rotate"`` (default; appends are buffered and made
            durable at segment rotation, :meth:`flush` and
            :meth:`close`) or ``"always"`` (flush + fsync every append).
    """

    def __init__(
        self,
        directory: Optional[str | os.PathLike] = None,
        *,
        max_retained: int = 100_000,
        segment_records: int = 4096,
        fsync: str = "rotate",
    ) -> None:
        if fsync not in ("rotate", "always"):
            raise FeedError(f"unknown fsync policy {fsync!r}")
        self.directory = Path(directory) if directory is not None else None
        self.max_retained = max_retained
        self.segment_records = segment_records
        self.fsync = fsync
        self.next_seq = 0
        #: bumped by every DDL record (consumers that cached
        #: schema-derived state rebuild when it moves).
        self.schema_version = 0
        self._topics: dict[str, _Topic] = {}
        self._groups: dict[str, dict[str, int]] = {}  # group -> committed
        self._ephemeral: set[str] = set()  # anonymous groups (no disk state)
        self._next_anonymous = 0
        self._suspended = 0
        #: records dropped because nobody was listening (in-memory feeds
        #: only) -- a replica attaching later checks this to refuse an
        #: unrebuildable history.
        self.dropped = 0
        self._writers: dict[str, io.TextIOWrapper] = {}  # topic -> active file
        self._active_counts: dict[str, int] = {}  # records in active segment
        if self.directory is not None:
            self._open_durable()

    # ------------------------------------------------------------ publishing

    @contextlib.contextmanager
    def suspended(self) -> Iterator[None]:
        """Suppress publishing (used while replaying the feed back into
        storage, so recovery does not re-append its own history)."""
        self._suspended += 1
        try:
            yield
        finally:
            self._suspended -= 1

    @property
    def is_suspended(self) -> bool:
        return self._suspended > 0

    @property
    def durable(self) -> bool:
        return self.directory is not None

    @property
    def has_history(self) -> bool:
        """Whether any records exist (retained or durable)."""
        return self.next_seq > 0

    def publish_change(self, relation: str, tid: int, row: tuple, op: str) -> None:
        """Append one row mutation to the relation's topic.

        In-memory feeds drop the record when no consumer group exists
        (zero cost when unused); durable feeds always append.
        """
        if self.is_suspended:
            return
        if not self.durable and not self._groups:
            self.dropped += 1
            return
        topic = self._topic(relation)
        record = FeedRecord(
            seq=self.next_seq,
            topic=topic.name,
            offset=topic.end,
            kind=RECORD_CHANGE,
            tid=tid,
            row=tuple(row),
            op=op,
        )
        self._append(topic, record)

    def publish_schema(
        self, kind: str, table: str, schema: Optional[dict] = None
    ) -> None:
        """Append a DDL record and bump :attr:`schema_version`."""
        if self.is_suspended:
            return
        self.schema_version += 1
        if not self.durable and not self._groups:
            self.dropped += 1
            return
        topic = self._topic(SCHEMA_TOPIC)
        record = FeedRecord(
            seq=self.next_seq,
            topic=SCHEMA_TOPIC,
            offset=topic.end,
            kind=kind,
            table=table,
            schema=schema,
        )
        self._append(topic, record)

    def _append(self, topic: _Topic, record: FeedRecord) -> None:
        self.next_seq = record.seq + 1
        topic.records.append(record)
        if self.durable:
            self._write_durable(topic, record)
            return
        retained = sum(len(t.records) for t in self._topics.values())
        if retained > self.max_retained:
            # Overflow: drop everything; lagging groups observe ``lost``
            # and fall back to full re-detection.
            for t in self._topics.values():
                t.drop_retained()

    # ------------------------------------------------------------- consuming

    def consumer(
        self, group: Optional[str] = None, start: str = "end"
    ) -> "FeedConsumer":
        """Attach a consumer under ``group``.

        A new group starts at the feed's current ``end`` (or at offset 0
        everywhere with ``start="beginning"`` -- what a replica wants).
        An existing group resumes from its committed offsets, which for
        durable feeds survive process restarts.
        """
        ephemeral = group is None
        if group is None:
            group = f"cursor-{self._next_anonymous}"
            self._next_anonymous += 1
        if group not in self._groups:
            # Ephemeral groups never touch consumers/ on disk: their
            # position is meaningless to any other process, and a stale
            # file under a recycled cursor-<n> name must not be resumed.
            committed = None if ephemeral else self._load_committed(group)
            if committed is None:
                committed = (
                    {}
                    if start == "beginning"
                    else {name: t.end for name, t in self._topics.items()}
                )
            self._groups[group] = committed
            if ephemeral:
                self._ephemeral.add(group)
        return FeedConsumer(self, group)

    def close_group(self, group: str) -> None:
        """Drop a group's in-memory registration (durable commits stay)."""
        self._groups.pop(group, None)
        self._ephemeral.discard(group)
        self._compact()

    def groups(self) -> dict[str, dict[str, int]]:
        """Registered groups -> committed offsets per topic (a copy)."""
        return {group: dict(c) for group, c in self._groups.items()}

    def topics(self) -> list[TopicInfo]:
        """Per-topic statistics, creation order."""
        return [
            TopicInfo(
                name=t.name,
                start=t.base,
                end=t.end,
                segments=len(t.segments) + (1 if t.name in self._writers else 0),
            )
            for t in self._topics.values()
        ]

    def end_offsets(self) -> dict[str, int]:
        """Topic -> one past the newest offset."""
        return {name: t.end for name, t in self._topics.items()}

    def records_upto(
        self, committed: dict[str, int]
    ) -> list[FeedRecord]:
        """All retained records strictly below ``committed``, seq order.

        This is the *committed prefix* a re-attaching replica rebuilds
        its state from.

        Raises:
            FeedError: when part of the prefix is no longer retained
                (possible only on in-memory feeds after an overflow).
        """
        prefix: list[FeedRecord] = []
        for name, upto in committed.items():
            if upto <= 0:
                continue
            topic = self._topics.get(name)
            if topic is None or topic.base > 0:
                raise FeedError(
                    f"topic {name!r}: committed prefix up to offset"
                    f" {upto} is no longer retained"
                )
            if upto > topic.end:
                # A commit that outlived its records (e.g. a crash that
                # tore away more history than the offsets acknowledge).
                raise FeedError(
                    f"topic {name!r}: committed offset {upto} is past the"
                    f" end of the durable history ({topic.end})"
                )
            prefix.extend(topic.read(0, upto))
        prefix.sort(key=lambda record: record.seq)
        return prefix

    # ------------------------------------------- group plumbing (consumers)

    def _topic(self, name: str) -> _Topic:
        topic = self._topics.get(name)
        if topic is None:
            topic = _Topic(name)
            self._topics[name] = topic
        return topic

    def _poll(
        self, positions: dict[str, int], limit: Optional[int]
    ) -> list[FeedRecord]:
        batch: list[FeedRecord] = []
        for name, topic in self._topics.items():
            batch.extend(topic.read(positions.get(name, 0)))
        batch.sort(key=lambda record: record.seq)
        return batch if limit is None else batch[:limit]

    def _lost(self, positions: dict[str, int]) -> bool:
        return any(
            positions.get(name, 0) < topic.base
            for name, topic in self._topics.items()
        )

    def _lag(self, positions: dict[str, int]) -> int:
        return sum(
            max(topic.end - positions.get(name, 0), 0)
            for name, topic in self._topics.items()
        )

    def _commit(self, group: str, committed: dict[str, int]) -> None:
        self._groups[group] = dict(committed)
        if self.durable and group not in self._ephemeral:
            # The acknowledged records must hit disk before the offsets
            # that acknowledge them: a commit that survives a crash its
            # records did not would strand the group past data that
            # replays at lower offsets.
            self.flush()
            self._store_committed(group, committed)
        self._compact()

    def _compact(self) -> None:
        """In-memory mode: drop records every group has consumed."""
        if self.durable:
            return  # segments are the retention; memory mirrors them
        for name, topic in self._topics.items():
            if not self._groups:
                topic.drop_retained()
                continue
            low = min(c.get(name, 0) for c in self._groups.values())
            if low > topic.base:
                del topic.records[: low - topic.base]
                topic.base = low

    # ------------------------------------------------------------ durability

    def _segment_dir(self, topic: str) -> Path:
        assert self.directory is not None
        return self.directory / "topics" / topic

    def _consumers_dir(self) -> Path:
        assert self.directory is not None
        return self.directory / "consumers"

    @staticmethod
    def _segment_name(start_offset: int) -> str:
        return f"{start_offset:012d}.jsonl"

    def _write_durable(self, topic: _Topic, record: FeedRecord) -> None:
        writer = self._writers.get(topic.name)
        if writer is None:
            writer = self._open_segment(topic, record.offset)
        writer.write(record.to_json() + "\n")
        if self.fsync == "always":
            writer.flush()
            os.fsync(writer.fileno())
        # Under the "rotate" policy appends stay in the userspace buffer
        # until rotation / flush() / close(): a crash can cost the tail
        # of the active segment, never a sealed one -- and replay
        # truncates any torn line it left behind.
        self._active_counts[topic.name] += 1
        if self._active_counts[topic.name] >= self.segment_records:
            self._rotate(topic)

    def _open_segment(self, topic: _Topic, next_offset: int) -> io.TextIOWrapper:
        directory = self._segment_dir(topic.name)
        directory.mkdir(parents=True, exist_ok=True)
        name = self._segment_name(next_offset)
        held = 0
        if topic.segments:
            # Resume the newest segment (e.g. after a reopen) while it
            # still has room; segments are contiguous, so its record
            # count is just the offset distance from its start.
            last_start = int(topic.segments[-1].split(".", 1)[0])
            held = next_offset - last_start
            if 0 <= held < self.segment_records:
                name = topic.segments[-1]
            else:
                held = 0
        writer = open(directory / name, "a", encoding="utf-8")
        self._writers[topic.name] = writer
        self._active_counts[topic.name] = held
        if not topic.segments or topic.segments[-1] != name:
            topic.segments.append(name)
            self._store_manifest()
        return writer

    def _rotate(self, topic: _Topic) -> None:
        """Seal the active segment: fsync it, then cut a new one."""
        writer = self._writers.pop(topic.name)
        writer.flush()
        os.fsync(writer.fileno())
        writer.close()
        self._active_counts.pop(topic.name, None)
        # The next append opens the successor segment (named by the
        # first offset it will hold) and records it in the manifest.

    def _store_manifest(self) -> None:
        assert self.directory is not None
        payload = {
            "version": 1,
            "segment_records": self.segment_records,
            "topics": {
                name: {"segments": list(topic.segments)}
                for name, topic in self._topics.items()
            },
        }
        self._atomic_json(self.directory / MANIFEST, payload)

    def _store_committed(self, group: str, committed: dict[str, int]) -> None:
        directory = self._consumers_dir()
        directory.mkdir(parents=True, exist_ok=True)
        self._atomic_json(
            directory / f"{group}.json",
            {"group": group, "committed": dict(committed)},
        )

    def _load_committed(self, group: str) -> Optional[dict[str, int]]:
        if not self.durable:
            return None
        path = self._consumers_dir() / f"{group}.json"
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            return {str(k): int(v) for k, v in payload["committed"].items()}
        except (ValueError, KeyError) as exc:
            raise FeedError(f"corrupt consumer state {path}") from exc

    @staticmethod
    def _atomic_json(path: Path, payload: dict) -> None:
        temp = path.with_suffix(path.suffix + ".tmp")
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)

    def _open_durable(self) -> None:
        """Open (or create) the feed directory, replaying its history."""
        assert self.directory is not None
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest_path = self.directory / MANIFEST
        if not manifest_path.exists():
            self._store_manifest()
            return
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            topics = manifest["topics"]
        except (ValueError, KeyError) as exc:
            raise FeedError(f"corrupt manifest {manifest_path}") from exc
        records: list[FeedRecord] = []
        for name, entry in topics.items():
            topic = self._topic(name)
            topic.segments = [str(s) for s in entry.get("segments", [])]
            for index, segment in enumerate(topic.segments):
                last = index == len(topic.segments) - 1
                records.extend(self._replay_segment(name, segment, repair=last))
        records.sort(key=lambda record: record.seq)
        for record in records:
            topic = self._topic(record.topic)
            if record.offset != topic.end:
                raise FeedError(
                    f"topic {record.topic!r}: offset {record.offset}"
                    f" out of order (expected {topic.end})"
                )
            topic.records.append(record)
            if record.kind != RECORD_CHANGE:
                self.schema_version += 1
        self.next_seq = max((r.seq for r in records), default=-1) + 1

    def _replay_segment(
        self, topic: str, segment: str, repair: bool
    ) -> list[FeedRecord]:
        """Read one segment; on a torn tail, truncate it away (``repair``)."""
        path = self._segment_dir(topic) / segment
        if not path.exists():
            return []  # rotation crashed before the first append
        records: list[FeedRecord] = []
        good_bytes = 0
        with open(path, "rb") as handle:
            data = handle.read()
        for line in data.splitlines(keepends=True):
            if not line.endswith(b"\n"):
                break  # torn tail: the crash cut this append short
            try:
                records.append(FeedRecord.from_json(line.decode("utf-8")))
            except FeedError:
                break  # garbage tail (e.g. partial line + later append)
            good_bytes += len(line)
        if good_bytes < len(data):
            if not repair:
                raise FeedError(
                    f"corrupt record inside sealed segment {path}"
                )
            with open(path, "r+b") as handle:
                handle.truncate(good_bytes)
        return records

    def flush(self) -> None:
        """Flush + fsync every active segment writer."""
        for writer in self._writers.values():
            writer.flush()
            os.fsync(writer.fileno())

    def close(self) -> None:
        """Flush and close the durable writers (idempotent)."""
        for name in list(self._writers):
            writer = self._writers.pop(name)
            writer.flush()
            os.fsync(writer.fileno())
            writer.close()
        self._active_counts.clear()

    def __enter__(self) -> "ChangeFeed":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class FeedConsumer:
    """One consumer group member: poll / commit with explicit offsets.

    ``poll()`` advances an *uncommitted* read position; ``commit()``
    publishes it as the group's committed offsets (durably, when the
    feed is).  A consumer that crashes between the two is re-delivered
    the uncommitted records on re-attach -- apply-then-commit therefore
    gives exactly-once effects for idempotent appliers.
    """

    def __init__(self, feed: ChangeFeed, group: str) -> None:
        self.feed = feed
        self.group = group
        self._positions = dict(feed._groups[group])
        self._closed = False

    @property
    def committed(self) -> dict[str, int]:
        """The group's committed offset per topic (a copy)."""
        return dict(self.feed._groups.get(self.group, {}))

    @property
    def lag(self) -> int:
        """Records past the *committed* position (includes unpolled)."""
        if self._closed:
            return 0
        return self.feed._lag(self.feed._groups[self.group])

    @property
    def pending(self) -> int:
        """Records past the current *read* position."""
        if self._closed:
            return 0
        return self.feed._lag(self._positions)

    @property
    def lost(self) -> bool:
        """Whether retention dropped records this consumer never read."""
        if self._closed:
            return False
        return self.feed._lost(self._positions)

    def poll(
        self, limit: Optional[int] = None
    ) -> tuple[list[FeedRecord], bool]:
        """Read records past the current position; returns ``(records, lost)``.

        On ``lost`` the list is empty and the position jumps to the feed
        end (the history cannot be recovered; the consumer must rebuild
        derived state from scratch).
        """
        if self._closed:
            return [], False
        if self.feed._lost(self._positions):
            self._positions = self.feed.end_offsets()
            return [], True
        records = self.feed._poll(self._positions, limit)
        for record in records:
            self._positions[record.topic] = record.offset + 1
        return records, False

    def commit(self) -> None:
        """Make the current read position the group's committed offsets."""
        if self._closed:
            return
        self.feed._commit(self.group, self._positions)

    def seek_to_end(self) -> None:
        """Jump past all retained records and commit there."""
        self._positions = self.feed.end_offsets()
        self.commit()

    def close(self) -> None:
        """Deregister the group (in-memory registration only)."""
        if not self._closed:
            self._closed = True
            self.feed.close_group(self.group)


def serialize_schema(schema: object) -> dict:
    """Serialize a :class:`~repro.engine.schema.TableSchema` to JSON-safe
    form (the payload of ``create_table`` records)."""
    return {
        "name": schema.name,  # type: ignore[attr-defined]
        "columns": [
            {
                "name": column.name,
                "type": column.sql_type.value,
                "nullable": column.nullable,
            }
            for column in schema.columns  # type: ignore[attr-defined]
        ],
        "primary_key": list(schema.primary_key),  # type: ignore[attr-defined]
    }


def deserialize_schema(payload: dict) -> "object":
    """Rebuild a :class:`~repro.engine.schema.TableSchema` from
    :func:`serialize_schema` output."""
    from repro.engine.schema import Column, TableSchema
    from repro.engine.types import type_from_name

    return TableSchema(
        payload["name"],
        tuple(
            Column(
                column["name"],
                type_from_name(column["type"]),
                nullable=column.get("nullable", True),
            )
            for column in payload["columns"]
        ),
        tuple(payload.get("primary_key", ())),
    )
