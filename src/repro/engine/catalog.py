"""The catalog: the named tables of a database instance."""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.engine.changelog import ChangeLog
from repro.engine.schema import TableSchema
from repro.engine.storage import Table
from repro.errors import CatalogError


class Catalog:
    """Case-insensitive registry of tables.

    When constructed with a :class:`~repro.engine.changelog.ChangeLog`,
    every table it creates publishes its row mutations there, and DDL
    (create/drop) bumps the log's schema version and -- when anyone is
    listening -- publishes the serialized schema on the feed's
    ``_schema`` topic so replicas can rebuild the catalog.
    """

    def __init__(self, changelog: Optional[ChangeLog] = None) -> None:
        self._tables: Dict[str, Table] = {}
        self._changelog = changelog

    def create_table(self, schema: TableSchema) -> Table:
        """Create and register an empty table.

        Raises:
            CatalogError: if a table with that name already exists.
        """
        key = schema.name.lower()
        if key in self._tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        table = Table(schema, changelog=self._changelog)
        self._tables[key] = table
        if self._changelog is not None:
            self._changelog.schema_created(schema)
        return table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        """Remove a table.

        Raises:
            CatalogError: if the table is missing and ``if_exists`` is False.
        """
        key = name.lower()
        if key not in self._tables:
            if if_exists:
                return
            raise CatalogError(f"no such table: {name!r}")
        del self._tables[key]
        if self._changelog is not None:
            self._changelog.schema_dropped(key)

    def table(self, name: str) -> Table:
        """Look a table up by name.

        Raises:
            CatalogError: if the table does not exist.
        """
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no such table: {name!r}") from None

    def has_table(self, name: str) -> bool:
        """Whether a table with this name exists."""
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        """Declared names of all tables (creation order)."""
        return [table.schema.name for table in self._tables.values()]

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)
