"""SQL value model: types, NULL semantics and three-valued logic.

The engine stores values as plain Python objects:

* ``INTEGER``  -> :class:`int`
* ``REAL``     -> :class:`float`
* ``TEXT``     -> :class:`str`
* ``BOOLEAN``  -> :class:`bool`
* SQL ``NULL`` -> :data:`None`

SQL comparisons involving NULL yield *unknown*, which is also represented by
:data:`None`; the three-valued connectives below (:func:`logic_and`,
:func:`logic_or`, :func:`logic_not`) propagate it the way SQL's WHERE clause
requires.  A WHERE clause keeps a row only when its condition evaluates to
``True`` (not to ``None``).
"""

from __future__ import annotations

import enum
from typing import Any, Optional

from repro.errors import TypeError_

#: The Python value used for SQL NULL (and for *unknown* in 3-valued logic).
NULL = None

SQLValue = Optional[object]


class SQLType(enum.Enum):
    """Column types supported by the engine."""

    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_TYPE_SYNONYMS = {
    "INT": SQLType.INTEGER,
    "INTEGER": SQLType.INTEGER,
    "BIGINT": SQLType.INTEGER,
    "SMALLINT": SQLType.INTEGER,
    "REAL": SQLType.REAL,
    "FLOAT": SQLType.REAL,
    "DOUBLE": SQLType.REAL,
    "NUMERIC": SQLType.REAL,
    "DECIMAL": SQLType.REAL,
    "TEXT": SQLType.TEXT,
    "VARCHAR": SQLType.TEXT,
    "CHAR": SQLType.TEXT,
    "STRING": SQLType.TEXT,
    "BOOLEAN": SQLType.BOOLEAN,
    "BOOL": SQLType.BOOLEAN,
}


def type_from_name(name: str) -> SQLType:
    """Resolve a SQL type name (with common synonyms) to a :class:`SQLType`.

    Raises:
        TypeError_: if the name is not a known type.
    """
    try:
        return _TYPE_SYNONYMS[name.upper()]
    except KeyError:
        raise TypeError_(f"unknown SQL type: {name!r}") from None


def python_type_of(sql_type: SQLType) -> type:
    """Return the Python class used to store values of ``sql_type``."""
    return {
        SQLType.INTEGER: int,
        SQLType.REAL: float,
        SQLType.TEXT: str,
        SQLType.BOOLEAN: bool,
    }[sql_type]


def infer_type(value: SQLValue) -> Optional[SQLType]:
    """Infer the :class:`SQLType` of a Python value (``None`` for NULL)."""
    if value is None:
        return None
    if isinstance(value, bool):  # bool before int: bool is an int subclass
        return SQLType.BOOLEAN
    if isinstance(value, int):
        return SQLType.INTEGER
    if isinstance(value, float):
        return SQLType.REAL
    if isinstance(value, str):
        return SQLType.TEXT
    raise TypeError_(f"value {value!r} has no SQL type")


def coerce_value(value: SQLValue, sql_type: SQLType) -> SQLValue:
    """Coerce ``value`` for storage in a column of type ``sql_type``.

    NULL is always accepted.  The only implicit conversions performed are
    the numeric widenings SQL allows (INTEGER -> REAL) and exact
    REAL -> INTEGER when the float is integral.  Anything else raises.
    """
    if value is None:
        return None
    actual = infer_type(value)
    if actual is sql_type:
        return value
    if sql_type is SQLType.REAL and actual is SQLType.INTEGER:
        return float(value)
    if sql_type is SQLType.INTEGER and actual is SQLType.REAL:
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise TypeError_(f"cannot store non-integral REAL {value!r} in INTEGER column")
    raise TypeError_(f"cannot store {actual} value {value!r} in {sql_type} column")


def _comparable(left: Any, right: Any) -> bool:
    """Whether two non-NULL values can be compared under SQL rules."""
    lt, rt = infer_type(left), infer_type(right)
    if lt is rt:
        return True
    numeric = {SQLType.INTEGER, SQLType.REAL}
    return lt in numeric and rt in numeric


def compare_values(left: SQLValue, right: SQLValue) -> Optional[int]:
    """SQL comparison: -1 / 0 / +1, or ``None`` when either side is NULL.

    Raises:
        TypeError_: when the operands are non-NULL but of incomparable
            types (e.g. TEXT vs INTEGER); SQL engines reject these too.
    """
    if left is None or right is None:
        return None
    if not _comparable(left, right):
        raise TypeError_(
            f"cannot compare {infer_type(left)} with {infer_type(right)}"
            f" ({left!r} vs {right!r})"
        )
    if left == right:
        return 0
    return -1 if left < right else 1


def values_equal(left: SQLValue, right: SQLValue) -> Optional[bool]:
    """SQL ``=``: ``None`` when either side is NULL."""
    cmp = compare_values(left, right)
    return None if cmp is None else cmp == 0


def logic_and(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    """Three-valued AND (Kleene logic, as used by SQL)."""
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def logic_or(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    """Three-valued OR (Kleene logic, as used by SQL)."""
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def logic_not(value: Optional[bool]) -> Optional[bool]:
    """Three-valued NOT."""
    return None if value is None else not value


def is_true(value: Optional[bool]) -> bool:
    """Whether a 3-valued condition result selects a row (TRUE only)."""
    return value is True


def sort_key(value: SQLValue) -> tuple:
    """A total-order key for ORDER BY: NULLs first, then by type, then value.

    SQL leaves NULL ordering implementation-defined; we pin NULLS FIRST so
    results are deterministic and testable.
    """
    if value is None:
        return (0, "", 0)
    if isinstance(value, bool):
        return (1, "", int(value))
    if isinstance(value, (int, float)):
        return (2, "", value)
    return (3, value, 0)


def format_value(value: SQLValue) -> str:
    """Render a value the way the CLI / examples print it."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        return value
    return str(value)


def literal_sql(value: SQLValue) -> str:
    """Render a value as a SQL literal (used by the formatter/rewriting)."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return repr(value)
