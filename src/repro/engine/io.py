"""Import / export utilities: SQL dumps and CSV loading.

Hippo is an RDBMS *frontend*: "the data stored in the RDBMS needs not be
altered."  These helpers move data in and out of the substrate engine so
real datasets (e.g. two CSV exports of autonomous sources) can be
integrated and queried consistently.
"""

from __future__ import annotations

import csv
from typing import IO, Optional, Sequence

from repro.engine.database import Database
from repro.engine.types import SQLType, SQLValue, literal_sql
from repro.errors import SchemaError


def dump_sql(db: Database, table_names: Optional[Sequence[str]] = None) -> str:
    """A re-executable SQL script recreating the database's tables.

    Rows are emitted in tid order, so a dump/restore round trip preserves
    the *relative* tuple order (tids themselves restart from zero).
    """
    statements: list[str] = []
    names = table_names if table_names is not None else db.catalog.table_names()
    for name in names:
        table = db.catalog.table(name)
        schema = table.schema
        column_parts = []
        for column in schema.columns:
            text = f"{column.name} {column.sql_type}"
            if not column.nullable:
                text += " NOT NULL"
            column_parts.append(text)
        if schema.primary_key:
            column_parts.append(f"PRIMARY KEY ({', '.join(schema.primary_key)})")
        statements.append(
            f"CREATE TABLE {schema.name} ({', '.join(column_parts)});"
        )
        rows = list(table.rows())
        for start in range(0, len(rows), 500):
            chunk = rows[start : start + 500]
            values = ",\n  ".join(
                "(" + ", ".join(literal_sql(v) for v in row) + ")" for row in chunk
            )
            statements.append(f"INSERT INTO {schema.name} VALUES\n  {values};")
    return "\n".join(statements) + ("\n" if statements else "")


def restore_sql(script: str) -> Database:
    """Build a fresh database from a :func:`dump_sql` script."""
    db = Database()
    db.execute_script(script)
    return db


def _parse_csv_value(text: str, sql_type: SQLType) -> SQLValue:
    if text == "":
        return None
    if sql_type is SQLType.INTEGER:
        return int(text)
    if sql_type is SQLType.REAL:
        return float(text)
    if sql_type is SQLType.BOOLEAN:
        lowered = text.strip().lower()
        if lowered in ("true", "t", "1", "yes"):
            return True
        if lowered in ("false", "f", "0", "no"):
            return False
        raise SchemaError(f"cannot read {text!r} as BOOLEAN")
    return text


def load_csv(
    db: Database,
    table_name: str,
    source: IO[str],
    has_header: bool = True,
) -> int:
    """Load CSV rows into an existing table; returns the row count.

    With ``has_header`` the header's column names are matched (case-
    insensitively, in any order) against the table schema; otherwise
    columns are positional.  Empty fields load as NULL.

    Raises:
        SchemaError: on unknown header columns or arity mismatches.
    """
    table = db.catalog.table(table_name)
    schema = table.schema
    reader = csv.reader(source)

    positions: Optional[list[int]] = None
    if has_header:
        try:
            header = next(reader)
        except StopIteration:
            return 0
        positions = [schema.index_of(column) for column in header]
        if len(set(positions)) != len(positions):
            raise SchemaError(f"duplicate column in CSV header: {header}")

    count = 0
    for record in reader:
        if not record:
            continue
        if positions is not None:
            if len(record) != len(positions):
                raise SchemaError(
                    f"CSV row has {len(record)} fields, header had"
                    f" {len(positions)}"
                )
            row: list[SQLValue] = [None] * schema.arity
            for position, text in zip(positions, record):
                row[position] = _parse_csv_value(
                    text, schema.columns[position].sql_type
                )
        else:
            if len(record) != schema.arity:
                raise SchemaError(
                    f"CSV row has {len(record)} fields, table"
                    f" {table_name!r} has {schema.arity} columns"
                )
            row = [
                _parse_csv_value(text, column.sql_type)
                for text, column in zip(record, schema.columns)
            ]
        table.insert(row)
        count += 1
    return count


def dump_csv(db: Database, table_name: str, target: IO[str]) -> int:
    """Write a table as CSV (with header); returns the row count.

    NULL is written as the empty field, matching :func:`load_csv`.
    """
    table = db.catalog.table(table_name)
    writer = csv.writer(target)
    writer.writerow(table.schema.column_names)
    count = 0
    for row in table.rows():
        writer.writerow(["" if v is None else v for v in row])
        count += 1
    return count
